//! Error injection — the paper's fault model (Section V).
//!
//! "Common errors occurring during design flows involve altered single-qubit
//! gates as well as misplaced/removed C-NOT gates." This module injects
//! exactly those defect classes, seeded and reproducible, to create the
//! non-equivalent benchmark instances of Table Ia.

use std::fmt;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind};

/// The defect classes of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorKind {
    /// Remove one gate.
    RemoveGate,
    /// Move one CX's target (or control) to a different qubit — the paper's
    /// Example 6 bug ("the last SWAP gate is not correctly applied…").
    MisplaceCx,
    /// Reverse the direction of one CX (control ↔ target).
    FlipCxDirection,
    /// Offset the angle of one rotation gate by the given amount ("offsets
    /// in the rotation angle", Section IV-A).
    PerturbRotation(f64),
    /// Replace one single-qubit gate with a different single-qubit gate.
    ReplaceSingleQubitGate,
    /// Insert one random single-qubit gate at a random position.
    InsertSingleQubitGate,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorKind::RemoveGate => write!(f, "remove gate"),
            ErrorKind::MisplaceCx => write!(f, "misplace CX"),
            ErrorKind::FlipCxDirection => write!(f, "flip CX direction"),
            ErrorKind::PerturbRotation(d) => write!(f, "perturb rotation by {d}"),
            ErrorKind::ReplaceSingleQubitGate => write!(f, "replace 1q gate"),
            ErrorKind::InsertSingleQubitGate => write!(f, "insert 1q gate"),
        }
    }
}

/// A record of the defect that was injected, for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectedError {
    /// Which class of defect.
    pub kind: ErrorKind,
    /// Gate index in the *output* circuit (for removals: the index the gate
    /// had in the input).
    pub index: usize,
    /// Human-readable description (`"cx q\[0\], q\[1\] → cx q\[0\], q\[2\]"`).
    pub description: String,
}

impl fmt::Display for InjectedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at gate {}: {}",
            self.kind, self.index, self.description
        )
    }
}

/// Error returned when a defect class has no applicable site in the circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectError {
    /// The defect class that could not be applied.
    pub kind: ErrorKind,
    /// Why.
    pub reason: String,
}

impl fmt::Display for InjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot inject '{}': {}", self.kind, self.reason)
    }
}

impl std::error::Error for InjectError {}

/// Injects one defect of class `kind` into a copy of `circuit`, choosing the
/// site with the seeded `rng`.
///
/// # Errors
///
/// Returns [`InjectError`] if the circuit has no applicable site — e.g.
/// [`ErrorKind::MisplaceCx`] on a circuit without CX gates, or any injection
/// into an empty circuit.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), qcirc::errors::InjectError> {
/// use qcirc::errors::{inject, ErrorKind};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let c = qcirc::generators::ghz(4);
/// let mut rng = StdRng::seed_from_u64(1);
/// let (buggy, record) = inject(&c, ErrorKind::MisplaceCx, &mut rng)?;
/// assert_eq!(buggy.len(), c.len());
/// assert!(!record.description.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn inject(
    circuit: &Circuit,
    kind: ErrorKind,
    rng: &mut StdRng,
) -> Result<(Circuit, InjectedError), InjectError> {
    let fail = |reason: &str| InjectError {
        kind,
        reason: reason.to_string(),
    };
    if circuit.is_empty() && kind != ErrorKind::InsertSingleQubitGate {
        return Err(fail("circuit is empty"));
    }
    let mut out = circuit.clone();
    out.set_name(format!("{}_buggy", circuit.name()));
    let record = match kind {
        ErrorKind::RemoveGate => {
            let index = rng.gen_range(0..out.len());
            let removed = out.remove(index);
            InjectedError {
                kind,
                index,
                description: format!("removed '{removed}'"),
            }
        }
        ErrorKind::MisplaceCx => {
            let sites = cx_sites(circuit);
            if sites.is_empty() {
                return Err(fail("no CX gates present"));
            }
            if circuit.n_qubits() < 3 {
                return Err(fail("needs at least 3 qubits to misplace a CX"));
            }
            let index = *sites.choose(rng).expect("non-empty");
            let old = circuit.gates()[index].clone();
            let control = old.controls()[0];
            let target = old.target();
            // Move the target (or, half the time, the control) to a fresh qubit.
            let move_target = rng.gen_bool(0.5);
            let fixed = if move_target { control } else { target };
            let candidates: Vec<usize> = (0..circuit.n_qubits())
                .filter(|&q| q != control && q != target)
                .collect();
            let fresh = *candidates.choose(rng).expect("n >= 3");
            let new = if move_target {
                Gate::controlled(GateKind::X, vec![fixed], fresh)
            } else {
                Gate::controlled(GateKind::X, vec![fresh], target)
            };
            let description = format!("'{old}' → '{new}'");
            out.replace(index, new);
            InjectedError {
                kind,
                index,
                description,
            }
        }
        ErrorKind::FlipCxDirection => {
            let sites = cx_sites(circuit);
            if sites.is_empty() {
                return Err(fail("no CX gates present"));
            }
            let index = *sites.choose(rng).expect("non-empty");
            let old = circuit.gates()[index].clone();
            let new = Gate::controlled(GateKind::X, vec![old.target()], old.controls()[0]);
            let description = format!("'{old}' → '{new}'");
            out.replace(index, new);
            InjectedError {
                kind,
                index,
                description,
            }
        }
        ErrorKind::PerturbRotation(offset) => {
            let sites: Vec<usize> = circuit
                .gates()
                .iter()
                .enumerate()
                .filter(|(_, g)| g.kind().is_parameterized())
                .map(|(i, _)| i)
                .collect();
            if sites.is_empty() {
                return Err(fail("no parameterized gates present"));
            }
            let index = *sites.choose(rng).expect("non-empty");
            let old = circuit.gates()[index].clone();
            let new_kind = perturb_kind(old.kind(), offset);
            let new = if old.controls().is_empty() {
                Gate::single(new_kind, old.target())
            } else {
                Gate::controlled(new_kind, old.controls().to_vec(), old.target())
            };
            let description = format!("'{old}' → '{new}'");
            out.replace(index, new);
            InjectedError {
                kind,
                index,
                description,
            }
        }
        ErrorKind::ReplaceSingleQubitGate => {
            let sites: Vec<usize> = circuit
                .gates()
                .iter()
                .enumerate()
                .filter(|(_, g)| g.width() == 1)
                .map(|(i, _)| i)
                .collect();
            if sites.is_empty() {
                return Err(fail("no single-qubit gates present"));
            }
            let index = *sites.choose(rng).expect("non-empty");
            let old = circuit.gates()[index].clone();
            let replacements = [
                GateKind::X,
                GateKind::Y,
                GateKind::Z,
                GateKind::H,
                GateKind::S,
                GateKind::T,
                GateKind::Sx,
            ];
            let new_kind = loop {
                let k = *replacements.choose(rng).expect("non-empty");
                if !k.approx_eq(old.kind()) {
                    break k;
                }
            };
            let new = Gate::single(new_kind, old.target());
            let description = format!("'{old}' → '{new}'");
            out.replace(index, new);
            InjectedError {
                kind,
                index,
                description,
            }
        }
        ErrorKind::InsertSingleQubitGate => {
            let index = rng.gen_range(0..=out.len());
            let q = rng.gen_range(0..out.n_qubits());
            let choices = [
                GateKind::X,
                GateKind::Z,
                GateKind::H,
                GateKind::S,
                GateKind::T,
            ];
            let kind_choice = *choices.choose(rng).expect("non-empty");
            let new = Gate::single(kind_choice, q);
            let description = format!("inserted '{new}'");
            out.insert(index, new);
            InjectedError {
                kind,
                index,
                description,
            }
        }
    };
    Ok((out, record))
}

/// Injects a uniformly random *applicable* defect class.
///
/// # Errors
///
/// Returns [`InjectError`] only if no class at all applies (empty circuit on
/// zero applicable sites never happens because insertion always applies).
pub fn inject_random(
    circuit: &Circuit,
    rng: &mut StdRng,
) -> Result<(Circuit, InjectedError), InjectError> {
    let mut kinds = vec![
        ErrorKind::RemoveGate,
        ErrorKind::MisplaceCx,
        ErrorKind::FlipCxDirection,
        ErrorKind::PerturbRotation(rng.gen_range(0.01..0.5)),
        ErrorKind::ReplaceSingleQubitGate,
        ErrorKind::InsertSingleQubitGate,
    ];
    kinds.shuffle(rng);
    let mut last_err = None;
    for kind in kinds {
        match inject(circuit, kind, rng) {
            Ok(done) => return Ok(done),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.expect("at least one kind was tried"))
}

fn cx_sites(circuit: &Circuit) -> Vec<usize> {
    circuit
        .gates()
        .iter()
        .enumerate()
        .filter(|(_, g)| *g.kind() == GateKind::X && g.controls().len() == 1)
        .map(|(i, _)| i)
        .collect()
}

fn perturb_kind(kind: &GateKind, offset: f64) -> GateKind {
    match *kind {
        GateKind::Rx(t) => GateKind::Rx(t + offset),
        GateKind::Ry(t) => GateKind::Ry(t + offset),
        GateKind::Rz(t) => GateKind::Rz(t + offset),
        GateKind::Phase(l) => GateKind::Phase(l + offset),
        GateKind::U3(t, p, l) => GateKind::U3(t + offset, p, l),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense;
    use crate::generators;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn remove_gate_shrinks_by_one() {
        let c = generators::ghz(4);
        let (buggy, rec) = inject(&c, ErrorKind::RemoveGate, &mut rng(0)).unwrap();
        assert_eq!(buggy.len(), c.len() - 1);
        assert!(rec.description.contains("removed"));
    }

    #[test]
    fn misplace_cx_changes_unitary() {
        let c = generators::ghz(4);
        let (buggy, _) = inject(&c, ErrorKind::MisplaceCx, &mut rng(3)).unwrap();
        assert_eq!(buggy.len(), c.len());
        assert!(!dense::unitary(&c).approx_eq_up_to_phase(&dense::unitary(&buggy)));
    }

    #[test]
    fn flip_cx_changes_unitary() {
        let c = generators::ghz(3);
        let (buggy, rec) = inject(&c, ErrorKind::FlipCxDirection, &mut rng(1)).unwrap();
        assert!(rec.description.contains("→"));
        assert!(!dense::unitary(&c).approx_eq_up_to_phase(&dense::unitary(&buggy)));
    }

    #[test]
    fn perturb_rotation_changes_angle_only() {
        let mut c = Circuit::new(2);
        c.h(0).rz(0.5, 1).cx(0, 1);
        let (buggy, rec) = inject(&c, ErrorKind::PerturbRotation(0.1), &mut rng(2)).unwrap();
        assert_eq!(rec.index, 1);
        match buggy.gates()[1].kind() {
            GateKind::Rz(t) => assert!((t - 0.6).abs() < 1e-12),
            k => panic!("{k:?}"),
        }
    }

    #[test]
    fn replace_single_qubit_gate_never_replaces_with_itself() {
        let mut c = Circuit::new(1);
        c.h(0);
        for seed in 0..20 {
            let (buggy, _) = inject(&c, ErrorKind::ReplaceSingleQubitGate, &mut rng(seed)).unwrap();
            assert!(!buggy.gates()[0].kind().approx_eq(&GateKind::H));
        }
    }

    #[test]
    fn insert_gate_grows_by_one() {
        let c = generators::bell();
        let (buggy, _) = inject(&c, ErrorKind::InsertSingleQubitGate, &mut rng(5)).unwrap();
        assert_eq!(buggy.len(), c.len() + 1);
    }

    #[test]
    fn inapplicable_kinds_are_reported() {
        let mut no_cx = Circuit::new(2);
        no_cx.h(0).t(1);
        let e = inject(&no_cx, ErrorKind::MisplaceCx, &mut rng(0)).unwrap_err();
        assert!(e.to_string().contains("no CX"));
        let e = inject(&no_cx, ErrorKind::PerturbRotation(0.1), &mut rng(0)).unwrap_err();
        assert!(e.to_string().contains("parameterized"));
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let c = generators::cuccaro_adder(2);
        let a = inject(&c, ErrorKind::MisplaceCx, &mut rng(7)).unwrap();
        let b = inject(&c, ErrorKind::MisplaceCx, &mut rng(7)).unwrap();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn inject_random_always_succeeds_on_real_circuits() {
        let c = generators::qft(4, true);
        for seed in 0..10 {
            let (buggy, rec) = inject_random(&c, &mut rng(seed)).unwrap();
            assert!(!rec.description.is_empty());
            // The vast majority of injections change the unitary; at minimum
            // the circuit structure changed.
            assert!(buggy != c || buggy.len() != c.len());
        }
    }

    #[test]
    fn misplace_needs_three_qubits() {
        let c = generators::bell();
        let e = inject(&c, ErrorKind::MisplaceCx, &mut rng(0)).unwrap_err();
        assert!(e.to_string().contains("3 qubits"));
    }
}
