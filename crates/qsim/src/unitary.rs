//! Building full unitaries column-by-column via simulation.
//!
//! Constructing all `2ⁿ` columns costs the same as the matrix-matrix route,
//! which is exactly the paper's point: *single* columns are cheap, the full
//! matrix is not. The builder exists for ground-truth comparisons and the
//! Fig. 1 reproduction.

use qcirc::Circuit;
use qnum::MatrixN;

use crate::Simulator;

/// Builds the full circuit unitary by simulating every basis state.
///
/// # Panics
///
/// Panics if the circuit has more than 12 qubits.
///
/// # Examples
///
/// ```
/// use qnum::MatrixN;
///
/// let mut c = qcirc::Circuit::new(2);
/// c.cx(0, 1).cx(0, 1);
/// assert!(qsim::unitary(&c).approx_eq(&MatrixN::identity(2)));
/// ```
#[must_use]
pub fn unitary(circuit: &Circuit) -> MatrixN {
    assert!(
        circuit.n_qubits() <= 12,
        "full unitaries limited to 12 qubits"
    );
    let sim = Simulator::new();
    let dim = 1usize << circuit.n_qubits();
    let mut u = MatrixN::zero(circuit.n_qubits());
    for col in 0..dim {
        let state = sim.run_basis(circuit, col as u64);
        for (row, amp) in state.amplitudes().iter().enumerate() {
            u.set(row, col, *amp);
        }
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::generators;

    #[test]
    fn matches_dense_reference() {
        for seed in 0..3 {
            let c = generators::random_clifford_t(4, 50, seed);
            assert!(unitary(&c).approx_eq(&qcirc::dense::unitary(&c)));
        }
    }

    #[test]
    fn columns_are_simulation_outputs() {
        let c = generators::qft(3, true);
        let u = unitary(&c);
        let sim = Simulator::new();
        for basis in 0..8u64 {
            let s = sim.run_basis(&c, basis);
            for (row, amp) in s.amplitudes().iter().enumerate() {
                assert!(u.entry(row, basis as usize).approx_eq(*amp));
            }
        }
    }

    #[test]
    fn unitaries_are_unitary() {
        let c = generators::supremacy_2d(2, 3, 6, 1);
        assert!(unitary(&c).is_unitary());
    }
}
