//! `check_qasm` — a command-line equivalence checker for OpenQASM files,
//! the user-facing tool the paper's flow powers.
//!
//! ```text
//! usage: check_qasm [options] <a.qasm> <b.qasm>
//!   --sims <r>        random simulations before the complete check (default 10)
//!   --batch <k>       probe stimuli in cache-hot batches of k (default 1;
//!                     verdict-neutral — outcomes are bit-identical per run)
//!   --seed <s>        RNG seed (default 0)
//!   --deadline <sec>  budget for the complete check (default unbounded)
//!   --backend sv|dd|stab  simulation backend (default sv; dd for > 24
//!                     qubits, stab for Clifford-dominated pairs)
//!   --scheme sequential|onetoone|proportional|gatecost
//!                     gate-application scheme of the alternating complete
//!                     check (default proportional)
//!   --peel            strip the shared Clifford prefix/suffix first
//!   --strict          require exact equality (no global-phase allowance)
//!   --sim-only        skip the complete check (report probably-equivalent)
//!   --csv             print a CSV row instead of prose
//! ```
//!
//! Exit code: 0 = equivalent (proven), 1 = not equivalent, 2 = probably
//! equivalent (unproven), 64 = usage/parse error.
//!
//! Run with `cargo run --release -p qcec-examples --bin check_qasm -- a.qasm b.qasm`.

use std::process::ExitCode;
use std::time::Duration;

use qcec::{ApplicationScheme, BackendKind, Config, Criterion, Fallback, Outcome};

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("check_qasm: {message}");
            ExitCode::from(64)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut config = Config::new();
    let mut csv = false;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sims" => {
                let v = args.next().ok_or("--sims needs a value")?;
                config = config.with_simulations(v.parse().map_err(|_| "bad --sims value")?);
            }
            "--batch" => {
                let v = args.next().ok_or("--batch needs a value")?;
                let k: usize = v.parse().map_err(|_| "bad --batch value")?;
                if k == 0 {
                    return Err("--batch needs at least 1".into());
                }
                config = config.with_batch_size(k);
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                config = config.with_seed(v.parse().map_err(|_| "bad --seed value")?);
            }
            "--deadline" => {
                let v = args.next().ok_or("--deadline needs a value")?;
                let secs: u64 = v.parse().map_err(|_| "bad --deadline value")?;
                config = config.with_deadline(Some(Duration::from_secs(secs)));
            }
            "--backend" => {
                let v = args.next().ok_or("--backend needs a value")?;
                config = config.with_backend(BackendKind::parse(&v)?);
            }
            "--scheme" => {
                let v = args.next().ok_or("--scheme needs a value")?;
                config = config.with_scheme(ApplicationScheme::parse(&v)?);
            }
            "--peel" => config = config.with_peel(true),
            "--strict" => config = config.with_criterion(Criterion::Strict),
            "--sim-only" => config = config.with_fallback(Fallback::None),
            "--csv" => csv = true,
            "--help" | "-h" => {
                println!(
                    "usage: check_qasm [options] <a.qasm> <b.qasm> (see --help header in source)"
                );
                return Ok(ExitCode::SUCCESS);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option '{other}'"));
            }
            file => files.push(file.to_string()),
        }
    }
    let [file_a, file_b] = files.as_slice() else {
        return Err("expected exactly two .qasm files (try --help)".into());
    };

    let g = load(file_a)?;
    let g_prime = load(file_b)?;
    // Widen the smaller register: trailing idle qubits are ancillas.
    let n = g.n_qubits().max(g_prime.n_qubits());
    let g = g.widened(n);
    let g_prime = g_prime.widened(n);

    // Statevector memory guard: beyond ~26 qubits suggest the DD backend.
    if config.backend == BackendKind::Statevector && n > 26 {
        return Err(format!(
            "{n} qubits is too large for the statevector backend; pass --backend dd \
             (or --backend stab for Clifford-dominated pairs)"
        ));
    }

    let result = qcec::check_equivalence(&g, &g_prime, &config).map_err(|e| e.to_string())?;
    if csv {
        let mut report = qcec::report::Report::new();
        report.push(
            format!("{file_a} vs {file_b}"),
            n,
            g.len(),
            g_prime.len(),
            result.clone(),
        );
        print!("{}", report.to_csv());
    } else {
        println!("G  = {file_a} ({} qubits, {} gates)", g.n_qubits(), g.len());
        println!(
            "G' = {file_b} ({} qubits, {} gates)",
            g_prime.n_qubits(),
            g_prime.len()
        );
        println!("{result}");
    }
    Ok(match result.outcome {
        Outcome::Equivalent | Outcome::EquivalentUpToGlobalPhase { .. } => ExitCode::SUCCESS,
        Outcome::NotEquivalent { .. } => ExitCode::from(1),
        Outcome::ProbablyEquivalent { .. } => ExitCode::from(2),
    })
}

fn load(path: &str) -> Result<qcirc::Circuit, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    if path.ends_with(".real") {
        qcirc::real::parse(&source).map_err(|e| format!("{path}: {e}"))
    } else {
        // Lenient parsing: real benchmark files end in measurements; the
        // equivalence check runs on the unitary prefix.
        let parsed = qcirc::qasm::parse_lenient(&source).map_err(|e| format!("{path}: {e}"))?;
        if !parsed.measurements.is_empty() {
            eprintln!(
                "note: {path}: stripped {} final measurement(s); checking the unitary part",
                parsed.measurements.len()
            );
        }
        for note in &parsed.skipped {
            eprintln!("note: {path}: {note}");
        }
        Ok(parsed.circuit)
    }
}
