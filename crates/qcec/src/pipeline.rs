//! Stage-by-stage verification of a design flow.
//!
//! The paper's motivation is that *every* design step (decompose → map →
//! optimize) must preserve functionality. This module runs the flow over
//! each consecutive pair of artifacts, stopping at the first proven
//! difference — which pinpoints the faulty *tool*, not just the faulty
//! output.

use qcirc::Circuit;

use crate::config::Config;
use crate::flow::{check_equivalence, FlowError};
use crate::outcome::FlowResult;

/// One verified design-flow stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageResult {
    /// Name of the artifact this stage produced.
    pub name: String,
    /// Verdict of checking this artifact against the previous one.
    pub result: FlowResult,
}

/// The report of [`verify_stages`].
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Results for the checked stages, in order. Stops after the first
    /// stage that proves non-equivalent.
    pub stages: Vec<StageResult>,
}

impl PipelineReport {
    /// Returns `true` if every checked stage is (at least probably)
    /// equivalence-preserving and none was proven different.
    #[must_use]
    pub fn all_preserved(&self) -> bool {
        self.stages
            .iter()
            .all(|s| !s.result.outcome.is_not_equivalent())
    }

    /// The first stage proven non-equivalent, if any — the broken tool.
    #[must_use]
    pub fn first_broken_stage(&self) -> Option<&StageResult> {
        self.stages
            .iter()
            .find(|s| s.result.outcome.is_not_equivalent())
    }
}

impl std::fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for s in &self.stages {
            writeln!(f, "{:<24} {}", s.name, s.result)?;
        }
        Ok(())
    }
}

/// Verifies a chain of design-flow artifacts pairwise:
/// `stages\[0\] ≡ stages\[1\]`, `stages\[1\] ≡ stages\[2\]`, … Registers of
/// different sizes are widened automatically (ancilla-adding stages).
/// Checking stops after the first proven non-equivalence.
///
/// # Errors
///
/// Returns [`FlowError`] if a check cannot run (e.g. DD simulation
/// overflow) — *not* for non-equivalence, which is a result.
///
/// # Panics
///
/// Panics if fewer than two stages are given.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), qcec::FlowError> {
/// use qcec::pipeline::verify_stages;
///
/// let algorithm = qcirc::generators::qft(4, true);
/// let lowered = qcirc::decompose::decompose_to_cx_and_single_qubit(&algorithm);
/// let optimized = qcirc::optimize::optimize(&lowered);
/// let report = verify_stages(
///     &[
///         ("algorithm", algorithm),
///         ("decomposed", lowered),
///         ("optimized", optimized),
///     ],
///     &qcec::Config::default(),
/// )?;
/// assert!(report.all_preserved());
/// # Ok(())
/// # }
/// ```
pub fn verify_stages(
    stages: &[(&str, Circuit)],
    config: &Config,
) -> Result<PipelineReport, FlowError> {
    assert!(stages.len() >= 2, "a pipeline needs at least two stages");
    let mut results = Vec::with_capacity(stages.len() - 1);
    for window in stages.windows(2) {
        let (_, ref before) = window[0];
        let (after_name, ref after) = window[1];
        let n = before.n_qubits().max(after.n_qubits());
        let check_start = std::time::Instant::now();
        let result = check_equivalence(&before.widened(n), &after.widened(n), config)?;
        if let Some(sink) = &config.event_sink {
            sink.record(crate::scheduler::RunEvent::PipelineStageChecked {
                name: after_name.to_string(),
                wall_time: check_start.elapsed(),
            });
        }
        let broken = result.outcome.is_not_equivalent();
        results.push(StageResult {
            name: after_name.to_string(),
            result,
        });
        if broken {
            break;
        }
    }
    Ok(PipelineReport { stages: results })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::generators;

    #[test]
    fn healthy_pipeline_passes_every_stage() {
        let algorithm = generators::grover(4, 5, 2);
        let lowered = qcirc::decompose::decompose_with_dirty_ancillas(&algorithm);
        let mapped = qcirc::mapping::route_or_panic(
            &lowered,
            &qcirc::mapping::CouplingMap::linear(lowered.n_qubits()),
        )
        .circuit;
        let optimized = qcirc::optimize::optimize(&mapped);
        let report = verify_stages(
            &[
                ("algorithm", algorithm),
                ("decomposed", lowered),
                ("mapped", mapped),
                ("optimized", optimized),
            ],
            &Config::default(),
        )
        .unwrap();
        assert!(report.all_preserved(), "{report}");
        assert_eq!(report.stages.len(), 3);
        assert!(report.first_broken_stage().is_none());
    }

    #[test]
    fn broken_stage_is_pinpointed_and_stops_the_pipeline() {
        let a = generators::qft(4, true);
        let b = qcirc::optimize::optimize(&a);
        let mut c = b.clone();
        c.x(2); // the "broken optimizer" output
        let d = c.clone(); // a later stage that would pass
        let report = verify_stages(
            &[
                ("algorithm", a),
                ("optimized", b),
                ("broken", c),
                ("later", d),
            ],
            &Config::default(),
        )
        .unwrap();
        assert!(!report.all_preserved());
        let broken = report.first_broken_stage().expect("stage found");
        assert_eq!(broken.name, "broken");
        // Checking stopped at the broken stage: "later" was never compared.
        assert_eq!(report.stages.len(), 2);
    }

    #[test]
    fn pipeline_emits_one_event_per_checked_stage() {
        use crate::scheduler::{CollectingSink, RunEvent};
        use std::sync::Arc;
        let a = generators::qft(3, true);
        let b = qcirc::optimize::optimize(&a);
        let c = qcirc::decompose::decompose_to_cx_and_single_qubit(&b);
        let sink = Arc::new(CollectingSink::new());
        let config = Config::default().with_event_sink(sink.clone());
        let report = verify_stages(&[("alg", a), ("opt", b), ("lowered", c)], &config).unwrap();
        assert_eq!(report.stages.len(), 2);
        let names: Vec<String> = sink
            .events()
            .into_iter()
            .filter_map(|e| match e {
                RunEvent::PipelineStageChecked { name, .. } => Some(name),
                _ => None,
            })
            .collect();
        assert_eq!(names, ["opt", "lowered"]);
    }

    #[test]
    fn register_widening_is_automatic() {
        let small = generators::ghz(3);
        let wide = small.widened(5);
        let report = verify_stages(&[("a", small), ("b", wide)], &Config::default()).unwrap();
        assert!(report.all_preserved());
    }

    #[test]
    #[should_panic(expected = "at least two stages")]
    fn single_stage_rejected() {
        let g = generators::ghz(2);
        let _ = verify_stages(&[("only", g)], &Config::default());
    }
}
