//! Property-based tests for the mutator library: every mutator, for any
//! seed, produces a syntactically valid circuit with the promised arity
//! change, is deterministic per seed, and survives the OpenQASM
//! writer/parser round-trip without changing its semantics.

use proptest::prelude::*;
use qcirc::{dense, qasm, Circuit};
use qfault::{registry, MutationKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random circuit drawing from a palette wide enough that every mutator
/// has applicable sites: rotations (PerturbAngle), controlled gates
/// (controls/targets mutators), and non-commuting neighbours.
fn random_circuit(n_qubits: usize, gates: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::with_name(n_qubits, format!("prop_{n_qubits}_{gates}_{seed}"));
    for _ in 0..gates {
        let q = rng.gen_range(0..n_qubits);
        match rng.gen_range(0..8u32) {
            0 => c.h(q),
            1 => c.t(q),
            2 => c.rz(rng.gen_range(-3.0..3.0), q),
            3 => c.rx(rng.gen_range(-3.0..3.0), q),
            4 | 5 => {
                let p = (q + 1 + rng.gen_range(0..n_qubits - 1)) % n_qubits;
                c.cx(q, p)
            }
            6 => {
                let p = (q + 1 + rng.gen_range(0..n_qubits - 1)) % n_qubits;
                c.cp(rng.gen_range(-3.0..3.0), q, p)
            }
            _ => {
                let p = (q + 1 + rng.gen_range(0..n_qubits - 1)) % n_qubits;
                c.swap(q, p)
            }
        };
    }
    c
}

/// Checks the structural invariants every mutated circuit must satisfy.
fn assert_valid(original: &Circuit, mutated: &Circuit, kind: MutationKind) {
    assert_eq!(
        mutated.n_qubits(),
        original.n_qubits(),
        "{kind}: register size must be preserved"
    );
    for g in mutated.gates() {
        assert!(
            g.max_qubit() < mutated.n_qubits(),
            "{kind}: gate {g} exceeds the register"
        );
        let mut qs: Vec<usize> = g.qubits().collect();
        let len = qs.len();
        qs.sort_unstable();
        qs.dedup();
        assert_eq!(qs.len(), len, "{kind}: gate {g} repeats a qubit");
    }
    let expected_len = match kind {
        MutationKind::RemoveGate => original.len() - 1,
        MutationKind::AddGate => original.len() + 1,
        _ => original.len(),
    };
    assert_eq!(mutated.len(), expected_len, "{kind}: wrong gate count");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mutants_are_valid_and_arity_preserving(
        n in 2usize..6,
        gates in 4usize..24,
        circuit_seed in 0u64..1000,
        mutator_seed in 0u64..1000,
    ) {
        let c = random_circuit(n, gates, circuit_seed);
        for mutator in registry(0.2) {
            let mut rng = StdRng::seed_from_u64(mutator_seed);
            if let Ok((mutated, record)) = mutator.apply(&c, &mut rng) {
                assert_valid(&c, &mutated, mutator.kind());
                prop_assert!(record.site <= c.len(), "{}: site out of range", record);
            }
        }
    }

    #[test]
    fn mutants_round_trip_through_qasm(
        n in 2usize..5,
        gates in 4usize..16,
        circuit_seed in 0u64..500,
        mutator_seed in 0u64..500,
    ) {
        let c = random_circuit(n, gates, circuit_seed);
        for mutator in registry(0.2) {
            let mut rng = StdRng::seed_from_u64(mutator_seed);
            if let Ok((mutated, record)) = mutator.apply(&c, &mut rng) {
                let src = qasm::write(&mutated);
                let reparsed = qasm::parse(&src)
                    .unwrap_or_else(|e| panic!("{record}: writer output failed to parse: {e}"));
                prop_assert_eq!(reparsed.n_qubits(), mutated.n_qubits());
                // The writer may lower exotic gates (multi-controlled
                // rotations) to elementary form, so compare semantics,
                // not structure.
                prop_assert!(
                    dense::unitary(&reparsed).approx_eq_up_to_phase(&dense::unitary(&mutated)),
                    "{}: QASM round-trip changed the unitary", record
                );
            }
        }
    }

    #[test]
    fn mutators_are_pure_functions_of_seed(
        n in 2usize..6,
        gates in 4usize..20,
        circuit_seed in 0u64..1000,
        mutator_seed in 0u64..1000,
    ) {
        let c = random_circuit(n, gates, circuit_seed);
        for mutator in registry(0.2) {
            let a = mutator.apply(&c, &mut StdRng::seed_from_u64(mutator_seed));
            let b = mutator.apply(&c, &mut StdRng::seed_from_u64(mutator_seed));
            prop_assert_eq!(a, b, "{:?} is not deterministic", mutator.kind());
        }
    }
}
