//! Cross-scheme agreement: every gate-application scheme of the
//! alternating complete check must reach the same verdict.
//!
//! The scheme only decides *in which order* the gates of `G` and `G'⁻¹`
//! are multiplied into the working diagram — the final product
//! `U'† · U` is the same matrix regardless, so the verdict class and
//! (for simulation counterexamples) the decisive run index and witness
//! stimulus must be identical across schemes and scheduler widths. Any
//! divergence here is a scheme-policy bug, not noise.

use proptest::prelude::*;
use qcec::{check_equivalence, ApplicationScheme, Config, Fallback, Outcome, Stimulus};
use qcirc::{generators, Circuit};

/// The verdict class plus (for simulation counterexamples) the decisive
/// run index and stimulus — everything that must match across schemes.
#[derive(Debug, Clone, PartialEq)]
enum VerdictShape {
    Equivalent,
    NotEquivalentAt(usize, Stimulus),
    NotEquivalentByCompleteCheck,
    ProbablyEquivalent,
}

fn shape(outcome: &Outcome) -> VerdictShape {
    match outcome {
        Outcome::Equivalent | Outcome::EquivalentUpToGlobalPhase { .. } => VerdictShape::Equivalent,
        Outcome::NotEquivalent {
            counterexample: Some(ce),
        } => VerdictShape::NotEquivalentAt(ce.run, ce.stimulus.clone()),
        Outcome::NotEquivalent {
            counterexample: None,
        } => VerdictShape::NotEquivalentByCompleteCheck,
        Outcome::ProbablyEquivalent { .. } => VerdictShape::ProbablyEquivalent,
    }
}

/// Checks one pair under all four schemes across 1/2/8 scheduler threads
/// and asserts every run produces the same verdict shape, which is then
/// returned so callers can pin the expected class.
fn assert_schemes_agree(name: &str, g: &Circuit, g_prime: &Circuit, base: &Config) -> VerdictShape {
    let mut reference: Option<VerdictShape> = None;
    for threads in [1usize, 2, 8] {
        for scheme in ApplicationScheme::ALL {
            let config = base.clone().with_threads(threads).with_scheme(scheme);
            let result = check_equivalence(g, g_prime, &config)
                .unwrap_or_else(|e| panic!("{name}: flow failed ({e})"));
            let got = shape(&result.outcome);
            match &reference {
                None => reference = Some(got),
                Some(expected) => assert_eq!(
                    expected, &got,
                    "{name}: {scheme} × {threads} threads diverged"
                ),
            }
        }
    }
    reference.expect("at least one scheme ran")
}

fn escapee_pairs() -> Vec<(String, Circuit, Circuit, u64)> {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/escapees");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("escapee fixture directory")
        .map(|e| e.unwrap().path())
        .filter(|p| p.to_string_lossy().ends_with(".golden.qasm"))
        .collect();
    entries.sort();
    entries
        .into_iter()
        .map(|golden_path| {
            let name = golden_path
                .file_name()
                .unwrap()
                .to_string_lossy()
                .trim_end_matches(".golden.qasm")
                .to_string();
            let faulty_src = std::fs::read_to_string(
                golden_path
                    .to_string_lossy()
                    .replace(".golden.qasm", ".faulty.qasm"),
            )
            .unwrap();
            let seed: u64 = faulty_src
                .lines()
                .find_map(|l| l.strip_prefix("// escapes-seeds: "))
                .and_then(|s| s.split(',').next())
                .and_then(|s| s.trim().parse().ok())
                .expect("escapes-seeds header");
            let golden = qcirc::qasm::parse(&std::fs::read_to_string(&golden_path).unwrap());
            (
                name,
                golden.unwrap(),
                qcirc::qasm::parse(&faulty_src).unwrap(),
                seed,
            )
        })
        .collect()
}

/// Escapee fixtures under their recorded escaping seeds: basis stimuli
/// miss the fault, so with the fallback enabled the verdict comes from the
/// alternating check itself — the exact code the schemes steer. All four
/// must convict by complete check; with stabilizer stimuli all four must
/// report the identical decisive run and witness.
#[test]
fn schemes_agree_on_every_escapee_fixture() {
    use qcec::StimulusStrategy;
    for (name, golden, faulty, seed) in escapee_pairs() {
        let through_fallback = Config::new().with_simulations(10).with_seed(seed);
        let got = assert_schemes_agree(&name, &golden, &faulty, &through_fallback);
        assert_eq!(
            got,
            VerdictShape::NotEquivalentByCompleteCheck,
            "{name}: the escapee must be convicted by the alternating check"
        );
        let stabilizer = through_fallback
            .clone()
            .with_stimuli(StimulusStrategy::Stabilizer);
        let got = assert_schemes_agree(
            &format!("{name} [stabilizer]"),
            &golden,
            &faulty,
            &stabilizer,
        );
        assert!(
            matches!(got, VerdictShape::NotEquivalentAt(..)),
            "{name}: stabilizer stimuli must catch the escapee in simulation, got {got:?}"
        );
    }
}

/// Equivalent compiled pairs with very different per-side gate counts —
/// the regime where the scheme policies genuinely diverge in application
/// order — still agree on full equivalence, with the simulation stage
/// skipped entirely so the alternating check alone decides.
#[test]
fn schemes_agree_on_lopsided_equivalent_pairs() {
    let adder = generators::cuccaro_adder(2);
    let lowered = qcirc::decompose::decompose_with_dirty_ancillas(&adder);
    let adder = adder.widened(lowered.n_qubits());

    let qft = generators::qft(6, true);
    let routed =
        qcirc::mapping::route_or_panic(&qft, &qcirc::mapping::CouplingMap::linear(6)).circuit;

    let complete_only = Config::new().with_simulations(0);
    for (name, g, g_prime) in [
        ("adder vs decomposed", &adder, &lowered),
        ("qft vs routed", &qft, &routed),
    ] {
        let got = assert_schemes_agree(name, g, g_prime, &complete_only);
        assert_eq!(got, VerdictShape::Equivalent, "{name}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Generated pairs — an equivalent optimization and a seeded injected
    /// fault — keep all four schemes in lockstep across scheduler widths.
    #[test]
    fn schemes_agree_on_generated_pairs(n in 3usize..6, seed in any::<u64>()) {
        let c = generators::random_clifford_t(n, 50, seed);
        let optimized = qcirc::optimize::optimize(&c);
        let base = Config::new().with_seed(seed);
        let got = assert_schemes_agree("optimized pair", &c, &optimized, &base);
        prop_assert_eq!(got, VerdictShape::Equivalent);
        let mut buggy = c.clone();
        buggy.x((seed % n as u64) as usize);
        let got = assert_schemes_agree("injected fault", &c, &buggy, &base);
        prop_assert!(
            !matches!(got, VerdictShape::Equivalent | VerdictShape::ProbablyEquivalent),
            "an injected X must be detected, got {:?}", got
        );
    }

    /// With no simulations and the fallback forced, the schemes are the
    /// *only* code path distinguishing the runs — generated faults must
    /// still convict identically by complete check.
    #[test]
    fn schemes_agree_with_complete_check_alone(n in 3usize..6, seed in any::<u64>()) {
        let c = generators::random_clifford_t(n, 40, seed);
        let mut buggy = c.clone();
        buggy.t((seed % n as u64) as usize);
        let complete_only = Config::new()
            .with_simulations(0)
            .with_fallback(Fallback::Alternating)
            .with_seed(seed);
        let got = assert_schemes_agree("complete-check fault", &c, &buggy, &complete_only);
        prop_assert_eq!(got, VerdictShape::NotEquivalentByCompleteCheck);
    }
}
