//! Recursive-descent parser turning OpenQASM 2.0 source into a [`Circuit`].
//!
//! Supported language subset (everything the paper's benchmark circuits
//! need):
//!
//! * `OPENQASM 2.0;` header and `include "qelib1.inc";` (the standard
//!   library gates are built in; other includes are rejected).
//! * `qreg`/`creg` declarations; multiple quantum registers are flattened
//!   into one index space in declaration order.
//! * The `qelib1` gate set, applied to indexed qubits or broadcast over whole
//!   registers.
//! * User `gate` definitions with parameters, expanded at application time
//!   (hierarchical definitions are fine).
//! * Parameter expressions with `+ - * / ^`, unary minus, parentheses, `pi`,
//!   and the functions `sin cos tan exp ln sqrt`.
//! * `barrier` (ignored); `measure`/`reset`/`if` are rejected by [`parse`]
//!   (the equivalence checker works on unitary circuits) but tolerated by
//!   [`parse_lenient`], which records measurements and skips the rest.

use std::collections::HashMap;
use std::fmt;

use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind};
use crate::qasm::lexer::{tokenize, LexError, Token, TokenKind};

/// Error produced when parsing OpenQASM source fails.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseQasmError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line (0 when the input ended unexpectedly).
    pub line: usize,
}

impl fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QASM parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseQasmError {}

impl From<LexError> for ParseQasmError {
    fn from(e: LexError) -> Self {
        ParseQasmError {
            message: e.message,
            line: e.line,
        }
    }
}

/// Parses OpenQASM 2.0 source text into a [`Circuit`].
///
/// # Errors
///
/// Returns [`ParseQasmError`] on lexical errors, syntax errors, references to
/// undeclared registers or gates, and uses of unsupported features
/// (`measure`, `reset`, `if`, non-standard includes).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), qcirc::qasm::ParseQasmError> {
/// let src = r#"
/// OPENQASM 2.0;
/// include "qelib1.inc";
/// qreg q[2];
/// h q[0];
/// cx q[0], q[1];
/// "#;
/// let c = qcirc::qasm::parse(src)?;
/// assert_eq!(c.n_qubits(), 2);
/// assert_eq!(c.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse(source: &str) -> Result<Circuit, ParseQasmError> {
    let tokens = tokenize(source)?;
    Ok(Parser::new(tokens, false).parse_program()?.circuit)
}

/// The result of [`parse_lenient`]: the unitary circuit plus everything the
/// lenient mode stripped.
#[derive(Debug, Clone, PartialEq)]
pub struct LenientParse {
    /// The unitary part of the program.
    pub circuit: Circuit,
    /// Final measurements `(qubit, classical bit)`, in program order.
    pub measurements: Vec<(usize, usize)>,
    /// Human-readable descriptions of skipped non-unitary statements
    /// (`reset`, `if`, …).
    pub skipped: Vec<String>,
}

/// Parses OpenQASM 2.0 leniently: `measure` statements are recorded (not
/// rejected), and other non-unitary statements (`reset`, `if`) are skipped
/// with a note in [`LenientParse::skipped`].
///
/// This is the entry point for real-world benchmark files, which typically
/// end in a measurement layer; equivalence checking operates on the unitary
/// prefix.
///
/// # Errors
///
/// Returns [`ParseQasmError`] on lexical/syntax errors and unknown gates —
/// lenient mode forgives non-unitary *statements*, not malformed input.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), qcirc::qasm::ParseQasmError> {
/// let src = "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\nmeasure q -> c;";
/// let parsed = qcirc::qasm::parse_lenient(src)?;
/// assert_eq!(parsed.circuit.len(), 1);
/// assert_eq!(parsed.measurements, vec![(0, 0), (1, 1)]);
/// # Ok(())
/// # }
/// ```
pub fn parse_lenient(source: &str) -> Result<LenientParse, ParseQasmError> {
    let tokens = tokenize(source)?;
    Parser::new(tokens, true).parse_program()
}

/// A user-defined gate body: formal parameter names, formal qubit names, and
/// the raw statements to expand.
#[derive(Debug, Clone)]
struct GateDef {
    params: Vec<String>,
    qubits: Vec<String>,
    body: Vec<GateCall>,
}

/// One gate application inside a gate body (operands are formal names).
#[derive(Debug, Clone)]
struct GateCall {
    name: String,
    args: Vec<Expr>,
    operands: Vec<String>,
    line: usize,
}

/// Parameter expression AST.
#[derive(Debug, Clone)]
enum Expr {
    Num(f64),
    Pi,
    Param(String),
    Neg(Box<Expr>),
    Bin(char, Box<Expr>, Box<Expr>),
    Fun(String, Box<Expr>),
}

impl Expr {
    fn eval(&self, env: &HashMap<String, f64>) -> Result<f64, String> {
        Ok(match self {
            Expr::Num(v) => *v,
            Expr::Pi => std::f64::consts::PI,
            Expr::Param(name) => *env
                .get(name)
                .ok_or_else(|| format!("unknown parameter '{name}'"))?,
            Expr::Neg(e) => -e.eval(env)?,
            Expr::Bin(op, a, b) => {
                let (a, b) = (a.eval(env)?, b.eval(env)?);
                match op {
                    '+' => a + b,
                    '-' => a - b,
                    '*' => a * b,
                    '/' => a / b,
                    '^' => a.powf(b),
                    _ => unreachable!("parser only produces + - * / ^"),
                }
            }
            Expr::Fun(name, e) => {
                let v = e.eval(env)?;
                match name.as_str() {
                    "sin" => v.sin(),
                    "cos" => v.cos(),
                    "tan" => v.tan(),
                    "exp" => v.exp(),
                    "ln" => v.ln(),
                    "sqrt" => v.sqrt(),
                    other => return Err(format!("unknown function '{other}'")),
                }
            }
        })
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Flattened quantum registers: name → (offset, size).
    qregs: HashMap<String, (usize, usize)>,
    qreg_order: Vec<String>,
    n_qubits: usize,
    /// Flattened classical registers (lenient mode): name → (offset, size).
    cregs: HashMap<String, (usize, usize)>,
    n_clbits: usize,
    gate_defs: HashMap<String, GateDef>,
    circuit_gates: Vec<Gate>,
    lenient: bool,
    measurements: Vec<(usize, usize)>,
    skipped: Vec<String>,
}

impl Parser {
    fn new(tokens: Vec<Token>, lenient: bool) -> Self {
        Parser {
            tokens,
            pos: 0,
            qregs: HashMap::new(),
            qreg_order: Vec::new(),
            n_qubits: 0,
            cregs: HashMap::new(),
            n_clbits: 0,
            gate_defs: HashMap::new(),
            circuit_gates: Vec::new(),
            lenient,
            measurements: Vec::new(),
            skipped: Vec::new(),
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseQasmError {
        ParseQasmError {
            message: message.into(),
            line: self
                .tokens
                .get(self.pos.min(self.tokens.len().saturating_sub(1)))
                .map_or(0, |t| t.line),
        }
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn next(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseQasmError> {
        match self.next() {
            Some(ref k) if k == kind => Ok(()),
            Some(other) => Err(self.error(format!("expected '{kind}', found '{other}'"))),
            None => Err(self.error(format!("expected '{kind}', found end of input"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseQasmError> {
        match self.next() {
            Some(TokenKind::Ident(s)) => Ok(s),
            Some(other) => Err(self.error(format!("expected identifier, found '{other}'"))),
            None => Err(self.error("expected identifier, found end of input")),
        }
    }

    fn expect_int(&mut self) -> Result<u64, ParseQasmError> {
        match self.next() {
            Some(TokenKind::Int(v)) => Ok(v),
            Some(other) => Err(self.error(format!("expected integer, found '{other}'"))),
            None => Err(self.error("expected integer, found end of input")),
        }
    }

    fn parse_program(mut self) -> Result<LenientParse, ParseQasmError> {
        // Optional header.
        if matches!(self.peek(), Some(TokenKind::Ident(s)) if s == "OPENQASM") {
            self.next();
            match self.next() {
                Some(TokenKind::Real(_)) | Some(TokenKind::Int(_)) => {}
                _ => return Err(self.error("expected version number after OPENQASM")),
            }
            self.expect(&TokenKind::Semicolon)?;
        }
        while self.peek().is_some() {
            self.parse_statement()?;
        }
        if self.n_qubits == 0 {
            return Err(ParseQasmError {
                message: "no quantum register declared".into(),
                line: 0,
            });
        }
        let mut circuit = Circuit::new(self.n_qubits);
        for g in self.circuit_gates {
            circuit.try_push(g).map_err(|e| ParseQasmError {
                message: e.to_string(),
                line: 0,
            })?;
        }
        Ok(LenientParse {
            circuit,
            measurements: self.measurements,
            skipped: self.skipped,
        })
    }

    fn parse_statement(&mut self) -> Result<(), ParseQasmError> {
        let head = match self.peek() {
            Some(TokenKind::Ident(s)) => s.clone(),
            Some(other) => return Err(self.error(format!("expected statement, found '{other}'"))),
            None => return Ok(()),
        };
        match head.as_str() {
            "include" => {
                self.next();
                match self.next() {
                    Some(TokenKind::Str(path)) if path == "qelib1.inc" => {}
                    Some(TokenKind::Str(path)) => {
                        return Err(self.error(format!(
                            "only \"qelib1.inc\" is supported as include, found \"{path}\""
                        )))
                    }
                    _ => return Err(self.error("expected string after include")),
                }
                self.expect(&TokenKind::Semicolon)
            }
            "qreg" => {
                self.next();
                let name = self.expect_ident()?;
                self.expect(&TokenKind::LBracket)?;
                let size = self.expect_int()? as usize;
                self.expect(&TokenKind::RBracket)?;
                self.expect(&TokenKind::Semicolon)?;
                if self.qregs.contains_key(&name) {
                    return Err(self.error(format!("register '{name}' declared twice")));
                }
                self.qregs.insert(name.clone(), (self.n_qubits, size));
                self.qreg_order.push(name);
                self.n_qubits += size;
                Ok(())
            }
            "creg" => {
                // Classical registers are recorded (for lenient-mode
                // measurement bookkeeping) but carry no unitary semantics.
                self.next();
                let name = self.expect_ident()?;
                self.expect(&TokenKind::LBracket)?;
                let size = self.expect_int()? as usize;
                self.expect(&TokenKind::RBracket)?;
                self.expect(&TokenKind::Semicolon)?;
                self.cregs.insert(name, (self.n_clbits, size));
                self.n_clbits += size;
                Ok(())
            }
            "gate" => self.parse_gate_def(),
            "barrier" => {
                // Skip to the semicolon; barriers carry no unitary semantics.
                while let Some(k) = self.next() {
                    if k == TokenKind::Semicolon {
                        break;
                    }
                }
                Ok(())
            }
            "measure" if self.lenient => self.parse_measure(),
            "reset" | "if" if self.lenient => {
                let line = self.tokens.get(self.pos).map_or(0, |t| t.line);
                let mut text = String::new();
                while let Some(k) = self.next() {
                    if k == TokenKind::Semicolon {
                        break;
                    }
                    text.push_str(&k.to_string());
                    text.push(' ');
                }
                self.skipped
                    .push(format!("line {line}: skipped non-unitary '{}'", text.trim_end()));
                Ok(())
            }
            "measure" | "reset" | "if" | "opaque" => {
                Err(self.error(format!("'{head}' is not supported: equivalence checking operates on the unitary (measurement-free) part of circuits; use parse_lenient to strip measurements")))
            }
            _ => {
                let call = self.parse_gate_call()?;
                let env = HashMap::new();
                self.apply_call(&call, &env, &HashMap::new())
            }
        }
    }

    /// Parses `measure q[i] -> c[j];` or the whole-register broadcast
    /// `measure q -> c;`, recording the `(qubit, clbit)` pairs.
    fn parse_measure(&mut self) -> Result<(), ParseQasmError> {
        self.next(); // 'measure'
        let (q_name, q_idx) = self.parse_indexed_operand()?;
        self.expect(&TokenKind::Arrow)?;
        let (c_name, c_idx) = self.parse_indexed_operand()?;
        self.expect(&TokenKind::Semicolon)?;
        let &(q_off, q_size) = self
            .qregs
            .get(&q_name)
            .ok_or_else(|| self.error(format!("unknown quantum register '{q_name}'")))?;
        let &(c_off, c_size) = self
            .cregs
            .get(&c_name)
            .ok_or_else(|| self.error(format!("unknown classical register '{c_name}'")))?;
        match (q_idx, c_idx) {
            (Some(qi), Some(ci)) => {
                if qi >= q_size || ci >= c_size {
                    return Err(self.error("measurement index out of range".to_string()));
                }
                self.measurements.push((q_off + qi, c_off + ci));
            }
            (None, None) => {
                if q_size != c_size {
                    return Err(
                        self.error("broadcast measurement needs equal register sizes".to_string())
                    );
                }
                for i in 0..q_size {
                    self.measurements.push((q_off + i, c_off + i));
                }
            }
            _ => {
                return Err(
                    self.error("measurement must be fully indexed or fully broadcast".to_string())
                )
            }
        }
        Ok(())
    }

    /// Parses `name` or `name[idx]`, returning the raw parts.
    fn parse_indexed_operand(&mut self) -> Result<(String, Option<usize>), ParseQasmError> {
        let name = self.expect_ident()?;
        if matches!(self.peek(), Some(TokenKind::LBracket)) {
            self.next();
            let idx = self.expect_int()? as usize;
            self.expect(&TokenKind::RBracket)?;
            Ok((name, Some(idx)))
        } else {
            Ok((name, None))
        }
    }

    fn parse_gate_def(&mut self) -> Result<(), ParseQasmError> {
        self.next(); // 'gate'
        let name = self.expect_ident()?;
        let mut params = Vec::new();
        if matches!(self.peek(), Some(TokenKind::LParen)) {
            self.next();
            if !matches!(self.peek(), Some(TokenKind::RParen)) {
                loop {
                    params.push(self.expect_ident()?);
                    match self.next() {
                        Some(TokenKind::Comma) => continue,
                        Some(TokenKind::RParen) => break,
                        _ => return Err(self.error("expected ',' or ')' in parameter list")),
                    }
                }
            } else {
                self.next();
            }
        }
        let mut qubits = Vec::new();
        loop {
            qubits.push(self.expect_ident()?);
            match self.peek() {
                Some(TokenKind::Comma) => {
                    self.next();
                }
                Some(TokenKind::LBrace) => break,
                other => {
                    let msg = format!("expected ',' or '{{' in gate declaration, found {other:?}");
                    return Err(self.error(msg));
                }
            }
        }
        self.expect(&TokenKind::LBrace)?;
        let mut body = Vec::new();
        while !matches!(self.peek(), Some(TokenKind::RBrace)) {
            if self.peek().is_none() {
                return Err(self.error("unterminated gate body"));
            }
            if matches!(self.peek(), Some(TokenKind::Ident(s)) if s == "barrier") {
                while let Some(k) = self.next() {
                    if k == TokenKind::Semicolon {
                        break;
                    }
                }
                continue;
            }
            body.push(self.parse_gate_call()?);
        }
        self.expect(&TokenKind::RBrace)?;
        self.gate_defs.insert(
            name,
            GateDef {
                params,
                qubits,
                body,
            },
        );
        Ok(())
    }

    /// Parses `name(exprs)? operand (, operand)* ;` where an operand is an
    /// identifier optionally followed by `[int]` (the index is folded into
    /// the operand string as `name[idx]`).
    fn parse_gate_call(&mut self) -> Result<GateCall, ParseQasmError> {
        let line = self.tokens.get(self.pos).map_or(0, |t| t.line);
        let name = self.expect_ident()?;
        let mut args = Vec::new();
        if matches!(self.peek(), Some(TokenKind::LParen)) {
            self.next();
            if !matches!(self.peek(), Some(TokenKind::RParen)) {
                loop {
                    args.push(self.parse_expr()?);
                    match self.next() {
                        Some(TokenKind::Comma) => continue,
                        Some(TokenKind::RParen) => break,
                        _ => return Err(self.error("expected ',' or ')' in argument list")),
                    }
                }
            } else {
                self.next();
            }
        }
        let mut operands = Vec::new();
        loop {
            let base = self.expect_ident()?;
            let operand = if matches!(self.peek(), Some(TokenKind::LBracket)) {
                self.next();
                let idx = self.expect_int()?;
                self.expect(&TokenKind::RBracket)?;
                format!("{base}[{idx}]")
            } else {
                base
            };
            operands.push(operand);
            match self.next() {
                Some(TokenKind::Comma) => continue,
                Some(TokenKind::Semicolon) => break,
                other => {
                    return Err(self.error(format!(
                        "expected ',' or ';' after gate operand, found {other:?}"
                    )))
                }
            }
        }
        Ok(GateCall {
            name,
            args,
            operands,
            line,
        })
    }

    // ---- expression parsing (precedence climbing) -------------------------

    fn parse_expr(&mut self) -> Result<Expr, ParseQasmError> {
        self.parse_additive()
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseQasmError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            match self.peek() {
                Some(TokenKind::Plus) => {
                    self.next();
                    let rhs = self.parse_multiplicative()?;
                    lhs = Expr::Bin('+', Box::new(lhs), Box::new(rhs));
                }
                Some(TokenKind::Minus) => {
                    self.next();
                    let rhs = self.parse_multiplicative()?;
                    lhs = Expr::Bin('-', Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseQasmError> {
        let mut lhs = self.parse_power()?;
        loop {
            match self.peek() {
                Some(TokenKind::Star) => {
                    self.next();
                    let rhs = self.parse_power()?;
                    lhs = Expr::Bin('*', Box::new(lhs), Box::new(rhs));
                }
                Some(TokenKind::Slash) => {
                    self.next();
                    let rhs = self.parse_power()?;
                    lhs = Expr::Bin('/', Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_power(&mut self) -> Result<Expr, ParseQasmError> {
        let base = self.parse_unary()?;
        if matches!(self.peek(), Some(TokenKind::Caret)) {
            self.next();
            let exp = self.parse_power()?; // right associative
            return Ok(Expr::Bin('^', Box::new(base), Box::new(exp)));
        }
        Ok(base)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseQasmError> {
        if matches!(self.peek(), Some(TokenKind::Minus)) {
            self.next();
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        self.parse_atom()
    }

    fn parse_atom(&mut self) -> Result<Expr, ParseQasmError> {
        match self.next() {
            Some(TokenKind::Int(v)) => Ok(Expr::Num(v as f64)),
            Some(TokenKind::Real(v)) => Ok(Expr::Num(v)),
            Some(TokenKind::LParen) => {
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            Some(TokenKind::Ident(s)) => {
                if s == "pi" {
                    return Ok(Expr::Pi);
                }
                if matches!(self.peek(), Some(TokenKind::LParen))
                    && ["sin", "cos", "tan", "exp", "ln", "sqrt"].contains(&s.as_str())
                {
                    self.next();
                    let e = self.parse_expr()?;
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::Fun(s, Box::new(e)));
                }
                Ok(Expr::Param(s))
            }
            other => Err(self.error(format!("expected expression, found {other:?}"))),
        }
    }

    // ---- gate application ---------------------------------------------------

    /// Resolves an operand string to concrete qubit indices.
    ///
    /// `formal_env` maps formal gate-body qubit names to concrete indices;
    /// at top level it is empty and names refer to registers.
    fn resolve_operand(
        &self,
        operand: &str,
        formal_env: &HashMap<String, usize>,
    ) -> Result<Operand, ParseQasmError> {
        if let Some(&q) = formal_env.get(operand) {
            return Ok(Operand::Single(q));
        }
        if let Some(idx_start) = operand.find('[') {
            let base = &operand[..idx_start];
            let idx: usize = operand[idx_start + 1..operand.len() - 1]
                .parse()
                .map_err(|_| self.error(format!("bad operand '{operand}'")))?;
            let &(offset, size) = self
                .qregs
                .get(base)
                .ok_or_else(|| self.error(format!("unknown register '{base}'")))?;
            if idx >= size {
                return Err(self.error(format!(
                    "index {idx} out of range for register '{base}' of size {size}"
                )));
            }
            Ok(Operand::Single(offset + idx))
        } else if let Some(&(offset, size)) = self.qregs.get(operand) {
            Ok(Operand::Register(offset, size))
        } else {
            Err(self.error(format!("unknown register or formal qubit '{operand}'")))
        }
    }

    fn apply_call(
        &mut self,
        call: &GateCall,
        param_env: &HashMap<String, f64>,
        formal_env: &HashMap<String, usize>,
    ) -> Result<(), ParseQasmError> {
        // Evaluate arguments in the enclosing parameter environment.
        let mut args = Vec::with_capacity(call.args.len());
        for a in &call.args {
            args.push(a.eval(param_env).map_err(|m| ParseQasmError {
                message: m,
                line: call.line,
            })?);
        }
        // Resolve operands; support register broadcast at top level.
        let operands: Vec<Operand> = call
            .operands
            .iter()
            .map(|o| self.resolve_operand(o, formal_env))
            .collect::<Result<_, _>>()?;

        let broadcast = operands
            .iter()
            .filter_map(|o| match o {
                Operand::Register(_, size) => Some(*size),
                Operand::Single(_) => None,
            })
            .max();
        match broadcast {
            None => {
                let qubits: Vec<usize> = operands
                    .iter()
                    .map(|o| match o {
                        Operand::Single(q) => *q,
                        Operand::Register(..) => unreachable!(),
                    })
                    .collect();
                self.apply_concrete(&call.name, &args, &qubits, call.line)
            }
            Some(size) => {
                for sizes in operands.iter().filter_map(|o| match o {
                    Operand::Register(_, s) => Some(*s),
                    Operand::Single(_) => None,
                }) {
                    if sizes != size {
                        return Err(self.error("broadcast registers must have equal size"));
                    }
                }
                for i in 0..size {
                    let qubits: Vec<usize> = operands
                        .iter()
                        .map(|o| match o {
                            Operand::Single(q) => *q,
                            Operand::Register(offset, _) => offset + i,
                        })
                        .collect();
                    self.apply_concrete(&call.name, &args, &qubits, call.line)?;
                }
                Ok(())
            }
        }
    }

    fn apply_concrete(
        &mut self,
        name: &str,
        args: &[f64],
        qubits: &[usize],
        line: usize,
    ) -> Result<(), ParseQasmError> {
        let err = |m: String| ParseQasmError { message: m, line };
        let need = |n: usize, k: usize| -> Result<(), ParseQasmError> {
            if qubits.len() != n {
                return Err(err(format!(
                    "'{name}' expects {n} qubits, got {}",
                    qubits.len()
                )));
            }
            if args.len() != k {
                return Err(err(format!(
                    "'{name}' expects {k} parameters, got {}",
                    args.len()
                )));
            }
            Ok(())
        };
        let gate = match name {
            "id" | "u0" => {
                need(1, if name == "u0" { 1 } else { 0 })?;
                Gate::single(GateKind::I, qubits[0])
            }
            "x" => {
                need(1, 0)?;
                Gate::single(GateKind::X, qubits[0])
            }
            "y" => {
                need(1, 0)?;
                Gate::single(GateKind::Y, qubits[0])
            }
            "z" => {
                need(1, 0)?;
                Gate::single(GateKind::Z, qubits[0])
            }
            "h" => {
                need(1, 0)?;
                Gate::single(GateKind::H, qubits[0])
            }
            "s" => {
                need(1, 0)?;
                Gate::single(GateKind::S, qubits[0])
            }
            "sdg" => {
                need(1, 0)?;
                Gate::single(GateKind::Sdg, qubits[0])
            }
            "t" => {
                need(1, 0)?;
                Gate::single(GateKind::T, qubits[0])
            }
            "tdg" => {
                need(1, 0)?;
                Gate::single(GateKind::Tdg, qubits[0])
            }
            "sx" => {
                need(1, 0)?;
                Gate::single(GateKind::Sx, qubits[0])
            }
            "sxdg" => {
                need(1, 0)?;
                Gate::single(GateKind::Sxdg, qubits[0])
            }
            "rx" => {
                need(1, 1)?;
                Gate::single(GateKind::Rx(args[0]), qubits[0])
            }
            "ry" => {
                need(1, 1)?;
                Gate::single(GateKind::Ry(args[0]), qubits[0])
            }
            "rz" => {
                need(1, 1)?;
                Gate::single(GateKind::Rz(args[0]), qubits[0])
            }
            "p" | "u1" => {
                need(1, 1)?;
                Gate::single(GateKind::Phase(args[0]), qubits[0])
            }
            "u2" => {
                need(1, 2)?;
                Gate::single(
                    GateKind::U3(std::f64::consts::FRAC_PI_2, args[0], args[1]),
                    qubits[0],
                )
            }
            "u3" | "u" | "U" => {
                need(1, 3)?;
                Gate::single(GateKind::U3(args[0], args[1], args[2]), qubits[0])
            }
            "cx" | "CX" => {
                need(2, 0)?;
                Gate::controlled(GateKind::X, vec![qubits[0]], qubits[1])
            }
            "cy" => {
                need(2, 0)?;
                Gate::controlled(GateKind::Y, vec![qubits[0]], qubits[1])
            }
            "cz" => {
                need(2, 0)?;
                Gate::controlled(GateKind::Z, vec![qubits[0]], qubits[1])
            }
            "ch" => {
                need(2, 0)?;
                Gate::controlled(GateKind::H, vec![qubits[0]], qubits[1])
            }
            "crz" => {
                need(2, 1)?;
                Gate::controlled(GateKind::Rz(args[0]), vec![qubits[0]], qubits[1])
            }
            "cp" | "cu1" => {
                need(2, 1)?;
                Gate::controlled(GateKind::Phase(args[0]), vec![qubits[0]], qubits[1])
            }
            "ccx" => {
                need(3, 0)?;
                Gate::controlled(GateKind::X, vec![qubits[0], qubits[1]], qubits[2])
            }
            "ccz" => {
                need(3, 0)?;
                Gate::controlled(GateKind::Z, vec![qubits[0], qubits[1]], qubits[2])
            }
            "swap" => {
                need(2, 0)?;
                Gate::swap(qubits[0], qubits[1])
            }
            "cswap" => {
                need(3, 0)?;
                Gate::controlled_swap(vec![qubits[0]], qubits[1], qubits[2])
            }
            other => {
                // User-defined gate: expand its body.
                let def = self
                    .gate_defs
                    .get(other)
                    .cloned()
                    .ok_or_else(|| err(format!("unknown gate '{other}'")))?;
                if def.params.len() != args.len() {
                    return Err(err(format!(
                        "gate '{other}' expects {} parameters, got {}",
                        def.params.len(),
                        args.len()
                    )));
                }
                if def.qubits.len() != qubits.len() {
                    return Err(err(format!(
                        "gate '{other}' expects {} qubits, got {}",
                        def.qubits.len(),
                        qubits.len()
                    )));
                }
                let param_env: HashMap<String, f64> = def
                    .params
                    .iter()
                    .cloned()
                    .zip(args.iter().copied())
                    .collect();
                let formal_env: HashMap<String, usize> = def
                    .qubits
                    .iter()
                    .cloned()
                    .zip(qubits.iter().copied())
                    .collect();
                for inner in &def.body {
                    self.apply_call(inner, &param_env, &formal_env)?;
                }
                return Ok(());
            }
        };
        self.circuit_gates.push(gate);
        Ok(())
    }
}

enum Operand {
    Single(usize),
    Register(usize, usize),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    const HEADER: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";

    fn parse_body(body: &str) -> Circuit {
        parse(&format!("{HEADER}{body}")).expect("parse failure")
    }

    #[test]
    fn parses_bell_pair() {
        let c = parse_body("qreg q[2];\nh q[0];\ncx q[0], q[1];");
        assert_eq!(c.n_qubits(), 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.gates()[1].to_string(), "cx q[0], q[1]");
    }

    #[test]
    fn parses_parameter_expressions() {
        let c = parse_body("qreg q[1];\nrz(pi/2) q[0];\nrx(-pi) q[0];\nry(3*pi/4) q[0];");
        match c.gates()[0].kind() {
            GateKind::Rz(t) => assert!((t - std::f64::consts::FRAC_PI_2).abs() < 1e-12),
            k => panic!("expected Rz, got {k:?}"),
        }
        match c.gates()[1].kind() {
            GateKind::Rx(t) => assert!((t + std::f64::consts::PI).abs() < 1e-12),
            k => panic!("expected Rx, got {k:?}"),
        }
        match c.gates()[2].kind() {
            GateKind::Ry(t) => assert!((t - 3.0 * std::f64::consts::FRAC_PI_4).abs() < 1e-12),
            k => panic!("expected Ry, got {k:?}"),
        }
    }

    #[test]
    fn parses_functions_and_power() {
        let c = parse_body("qreg q[1];\np(cos(0)) q[0];\np(2^3) q[0];\np(sqrt(4)) q[0];");
        match c.gates()[0].kind() {
            GateKind::Phase(l) => assert!((l - 1.0).abs() < 1e-12),
            k => panic!("{k:?}"),
        }
        match c.gates()[1].kind() {
            GateKind::Phase(l) => assert!((l - 8.0).abs() < 1e-12),
            k => panic!("{k:?}"),
        }
        match c.gates()[2].kind() {
            GateKind::Phase(l) => assert!((l - 2.0).abs() < 1e-12),
            k => panic!("{k:?}"),
        }
    }

    #[test]
    fn multiple_registers_are_flattened() {
        let c = parse_body("qreg a[2];\nqreg b[3];\nx a[1];\nx b[0];");
        assert_eq!(c.n_qubits(), 5);
        assert_eq!(c.gates()[0].target(), 1);
        assert_eq!(c.gates()[1].target(), 2);
    }

    #[test]
    fn register_broadcast() {
        let c = parse_body("qreg q[3];\nh q;");
        assert_eq!(c.len(), 3);
        for (i, g) in c.gates().iter().enumerate() {
            assert_eq!(g.target(), i);
        }
    }

    #[test]
    fn user_defined_gate_expands() {
        let src = "qreg q[2];\ngate bell a, b { h a; cx a, b; }\nbell q[0], q[1];";
        let c = parse_body(src);
        assert_eq!(c.len(), 2);
        assert_eq!(c.gates()[0].to_string(), "h q[0]");
        assert_eq!(c.gates()[1].to_string(), "cx q[0], q[1]");
    }

    #[test]
    fn parameterized_user_gate() {
        let src = "qreg q[1];\ngate wiggle(a) x { rz(a/2) x; rz(-a/2) x; }\nwiggle(pi) q[0];";
        let c = parse_body(src);
        assert_eq!(c.len(), 2);
        match c.gates()[0].kind() {
            GateKind::Rz(t) => assert!((t - std::f64::consts::FRAC_PI_2).abs() < 1e-12),
            k => panic!("{k:?}"),
        }
    }

    #[test]
    fn nested_user_gates() {
        let src = "qreg q[2];\ngate inner a { h a; }\ngate outer a, b { inner a; cx a, b; }\nouter q[0], q[1];";
        let c = parse_body(src);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn barrier_is_ignored() {
        let c = parse_body("qreg q[2];\nh q[0];\nbarrier q;\ncx q[0], q[1];");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn creg_is_ignored_measure_rejected() {
        let c = parse_body("qreg q[1];\ncreg c[1];\nx q[0];");
        assert_eq!(c.len(), 1);
        let e = parse(&format!(
            "{HEADER}qreg q[1];\ncreg c[1];\nmeasure q[0] -> c[0];"
        ))
        .unwrap_err();
        assert!(e.to_string().contains("measure"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse(&format!("{HEADER}qreg q[1];\nbad_gate q[0];")).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.to_string().contains("unknown gate"));
    }

    #[test]
    fn out_of_range_index_rejected() {
        let e = parse(&format!("{HEADER}qreg q[2];\nx q[5];")).unwrap_err();
        assert!(e.to_string().contains("out of range"));
    }

    #[test]
    fn unknown_register_rejected() {
        let e = parse(&format!("{HEADER}qreg q[2];\nx r[0];")).unwrap_err();
        assert!(e.to_string().contains("unknown register"));
    }

    #[test]
    fn u_gates_map_correctly() {
        let c = parse_body("qreg q[1];\nu1(0.3) q[0];\nu2(0.1,0.2) q[0];\nu3(1.0,2.0,3.0) q[0];");
        assert!(matches!(c.gates()[0].kind(), GateKind::Phase(_)));
        match c.gates()[1].kind() {
            GateKind::U3(t, _, _) => assert!((t - std::f64::consts::FRAC_PI_2).abs() < 1e-12),
            k => panic!("{k:?}"),
        }
        assert!(matches!(c.gates()[2].kind(), GateKind::U3(..)));
    }

    #[test]
    fn toffoli_and_fredkin() {
        let c = parse_body("qreg q[3];\nccx q[0], q[1], q[2];\ncswap q[0], q[1], q[2];");
        assert_eq!(c.gates()[0].controls().len(), 2);
        assert_eq!(c.gates()[1].to_string(), "cswap q[0], q[1], q[2]");
    }

    #[test]
    fn missing_qreg_is_an_error() {
        assert!(parse(HEADER).is_err());
    }

    #[test]
    fn lenient_records_indexed_measurements() {
        let src = format!(
            "{HEADER}qreg q[3];\ncreg c[3];\nh q[0];\nmeasure q[0] -> c[2];\nmeasure q[2] -> c[0];"
        );
        let parsed = parse_lenient(&src).unwrap();
        assert_eq!(parsed.circuit.len(), 1);
        assert_eq!(parsed.measurements, vec![(0, 2), (2, 0)]);
        assert!(parsed.skipped.is_empty());
    }

    #[test]
    fn lenient_broadcast_measurement() {
        let src = format!("{HEADER}qreg q[2];\ncreg c[2];\nx q;\nmeasure q -> c;");
        let parsed = parse_lenient(&src).unwrap();
        assert_eq!(parsed.measurements, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn lenient_skips_reset_with_note() {
        let src = format!("{HEADER}qreg q[1];\nh q[0];\nreset q[0];\nx q[0];");
        let parsed = parse_lenient(&src).unwrap();
        assert_eq!(parsed.circuit.len(), 2);
        assert_eq!(parsed.skipped.len(), 1);
        assert!(parsed.skipped[0].contains("reset"));
    }

    #[test]
    fn lenient_still_rejects_malformed_input() {
        let src = format!("{HEADER}qreg q[1];\ncreg c[2];\nmeasure q -> c;");
        let e = parse_lenient(&src).unwrap_err();
        assert!(e.to_string().contains("equal register sizes"));
        let src = format!("{HEADER}qreg q[1];\nmeasure q[0] -> c[0];");
        assert!(parse_lenient(&src).is_err(), "unknown creg must error");
    }

    #[test]
    fn strict_parse_still_rejects_measure_with_hint() {
        let src = format!("{HEADER}qreg q[1];\ncreg c[1];\nmeasure q[0] -> c[0];");
        let e = parse(&src).unwrap_err();
        assert!(e.to_string().contains("parse_lenient"));
    }
}
