//! Runs a fault-injection campaign: the paper's detection-power
//! evaluation, automated end-to-end.
//!
//! Compiled benchmark pairs (mapped, optimized, decomposed — at least
//! three families) are seeded with faults from every `qfault` error class;
//! each faulty pair runs through the full checking flow and the per-class
//! detection statistics are aggregated by [`qcec::campaign`].
//!
//! Output: deterministic JSON on stdout (byte-identical across runs with
//! the same seed — wall-clock timings only appear with `--timings`), a
//! human-readable Markdown report on stderr (or in `--out FILE`).
//!
//! ```text
//! cargo run --release -p bench --bin campaign -- \
//!     --seed 7 --trials 5 --faults 1 --sims 10 --threads 2 --scale 0
//! ```

use std::io::Write as _;
use std::process::exit;

use qcec::campaign::{run_campaign, CampaignBenchmark, CampaignConfig, CompileRoute};
use qcirc::generators;
use qcirc::mapping::CouplingMap;

struct Args {
    seed: u64,
    trials: usize,
    faults: usize,
    sims: usize,
    threads: usize,
    trial_threads: usize,
    guard_cache: bool,
    scale: usize,
    epsilon: f64,
    timings: bool,
    out: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            seed: 7,
            trials: 5,
            faults: 1,
            sims: 10,
            threads: 2,
            trial_threads: 1,
            guard_cache: true,
            scale: bench::scale_from_env(),
            epsilon: 0.1,
            timings: false,
            out: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: campaign [--seed N] [--trials N] [--faults N] [--sims N] \
         [--threads N] [--trial-threads N] [--no-guard-cache] \
         [--scale 0|1] [--epsilon X] [--timings] [--out FILE]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--seed" => args.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--trials" => args.trials = val("--trials").parse().unwrap_or_else(|_| usage()),
            "--faults" => args.faults = val("--faults").parse().unwrap_or_else(|_| usage()),
            "--sims" => args.sims = val("--sims").parse().unwrap_or_else(|_| usage()),
            "--threads" => args.threads = val("--threads").parse().unwrap_or_else(|_| usage()),
            "--trial-threads" => {
                args.trial_threads = val("--trial-threads").parse().unwrap_or_else(|_| usage());
            }
            "--no-guard-cache" => args.guard_cache = false,
            "--scale" => args.scale = val("--scale").parse().unwrap_or_else(|_| usage()),
            "--epsilon" => args.epsilon = val("--epsilon").parse().unwrap_or_else(|_| usage()),
            "--timings" => args.timings = true,
            "--out" => args.out = Some(val("--out")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    args
}

/// The campaign's benchmark set: every compile route, ≥ 3 circuit
/// families, registers small enough that the guard's complete check stays
/// instant. `scale ≥ 1` widens the sweep.
fn benchmarks(scale: usize) -> Vec<CampaignBenchmark> {
    let mut set = vec![
        CampaignBenchmark::compile(
            "ghz 5",
            "ghz",
            &generators::ghz(5),
            &CompileRoute::Map(CouplingMap::linear(5)),
        ),
        CampaignBenchmark::compile(
            "qft 5",
            "qft",
            &generators::qft(5, true),
            &CompileRoute::Optimize,
        ),
        CampaignBenchmark::compile(
            "grover 3",
            "grover",
            &generators::grover(3, 5, generators::optimal_grover_iterations(3)),
            &CompileRoute::Decompose,
        ),
    ];
    if scale >= 1 {
        set.push(CampaignBenchmark::compile(
            "bv 6",
            "bv",
            &generators::bernstein_vazirani(6, 0b101101),
            &CompileRoute::Map(CouplingMap::linear(7)),
        ));
        set.push(CampaignBenchmark::compile(
            "qft 8",
            "qft",
            &generators::qft(8, true),
            &CompileRoute::Map(CouplingMap::ring(8)),
        ));
        set.push(CampaignBenchmark::compile(
            "toffnet 8",
            "toffnet",
            &generators::toffoli_network(8, 30, 3, 11),
            &CompileRoute::Decompose,
        ));
    }
    set
}

fn main() {
    let args = parse_args();
    let config = CampaignConfig::default()
        .with_seed(args.seed)
        .with_trials(args.trials)
        .with_faults(args.faults)
        .with_simulations(args.sims)
        .with_threads(args.threads)
        .with_trial_threads(args.trial_threads)
        .with_guard_cache(args.guard_cache)
        .with_epsilon(args.epsilon);

    let set = benchmarks(args.scale);
    eprintln!(
        "campaign: {} benchmarks x {} classes x {} trials (seed {})",
        set.len(),
        qfault::MutationKind::ALL.len(),
        config.trials,
        config.seed,
    );

    let result = run_campaign(&set, &config);

    let markdown = result.to_markdown();
    match &args.out {
        Some(path) => {
            let mut f = std::fs::File::create(path).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                exit(1);
            });
            f.write_all(markdown.as_bytes()).expect("write report");
            eprintln!("report written to {path}");
        }
        None => eprint!("{markdown}"),
    }

    println!("{}", result.to_json(args.timings));

    // A campaign that confirmed no fault at all is a broken campaign.
    let faults: usize = result.classes.iter().map(|(_, s)| s.faults).sum();
    if faults == 0 {
        eprintln!("error: no guard-confirmed fault in the whole campaign");
        exit(1);
    }
}
