//! Scheduler acceptance tests: deterministic parallel verdicts, prompt
//! cancellation (observed through the event sink), and portfolio/sequential
//! agreement on the on-disk fixture pairs.

use std::path::PathBuf;
use std::sync::Arc;

use qcec::scheduler::CollectingSink;
use qcec::{check_equivalence, Config, Outcome};
use qcirc::Circuit;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("testdata")
        .join(name)
}

/// The verdict-relevant part of a flow result (timings are wall-clock and
/// never reproducible).
fn essence(result: &qcec::FlowResult) -> (Outcome, usize) {
    (result.outcome.clone(), result.stats.simulations_run)
}

#[test]
fn verdicts_are_deterministic_across_thread_counts() {
    // A mix of equivalent and buggy pairs, including errors that survive
    // several runs (controlled-error columns) so the watermark logic is
    // actually exercised, not just run-1 exits.
    let qft = qcirc::generators::qft(6, true);
    let optimized = qcirc::optimize::optimize(&qft);
    let mut shifted = qft.clone();
    shifted.t(3);
    let blank = Circuit::new(9);
    let mut controlled_bug = Circuit::new(9);
    controlled_bug.mcz((0..6).collect(), 8);
    let mut phase_bug_left = Circuit::new(4);
    phase_bug_left.h(0);
    let mut phase_bug_right = phase_bug_left.clone();
    phase_bug_right.s(2); // diagonal: caught only by cross-run phase check
    let pairs: [(&Circuit, &Circuit); 4] = [
        (&qft, &optimized),
        (&qft, &shifted),
        (&blank, &controlled_bug),
        (&phase_bug_left, &phase_bug_right),
    ];

    for (i, (g, g_prime)) in pairs.iter().enumerate() {
        for seed in [0u64, 7, 1234] {
            let base = Config::default().with_seed(seed).with_simulations(32);
            let reference = check_equivalence(g, g_prime, &base.clone().with_threads(1)).unwrap();
            for threads in [2usize, 8] {
                let config = base.clone().with_threads(threads);
                let parallel = check_equivalence(g, g_prime, &config).unwrap();
                assert_eq!(
                    essence(&reference),
                    essence(&parallel),
                    "pair {i}, seed {seed}, {threads} threads"
                );
                // And the parallel run itself is reproducible.
                let again = check_equivalence(g, g_prime, &config).unwrap();
                assert_eq!(essence(&parallel), essence(&again));
            }
        }
    }
}

#[test]
fn threads_one_is_the_sequential_flow() {
    let g = qcirc::generators::grover(5, 11, 2);
    let mut buggy = g.clone();
    buggy.x(1);
    let sequential = check_equivalence(&g, &buggy, &Config::default()).unwrap();
    let explicit = check_equivalence(&g, &buggy, &Config::default().with_threads(1)).unwrap();
    // Same code path: identical verdict and counterexample, bit for bit.
    assert_eq!(sequential.outcome, explicit.outcome);
    assert_eq!(
        sequential.stats.simulations_run,
        explicit.stats.simulations_run
    );
}

#[test]
fn counterexample_cancels_outstanding_simulations() {
    // An uncontrolled error corrupts every column: run 1 is decisive. Of
    // the r = 64 scheduled stimuli, only the handful already in flight may
    // finish; the rest must be abandoned.
    let g = qcirc::generators::qft(8, true);
    let mut buggy = g.clone();
    buggy.x(4);
    let threads = 8;
    let sink = Arc::new(CollectingSink::new());
    let config = Config::default()
        .with_simulations(64)
        .with_threads(threads)
        .with_event_sink(sink.clone());
    let result = check_equivalence(&g, &buggy, &config).unwrap();

    match &result.outcome {
        Outcome::NotEquivalent {
            counterexample: Some(ce),
        } => assert_eq!(ce.run, 1, "every column differs: run 1 must decide"),
        other => panic!("expected a counterexample, got {other}"),
    }
    assert_eq!(result.stats.simulations_run, 1);

    // Every stimulus produced exactly one event; at most one completion
    // per worker can sneak in before the watermark lands.
    let finished = sink.simulations_finished();
    let aborted = sink.simulations_aborted();
    assert_eq!(finished + aborted, 64);
    assert!(
        finished <= threads,
        "{finished} simulations finished; cancellation failed to stop the pool"
    );
    assert!(sink.cancellations() >= 1);
}

#[test]
fn equivalent_pair_runs_every_simulation() {
    // The complement of the cancellation test: nothing to cancel means
    // nothing aborted and a full complement of finished runs.
    let g = qcirc::generators::qft(6, true);
    let optimized = qcirc::optimize::optimize(&g);
    let sink = Arc::new(CollectingSink::new());
    let config = Config::default()
        .with_simulations(24)
        .with_threads(4)
        .with_event_sink(sink.clone());
    let result = check_equivalence(&g, &optimized, &config).unwrap();
    assert!(result.outcome.is_equivalent(), "{}", result.outcome);
    assert_eq!(result.stats.simulations_run, 24);
    assert_eq!(sink.simulations_finished(), 24);
    assert_eq!(sink.simulations_aborted(), 0);
}

fn fixture_pairs() -> Vec<(String, Circuit, Circuit)> {
    let adder =
        qcirc::qasm::parse_lenient(&std::fs::read_to_string(fixture("adder_n4.qasm")).unwrap())
            .unwrap()
            .circuit;
    let adder_alt =
        qcirc::qasm::parse(&std::fs::read_to_string(fixture("adder_n4_alt.qasm")).unwrap())
            .unwrap();
    let grover = qcirc::qasm::parse_lenient(
        &std::fs::read_to_string(fixture("grover2_with_defs.qasm")).unwrap(),
    )
    .unwrap()
    .circuit;
    let peres = qcirc::real::parse_file(fixture("peres_3.real")).unwrap();
    let peres_expanded = qcirc::real::parse_file(fixture("peres_3_expanded.real")).unwrap();

    let mut rng = StdRng::seed_from_u64(99);
    let (adder_buggy, _) = qcirc::errors::inject_random(&adder, &mut rng).unwrap();
    let grover_opt = qcirc::optimize::optimize(&grover);

    vec![
        ("adder/alt".into(), adder.clone(), adder_alt),
        ("adder/buggy".into(), adder, adder_buggy),
        ("grover/opt".into(), grover, grover_opt),
        ("peres/expanded".into(), peres, peres_expanded),
    ]
}

#[test]
fn portfolio_agrees_with_sequential_on_fixture_pairs() {
    for (name, g, g_prime) in fixture_pairs() {
        let sequential = check_equivalence(&g, &g_prime, &Config::default()).unwrap();
        let raced = check_equivalence(
            &g,
            &g_prime,
            &Config::default().with_threads(4).with_portfolio(true),
        )
        .unwrap();
        // The race decides *who* answers first, never *what* the answer
        // is: equivalence classes must match exactly.
        assert_eq!(
            (
                sequential.outcome.is_equivalent(),
                sequential.outcome.is_not_equivalent(),
            ),
            (
                raced.outcome.is_equivalent(),
                raced.outcome.is_not_equivalent(),
            ),
            "{name}: sequential said {:?}, portfolio said {:?}",
            sequential.outcome,
            raced.outcome
        );
    }
}

#[test]
fn scheduled_flow_agrees_with_sequential_on_fixture_pairs() {
    for (name, g, g_prime) in fixture_pairs() {
        let sequential = check_equivalence(&g, &g_prime, &Config::default()).unwrap();
        let scheduled =
            check_equivalence(&g, &g_prime, &Config::default().with_threads(8)).unwrap();
        assert_eq!(
            essence(&sequential),
            essence(&scheduled),
            "{name} diverged under the scheduler"
        );
    }
}
