//! The proposed equivalence checking flow (paper Fig. 3).

use std::fmt;
use std::time::Instant;

use qcirc::Circuit;

use crate::config::{BackendKind, Config};
use crate::functional::{run_functional_check, AbortKind, FunctionalVerdict};
use crate::outcome::{AbortReason, FlowResult, FlowStats, Outcome};
use crate::sim_check::{run_simulations, SimVerdict};

/// Error returned when the inputs cannot be compared at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowError {
    /// The circuits act on different numbers of qubits. Widen the smaller
    /// one ([`Circuit::widened`]) if the extra qubits are intentional
    /// ancillas.
    QubitCountMismatch {
        /// Qubits of `G`.
        left: usize,
        /// Qubits of `G'`.
        right: usize,
    },
    /// The decision-diagram simulation backend exceeded its node limit (the
    /// statevector backend never fails).
    SimulationOverflow {
        /// The configured node limit.
        node_limit: usize,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::QubitCountMismatch { left, right } => write!(
                f,
                "circuits act on different registers ({left} vs {right} qubits); widen the smaller circuit if ancillas are intended"
            ),
            FlowError::SimulationOverflow { node_limit } => write!(
                f,
                "decision-diagram simulation exceeded the node limit of {node_limit}; raise it or use the statevector backend"
            ),
        }
    }
}

impl std::error::Error for FlowError {}

/// Checks the equivalence of two circuits with the paper's flow:
///
/// 1. **Simulate** `r ≪ 2ⁿ` random computational basis states through both
///    circuits, comparing the outputs. Any disagreement proves
///    non-equivalence with a concrete counterexample — in practice this
///    fires on the *first* run for realistic errors (Section IV-A).
/// 2. **Fall back** to a complete DD-based equivalence check under the
///    configured deadline/node budget.
/// 3. If the complete check cannot finish, report **probably equivalent**:
///    unlike the state of the art's bare timeout, the `r` agreeing
///    simulations make an actual error very unlikely.
///
/// With `config.threads > 1` the flow runs on the
/// [`scheduler`](crate::scheduler): the stimuli fan out across a worker
/// pool (and, with [`Config::with_portfolio`], the complete check races
/// the pool). The verdict stays deterministic per seed; with `threads ==
/// 1` this sequential code path runs unchanged.
///
/// # Errors
///
/// Returns [`FlowError`] if the circuits have different qubit counts, or if
/// the decision-diagram *simulation* backend overflows its node budget.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), qcec::FlowError> {
/// use qcec::{check_equivalence, Config};
///
/// let g = qcirc::generators::qft(4, true);
/// let mapped = qcirc::mapping::route_or_panic(&g, &qcirc::mapping::CouplingMap::linear(4));
/// let result = qcec::check_equivalence(&g, &mapped.circuit, &Config::default())?;
/// assert!(result.outcome.is_equivalent());
/// # Ok(())
/// # }
/// ```
pub fn check_equivalence(
    g: &Circuit,
    g_prime: &Circuit,
    config: &Config,
) -> Result<FlowResult, FlowError> {
    if g.n_qubits() != g_prime.n_qubits() {
        return Err(FlowError::QubitCountMismatch {
            left: g.n_qubits(),
            right: g_prime.n_qubits(),
        });
    }

    if config.backend == BackendKind::Auto {
        // Resolve the selector once, up front, so every stage below —
        // simulations, scheduler workers, the complete check — sees one
        // concrete engine, and the choice is visible in the event stream.
        let resolved = crate::backend::auto_backend(g, g_prime);
        if let Some(sink) = &config.event_sink {
            sink.record(crate::scheduler::RunEvent::BackendSelected { backend: resolved });
        }
        return check_equivalence(g, g_prime, &config.clone().with_backend(resolved));
    }

    if config.peel {
        // Strip the shared Clifford rim once, then run the whole flow —
        // simulations and complete check alike — on the residual pair
        // (sound under both criteria; see the `peel` module docs). The
        // recursion is bounded: the inner call has peeling disabled.
        let peeled = crate::peel::peel(g, g_prime);
        if peeled.stripped() > 0 {
            let inner = config.clone().with_peel(false);
            return check_equivalence(&peeled.g, &peeled.g_prime, &inner);
        }
    }

    if config.threads > 1 {
        return crate::scheduler::run_scheduled(g, g_prime, config);
    }

    // Stage 1: random basis-state simulations.
    let sim_start = Instant::now();
    let sim_verdict =
        run_simulations(g, g_prime, config).map_err(|e| FlowError::SimulationOverflow {
            node_limit: e.node_limit,
        })?;
    let simulation_time = sim_start.elapsed();

    match sim_verdict {
        SimVerdict::CounterexampleFound(ce) => {
            let decisive_run = ce.run;
            Ok(FlowResult {
                outcome: Outcome::NotEquivalent {
                    counterexample: Some(ce),
                },
                stats: FlowStats {
                    simulations_run: decisive_run,
                    simulation_time,
                    functional_time: Default::default(),
                },
            })
        }
        SimVerdict::AllAgreed {
            runs,
            truncation_error,
        } => {
            // Stage 2: complete check.
            let ec_start = Instant::now();
            let verdict = run_functional_check(g, g_prime, config);
            let functional_time = ec_start.elapsed();
            let stats = FlowStats {
                simulations_run: runs,
                simulation_time,
                functional_time,
            };
            let outcome = match verdict {
                // An exact complete check is a proof regardless of how the
                // (stage-1) simulations were judged: it never saw their
                // truncated overlaps.
                FunctionalVerdict::Equivalent => Outcome::Equivalent,
                FunctionalVerdict::EquivalentUpToGlobalPhase { phase } => {
                    Outcome::EquivalentUpToGlobalPhase { phase }
                }
                FunctionalVerdict::NotEquivalent => Outcome::NotEquivalent {
                    counterexample: None,
                },
                // With no complete check configured, truncated simulations
                // are the *only* evidence — surface the accumulated error
                // instead of the bare "no fallback" notice.
                FunctionalVerdict::Aborted(AbortKind::Disabled) if truncation_error > 0.0 => {
                    Outcome::ProbablyEquivalent {
                        passed_simulations: runs,
                        abort: AbortReason::Truncation {
                            error: truncation_error,
                        },
                    }
                }
                FunctionalVerdict::Aborted(kind) => Outcome::ProbablyEquivalent {
                    passed_simulations: runs,
                    abort: kind.into(),
                },
            };
            Ok(FlowResult { outcome, stats })
        }
    }
}

/// Convenience wrapper with the default configuration.
///
/// # Errors
///
/// See [`check_equivalence`].
pub fn check_equivalence_default(g: &Circuit, g_prime: &Circuit) -> Result<FlowResult, FlowError> {
    check_equivalence(g, g_prime, &Config::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Fallback;
    use crate::outcome::AbortReason;
    use qcirc::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::time::Duration;

    #[test]
    fn equivalent_design_flow_outputs() {
        // Original → decomposed → mapped → optimized: all equivalent.
        let g = generators::qft(5, true);
        let lowered = qcirc::decompose::decompose_to_cx_and_single_qubit(&g);
        let mapped =
            qcirc::mapping::route_or_panic(&lowered, &qcirc::mapping::CouplingMap::linear(5));
        let optimized = qcirc::optimize::optimize(&mapped.circuit);
        let result = check_equivalence_default(&g, &optimized).unwrap();
        assert!(result.outcome.is_equivalent(), "{}", result.outcome);
        assert_eq!(result.stats.simulations_run, 10);
    }

    #[test]
    fn injected_errors_are_found_by_simulation() {
        let g = generators::grover(5, 17, 3);
        let mut rng = StdRng::seed_from_u64(11);
        for kind in [
            qcirc::errors::ErrorKind::RemoveGate,
            qcirc::errors::ErrorKind::MisplaceCx,
            qcirc::errors::ErrorKind::ReplaceSingleQubitGate,
        ] {
            let lowered = qcirc::decompose::decompose_to_cx_and_single_qubit(&g);
            let (buggy, record) = qcirc::errors::inject(&lowered, kind, &mut rng).unwrap();
            let result = check_equivalence_default(&lowered, &buggy).unwrap();
            match &result.outcome {
                Outcome::NotEquivalent {
                    counterexample: Some(ce),
                } => {
                    assert!(ce.run <= 10, "error '{record}' needed more than r runs");
                }
                other => panic!("error '{record}' not detected: {other}"),
            }
        }
    }

    #[test]
    fn most_errors_fall_to_the_first_simulation() {
        // The paper's headline observation: #sims = 1 in almost every row.
        let g = generators::trotter_heisenberg(2, 4, 2, 0.13, 0.7);
        let mut first_run_hits = 0;
        let total = 20;
        for seed in 0..total {
            let mut rng = StdRng::seed_from_u64(seed);
            let (buggy, _) = qcirc::errors::inject_random(&g, &mut rng).unwrap();
            let result = check_equivalence_default(&g, &buggy).unwrap();
            if let Outcome::NotEquivalent {
                counterexample: Some(ce),
            } = &result.outcome
            {
                if ce.run == 1 {
                    first_run_hits += 1;
                }
            }
        }
        assert!(
            first_run_hits >= total * 7 / 10,
            "only {first_run_hits}/{total} errors caught on run 1"
        );
    }

    #[test]
    fn timeout_yields_probably_equivalent() {
        let g = generators::supremacy_2d(3, 3, 8, 5);
        let config = Config::default()
            .with_deadline(Some(Duration::ZERO))
            .with_simulations(3);
        let result = check_equivalence(&g, &g, &config).unwrap();
        match result.outcome {
            Outcome::ProbablyEquivalent {
                passed_simulations,
                abort,
            } => {
                assert_eq!(passed_simulations, 3);
                assert_eq!(abort, AbortReason::Timeout);
            }
            other => panic!("expected probably-equivalent, got {other}"),
        }
    }

    #[test]
    fn fallback_none_reports_probably_equivalent() {
        let g = generators::ghz(4);
        let config = Config::default().with_fallback(Fallback::None);
        let result = check_equivalence(&g, &g, &config).unwrap();
        assert!(matches!(
            result.outcome,
            Outcome::ProbablyEquivalent {
                abort: AbortReason::FallbackDisabled,
                ..
            }
        ));
    }

    #[test]
    fn qubit_mismatch_is_an_error() {
        let a = generators::ghz(3);
        let b = generators::ghz(4);
        let e = check_equivalence_default(&a, &b).unwrap_err();
        assert!(matches!(
            e,
            FlowError::QubitCountMismatch { left: 3, right: 4 }
        ));
        assert!(e.to_string().contains("different registers"));
    }

    #[test]
    fn ancilla_decomposition_checks_after_widening() {
        let g = generators::grover(5, 9, 1);
        let lowered = qcirc::decompose::decompose_with_dirty_ancillas(&g);
        assert!(lowered.n_qubits() > g.n_qubits());
        let widened = g.widened(lowered.n_qubits());
        let result = check_equivalence_default(&widened, &lowered).unwrap();
        assert!(result.outcome.is_equivalent(), "{}", result.outcome);
    }

    #[test]
    fn stats_record_early_exit() {
        let g = generators::qft(6, true);
        let mut buggy = g.clone();
        buggy.x(0);
        let result = check_equivalence_default(&g, &buggy).unwrap();
        assert_eq!(result.stats.simulations_run, 1);
        assert_eq!(result.stats.functional_time, Duration::ZERO);
        assert!(result.to_string().contains("not equivalent"));
    }

    #[test]
    fn auto_backend_is_resolved_once_and_logged() {
        use crate::scheduler::{CollectingSink, RunEvent};
        use std::sync::Arc;
        let sink = Arc::new(CollectingSink::new());
        let config = Config::default()
            .with_backend(BackendKind::Auto)
            .with_event_sink(sink.clone());
        let g = generators::qft(4, true);
        let opt = qcirc::optimize::optimize(&g);
        let result = check_equivalence(&g, &opt, &config).unwrap();
        assert!(result.outcome.is_equivalent());
        let selected: Vec<_> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                RunEvent::BackendSelected { backend } => Some(*backend),
                _ => None,
            })
            .collect();
        assert_eq!(
            selected,
            vec![BackendKind::Statevector],
            "n = 4 non-Clifford resolves to the dense engine, exactly once"
        );
    }

    #[test]
    fn mps_flow_checks_equivalence_end_to_end() {
        let g = generators::qft(4, true);
        let mapped = qcirc::mapping::route_or_panic(&g, &qcirc::mapping::CouplingMap::linear(4));
        let config = Config::default().with_backend(BackendKind::Mps);
        let result = check_equivalence(&g, &mapped.circuit, &config).unwrap();
        assert!(result.outcome.is_equivalent(), "{}", result.outcome);
        let mut buggy = g.clone();
        buggy.s(2);
        let result = check_equivalence(&g, &buggy, &config).unwrap();
        assert!(result.outcome.is_not_equivalent(), "{}", result.outcome);
    }

    #[test]
    fn truncated_simulations_surface_as_truncation_abort() {
        // χ = 1 forces truncation inside every probe of an entangling
        // pair; with no complete check configured the flow must report the
        // accumulated error, never plain equivalence (and never the bare
        // "no fallback" notice that would hide the truncation). GHZ, not
        // QFT: a QFT probe from a basis state stays a product state.
        let g = generators::ghz(6);
        let config = Config::default()
            .with_backend(BackendKind::Mps)
            .with_chi_max(1)
            .with_fallback(Fallback::None);
        let result = check_equivalence(&g, &g, &config).unwrap();
        match result.outcome {
            Outcome::ProbablyEquivalent {
                abort: AbortReason::Truncation { error },
                ..
            } => assert!(error > 0.0),
            Outcome::NotEquivalent { .. } => {}
            other => panic!("truncated run must not claim equivalence: {other}"),
        }
    }
}
