//! Oracle-based textbook algorithms: Bernstein–Vazirani and Deutsch–Jozsa.

use crate::circuit::Circuit;

/// Builds the Bernstein–Vazirani circuit recovering the hidden bit-string
/// `secret` in a single query.
///
/// Layout: `k` input qubits `0..k` plus one oracle ancilla (qubit `k`)
/// prepared in `|−⟩`. The oracle is a CX fan-in from every secret-1 input
/// onto the ancilla; after the final Hadamard layer the input register holds
/// `|secret⟩` deterministically — a handy self-test for simulators.
///
/// # Panics
///
/// Panics if `k == 0` or `secret >= 2^k`.
///
/// # Examples
///
/// ```
/// let c = qcirc::generators::bernstein_vazirani(5, 0b10110);
/// assert_eq!(c.n_qubits(), 6);
/// ```
#[must_use]
pub fn bernstein_vazirani(k: usize, secret: u64) -> Circuit {
    assert!(k > 0, "need at least one input qubit");
    assert!(
        secret < (1u64 << k),
        "secret {secret} out of range for {k} bits"
    );
    let mut c = Circuit::with_name(k + 1, format!("bv_{k}"));
    // Ancilla to |−⟩.
    c.x(k).h(k);
    for q in 0..k {
        c.h(q);
    }
    // Oracle: f(x) = secret · x (mod 2).
    for q in 0..k {
        if (secret >> q) & 1 == 1 {
            c.cx(q, k);
        }
    }
    for q in 0..k {
        c.h(q);
    }
    // Return the ancilla to |0⟩ so the circuit is ancilla-clean.
    c.h(k).x(k);
    c
}

/// Builds a Deutsch–Jozsa circuit for a balanced function `f(x) = mask · x`
/// (a nonzero `mask` makes `f` balanced; `mask = 0` gives the constant-0
/// function).
///
/// Same register layout as [`bernstein_vazirani`]. Measuring all-zeros on
/// the input register means "constant"; anything else means "balanced".
///
/// # Panics
///
/// Panics if `k == 0` or `mask >= 2^k`.
#[must_use]
pub fn deutsch_jozsa(k: usize, mask: u64) -> Circuit {
    let mut c = bernstein_vazirani(k, mask);
    c.set_name(format!("dj_{k}"));
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_counts() {
        let c = bernstein_vazirani(4, 0b1010);
        // 2 ancilla prep + 4 H + 2 CX + 4 H + 2 ancilla restore.
        assert_eq!(c.len(), 2 + 4 + 2 + 4 + 2);
        assert_eq!(c.n_qubits(), 5);
    }

    #[test]
    fn zero_secret_has_no_oracle_gates() {
        let c = bernstein_vazirani(3, 0);
        assert_eq!(c.count_where(|g| g.width() == 2), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_secret_rejected() {
        let _ = bernstein_vazirani(3, 8);
    }

    #[test]
    fn dj_is_bv_with_a_name() {
        let a = bernstein_vazirani(3, 5);
        let b = deutsch_jozsa(3, 5);
        assert_eq!(a.gates(), b.gates());
        assert_eq!(b.name(), "dj_3");
    }
}
