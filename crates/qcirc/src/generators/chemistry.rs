//! Trotterized lattice-Hamiltonian evolution — the workspace's stand-in for
//! the paper's "Quantum Chemistry m×n" benchmarks (see DESIGN.md for the
//! substitution rationale).

use crate::circuit::Circuit;

/// Builds a first-order Trotter circuit for time evolution under the 2-D
/// Heisenberg model
/// `H = Σ_{⟨i,j⟩} (X_i X_j + Y_i Y_j + Z_i Z_j) + h Σ_i Z_i`
/// on a `rows × cols` grid, with `steps` Trotter steps of angle `theta`.
///
/// Each two-body term `exp(-iθ P_i P_j)` is compiled to the standard
/// `CX · Rz(2θ) · CX` core conjugated into the right Pauli basis, so the
/// output is already in the elementary `{1q, CX}` basis — the same gate mix
/// (rotations + CX, a few thousand gates on 8–18 qubits) as the paper's
/// chemistry rows.
///
/// # Panics
///
/// Panics if the grid is empty or `steps == 0`.
///
/// # Examples
///
/// ```
/// // The paper's "Quantum Chemistry 3x3" has 18 qubits; a 3×3 grid of
/// // spin-orbital pairs is 18 qubits with two layers:
/// let c = qcirc::generators::trotter_heisenberg(3, 6, 2, 0.1, 0.5);
/// assert_eq!(c.n_qubits(), 18);
/// assert!(c.is_elementary());
/// ```
#[must_use]
pub fn trotter_heisenberg(
    rows: usize,
    cols: usize,
    steps: usize,
    theta: f64,
    field: f64,
) -> Circuit {
    assert!(rows > 0 && cols > 0, "grid must be non-empty");
    assert!(steps > 0, "at least one Trotter step is required");
    let n = rows * cols;
    let mut c = Circuit::with_name(n, format!("heisenberg_{rows}x{cols}_{steps}"));
    let qubit = |r: usize, col: usize| r * cols + col;

    // Nearest-neighbour edges of the grid.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for r in 0..rows {
        for col in 0..cols {
            if col + 1 < cols {
                edges.push((qubit(r, col), qubit(r, col + 1)));
            }
            if r + 1 < rows {
                edges.push((qubit(r, col), qubit(r + 1, col)));
            }
        }
    }

    for _ in 0..steps {
        // Single-body field term exp(-i h θ Z).
        for q in 0..n {
            c.rz(2.0 * field * theta, q);
        }
        for &(a, b) in &edges {
            // exp(-iθ X_a X_b): conjugate ZZ by H on both qubits.
            c.h(a).h(b);
            zz_core(&mut c, a, b, theta);
            c.h(a).h(b);
            // exp(-iθ Y_a Y_b): conjugate ZZ by Rx(π/2) on both qubits.
            let half_pi = std::f64::consts::FRAC_PI_2;
            c.rx(half_pi, a).rx(half_pi, b);
            zz_core(&mut c, a, b, theta);
            c.rx(-half_pi, a).rx(-half_pi, b);
            // exp(-iθ Z_a Z_b).
            zz_core(&mut c, a, b, theta);
        }
    }
    c
}

/// Appends `exp(-iθ Z_a Z_b) = CX(a,b) · Rz(2θ, b) · CX(a,b)`.
fn zz_core(c: &mut Circuit, a: usize, b: usize, theta: f64) {
    c.cx(a, b).rz(2.0 * theta, b).cx(a, b);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_in_elementary_basis() {
        let c = trotter_heisenberg(2, 2, 3, 0.05, 0.3);
        assert!(c.is_elementary());
    }

    #[test]
    fn qubits_match_grid() {
        assert_eq!(trotter_heisenberg(3, 3, 1, 0.1, 0.0).n_qubits(), 9);
        assert_eq!(trotter_heisenberg(2, 4, 1, 0.1, 0.0).n_qubits(), 8);
    }

    #[test]
    fn gate_count_is_linear_in_steps() {
        let one = trotter_heisenberg(2, 3, 1, 0.1, 0.2).len();
        let four = trotter_heisenberg(2, 3, 4, 0.1, 0.2).len();
        assert_eq!(four, 4 * one);
    }

    #[test]
    fn expected_gate_count_formula() {
        // Per step: n field rotations + per edge (XX: 2H+3+2H=7, YY: 2Rx+3+2Rx=7, ZZ: 3) = 17.
        let (rows, cols) = (2, 2);
        let n = rows * cols;
        let edges = rows * (cols - 1) + (rows - 1) * cols;
        let c = trotter_heisenberg(rows, cols, 1, 0.1, 0.2);
        assert_eq!(c.len(), n + edges * 17);
    }

    #[test]
    #[should_panic(expected = "Trotter step")]
    fn zero_steps_rejected() {
        let _ = trotter_heisenberg(2, 2, 0, 0.1, 0.0);
    }
}
