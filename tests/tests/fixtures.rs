//! Fixture-file tests: real OpenQASM/`.real` files on disk flow through the
//! parsers and the equivalence checker (the path a downstream user takes).

use std::path::PathBuf;

use qcec::{check_equivalence_default, Outcome};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("testdata")
        .join(name)
}

#[test]
fn adder_fixture_loads_leniently_and_adds() {
    let source = std::fs::read_to_string(fixture("adder_n4.qasm")).unwrap();
    let parsed = qcirc::qasm::parse_lenient(&source).unwrap();
    assert_eq!(parsed.circuit.n_qubits(), 4);
    assert_eq!(parsed.measurements.len(), 2);
    // Registers flatten as cin=0, b=1, a=2, cout=3. Check 1 + 1 = 10₂.
    let sim = qsim::Simulator::new();
    let input = 0b0110; // a=1 (bit 2), b=1 (bit 1)
    let out = sim.run_basis(&parsed.circuit, input);
    // sum bit in b (bit 1) = 0, carry in cout (bit 3) = 1, a restored.
    let expected = 0b1100;
    assert!(out.probability(expected) > 1.0 - 1e-9, "got {out}");
}

#[test]
fn adder_fixtures_are_equivalent() {
    let a = qcirc::qasm::parse_lenient(&std::fs::read_to_string(fixture("adder_n4.qasm")).unwrap())
        .unwrap()
        .circuit;
    let b = qcirc::qasm::parse(&std::fs::read_to_string(fixture("adder_n4_alt.qasm")).unwrap())
        .unwrap();
    let result = check_equivalence_default(&a, &b).unwrap();
    assert!(result.outcome.is_equivalent(), "{}", result.outcome);
}

#[test]
fn peres_fixture_matches_its_expansion() {
    let compact = qcirc::real::parse_file(fixture("peres_3.real")).unwrap();
    let expanded = qcirc::real::parse_file(fixture("peres_3_expanded.real")).unwrap();
    let result = check_equivalence_default(&compact, &expanded).unwrap();
    assert!(result.outcome.is_equivalent(), "{}", result.outcome);
}

#[test]
fn peres_fixture_differs_from_reversed_expansion() {
    let compact = qcirc::real::parse_file(fixture("peres_3.real")).unwrap();
    // Inverse Peres has the two gates in the other order — not equivalent.
    let swapped =
        qcirc::real::parse(".numvars 3\n.variables a b c\n.begin\nt2 a b\nt3 a b c\n.end").unwrap();
    let result = check_equivalence_default(&compact, &swapped).unwrap();
    match result.outcome {
        Outcome::NotEquivalent { counterexample } => {
            assert!(counterexample.is_some());
        }
        other => panic!("expected difference, got {other}"),
    }
}

#[test]
fn user_defined_gate_fixture_runs_grover() {
    let c = qcirc::qasm::parse_file(fixture("grover2_with_defs.qasm")).unwrap();
    // One Grover iteration on 2 qubits finds |11⟩ with certainty.
    let out = qsim::Simulator::new().run_basis(&c, 0);
    assert!(out.probability(0b11) > 1.0 - 1e-9, "got {out}");
}

#[test]
fn fixtures_roundtrip_through_the_writers() {
    let c = qcirc::qasm::parse_file(fixture("grover2_with_defs.qasm")).unwrap();
    let rewritten = qcirc::qasm::parse(&qcirc::qasm::write(&c)).unwrap();
    let result = check_equivalence_default(&c, &rewritten).unwrap();
    assert!(result.outcome.is_equivalent());

    let p = qcirc::real::parse_file(fixture("peres_3_expanded.real")).unwrap();
    let text = qcirc::real::write(&p).unwrap();
    let back = qcirc::real::parse(&text).unwrap();
    let result = check_equivalence_default(&p, &back).unwrap();
    assert!(result.outcome.is_equivalent());
}
