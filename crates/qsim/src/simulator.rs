//! The circuit simulator: applies gates to state vectors.

use qcirc::{Circuit, Gate, GateKind};
use qnum::Complex;

use crate::kernels;
use crate::state::StateVector;

/// A statevector simulator.
///
/// Simulation of one computational basis state is exactly the construction
/// of one *column* of the circuit unitary by matrix-vector products — the
/// `O(m·2ⁿ)` operation the paper's flow uses in place of `O(m·4ⁿ)`
/// matrix-matrix products.
///
/// # Examples
///
/// ```
/// use qsim::Simulator;
///
/// let bell = qcirc::generators::bell();
/// let out = Simulator::new().run_basis(&bell, 0);
/// assert!((out.probability(0b00) - 0.5).abs() < 1e-10);
/// assert!((out.probability(0b11) - 0.5).abs() < 1e-10);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Simulator {
    threads: usize,
}

impl Simulator {
    /// Creates a sequential simulator.
    #[must_use]
    pub fn new() -> Self {
        Simulator { threads: 1 }
    }

    /// Creates a simulator that splits kernels over `threads` OS threads for
    /// states with at least 2¹⁸ amplitudes (smaller states run sequentially —
    /// thread spawn overhead dominates below that).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        Simulator { threads }
    }

    /// Creates a simulator for use *inside* a worker thread of a checker
    /// pool (e.g. `qcec`'s scheduler).
    ///
    /// Identical to [`Simulator::new`], but named to document the
    /// threading contract: worker simulators run their kernels
    /// sequentially so that an `N`-worker pool uses exactly `N` OS
    /// threads instead of oversubscribing the machine with nested
    /// kernel-level parallelism. `Simulator` is `Send + Sync`, so one
    /// instance may also be shared across scoped worker threads.
    #[must_use]
    pub fn for_worker() -> Self {
        Simulator { threads: 1 }
    }

    /// Simulates `circuit` on the basis state `|basis⟩`, yielding the
    /// `basis`-th column of the circuit unitary.
    ///
    /// # Panics
    ///
    /// Panics if `basis ≥ 2ⁿ` or the circuit exceeds
    /// [`StateVector::MAX_QUBITS`].
    #[must_use]
    pub fn run_basis(&self, circuit: &Circuit, basis: u64) -> StateVector {
        let mut state = StateVector::basis(circuit.n_qubits(), basis);
        self.run_inplace(circuit, &mut state);
        state
    }

    /// Simulates `circuit` on `|basis⟩`, reusing `state`'s allocation
    /// instead of allocating a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ or `basis ≥ 2ⁿ`.
    pub fn run_basis_into(&self, circuit: &Circuit, basis: u64, state: &mut StateVector) {
        state.reset_to_basis(basis);
        self.run_inplace(circuit, state);
    }

    /// Simulates `circuit` on a copy of `initial`.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    #[must_use]
    pub fn run(&self, circuit: &Circuit, initial: &StateVector) -> StateVector {
        let mut state = initial.clone();
        self.run_inplace(circuit, &mut state);
        state
    }

    /// Simulates `circuit` directly on `state`.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn run_inplace(&self, circuit: &Circuit, state: &mut StateVector) {
        assert_eq!(
            circuit.n_qubits(),
            state.n_qubits(),
            "circuit and state qubit counts differ"
        );
        for gate in circuit.gates() {
            self.apply_gate(state, gate);
        }
    }

    /// Applies a single gate to `state`.
    ///
    /// # Panics
    ///
    /// Panics if the gate does not fit the state's register.
    pub fn apply_gate(&self, state: &mut StateVector, gate: &Gate) {
        assert!(
            gate.max_qubit() < state.n_qubits(),
            "gate {gate} exceeds the state's {} qubits",
            state.n_qubits()
        );
        let control_mask: usize = gate.controls().iter().map(|&q| 1usize << q).sum();
        let parallel = self.threads > 1 && state.dim() >= (1 << 18);
        match gate.kind() {
            GateKind::Swap => {
                let (a, b) = (gate.targets()[0], gate.targets()[1]);
                kernels::apply_controlled_swap(state.amplitudes_mut(), control_mask, a, b);
            }
            kind => {
                let m = kind.base_matrix().expect("single-target kind");
                if parallel {
                    crate::parallel::apply_controlled_single_parallel(
                        state.amplitudes_mut(),
                        control_mask,
                        gate.target(),
                        &m,
                        self.threads,
                    );
                } else {
                    kernels::apply_controlled_single(
                        state.amplitudes_mut(),
                        control_mask,
                        gate.target(),
                        &m,
                    );
                }
            }
        }
    }

    /// Simulates both circuits on `|basis⟩` and returns the inner product
    /// `⟨u_basis | u′_basis⟩` of the outputs — the paper's per-simulation
    /// equivalence probe (1 for equivalent circuits, ≠ 1 is a proof of
    /// non-equivalence).
    ///
    /// # Panics
    ///
    /// Panics if the circuits' qubit counts differ or `basis` is out of
    /// range.
    #[must_use]
    pub fn probe_basis(&self, g: &Circuit, g_prime: &Circuit, basis: u64) -> Complex {
        let mut workspace = ProbeWorkspace::new(g.n_qubits());
        self.probe_basis_with(g, g_prime, basis, &mut workspace)
    }

    /// Like [`Simulator::probe_basis`], but reuses the two state buffers
    /// of `workspace` — the allocation-free variant for loops over many
    /// stimuli (one `O(2ⁿ)` pair of buffers total instead of per run).
    ///
    /// A prefix-free wrapper of [`Simulator::probe_stimulus_with`]: every
    /// probe, basis or prepared, runs through the same stimulus-aware code
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if the circuits' or workspace's qubit counts differ or
    /// `basis` is out of range.
    #[must_use]
    pub fn probe_basis_with(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        basis: u64,
        workspace: &mut ProbeWorkspace,
    ) -> Complex {
        self.probe_stimulus_with(g, g_prime, None, basis, workspace)
    }

    /// Like [`Simulator::probe_basis_with`], but polls `keep_going`
    /// between gate applications and gives up as soon as it returns
    /// `false` — the cancellable variant for worker pools whose remaining
    /// stimuli become moot once a counterexample is found elsewhere.
    ///
    /// Returns `None` if the probe was abandoned mid-run. Also a
    /// prefix-free wrapper of [`Simulator::probe_stimulus_while`].
    ///
    /// # Panics
    ///
    /// Panics if the circuits' or workspace's qubit counts differ or
    /// `basis` is out of range.
    #[must_use]
    pub fn probe_basis_while(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        basis: u64,
        workspace: &mut ProbeWorkspace,
        keep_going: &dyn Fn() -> bool,
    ) -> Option<Complex> {
        self.probe_stimulus_while(g, g_prime, None, basis, workspace, keep_going)
    }

    /// Like [`Simulator::run_basis_into`], but polls `keep_going` between
    /// gate applications. Returns `false` (leaving `state` part-way
    /// through the circuit) if the run was abandoned.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ or `basis ≥ 2ⁿ`.
    pub fn run_basis_into_while(
        &self,
        circuit: &Circuit,
        basis: u64,
        state: &mut StateVector,
        keep_going: &dyn Fn() -> bool,
    ) -> bool {
        state.reset_to_basis(basis);
        self.apply_to_state_while(circuit, state, keep_going)
    }

    /// Applies `circuit` to the *current* contents of `state` (no reset) —
    /// the building block for probes whose initial state is itself prepared
    /// by a prefix circuit. Polls `keep_going` between gate applications;
    /// returns `false` (leaving `state` part-way through) if abandoned.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn apply_to_state_while(
        &self,
        circuit: &Circuit,
        state: &mut StateVector,
        keep_going: &dyn Fn() -> bool,
    ) -> bool {
        assert_eq!(
            circuit.n_qubits(),
            state.n_qubits(),
            "circuit and state qubit counts differ"
        );
        for gate in circuit.gates() {
            if !keep_going() {
                return false;
            }
            self.apply_gate(state, gate);
        }
        true
    }

    /// The stimulus-aware probe: prepares `|basis⟩`, runs the optional
    /// `prefix` circuit once (product or stabilizer state preparation),
    /// then branches the shared prepared state through `g` and `g_prime`
    /// and returns the overlap `⟨u|u′⟩` of the two outputs.
    ///
    /// With `prefix = None` this is exactly
    /// [`Simulator::probe_basis_with`].
    ///
    /// # Panics
    ///
    /// Panics if any qubit count differs or `basis` is out of range.
    #[must_use]
    pub fn probe_stimulus_with(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        prefix: Option<&Circuit>,
        basis: u64,
        workspace: &mut ProbeWorkspace,
    ) -> Complex {
        self.probe_stimulus_while(g, g_prime, prefix, basis, workspace, &|| true)
            .expect("unconditional probe cannot be cancelled")
    }

    /// Like [`Simulator::probe_stimulus_with`], but polls `keep_going`
    /// between gate applications — the cancellable variant for worker
    /// pools. Returns `None` if the probe was abandoned mid-run.
    ///
    /// # Panics
    ///
    /// Panics if any qubit count differs or `basis` is out of range.
    #[must_use]
    pub fn probe_stimulus_while(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        prefix: Option<&Circuit>,
        basis: u64,
        workspace: &mut ProbeWorkspace,
        keep_going: &dyn Fn() -> bool,
    ) -> Option<Complex> {
        assert_eq!(
            g.n_qubits(),
            g_prime.n_qubits(),
            "circuits must have equal qubit counts"
        );
        workspace.left.reset_to_basis(basis);
        if let Some(prefix) = prefix {
            // The preparation runs once; both branches start from its
            // output.
            if !self.apply_to_state_while(prefix, &mut workspace.left, keep_going) {
                return None;
            }
        }
        workspace.right.copy_from(&workspace.left);
        if !self.apply_to_state_while(g, &mut workspace.left, keep_going)
            || !self.apply_to_state_while(g_prime, &mut workspace.right, keep_going)
        {
            return None;
        }
        Some(workspace.left.inner_product(&workspace.right))
    }

    /// Batched variant of [`Simulator::probe_stimulus_while`]: runs every
    /// stimulus of the batch through both circuits simultaneously, with
    /// each gate decoded once and streamed across all lanes of a shared
    /// arena (see [`BatchWorkspace`]).
    ///
    /// Each stimulus is a `(basis, prefix)` pair as in the single-stimulus
    /// probe. Returns the per-lane overlaps `⟨u|u′⟩` in stimulus order, or
    /// `None` if the whole batch was abandoned because `keep_going`
    /// returned `false` (polled once per gate, amortized over the batch).
    ///
    /// Per lane, the floating-point operations — gate kernels and the
    /// ascending-index overlap summation — are identical to the
    /// single-stimulus path, so every returned overlap is bit-identical to
    /// what [`Simulator::probe_stimulus_while`] would produce for that
    /// stimulus alone. Batched kernels always run sequentially; batching
    /// replaces kernel-level threading as the throughput lever.
    ///
    /// # Panics
    ///
    /// Panics if any qubit count differs, the batch is empty, or a basis
    /// is out of range.
    #[must_use]
    pub fn probe_stimuli_batch_while<'w>(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimuli: &[(u64, Option<&Circuit>)],
        workspace: &'w mut BatchWorkspace,
        keep_going: &dyn Fn() -> bool,
    ) -> Option<&'w [Complex]> {
        assert_eq!(
            g.n_qubits(),
            g_prime.n_qubits(),
            "circuits must have equal qubit counts"
        );
        assert_eq!(
            g.n_qubits(),
            workspace.n_qubits,
            "workspace sized for a different register"
        );
        let lanes = stimuli.len();
        assert!(lanes > 0, "need at least one stimulus");
        let dim = 1usize << workspace.n_qubits;
        workspace.left.clear();
        workspace.left.resize(dim * lanes, Complex::ZERO);
        // Prepare each lane's stimulus in the scratch register, then
        // scatter it into its lane column of the arena.
        for (lane, &(basis, prefix)) in stimuli.iter().enumerate() {
            workspace.scratch.reset_to_basis(basis);
            if let Some(prefix) = prefix {
                if !self.apply_to_state_while(prefix, &mut workspace.scratch, keep_going) {
                    return None;
                }
            }
            for (i, &amp) in workspace.scratch.amplitudes().iter().enumerate() {
                workspace.left[i * lanes + lane] = amp;
            }
        }
        workspace.right.clear();
        workspace.right.extend_from_slice(&workspace.left);
        for gate in g.gates() {
            if !keep_going() {
                return None;
            }
            Self::apply_gate_batch(&mut workspace.left, lanes, gate);
        }
        for gate in g_prime.gates() {
            if !keep_going() {
                return None;
            }
            Self::apply_gate_batch(&mut workspace.right, lanes, gate);
        }
        // Per-lane overlaps accumulated in ascending amplitude order — the
        // exact summation order of `StateVector::inner_product`.
        workspace.overlaps.clear();
        workspace.overlaps.resize(lanes, Complex::ZERO);
        for i in 0..dim {
            let row = i * lanes;
            for (lane, acc) in workspace.overlaps.iter_mut().enumerate() {
                *acc += workspace.left[row + lane].conj() * workspace.right[row + lane];
            }
        }
        Some(&workspace.overlaps)
    }

    /// Applies one gate across all lanes of a lane-major arena, mirroring
    /// the kernel dispatch of [`Simulator::apply_gate`].
    fn apply_gate_batch(arena: &mut [Complex], lanes: usize, gate: &Gate) {
        debug_assert!(
            (lanes << gate.max_qubit()) < arena.len(),
            "gate {gate} exceeds the arena's register"
        );
        let control_mask: usize = gate.controls().iter().map(|&q| 1usize << q).sum();
        match gate.kind() {
            GateKind::Swap => {
                let (a, b) = (gate.targets()[0], gate.targets()[1]);
                kernels::apply_controlled_swap_batch(arena, lanes, control_mask, a, b);
            }
            kind => {
                let m = kind.base_matrix().expect("single-target kind");
                kernels::apply_controlled_single_batch(
                    arena,
                    lanes,
                    control_mask,
                    gate.target(),
                    &m,
                );
            }
        }
    }
}

/// Reusable pair of state buffers for repeated equivalence probes.
///
/// Each worker of a checker pool owns one workspace; every probe then runs
/// without heap allocation. See [`Simulator::probe_basis_with`].
#[derive(Debug, Clone)]
pub struct ProbeWorkspace {
    left: StateVector,
    right: StateVector,
}

impl ProbeWorkspace {
    /// Creates a workspace for `n_qubits`-qubit probes.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is zero or exceeds [`StateVector::MAX_QUBITS`].
    #[must_use]
    pub fn new(n_qubits: usize) -> Self {
        ProbeWorkspace {
            left: StateVector::zero(n_qubits),
            right: StateVector::zero(n_qubits),
        }
    }

    /// The register size the buffers are allocated for.
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.left.n_qubits()
    }

    /// The output state of `G` from the most recent probe.
    #[must_use]
    pub fn left(&self) -> &StateVector {
        &self.left
    }

    /// The output state of `G'` from the most recent probe.
    #[must_use]
    pub fn right(&self) -> &StateVector {
        &self.right
    }
}

/// Reusable arena for batched equivalence probes.
///
/// Holds `k` state vectors per branch in a single lane-major allocation:
/// amplitude `i` of lane `l` lives at `arena[i * k + l]`, so a gate kernel
/// visiting an amplitude pair touches `2k` contiguous complex values. The
/// arena buffers grow to the largest batch probed and are reused across
/// batches without reallocation; `k` is taken from each call's stimulus
/// slice, so one workspace serves any batch size.
///
/// See [`Simulator::probe_stimuli_batch_while`].
#[derive(Debug, Clone)]
pub struct BatchWorkspace {
    n_qubits: usize,
    left: Vec<Complex>,
    right: Vec<Complex>,
    scratch: StateVector,
    overlaps: Vec<Complex>,
}

impl BatchWorkspace {
    /// Creates a workspace for `n_qubits`-qubit batched probes. Arena
    /// storage is allocated lazily on first probe.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is zero or exceeds [`StateVector::MAX_QUBITS`].
    #[must_use]
    pub fn new(n_qubits: usize) -> Self {
        BatchWorkspace {
            n_qubits,
            left: Vec::new(),
            right: Vec::new(),
            scratch: StateVector::zero(n_qubits),
            overlaps: Vec::new(),
        }
    }

    /// The register size the workspace probes.
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }
}

// Worker pools fan simulations out across scoped threads; keep the
// simulator's thread-safety a compile-time guarantee.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Simulator>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::generators;

    #[test]
    fn ghz_state_has_two_peaks() {
        let out = Simulator::new().run_basis(&generators::ghz(4), 0);
        assert!((out.probability(0) - 0.5).abs() < 1e-10);
        assert!((out.probability(0b1111) - 0.5).abs() < 1e-10);
        assert!(out.is_normalized());
    }

    #[test]
    fn matches_dense_reference_on_random_circuits() {
        let sim = Simulator::new();
        for seed in 0..4 {
            let c = generators::random_clifford_t(5, 80, seed);
            let u = qcirc::dense::unitary(&c);
            for basis in [0u64, 7, 19, 31] {
                let got = sim.run_basis(&c, basis);
                let expect = u.column(basis as usize);
                for (a, b) in got.amplitudes().iter().zip(expect.iter()) {
                    assert!(a.approx_eq(*b), "seed {seed} basis {basis}");
                }
            }
        }
    }

    #[test]
    fn circuit_then_inverse_is_identity() {
        let sim = Simulator::new();
        let c = generators::qft(5, true);
        let mut roundtrip = c.clone();
        roundtrip.append(&c.inverse());
        for basis in [0u64, 5, 21, 31] {
            let out = sim.run_basis(&roundtrip, basis);
            assert!(out.probability(basis) > 1.0 - 1e-9);
        }
    }

    #[test]
    fn adder_computes_sums_on_basis_states() {
        // Cuccaro layout: cin=0, b = 1..=n, a = n+1..=2n, cout = 2n+1.
        let n = 3;
        let adder = generators::cuccaro_adder(n);
        let sim = Simulator::new();
        for (a_val, b_val, cin) in [
            (1u64, 2u64, 0u64),
            (5, 3, 0),
            (7, 7, 1),
            (0, 0, 1),
            (6, 1, 1),
        ] {
            let input = cin | (b_val << 1) | (a_val << (1 + n));
            let out = sim.run_basis(&adder, input);
            let sum = a_val + b_val + cin;
            let expected_b = sum & ((1 << n) - 1);
            let carry = (sum >> n) & 1;
            let expected = cin | (expected_b << 1) | (a_val << (1 + n)) | (carry << (2 * n + 1));
            assert!(
                out.probability(expected) > 1.0 - 1e-9,
                "a={a_val} b={b_val} cin={cin}: expected basis {expected:b}, state {out}"
            );
        }
    }

    #[test]
    fn probe_basis_detects_difference() {
        let sim = Simulator::new();
        let g = generators::ghz(3);
        let mut g_prime = g.clone();
        g_prime.x(2);
        let p = sim.probe_basis(&g, &g_prime, 0);
        assert!(!p.approx_one());
        let same = sim.probe_basis(&g, &g.clone(), 0);
        assert!(same.approx_one());
    }

    #[test]
    fn grover_amplifies_marked_element() {
        let k = 4;
        let marked = 0b1011u64;
        let c = generators::grover(k, marked, generators::optimal_grover_iterations(k));
        let out = Simulator::new().run_basis(&c, 0);
        let p = out.probability(marked);
        assert!(p > 0.9, "Grover should amplify the marked element, got {p}");
    }

    #[test]
    fn supremacy_circuit_spreads_amplitude() {
        let c = generators::supremacy_2d(2, 2, 8, 3);
        let out = Simulator::new().run_basis(&c, 0);
        assert!(out.is_normalized());
        // Porter-Thomas-like: no basis state should dominate.
        for i in 0..16 {
            assert!(out.probability(i) < 0.9);
        }
    }

    #[test]
    fn workspace_probe_matches_allocating_probe() {
        let sim = Simulator::new();
        let g = generators::qft(5, true);
        let mut buggy = g.clone();
        buggy.z(2);
        let mut ws = ProbeWorkspace::new(5);
        assert_eq!(ws.n_qubits(), 5);
        for basis in [0u64, 3, 17, 30, 9] {
            let fresh = sim.probe_basis(&g, &buggy, basis);
            let reused = sim.probe_basis_with(&g, &buggy, basis, &mut ws);
            assert!(fresh.approx_eq(reused), "basis {basis}");
            assert!(ws.left().is_normalized() && ws.right().is_normalized());
        }
    }

    #[test]
    fn cancelled_probe_returns_none() {
        use std::cell::Cell;
        let sim = Simulator::new();
        let g = generators::qft(4, true);
        let mut ws = ProbeWorkspace::new(4);
        // Allow a few gates, then pull the plug mid-circuit.
        let budget = Cell::new(3usize);
        let keep_going = || {
            let left = budget.get();
            budget.set(left.saturating_sub(1));
            left > 0
        };
        assert_eq!(sim.probe_basis_while(&g, &g, 0, &mut ws, &keep_going), None);
        // An unconstrained probe still works on the same workspace.
        let overlap = sim.probe_basis_while(&g, &g, 0, &mut ws, &|| true);
        assert!(overlap.expect("not cancelled").approx_one());
    }

    #[test]
    fn run_basis_into_matches_run_basis() {
        let sim = Simulator::for_worker();
        let c = generators::grover(4, 6, 2);
        let mut reused = qsim_state_scratch();
        for basis in [0u64, 5, 11, 15, 2] {
            sim.run_basis_into(&c, basis, &mut reused);
            assert_eq!(reused, sim.run_basis(&c, basis), "basis {basis}");
        }
    }

    fn qsim_state_scratch() -> StateVector {
        // Deliberately dirty scratch: reset_to_basis must clear it fully.
        let mut s = StateVector::zero(4);
        Simulator::new().run_inplace(&generators::ghz(4), &mut s);
        s
    }

    #[test]
    #[should_panic(expected = "qubit counts differ")]
    fn mismatched_state_rejected() {
        let c = generators::bell();
        let mut s = StateVector::zero(3);
        Simulator::new().run_inplace(&c, &mut s);
    }

    #[test]
    fn batched_probe_is_bit_identical_to_single_probes() {
        let sim = Simulator::new();
        let n = 5;
        let g = generators::qft(n, true);
        let mut buggy = g.clone();
        buggy.z(2);
        let prefix = generators::ghz(n);
        let mut single = ProbeWorkspace::new(n);
        let mut batch = BatchWorkspace::new(n);
        assert_eq!(batch.n_qubits(), n);
        let bases = [0u64, 3, 17, 30, 9, 22, 7, 12];
        for lanes in [1usize, 3, 8] {
            for use_prefix in [false, true] {
                let prefix = use_prefix.then_some(&prefix);
                let stimuli: Vec<(u64, Option<&qcirc::Circuit>)> =
                    bases[..lanes].iter().map(|&b| (b, prefix)).collect();
                let overlaps = sim
                    .probe_stimuli_batch_while(&g, &buggy, &stimuli, &mut batch, &|| true)
                    .expect("not cancelled")
                    .to_vec();
                for (lane, &(basis, prefix)) in stimuli.iter().enumerate() {
                    let want = sim.probe_stimulus_with(&g, &buggy, prefix, basis, &mut single);
                    assert_eq!(
                        overlaps[lane], want,
                        "lanes={lanes} lane={lane} prefix={use_prefix}"
                    );
                }
            }
        }
    }

    #[test]
    fn cancelled_batched_probe_returns_none() {
        use std::cell::Cell;
        let sim = Simulator::new();
        let g = generators::qft(4, true);
        let mut ws = BatchWorkspace::new(4);
        let budget = Cell::new(3usize);
        let keep_going = || {
            let left = budget.get();
            budget.set(left.saturating_sub(1));
            left > 0
        };
        let stimuli: Vec<(u64, Option<&qcirc::Circuit>)> =
            [0u64, 5].iter().map(|&b| (b, None)).collect();
        assert!(sim
            .probe_stimuli_batch_while(&g, &g, &stimuli, &mut ws, &keep_going)
            .is_none());
        // The workspace is reusable after a cancelled batch.
        let overlaps = sim
            .probe_stimuli_batch_while(&g, &g, &stimuli, &mut ws, &|| true)
            .expect("not cancelled");
        assert!(overlaps.iter().all(|o| o.approx_one()));
    }
}
