//! Runs a fault-injection campaign: the paper's detection-power
//! evaluation, automated end-to-end.
//!
//! Compiled benchmark pairs (mapped, optimized, decomposed — at least
//! three families) are seeded with faults from every `qfault` error class;
//! each faulty pair runs through the full checking flow and the per-class
//! detection statistics are aggregated by [`qcec::campaign`].
//!
//! Output: deterministic JSON on stdout (byte-identical across runs with
//! the same seed — wall-clock timings only appear with `--timings`), a
//! human-readable Markdown report on stderr (or in `--out FILE`).
//!
//! ```text
//! cargo run --release -p bench --bin campaign -- \
//!     --seed 7 --trials 5 --faults 1 --sims 10 --threads 2 --scale 0
//! ```
//!
//! `--stimuli basis,product,stabilizer` ablates over stimulus strategies
//! (every fault is checked once per strategy); `--backend sv,dd,stab,mps`
//! does the same over simulation engines, `--scheme
//! sequential,onetoone,proportional,gatecost` over the alternating
//! check's gate-application schemes, `--chi 1,16,64` over the MPS
//! engine's bond-dimension cap, and `--batch 1,8` over the probe batch
//! size — every arm sees the identical faults, so a detection difference
//! is attributable to the axis alone (and for `--batch` the arms must be
//! identical outright: per-stimulus outcomes are bit-identical at any
//! batch size, making the axis a built-in self-check).
//! `--compose K` stacks `K − 1` extra mixed-class faults on top of each
//! trial's own (modelling multi-fault compiler bugs); `--peel` strips the
//! shared Clifford rim off every pair before checking. `--pair
//! golden,faulty` (repeatable; `.qasm` or `.real` files) switches to
//! *pair-audit* mode: instead of the synthetic campaign, each explicit
//! pair is labelled by the guard and checked `--trials` times per strategy
//! with the simulation stage alone, measuring raw detection power.
//!
//! `--inject CLASS[,CLASS...]` (or `--inject all`) switches `--pair` to
//! single-file form: each `--pair FILE` names one imported netlist used as
//! its own golden, and the campaign synthesizes guard-labelled mutants of
//! the chosen classes from it — fault-injection sweeps over external
//! netlists instead of the built-in generator set. Without `--pair`,
//! `--inject` filters the synthetic campaign to the given classes (seeds
//! stay aligned with the full run).

use std::io::Write as _;
use std::process::exit;

use qcec::campaign::{audit_pair, run_campaign, CampaignBenchmark, CampaignConfig, CompileRoute};
use qcec::{ApplicationScheme, BackendKind, StimulusStrategy};
use qcirc::generators;
use qcirc::mapping::CouplingMap;
use qfault::MutationKind;

struct Args {
    seed: u64,
    trials: usize,
    faults: usize,
    compose: usize,
    peel: bool,
    sims: usize,
    threads: usize,
    trial_threads: usize,
    guard_cache: bool,
    scale: usize,
    epsilon: f64,
    timings: bool,
    out: Option<String>,
    stimuli: Vec<StimulusStrategy>,
    backends: Vec<BackendKind>,
    schemes: Vec<ApplicationScheme>,
    chis: Option<Vec<usize>>,
    batches: Option<Vec<usize>>,
    pairs: Vec<String>,
    inject: Option<Vec<MutationKind>>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            seed: 7,
            trials: 5,
            faults: 1,
            compose: 1,
            peel: false,
            sims: 10,
            threads: 2,
            trial_threads: 1,
            guard_cache: true,
            scale: bench::scale_from_env(),
            epsilon: 0.1,
            timings: false,
            out: None,
            stimuli: vec![StimulusStrategy::Random],
            backends: vec![BackendKind::Statevector],
            schemes: vec![ApplicationScheme::Proportional],
            chis: None,
            batches: None,
            pairs: Vec::new(),
            inject: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: campaign [--seed N] [--trials N] [--faults N] [--compose K] \
         [--sims N] [--threads N] [--trial-threads N] [--no-guard-cache] \
         [--scale 0|1] [--epsilon X] [--peel] [--timings] [--out FILE] \
         [--stimuli S[,S...]] [--backend B[,B...]] [--scheme A[,A...]] \
         [--chi N[,N...]] [--batch K[,K...]] [--pair GOLDEN,FAULTY]... \
         [--inject CLASS[,CLASS...]|all [--pair FILE]...]\n\
         stimulus strategies: basis|sequential|product|stabilizer\n\
         backends: sv|dd|stab|mps|auto\n\
         application schemes: sequential|onetoone|proportional|gatecost\n\
         fault classes: remove_gate|add_gate|remove_control|add_control|\
         swap_targets|perturb_angle|swap_adjacent_gates|relabel_qubits"
    );
    exit(2);
}

fn parse_inject(spec: &str) -> Vec<MutationKind> {
    if spec.trim().eq_ignore_ascii_case("all") {
        return MutationKind::ALL.to_vec();
    }
    let classes: Vec<MutationKind> = spec
        .split(',')
        .map(|s| {
            MutationKind::from_slug(s.trim()).unwrap_or_else(|| {
                eprintln!("unknown fault class `{s}`");
                usage()
            })
        })
        .collect();
    if classes.is_empty() {
        usage();
    }
    classes
}

fn parse_stimuli(spec: &str) -> Vec<StimulusStrategy> {
    let strategies: Vec<StimulusStrategy> = spec
        .split(',')
        .map(|s| {
            StimulusStrategy::parse(s).unwrap_or_else(|e| {
                eprintln!("{e}");
                usage()
            })
        })
        .collect();
    if strategies.is_empty() {
        usage();
    }
    strategies
}

fn parse_backends(spec: &str) -> Vec<BackendKind> {
    let backends: Vec<BackendKind> = spec
        .split(',')
        .map(|s| {
            BackendKind::parse(s).unwrap_or_else(|e| {
                eprintln!("{e}");
                usage()
            })
        })
        .collect();
    if backends.is_empty() {
        usage();
    }
    backends
}

fn parse_schemes(spec: &str) -> Vec<ApplicationScheme> {
    let schemes: Vec<ApplicationScheme> = spec
        .split(',')
        .map(|s| {
            ApplicationScheme::parse(s).unwrap_or_else(|e| {
                eprintln!("{e}");
                usage()
            })
        })
        .collect();
    if schemes.is_empty() {
        usage();
    }
    schemes
}

fn parse_chis(spec: &str) -> Vec<usize> {
    let chis: Vec<usize> = spec
        .split(',')
        .map(|s| match s.trim().parse() {
            Ok(chi) if chi > 0 => chi,
            _ => {
                eprintln!("--chi expects positive bond-dimension caps (got `{s}`)");
                usage()
            }
        })
        .collect();
    if chis.is_empty() {
        usage();
    }
    chis
}

fn parse_batches(spec: &str) -> Vec<usize> {
    let batches: Vec<usize> = spec
        .split(',')
        .map(|s| match s.trim().parse() {
            Ok(k) if k > 0 => k,
            _ => {
                eprintln!("--batch expects positive batch sizes (got `{s}`)");
                usage()
            }
        })
        .collect();
    if batches.is_empty() {
        usage();
    }
    batches
}

fn parse_pair(spec: &str) -> (String, String) {
    match spec.split_once(',') {
        Some((golden, faulty)) if !golden.is_empty() && !faulty.is_empty() => {
            (golden.to_string(), faulty.to_string())
        }
        _ => {
            eprintln!("--pair expects GOLDEN,FAULTY file paths");
            usage()
        }
    }
}

fn load_circuit(path: &str) -> qcirc::Circuit {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    let parsed = if path.ends_with(".real") {
        qcirc::real::parse(&text).map_err(|e| e.to_string())
    } else {
        qcirc::qasm::parse(&text).map_err(|e| e.to_string())
    };
    parsed.unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        exit(1);
    })
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--seed" => args.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--trials" => args.trials = val("--trials").parse().unwrap_or_else(|_| usage()),
            "--faults" => args.faults = val("--faults").parse().unwrap_or_else(|_| usage()),
            "--compose" => {
                args.compose = val("--compose").parse().unwrap_or_else(|_| usage());
                if args.compose == 0 {
                    eprintln!("--compose needs a width of at least 1");
                    usage();
                }
            }
            "--peel" => args.peel = true,
            "--sims" => args.sims = val("--sims").parse().unwrap_or_else(|_| usage()),
            "--threads" => args.threads = val("--threads").parse().unwrap_or_else(|_| usage()),
            "--trial-threads" => {
                args.trial_threads = val("--trial-threads").parse().unwrap_or_else(|_| usage());
            }
            "--no-guard-cache" => args.guard_cache = false,
            "--scale" => args.scale = val("--scale").parse().unwrap_or_else(|_| usage()),
            "--epsilon" => args.epsilon = val("--epsilon").parse().unwrap_or_else(|_| usage()),
            "--timings" => args.timings = true,
            "--out" => args.out = Some(val("--out")),
            "--stimuli" => args.stimuli = parse_stimuli(&val("--stimuli")),
            "--backend" => args.backends = parse_backends(&val("--backend")),
            "--scheme" => args.schemes = parse_schemes(&val("--scheme")),
            "--chi" => args.chis = Some(parse_chis(&val("--chi"))),
            "--batch" => args.batches = Some(parse_batches(&val("--batch"))),
            "--pair" => args.pairs.push(val("--pair")),
            "--inject" => args.inject = Some(parse_inject(&val("--inject"))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    args
}

/// The campaign's benchmark set: every compile route, ≥ 3 circuit
/// families, registers small enough that the guard's complete check stays
/// instant. `scale ≥ 1` widens the sweep; `scale ≥ 2` adds the 16-qubit
/// adder used for the backend comparison.
fn benchmarks(scale: usize) -> Vec<CampaignBenchmark> {
    let mut set = vec![
        CampaignBenchmark::compile(
            "ghz 5",
            "ghz",
            &generators::ghz(5),
            &CompileRoute::Map(CouplingMap::linear(5)),
        ),
        CampaignBenchmark::compile(
            "qft 5",
            "qft",
            &generators::qft(5, true),
            &CompileRoute::Optimize,
        ),
        CampaignBenchmark::compile(
            "grover 3",
            "grover",
            &generators::grover(3, 5, generators::optimal_grover_iterations(3)),
            &CompileRoute::Decompose,
        ),
    ];
    if scale >= 1 {
        set.push(CampaignBenchmark::compile(
            "bv 6",
            "bv",
            &generators::bernstein_vazirani(6, 0b101101),
            &CompileRoute::Map(CouplingMap::linear(7)),
        ));
        set.push(CampaignBenchmark::compile(
            "qft 8",
            "qft",
            &generators::qft(8, true),
            &CompileRoute::Map(CouplingMap::ring(8)),
        ));
        set.push(CampaignBenchmark::compile(
            "toffnet 8",
            "toffnet",
            &generators::toffoli_network(8, 30, 3, 11),
            &CompileRoute::Decompose,
        ));
    }
    if scale >= 2 {
        // 16-qubit arithmetic: the structured register the DD backend keeps
        // polynomially small while the dense path burns two 2¹⁶ buffers per
        // probe — the fixture behind the backend comparison in
        // EXPERIMENTS.md.
        set.push(CampaignBenchmark::compile(
            "adder 16",
            "adder",
            &generators::cuccaro_adder(7),
            &CompileRoute::Optimize,
        ));
    }
    set
}

/// Pair-audit mode: label each explicit golden/faulty pair with the guard,
/// then measure each stimulus strategy's raw (simulation-only) detection
/// power on it. Markdown → stderr/`--out`, JSON array → stdout.
fn run_pair_audits(args: &Args, config: &CampaignConfig) {
    let mut markdown = String::new();
    let mut json = Vec::new();
    for spec in &args.pairs {
        let (golden_path, faulty_path) = &parse_pair(spec);
        let golden = load_circuit(golden_path);
        let faulty = load_circuit(faulty_path);
        if golden.n_qubits() != faulty.n_qubits() {
            eprintln!(
                "pair {golden_path},{faulty_path}: qubit counts differ ({} vs {})",
                golden.n_qubits(),
                faulty.n_qubits()
            );
            exit(1);
        }
        let name = faulty_path
            .rsplit('/')
            .next()
            .unwrap_or(faulty_path)
            .to_string();
        let audit = audit_pair(&name, &golden, &faulty, config);
        markdown.push_str(&audit.to_markdown());
        markdown.push('\n');
        json.push(audit.to_json());
    }

    match &args.out {
        Some(path) => {
            let mut f = std::fs::File::create(path).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                exit(1);
            });
            f.write_all(markdown.as_bytes()).expect("write report");
            eprintln!("report written to {path}");
        }
        None => eprint!("{markdown}"),
    }
    println!("[{}]", json.join(","));
}

/// `--inject` + `--pair FILE` mode: each imported netlist is its own
/// golden, and the campaign synthesizes guard-labelled mutants of the
/// selected classes from it.
fn netlist_benchmarks(paths: &[String]) -> Vec<CampaignBenchmark> {
    paths
        .iter()
        .map(|path| {
            if path.contains(',') {
                eprintln!("--inject expects single-file --pair FILE arguments (got `{path}`)");
                usage();
            }
            let circuit = load_circuit(path);
            let name = path.rsplit('/').next().unwrap_or(path).to_string();
            let family = name
                .trim_end_matches(".qasm")
                .trim_end_matches(".real")
                .to_string();
            CampaignBenchmark {
                name,
                family,
                original: circuit.clone(),
                alternative: circuit,
            }
        })
        .collect()
}

fn main() {
    let args = parse_args();
    let mut config = CampaignConfig::default()
        .with_seed(args.seed)
        .with_trials(args.trials)
        .with_faults(args.faults)
        .with_compose(args.compose)
        .with_peel(args.peel)
        .with_simulations(args.sims)
        .with_threads(args.threads)
        .with_trial_threads(args.trial_threads)
        .with_guard_cache(args.guard_cache)
        .with_epsilon(args.epsilon)
        .with_strategies(args.stimuli.clone())
        .with_backends(args.backends.clone())
        .with_schemes(args.schemes.clone());
    if let Some(chis) = &args.chis {
        config = config.with_chis(chis.clone());
    }
    if let Some(batches) = &args.batches {
        config = config.with_batches(batches.clone());
    }
    if let Some(classes) = &args.inject {
        config = config.with_classes(classes.clone());
    }

    if !args.pairs.is_empty() && args.inject.is_none() {
        run_pair_audits(&args, &config);
        return;
    }

    let set = if args.inject.is_some() && !args.pairs.is_empty() {
        netlist_benchmarks(&args.pairs)
    } else {
        benchmarks(args.scale)
    };
    eprintln!(
        "campaign: {} benchmarks x {} strategies x {} classes x {} trials (seed {})",
        set.len(),
        config.strategies.len(),
        config.classes.len(),
        config.trials,
        config.seed,
    );

    let result = run_campaign(&set, &config);

    let markdown = result.to_markdown();
    match &args.out {
        Some(path) => {
            let mut f = std::fs::File::create(path).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                exit(1);
            });
            f.write_all(markdown.as_bytes()).expect("write report");
            eprintln!("report written to {path}");
        }
        None => eprint!("{markdown}"),
    }

    println!("{}", result.to_json(args.timings));

    // A campaign that confirmed no fault at all is a broken campaign.
    let faults: usize = result.classes.iter().map(|(_, s)| s.faults).sum();
    if faults == 0 {
        eprintln!("error: no guard-confirmed fault in the whole campaign");
        exit(1);
    }
}
