//! Seeded random circuit families.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind};

/// Builds a random Clifford+T circuit with `m` gates on `n` qubits, fully
/// determined by `seed`.
///
/// Gates are drawn uniformly from `{H, S, S†, T, T†, X, Z, CX}` with random
/// (distinct) qubits. This family models generic gate-level workloads and is
/// handy for property tests (e.g. "optimization preserves the unitary").
///
/// # Panics
///
/// Panics if `n == 0`, or if `n < 2` while `m > 0` (CX needs two qubits).
#[must_use]
pub fn random_clifford_t(n: usize, m: usize, seed: u64) -> Circuit {
    assert!(n >= 2 || m == 0, "random circuits need at least 2 qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::with_name(n, format!("random_ct_{n}_{m}"));
    let one_qubit = [
        GateKind::H,
        GateKind::S,
        GateKind::Sdg,
        GateKind::T,
        GateKind::Tdg,
        GateKind::X,
        GateKind::Z,
    ];
    for _ in 0..m {
        if rng.gen_bool(0.3) {
            let qs = sample_distinct(&mut rng, n, 2);
            c.cx(qs[0], qs[1]);
        } else {
            let kind = *one_qubit.choose(&mut rng).expect("non-empty");
            c.push(Gate::single(kind, rng.gen_range(0..n)));
        }
    }
    c
}

/// Builds a random reversible Toffoli network: `m` multi-controlled X gates
/// on `n` lines, each with 0 to `max_controls` controls, fully determined by
/// `seed`.
///
/// This is the workspace's stand-in for the RevLib benchmark class
/// (`urf4_187`, `hwb9_119`, …): reversible Boolean netlists whose
/// "alternative realization" in the paper's Table I is the decomposed,
/// mapped version with enormous gate counts (see DESIGN.md).
///
/// # Panics
///
/// Panics if `n == 0` or `max_controls >= n`.
#[must_use]
pub fn toffoli_network(n: usize, m: usize, max_controls: usize, seed: u64) -> Circuit {
    assert!(n > 0, "network needs at least one line");
    assert!(
        max_controls < n,
        "a gate with {max_controls} controls needs more than {n} lines"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::with_name(n, format!("toffoli_net_{n}_{m}"));
    for _ in 0..m {
        let k = rng.gen_range(0..=max_controls);
        let qs = sample_distinct(&mut rng, n, k + 1);
        let (target, controls) = qs.split_last().expect("k+1 >= 1");
        if controls.is_empty() {
            c.x(*target);
        } else {
            c.mcx(controls.to_vec(), *target);
        }
    }
    c
}

/// Samples `k` distinct qubit indices from `0..n`.
fn sample_distinct(rng: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    debug_assert!(k <= n);
    let mut all: Vec<usize> = (0..n).collect();
    all.shuffle(rng);
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clifford_t_is_deterministic() {
        assert_eq!(random_clifford_t(4, 50, 1), random_clifford_t(4, 50, 1));
        assert_ne!(random_clifford_t(4, 50, 1), random_clifford_t(4, 50, 2));
    }

    #[test]
    fn clifford_t_has_requested_size() {
        let c = random_clifford_t(5, 123, 9);
        assert_eq!(c.len(), 123);
        assert_eq!(c.n_qubits(), 5);
    }

    #[test]
    fn clifford_t_gates_fit_basis() {
        let c = random_clifford_t(4, 200, 3);
        assert!(c.is_elementary());
    }

    #[test]
    fn toffoli_network_respects_max_controls() {
        let c = toffoli_network(6, 100, 3, 11);
        assert_eq!(c.len(), 100);
        assert!(c.max_controls() <= 3);
        for g in c.gates() {
            assert_eq!(g.kind().mnemonic(), "x");
        }
    }

    #[test]
    fn toffoli_network_is_deterministic() {
        assert_eq!(toffoli_network(5, 40, 2, 7), toffoli_network(5, 40, 2, 7));
    }

    #[test]
    #[should_panic(expected = "controls")]
    fn too_many_controls_rejected() {
        let _ = toffoli_network(3, 10, 3, 0);
    }
}
