//! Service-layer invariants: content-addressed fingerprints, the verdict
//! cache's byte-replay contract, and batch determinism across worker
//! counts.

use std::sync::Arc;

use proptest::prelude::*;
use qcec::service::Provenance;
use qcec::{CircuitId, Config, EquivalenceCheckingManager, VerdictCache};
use qcirc::{generators, Circuit};
use qfault::{guard, mutator_for, GuardOptions, MutationKind};
use rand::SeedableRng;

fn circuit_seed() -> impl Strategy<Value = (usize, u64)> {
    (3usize..6, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fingerprint is a pure function of the circuit as written: two
    /// independent constructions from the same seed — and a clone — share
    /// one [`CircuitId`].
    #[test]
    fn equal_circuits_share_a_circuit_id((n, seed) in circuit_seed()) {
        let a = generators::random_clifford_t(n, 40, seed);
        let b = generators::random_clifford_t(n, 40, seed);
        prop_assert_eq!(CircuitId::of(&a), CircuitId::of(&b));
        prop_assert_eq!(CircuitId::of(&a), CircuitId::of(&a.clone()));
    }

    /// Any mutation the guard proves to be a real fault changed the
    /// written gate list, so it must land on a different [`CircuitId`] —
    /// the cache can never serve a faulty circuit its golden verdict.
    #[test]
    fn fault_mutations_change_the_circuit_id(
        (n, seed) in circuit_seed(),
        kind_sel in 0usize..MutationKind::ALL.len(),
    ) {
        let golden = generators::random_clifford_t(n, 40, seed);
        let mutator = mutator_for(MutationKind::ALL[kind_sel], 1e-3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        if let Ok((mutated, _)) = mutator.apply(&golden, &mut rng) {
            let verdict = guard::classify(&golden, &mutated, &GuardOptions::default());
            if verdict.is_fault() {
                prop_assert_ne!(CircuitId::of(&golden), CircuitId::of(&mutated));
            }
        }
    }

    /// Writing to QASM and parsing it back lands on the same fingerprint:
    /// serialization is invisible to the cache.
    #[test]
    fn qasm_roundtrip_preserves_fingerprint((n, seed) in circuit_seed()) {
        let c = generators::random_clifford_t(n, 40, seed);
        let parsed = qcirc::qasm::parse(&qcirc::qasm::write(&c)).unwrap();
        prop_assert_eq!(CircuitId::of(&c), CircuitId::of(&parsed));
    }
}

/// A small mixed batch: three distinct jobs (one equivalent, two faulty)
/// plus a duplicate of the first.
fn sample_batch() -> Vec<(String, Circuit, Circuit)> {
    let ghz = generators::ghz(5);
    let ghz_opt = qcirc::optimize::optimize(&ghz);
    let supremacy = generators::supremacy_2d(2, 3, 6, 11);
    let mut flipped = supremacy.clone();
    flipped.x(2);
    let toff = generators::toffoli_network(5, 12, 3, 3);
    let mut dropped = toff.clone();
    dropped.remove(toff.len() / 2);
    vec![
        ("ghz".into(), ghz.clone(), ghz_opt.clone()),
        ("supremacy_flip".into(), supremacy, flipped),
        ("toffoli_drop".into(), toff, dropped),
        ("ghz_again".into(), ghz, ghz_opt),
    ]
}

/// A cache hit replays the exact bytes of the miss that populated it:
/// the default (timings-free) report lines are byte-identical.
#[test]
fn cache_hit_replays_miss_bytes() {
    let config = Config::new().with_simulations(6).with_seed(3);
    let cache = Arc::new(VerdictCache::new(64));

    let mut first = EquivalenceCheckingManager::with_cache(config.clone(), cache.clone());
    first.submit_batch(sample_batch());
    first.run().unwrap();
    assert!(first
        .results()
        .iter()
        .take(3)
        .all(|r| r.provenance == Provenance::Computed));
    assert_eq!(first.results()[3].provenance, Provenance::Deduped);

    let mut second = EquivalenceCheckingManager::with_cache(config, cache.clone());
    second.submit_batch(sample_batch());
    second.run().unwrap();
    assert!(second
        .results()
        .iter()
        .take(3)
        .all(|r| r.provenance == Provenance::CacheHit));

    assert_eq!(first.report_lines(), second.report_lines());
    let stats = cache.stats();
    assert_eq!(stats.misses, 3);
    assert!(stats.hits >= 3);
}

/// The batch queue merges in submission order, so the report stream is
/// byte-identical at any worker count.
#[test]
fn batch_output_is_byte_identical_across_worker_counts() {
    let config = Config::new().with_simulations(6).with_seed(3);
    let mut streams = Vec::new();
    for workers in [1, 2, 8] {
        let mut manager = EquivalenceCheckingManager::new(config.clone()).with_workers(workers);
        manager.submit_batch(sample_batch());
        manager.run().unwrap();
        streams.push(manager.report_lines().to_vec());
    }
    assert_eq!(streams[0], streams[1]);
    assert_eq!(streams[0], streams[2]);
}

/// The persisted stream file holds exactly the in-memory lines, and reads
/// back verbatim.
#[test]
fn stream_file_replays_report_lines() {
    let dir = std::env::temp_dir().join(format!("qcec-service-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stream.jsonl");
    let _ = std::fs::remove_file(&path);

    let config = Config::new().with_simulations(6).with_seed(3);
    let mut manager = EquivalenceCheckingManager::new(config).with_stream_path(&path);
    manager.submit_batch(sample_batch());
    manager.run().unwrap();

    let replayed = EquivalenceCheckingManager::read_stream(&path).unwrap();
    assert_eq!(replayed, manager.report_lines());
    std::fs::remove_file(&path).unwrap();
}
