//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the benchmarking surface it uses: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: after a short warm-up that sizes
//! the iteration count, each benchmark runs batches until
//! `measurement_time` elapses and reports min / mean / max per-iteration
//! wall time on stdout. That is coarse next to real criterion, but stable
//! enough to compare implementations within one run — which is all the
//! workspace benches need.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a value or the computation behind
/// it.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How [`Bencher::iter_batched`] amortizes setup cost (accepted for API
/// compatibility; the vendored harness always runs one routine call per
/// setup call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One routine call per batch.
    PerIteration,
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing engine handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one call to fault in caches/allocations.
        black_box(routine());
        let budget = self.measurement_time;
        let started = Instant::now();
        while started.elapsed() < budget {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if self.samples.len() >= 10_000 {
                break;
            }
        }
    }

    /// Measures `routine` on fresh inputs from `setup`, excluding the setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let budget = self.measurement_time;
        let started = Instant::now();
        while started.elapsed() < budget {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
            if self.samples.len() >= 10_000 {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<48} no samples collected");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = *self.samples.iter().min().expect("non-empty");
        let max = *self.samples.iter().max().expect("non-empty");
        println!(
            "{id:<48} time: [{} {} {}]  ({} samples)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            self.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples (accepted for API compatibility;
    /// the vendored harness is time-budgeted, not sample-budgeted).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Overrides the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.criterion.measurement_time = budget;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| f(b, input));
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// The top-level benchmark harness.
#[derive(Debug)]
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Short budget: the workspace benches sweep many configurations.
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        self.run_one(id, f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut bencher = Bencher {
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
    }
}

/// Declares a benchmark group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
        };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_batched_iteration_work() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter_batched(
                || vec![n; 8],
                |v| {
                    total += v.iter().sum::<u64>();
                    total
                },
                BatchSize::SmallInput,
            );
        });
        group.finish();
        assert!(total > 0);
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
        assert_eq!(BenchmarkId::new("a", 7).to_string(), "a/7");
    }
}
