//! A lightweight dependency view of a circuit.
//!
//! Gates that share qubits must keep their relative order; everything else
//! may be reordered or executed in parallel. [`layers`] partitions a circuit
//! into maximal parallel layers — the front-layer view the mapping router
//! consumes — and [`Dag`] records, for every gate, the previous gate on each
//! of its qubits, which the optimizer uses to find cancellation partners
//! without quadratic rescans.

use crate::circuit::Circuit;

/// Per-gate predecessor information: for gate `i`, `preds[i]` lists the index
/// of the previous gate on each of its qubits (deduplicated, ascending).
#[derive(Debug, Clone)]
pub struct Dag {
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
}

impl Dag {
    /// Builds the dependency DAG of a circuit in a single scan.
    #[must_use]
    pub fn build(circuit: &Circuit) -> Self {
        let mut last_on_qubit: Vec<Option<usize>> = vec![None; circuit.n_qubits()];
        let mut preds: Vec<Vec<usize>> = Vec::with_capacity(circuit.len());
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); circuit.len()];
        for (i, gate) in circuit.gates().iter().enumerate() {
            let mut ps: Vec<usize> = gate.qubits().filter_map(|q| last_on_qubit[q]).collect();
            ps.sort_unstable();
            ps.dedup();
            for &p in &ps {
                succs[p].push(i);
            }
            preds.push(ps);
            for q in gate.qubits() {
                last_on_qubit[q] = Some(i);
            }
        }
        for s in &mut succs {
            s.dedup();
        }
        Dag { preds, succs }
    }

    /// The direct predecessors of gate `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn predecessors(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// The direct successors of gate `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// The number of gates in the DAG.
    #[must_use]
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Returns `true` if the DAG is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }
}

/// Partitions the circuit into maximal parallel layers: each layer contains
/// gate indices acting on pairwise disjoint qubits, and every gate appears in
/// the earliest layer its dependencies allow. `layers(c).len() == c.depth()`.
#[must_use]
pub fn layers(circuit: &Circuit) -> Vec<Vec<usize>> {
    let mut frontier = vec![0usize; circuit.n_qubits()];
    let mut out: Vec<Vec<usize>> = Vec::new();
    for (i, gate) in circuit.gates().iter().enumerate() {
        let layer = gate.qubits().map(|q| frontier[q]).max().unwrap_or(0);
        if layer == out.len() {
            out.push(Vec::new());
        }
        out[layer].push(i);
        for q in gate.qubits() {
            frontier[q] = layer + 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghzish() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).h(2);
        c
    }

    #[test]
    fn dag_predecessors_follow_qubit_wires() {
        let c = ghzish();
        let dag = Dag::build(&c);
        assert_eq!(dag.len(), 4);
        assert!(dag.predecessors(0).is_empty());
        assert_eq!(dag.predecessors(1), &[0]); // cx(0,1) after h(0)
        assert_eq!(dag.predecessors(2), &[1]); // cx(1,2) after cx(0,1)
        assert_eq!(dag.predecessors(3), &[2]); // h(2) after cx(1,2)
    }

    #[test]
    fn dag_successors_mirror_predecessors() {
        let c = ghzish();
        let dag = Dag::build(&c);
        assert_eq!(dag.successors(0), &[1]);
        assert_eq!(dag.successors(1), &[2]);
        assert_eq!(dag.successors(3), &[] as &[usize]);
    }

    #[test]
    fn shared_predecessor_is_deduplicated() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).swap(0, 1);
        let dag = Dag::build(&c);
        // swap(0,1) depends on cx(0,1) through both qubits — listed once.
        assert_eq!(dag.predecessors(1), &[0]);
    }

    #[test]
    fn layers_match_depth() {
        let c = ghzish();
        let ls = layers(&c);
        assert_eq!(ls.len(), c.depth());
        assert_eq!(ls[0], vec![0]);
        assert_eq!(ls[1], vec![1]);
        assert_eq!(ls[2], vec![2]);
        assert_eq!(ls[3], vec![3]);
    }

    #[test]
    fn parallel_gates_share_a_layer() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3).cx(0, 1).cx(2, 3);
        let ls = layers(&c);
        assert_eq!(ls.len(), 2);
        assert_eq!(ls[0], vec![0, 1, 2, 3]);
        assert_eq!(ls[1], vec![4, 5]);
    }

    #[test]
    fn empty_circuit_has_no_layers() {
        let c = Circuit::new(2);
        assert!(layers(&c).is_empty());
        let dag = Dag::build(&c);
        assert!(dag.is_empty());
    }
}
