//! Tabular reporting of flow results — the shape of the paper's Table I —
//! plus per-stage timing summaries assembled from scheduler events.
//!
//! Every report shape renders both for humans (`Display`, [`Report::to_csv`])
//! and as structured JSON ([`Report::to_json`], [`StageTimings::to_json`])
//! through the tiny [`json`] builder, so campaign output and ad-hoc bench
//! runs share one reporting path.

use std::fmt;
use std::time::Duration;

use crate::config::{ApplicationScheme, BackendKind};
use crate::outcome::{FlowResult, Outcome};
use crate::scheduler::{CancelCause, RunEvent, Stage};

pub mod json {
    //! A minimal, dependency-free JSON emitter.
    //!
    //! The build environment vendors no serialization crates, and the
    //! campaign's reproducibility contract needs full control over field
    //! order and number formatting anyway (two runs with the same seed must
    //! produce *byte-identical* output). Fields render in insertion order;
    //! floats use Rust's shortest round-trip `Display` form.

    /// Escapes a string for use inside a JSON string literal (quotes not
    /// included).
    #[must_use]
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for ch in s.chars() {
            match ch {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// Renders an `f64` as a JSON number (shortest round-trip form; JSON
    /// has no non-finite numbers, so those become `null`).
    #[must_use]
    pub fn number(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }

    /// Joins pre-rendered JSON values into an array literal.
    #[must_use]
    pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
        let items: Vec<String> = items.into_iter().collect();
        format!("[{}]", items.join(","))
    }

    /// An insertion-ordered JSON object builder.
    ///
    /// # Examples
    ///
    /// ```
    /// use qcec::report::json::Obj;
    ///
    /// let mut o = Obj::new();
    /// o.str("name", "qft 4").num("n", 4.0).raw("tags", "[]");
    /// assert_eq!(o.render(), r#"{"name":"qft 4","n":4,"tags":[]}"#);
    /// ```
    #[derive(Debug, Clone, Default)]
    pub struct Obj {
        fields: Vec<(String, String)>,
    }

    impl Obj {
        /// Creates an empty object.
        #[must_use]
        pub fn new() -> Self {
            Obj::default()
        }

        /// Adds a string field.
        pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
            self.fields
                .push((key.to_string(), format!("\"{}\"", escape(value))));
            self
        }

        /// Adds a numeric field.
        pub fn num(&mut self, key: &str, value: f64) -> &mut Self {
            self.fields.push((key.to_string(), number(value)));
            self
        }

        /// Adds an unsigned integer field (rendered without a decimal
        /// point, unlike [`Obj::num`] on whole floats — both are stable).
        pub fn int(&mut self, key: &str, value: u64) -> &mut Self {
            self.fields.push((key.to_string(), value.to_string()));
            self
        }

        /// Adds a boolean field.
        pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
            self.fields.push((key.to_string(), value.to_string()));
            self
        }

        /// Adds a pre-rendered JSON value (object, array, `null`).
        pub fn raw(&mut self, key: &str, rendered: impl Into<String>) -> &mut Self {
            self.fields.push((key.to_string(), rendered.into()));
            self
        }

        /// Renders the object.
        #[must_use]
        pub fn render(&self) -> String {
            let rendered: Vec<String> = self
                .fields
                .iter()
                .map(|(k, v)| format!("\"{}\":{v}", escape(k)))
                .collect();
            format!("{{{}}}", rendered.join(","))
        }
    }
}

/// One row of a benchmark report.
#[derive(Debug, Clone)]
pub struct ReportRow {
    /// Benchmark name.
    pub name: String,
    /// Register size `n`.
    pub n_qubits: usize,
    /// `|G|`.
    pub g_len: usize,
    /// `|G'|`.
    pub g_prime_len: usize,
    /// Which probe backend checked this row, when the caller recorded it
    /// ([`Report::push_with_backend`]). `None` keeps the rendered JSON
    /// byte-identical to reports that predate backend selection.
    pub backend: Option<BackendKind>,
    /// The flow result.
    pub result: FlowResult,
}

/// A collection of rows renderable as a text table or CSV.
///
/// # Examples
///
/// ```
/// use qcec::report::Report;
///
/// # fn main() -> Result<(), qcec::FlowError> {
/// let g = qcirc::generators::ghz(3);
/// let result = qcec::check_equivalence_default(&g, &g)?;
/// let mut report = Report::new();
/// report.push("ghz3", 3, g.len(), g.len(), result);
/// assert!(report.to_csv().contains("ghz3"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Report {
    rows: Vec<ReportRow>,
}

impl Report {
    /// Creates an empty report.
    #[must_use]
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends a row.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        n_qubits: usize,
        g_len: usize,
        g_prime_len: usize,
        result: FlowResult,
    ) {
        self.rows.push(ReportRow {
            name: name.into(),
            n_qubits,
            g_len,
            g_prime_len,
            backend: None,
            result,
        });
    }

    /// Appends a row annotated with the backend that checked it; the JSON
    /// rendering then carries a stable `"backend"` field for the row.
    pub fn push_with_backend(
        &mut self,
        name: impl Into<String>,
        n_qubits: usize,
        g_len: usize,
        g_prime_len: usize,
        backend: BackendKind,
        result: FlowResult,
    ) {
        self.rows.push(ReportRow {
            name: name.into(),
            n_qubits,
            g_len,
            g_prime_len,
            backend: Some(backend),
            result,
        });
    }

    /// The rows collected so far.
    #[must_use]
    pub fn rows(&self) -> &[ReportRow] {
        &self.rows
    }

    /// Renders the report as CSV with a header line
    /// (`name,n,gates_g,gates_g_prime,verdict,sims,t_sim_s,t_ec_s,counterexample`).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "name,n,gates_g,gates_g_prime,verdict,sims,t_sim_s,t_ec_s,counterexample\n",
        );
        for row in &self.rows {
            let (verdict, witness) = verdict_and_witness(&row.result.outcome);
            out.push_str(&format!(
                "{},{},{},{},{},{},{:.6},{:.6},{}\n",
                csv_escape(&row.name),
                row.n_qubits,
                row.g_len,
                row.g_prime_len,
                verdict,
                row.result.stats.simulations_run,
                row.result.stats.simulation_time.as_secs_f64(),
                row.result.stats.functional_time.as_secs_f64(),
                witness,
            ));
        }
        out
    }

    /// Renders the report as a JSON array of row objects, mirroring the
    /// CSV columns. Timing fields can be suppressed for byte-reproducible
    /// output (wall-clock times differ between otherwise identical runs).
    #[must_use]
    pub fn to_json(&self, with_timings: bool) -> String {
        json::array(self.rows.iter().map(|row| {
            let (verdict, witness) = verdict_and_witness(&row.result.outcome);
            let mut o = json::Obj::new();
            o.str("name", &row.name)
                .int("n", row.n_qubits as u64)
                .int("gates_g", row.g_len as u64)
                .int("gates_g_prime", row.g_prime_len as u64)
                .str("verdict", verdict)
                .int("sims", row.result.stats.simulations_run as u64);
            if let Some(backend) = row.backend {
                o.str("backend", backend.slug());
            }
            if with_timings {
                o.num("t_sim_s", row.result.stats.simulation_time.as_secs_f64())
                    .num("t_ec_s", row.result.stats.functional_time.as_secs_f64());
            }
            if witness.is_empty() {
                o.raw("counterexample", "null");
            } else {
                o.str("counterexample", &witness);
            }
            o.render()
        }))
    }
}

impl fmt::Display for Report {
    /// Renders an aligned text table.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<24} {:>4} {:>8} {:>8} {:<22} {:>5} {:>10} {:>10}",
            "benchmark", "n", "|G|", "|G'|", "verdict", "sims", "t_sim [s]", "t_ec [s]"
        )?;
        for row in &self.rows {
            let (verdict, _) = verdict_and_witness(&row.result.outcome);
            writeln!(
                f,
                "{:<24} {:>4} {:>8} {:>8} {:<22} {:>5} {:>10.4} {:>10.4}",
                row.name,
                row.n_qubits,
                row.g_len,
                row.g_prime_len,
                verdict,
                row.result.stats.simulations_run,
                row.result.stats.simulation_time.as_secs_f64(),
                row.result.stats.functional_time.as_secs_f64(),
            )?;
        }
        Ok(())
    }
}

/// Per-stage effort totals distilled from a stream of scheduler
/// [`RunEvent`]s — what a bench binary prints next to its timings.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use qcec::report::StageTimings;
/// use qcec::scheduler::CollectingSink;
///
/// let sink = Arc::new(CollectingSink::new());
/// let config = qcec::Config::default()
///     .with_threads(2)
///     .with_event_sink(sink.clone());
/// let g = qcirc::generators::ghz(3);
/// qcec::check_equivalence(&g, &g, &config).unwrap();
/// let timings = StageTimings::from_events(&sink.events());
/// assert_eq!(timings.simulations_finished, 8); // 2³ ≤ r: full enumeration
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Total wall time of simulation stages.
    pub simulation_time: Duration,
    /// Total wall time of functional (complete-check) stages.
    pub functional_time: Duration,
    /// Wall time spent inside statevector probes (summed per finished
    /// simulation, so overlapping workers count their time in full).
    pub sv_probe_time: Duration,
    /// Wall time spent inside decision-diagram probes.
    pub dd_probe_time: Duration,
    /// Wall time spent inside stabilizer-tableau probes (including any
    /// per-probe dense fallbacks the stab engine ran).
    pub stab_probe_time: Duration,
    /// Wall time spent inside matrix-product-state probes.
    pub mps_probe_time: Duration,
    /// Simulations that ran to completion.
    pub simulations_finished: usize,
    /// Simulations abandoned after a cancellation.
    pub simulations_aborted: usize,
    /// Cancellations (first counterexample or first definitive verdict).
    pub cancellations: usize,
    /// Cancellations where the simulation pool's counterexample made the
    /// functional racer moot — the probe engine "won" the portfolio race.
    pub simulation_wins: usize,
    /// Cancellations where the functional check's definitive verdict
    /// halted the pool — the complete DD check won the race.
    pub functional_wins: usize,
    /// Jobs answered from the service-layer verdict cache (populated by
    /// [`crate::service`], never by the scheduler's event stream).
    pub cache_hits: usize,
    /// Jobs that missed the verdict cache and ran the full flow.
    pub cache_misses: usize,
    /// Flow invocations whose [`BackendKind::Auto`] selector was resolved
    /// to a concrete engine (one `BackendSelected` event each).
    pub auto_selections: usize,
    /// Completed stimulus batches (one `BatchFinished` event each).
    pub batches_finished: usize,
    /// Stimulus indices claimed by completed batches.
    pub batch_slots_claimed: usize,
    /// Stimulus indices actually probed by completed batches. The fill
    /// ratio `batch_slots_probed / batch_slots_claimed` measures how much
    /// claimed work was still useful when the batch ran (claims partially
    /// superseded by an earlier counterexample lower it).
    pub batch_slots_probed: usize,
    /// Functional (complete-check) wall time attributed per application
    /// scheme, indexed in [`ApplicationScheme::ALL`] order. Events carry
    /// no scheme, so this is populated by
    /// [`StageTimings::attribute_functional_to_scheme`] — callers that
    /// know which scheme drove a run (the campaign runner) file its
    /// functional time here; untouched summaries render without the
    /// buckets.
    pub scheme_functional_time: [Duration; 4],
}

/// Index of a scheme in [`ApplicationScheme::ALL`] (and in
/// [`StageTimings::scheme_functional_time`]).
fn scheme_index(scheme: ApplicationScheme) -> usize {
    ApplicationScheme::ALL
        .iter()
        .position(|s| *s == scheme)
        .expect("every scheme is in ALL")
}

impl StageTimings {
    /// Accumulates the totals from recorded events.
    #[must_use]
    pub fn from_events(events: &[RunEvent]) -> Self {
        let mut t = StageTimings::default();
        for event in events {
            match event {
                RunEvent::StageFinished { stage, wall_time } => match stage {
                    Stage::Simulation => t.simulation_time += *wall_time,
                    Stage::Functional => t.functional_time += *wall_time,
                },
                RunEvent::SimulationFinished {
                    wall_time, backend, ..
                } => {
                    t.simulations_finished += 1;
                    match backend {
                        BackendKind::Statevector => t.sv_probe_time += *wall_time,
                        BackendKind::DecisionDiagram => t.dd_probe_time += *wall_time,
                        BackendKind::Stab => t.stab_probe_time += *wall_time,
                        BackendKind::Mps => t.mps_probe_time += *wall_time,
                        // `Auto` is resolved before any probe runs, so no
                        // finished simulation ever carries it.
                        BackendKind::Auto => {}
                    }
                }
                RunEvent::BackendSelected { .. } => t.auto_selections += 1,
                RunEvent::BatchFinished {
                    claimed, probed, ..
                } => {
                    t.batches_finished += 1;
                    t.batch_slots_claimed += claimed;
                    t.batch_slots_probed += probed;
                }
                RunEvent::SimulationAborted { .. } => t.simulations_aborted += 1,
                RunEvent::Cancelled { cause } => {
                    t.cancellations += 1;
                    match cause {
                        CancelCause::SimulationCounterexample => t.simulation_wins += 1,
                        CancelCause::FunctionalVerdict => t.functional_wins += 1,
                    }
                }
                _ => {}
            }
        }
        t
    }

    /// Field-wise sum of two summaries — aggregating per-run summaries
    /// into a campaign or batch total.
    #[must_use]
    pub fn merged(self, other: StageTimings) -> StageTimings {
        StageTimings {
            simulation_time: self.simulation_time + other.simulation_time,
            functional_time: self.functional_time + other.functional_time,
            sv_probe_time: self.sv_probe_time + other.sv_probe_time,
            dd_probe_time: self.dd_probe_time + other.dd_probe_time,
            stab_probe_time: self.stab_probe_time + other.stab_probe_time,
            mps_probe_time: self.mps_probe_time + other.mps_probe_time,
            simulations_finished: self.simulations_finished + other.simulations_finished,
            simulations_aborted: self.simulations_aborted + other.simulations_aborted,
            cancellations: self.cancellations + other.cancellations,
            simulation_wins: self.simulation_wins + other.simulation_wins,
            functional_wins: self.functional_wins + other.functional_wins,
            cache_hits: self.cache_hits + other.cache_hits,
            cache_misses: self.cache_misses + other.cache_misses,
            auto_selections: self.auto_selections + other.auto_selections,
            batches_finished: self.batches_finished + other.batches_finished,
            batch_slots_claimed: self.batch_slots_claimed + other.batch_slots_claimed,
            batch_slots_probed: self.batch_slots_probed + other.batch_slots_probed,
            scheme_functional_time: {
                let mut sum = self.scheme_functional_time;
                for (acc, t) in sum.iter_mut().zip(other.scheme_functional_time) {
                    *acc += t;
                }
                sum
            },
        }
    }

    /// Files this summary's functional wall time under `scheme`'s bucket.
    /// The scheduler's events do not carry the scheme, so per-scheme
    /// attribution happens where the driving `Config` is known.
    pub fn attribute_functional_to_scheme(&mut self, scheme: ApplicationScheme) {
        self.scheme_functional_time[scheme_index(scheme)] += self.functional_time;
    }

    /// Functional wall time attributed to one scheme's complete checks.
    #[must_use]
    pub fn functional_time_for(&self, scheme: ApplicationScheme) -> Duration {
        self.scheme_functional_time[scheme_index(scheme)]
    }

    /// Probe wall time spent in one backend's engine.
    #[must_use]
    pub fn probe_time(&self, backend: BackendKind) -> Duration {
        match backend {
            BackendKind::Statevector => self.sv_probe_time,
            BackendKind::DecisionDiagram => self.dd_probe_time,
            BackendKind::Stab => self.stab_probe_time,
            BackendKind::Mps => self.mps_probe_time,
            // The selector never probes itself.
            BackendKind::Auto => Duration::ZERO,
        }
    }

    /// Which side of the portfolio race produced more decisive
    /// cancellations: `Some(Stage::Simulation)` when probe
    /// counterexamples dominated, `Some(Stage::Functional)` when the
    /// complete check did, `None` when the race never ended early (or
    /// tied across an aggregated campaign).
    #[must_use]
    pub fn portfolio_winner(&self) -> Option<Stage> {
        match self.simulation_wins.cmp(&self.functional_wins) {
            std::cmp::Ordering::Greater => Some(Stage::Simulation),
            std::cmp::Ordering::Less => Some(Stage::Functional),
            std::cmp::Ordering::Equal => None,
        }
    }

    /// Renders the summary as a JSON object. Wall-clock times can be
    /// suppressed; note the counters themselves are still scheduling
    /// dependent under `threads > 1` (how many in-flight runs finish
    /// before a cancellation lands varies), so byte-reproducible outputs
    /// should omit the summary altogether.
    #[must_use]
    pub fn to_json(&self, with_timings: bool) -> String {
        let mut o = json::Obj::new();
        if with_timings {
            o.num("t_sim_s", self.simulation_time.as_secs_f64())
                .num("t_ec_s", self.functional_time.as_secs_f64());
            // Scheme buckets only exist when a caller attributed them;
            // rendering conditionally keeps single-scheme output
            // byte-identical to pre-scheme goldens.
            for scheme in ApplicationScheme::ALL {
                let t = self.functional_time_for(scheme);
                if t > Duration::ZERO {
                    o.num(&format!("t_ec_{}_s", scheme.slug()), t.as_secs_f64());
                }
            }
            o.num("t_probe_sv_s", self.sv_probe_time.as_secs_f64())
                .num("t_probe_dd_s", self.dd_probe_time.as_secs_f64())
                .num("t_probe_stab_s", self.stab_probe_time.as_secs_f64())
                .num("t_probe_mps_s", self.mps_probe_time.as_secs_f64());
        }
        o.int("sims_finished", self.simulations_finished as u64)
            .int("sims_aborted", self.simulations_aborted as u64)
            .int("cancellations", self.cancellations as u64);
        if self.auto_selections > 0 {
            // Rendered conditionally: runs with a concrete backend stay
            // byte-identical to pre-selector goldens.
            o.int("auto_selections", self.auto_selections as u64);
        }
        if self.batches_finished > 0 {
            // Also conditional: summaries from unscheduled (sequential,
            // batch=1) runs stay byte-identical to pre-batching goldens.
            o.int("batches", self.batches_finished as u64)
                .int("batch_slots_claimed", self.batch_slots_claimed as u64)
                .int("batch_slots_probed", self.batch_slots_probed as u64);
        }
        if self.cache_hits > 0 || self.cache_misses > 0 {
            // Only the service layer populates these; rendering them
            // conditionally keeps campaign output byte-identical to
            // pre-service goldens.
            o.int("cache_hits", self.cache_hits as u64)
                .int("cache_misses", self.cache_misses as u64);
        }
        if with_timings {
            o.int("simulation_wins", self.simulation_wins as u64)
                .int("functional_wins", self.functional_wins as u64);
        }
        o.render()
    }
}

impl fmt::Display for StageTimings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t_sim {:?}, t_ec {:?}, {} sims finished, {} aborted, {} cancellations",
            self.simulation_time,
            self.functional_time,
            self.simulations_finished,
            self.simulations_aborted,
            self.cancellations
        )
    }
}

/// The stable verdict slug and ASCII witness string for an outcome — the
/// one vocabulary shared by CSV rows, report JSON, and the service layer's
/// cached verdict lines.
pub(crate) fn verdict_and_witness(outcome: &Outcome) -> (&'static str, String) {
    match outcome {
        Outcome::Equivalent => ("equivalent", String::new()),
        Outcome::EquivalentUpToGlobalPhase { .. } => ("equivalent_up_to_phase", String::new()),
        Outcome::NotEquivalent {
            counterexample: Some(ce),
        } => {
            // ASCII-safe witness for CSV/JSON consumers: the basis index
            // for classical stimuli, the strategy kind otherwise (the full
            // preparation recipe lives on the `Counterexample` itself).
            let witness = match &ce.stimulus {
                qstim::Stimulus::Basis(b) => format!("|{b}>"),
                other => other.kind().to_string(),
            };
            ("not_equivalent", witness)
        }
        Outcome::NotEquivalent {
            counterexample: None,
        } => ("not_equivalent", String::new()),
        Outcome::ProbablyEquivalent { .. } => ("probably_equivalent", String::new()),
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_equivalence_default;

    fn sample_report() -> Report {
        let g = qcirc::generators::ghz(3);
        let mut buggy = g.clone();
        buggy.x(1);
        let mut report = Report::new();
        report.push(
            "same",
            3,
            g.len(),
            g.len(),
            check_equivalence_default(&g, &g).unwrap(),
        );
        report.push(
            "buggy, with comma",
            3,
            g.len(),
            buggy.len(),
            check_equivalence_default(&g, &buggy).unwrap(),
        );
        report
    }

    #[test]
    fn csv_has_header_and_rows() {
        let report = sample_report();
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("name,n,"));
        assert!(lines[1].contains("equivalent"));
        assert!(lines[2].contains("not_equivalent"));
        assert!(lines[2].starts_with("\"buggy, with comma\""));
    }

    #[test]
    fn json_mirrors_csv_fields() {
        let report = sample_report();
        let js = report.to_json(false);
        assert!(js.starts_with('[') && js.ends_with(']'));
        assert!(js.contains(r#""name":"same""#));
        assert!(js.contains(r#""verdict":"not_equivalent""#));
        assert!(js.contains(r#""counterexample":"|"#));
        assert!(!js.contains("t_sim_s"));
        // Deterministic: the timing-free form is identical across renders.
        assert_eq!(js, report.to_json(false));
        let timed = report.to_json(true);
        assert!(timed.contains("t_sim_s") && timed.contains("t_ec_s"));
    }

    #[test]
    fn stage_timings_serialize() {
        let t = StageTimings {
            simulation_time: Duration::from_millis(1500),
            functional_time: Duration::from_millis(250),
            sv_probe_time: Duration::from_millis(900),
            simulations_finished: 7,
            simulations_aborted: 1,
            cancellations: 1,
            simulation_wins: 1,
            ..StageTimings::default()
        };
        assert_eq!(
            t.to_json(false),
            r#"{"sims_finished":7,"sims_aborted":1,"cancellations":1}"#
        );
        let timed = t.to_json(true);
        assert!(timed.starts_with(r#"{"t_sim_s":1.5,"t_ec_s":0.25,"#));
        assert!(timed.contains(r#""t_probe_sv_s":0.9"#));
        assert!(timed.contains(r#""simulation_wins":1"#));
        assert_eq!(t.probe_time(BackendKind::Statevector), t.sv_probe_time);
        assert_eq!(t.portfolio_winner(), Some(Stage::Simulation));
    }

    #[test]
    fn stage_timings_track_mps_and_auto() {
        let events = vec![
            RunEvent::BackendSelected {
                backend: BackendKind::Mps,
            },
            RunEvent::SimulationFinished {
                index: 0,
                wall_time: Duration::from_millis(40),
                fidelity: 1.0,
                backend: BackendKind::Mps,
            },
        ];
        let t = StageTimings::from_events(&events);
        assert_eq!(t.auto_selections, 1);
        assert_eq!(t.mps_probe_time, Duration::from_millis(40));
        assert_eq!(t.probe_time(BackendKind::Mps), Duration::from_millis(40));
        assert_eq!(t.probe_time(BackendKind::Auto), Duration::ZERO);
        assert!(t.to_json(true).contains(r#""t_probe_mps_s":0.04"#));
        assert!(t.to_json(false).contains(r#""auto_selections":1"#));
        // Without a selector event the key disappears, keeping goldens.
        assert!(!StageTimings::default()
            .to_json(false)
            .contains("auto_selections"));
        let merged = t.merged(t);
        assert_eq!(merged.auto_selections, 2);
        assert_eq!(merged.mps_probe_time, Duration::from_millis(80));
    }

    #[test]
    fn stage_timings_track_batch_fill() {
        let events = vec![
            RunEvent::BatchFinished {
                first: 0,
                claimed: 8,
                probed: 8,
                wall_time: Duration::from_millis(10),
            },
            RunEvent::BatchFinished {
                first: 8,
                claimed: 8,
                probed: 3,
                wall_time: Duration::from_millis(4),
            },
        ];
        let t = StageTimings::from_events(&events);
        assert_eq!(t.batches_finished, 2);
        assert_eq!(t.batch_slots_claimed, 16);
        assert_eq!(t.batch_slots_probed, 11);
        assert!(t
            .to_json(false)
            .contains(r#""batches":2,"batch_slots_claimed":16,"batch_slots_probed":11"#));
        // Without batch events the keys disappear, keeping goldens.
        assert!(!StageTimings::default().to_json(false).contains("batch"));
        let merged = t.merged(t);
        assert_eq!(merged.batches_finished, 4);
        assert_eq!(merged.batch_slots_probed, 22);
    }

    #[test]
    fn json_escaping_and_numbers() {
        assert_eq!(json::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json::number(0.25), "0.25");
        assert_eq!(json::number(f64::NAN), "null");
        assert_eq!(json::array(vec!["1".to_string(), "2".to_string()]), "[1,2]");
    }

    #[test]
    fn text_table_aligns() {
        let report = sample_report();
        let text = report.to_string();
        assert!(text.contains("benchmark"));
        assert!(text.contains("not_equivalent"));
        assert_eq!(report.rows().len(), 2);
    }
}
