//! Gate-application kernels on raw amplitude slices.
//!
//! All kernels take the amplitude slice directly so they can be reused by
//! the sequential simulator, the multithreaded wrapper and the dense
//! unitary builder. Index convention: qubit `q` is bit `q` of the amplitude
//! index.

use qnum::{Complex, Matrix2};

/// Applies a single-qubit gate `m` to `target`, restricted to amplitudes
/// whose `control_mask` bits are all set (pass 0 for no controls).
///
/// # Panics
///
/// Panics in debug builds if `target`'s bit overlaps `control_mask`.
pub fn apply_controlled_single(
    amps: &mut [Complex],
    control_mask: usize,
    target: usize,
    m: &Matrix2,
) {
    let bt = 1usize << target;
    debug_assert_eq!(control_mask & bt, 0, "target overlaps controls");
    let dim = amps.len();
    let (m00, m01, m10, m11) = (m.entry(0, 0), m.entry(0, 1), m.entry(1, 0), m.entry(1, 1));
    // Fast path: diagonal gates touch each amplitude once.
    if m01.approx_zero() && m10.approx_zero() {
        apply_controlled_diagonal(amps, control_mask, target, m00, m11);
        return;
    }
    // Walk pairs (i, i|bt) by iterating blocks aligned to 2^{target+1}.
    let block = bt << 1;
    let mut base = 0usize;
    while base < dim {
        for offset in 0..bt {
            let lo = base + offset;
            if lo & control_mask == control_mask {
                let hi = lo | bt;
                let a0 = amps[lo];
                let a1 = amps[hi];
                amps[lo] = m00 * a0 + m01 * a1;
                amps[hi] = m10 * a0 + m11 * a1;
            }
        }
        base += block;
    }
}

/// Variant of [`apply_controlled_single`] for a chunk that starts at
/// absolute amplitude index `offset` within a larger state. The chunk must
/// be aligned to the gate's block size `2^{target+1}` (so every pair lies
/// inside the chunk); the control mask is tested against *absolute* indices.
///
/// # Panics
///
/// Panics in debug builds if the alignment or overlap invariants are
/// violated.
pub fn apply_controlled_single_at(
    chunk: &mut [Complex],
    offset: usize,
    control_mask: usize,
    target: usize,
    m: &Matrix2,
) {
    let bt = 1usize << target;
    let block = bt << 1;
    debug_assert_eq!(control_mask & bt, 0, "target overlaps controls");
    debug_assert_eq!(offset % block, 0, "chunk not block-aligned");
    debug_assert_eq!(chunk.len() % block, 0, "chunk length not block-aligned");
    let (m00, m01, m10, m11) = (m.entry(0, 0), m.entry(0, 1), m.entry(1, 0), m.entry(1, 1));
    let mut base = 0usize;
    while base < chunk.len() {
        for off in 0..bt {
            let lo = base + off;
            if (offset + lo) & control_mask == control_mask {
                let hi = lo | bt;
                let a0 = chunk[lo];
                let a1 = chunk[hi];
                chunk[lo] = m00 * a0 + m01 * a1;
                chunk[hi] = m10 * a0 + m11 * a1;
            }
        }
        base += block;
    }
}

/// Diagonal specialization: multiplies amplitudes by `d0`/`d1` depending on
/// the target bit, under the control mask.
fn apply_controlled_diagonal(
    amps: &mut [Complex],
    control_mask: usize,
    target: usize,
    d0: Complex,
    d1: Complex,
) {
    let bt = 1usize << target;
    let d0_is_one = d0.approx_one();
    for (i, a) in amps.iter_mut().enumerate() {
        if i & control_mask != control_mask {
            continue;
        }
        if i & bt != 0 {
            *a *= d1;
        } else if !d0_is_one {
            *a *= d0;
        }
    }
}

/// Applies a (possibly controlled) SWAP of qubits `a` and `b`.
///
/// # Panics
///
/// Panics in debug builds if `a == b` or either overlaps the control mask.
pub fn apply_controlled_swap(amps: &mut [Complex], control_mask: usize, a: usize, b: usize) {
    let (ba, bb) = (1usize << a, 1usize << b);
    debug_assert_ne!(a, b, "swap targets must differ");
    debug_assert_eq!(control_mask & (ba | bb), 0, "swap targets overlap controls");
    for i in 0..amps.len() {
        // Visit each swapped pair once: from the (a=1, b=0) side.
        if i & ba != 0 && i & bb == 0 && i & control_mask == control_mask {
            amps.swap(i, i ^ ba ^ bb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnum::FRAC_1_SQRT_2;

    fn basis(n: usize, i: usize) -> Vec<Complex> {
        let mut v = vec![Complex::ZERO; 1 << n];
        v[i] = Complex::ONE;
        v
    }

    #[test]
    fn x_flips_target_bit() {
        let mut amps = basis(3, 0b010);
        apply_controlled_single(&mut amps, 0, 0, &Matrix2::pauli_x());
        assert!(amps[0b011].approx_one());
    }

    #[test]
    fn hadamard_splits_amplitude() {
        let mut amps = basis(1, 0);
        apply_controlled_single(&mut amps, 0, 0, &Matrix2::hadamard());
        assert!(amps[0].approx_eq(Complex::real(FRAC_1_SQRT_2)));
        assert!(amps[1].approx_eq(Complex::real(FRAC_1_SQRT_2)));
    }

    #[test]
    fn control_blocks_application() {
        // CX with control bit 1 (qubit 1) on target 0: |01⟩ has control 0.
        let mut amps = basis(2, 0b01);
        apply_controlled_single(&mut amps, 0b10, 0, &Matrix2::pauli_x());
        assert!(amps[0b01].approx_one(), "control=0 must not fire");
        let mut amps = basis(2, 0b10);
        apply_controlled_single(&mut amps, 0b10, 0, &Matrix2::pauli_x());
        assert!(amps[0b11].approx_one(), "control=1 must fire");
    }

    #[test]
    fn diagonal_fast_path_matches_general() {
        let z = Matrix2::rz(0.7);
        let h = Complex::real(0.5);
        let mk = || vec![h, h, h, h];
        let mut fast = mk();
        apply_controlled_single(&mut fast, 0, 1, &z);
        // Force the general path by using an equivalent non-detectably
        // diagonal matrix (off-diagonals exactly zero still uses fast path),
        // so instead compare against hand-computed values.
        assert!(fast[0].approx_eq(h * z.entry(0, 0)));
        assert!(fast[1].approx_eq(h * z.entry(0, 0)));
        assert!(fast[2].approx_eq(h * z.entry(1, 1)));
        assert!(fast[3].approx_eq(h * z.entry(1, 1)));
    }

    #[test]
    fn swap_exchanges_bits() {
        let mut amps = basis(3, 0b001);
        apply_controlled_swap(&mut amps, 0, 0, 2);
        assert!(amps[0b100].approx_one());
        // Symmetric pair stays put.
        let mut amps = basis(3, 0b101);
        apply_controlled_swap(&mut amps, 0, 0, 2);
        assert!(amps[0b101].approx_one());
    }

    #[test]
    fn controlled_swap_respects_control() {
        let mut amps = basis(3, 0b001); // control qubit 1 is 0
        apply_controlled_swap(&mut amps, 0b010, 0, 2);
        assert!(amps[0b001].approx_one());
        let mut amps = basis(3, 0b011); // control qubit 1 is 1
        apply_controlled_swap(&mut amps, 0b010, 0, 2);
        assert!(amps[0b110].approx_one());
    }

    #[test]
    fn kernels_preserve_norm() {
        let h = Complex::real(0.5);
        let mut amps = vec![h, h * Complex::I, -h, h];
        apply_controlled_single(&mut amps, 0, 1, &Matrix2::u3(0.3, 1.0, -0.4));
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-10);
    }
}
