//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `proptest` it uses: the [`proptest!`] macro,
//! [`Strategy`] over numeric ranges / tuples / [`Strategy::prop_map`],
//! [`any`], and the `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from upstream: cases are drawn from a fixed deterministic
//! seed (so CI runs are reproducible), and failing inputs are *not*
//! shrunk — the panic message carries the offending case index, which is
//! enough to replay because generation is deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test-run configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies (re-exported for completeness).
pub type TestRng = StdRng;

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of type `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Builds the deterministic per-test RNG (implementation detail of
/// [`proptest!`]; public so the macro expansion can reach it).
#[doc(hidden)]
#[must_use]
pub fn rng_for_test(name: &str) -> TestRng {
    // FNV-1a over the test name: distinct tests get distinct streams, and
    // every run of the same test replays the same cases.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use super::{any, Any, Arbitrary, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property (panics with case context).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

/// Declares property tests: each `fn` item becomes a `#[test]` that checks
/// its body against `cases` randomly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let config: $crate::ProptestConfig = $config;
            let strategies = ($($strat,)+);
            // A fixed per-test seed keeps CI deterministic.
            let mut rng = $crate::rng_for_test(stringify!($name));
            for _case in 0..config.cases {
                let ($($pat,)+) = strategies.generate(&mut rng);
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, f64)> {
        (1usize..10, -1.0f64..1.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(n in 3usize..7, x in -2.0f64..2.0) {
            prop_assert!((3..7).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        /// Tuple strategies destructure and prop_map applies.
        #[test]
        fn tuples_and_maps((n, x) in pair(), doubled in (0u64..5).prop_map(|v| v * 2)) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(x.abs() <= 1.0);
            prop_assert_eq!(doubled % 2, 0);
        }

        /// prop_assume skips cases without failing.
        #[test]
        fn assume_filters(v in any::<u64>()) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use rand::SeedableRng;
        let s = (0usize..100, any::<u64>());
        let mut r1 = TestRng::seed_from_u64(1);
        let mut r2 = TestRng::seed_from_u64(1);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
