//! Micro-benchmarks of the decision-diagram package (experiment MB).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcirc::generators;
use qdd::Package;

fn bench_gate_dd_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("dd_gate_construction");
    for n in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let gate = qcirc::Gate::controlled(qcirc::GateKind::X, vec![0, n - 1], n / 2);
            b.iter_batched(
                || Package::new(n),
                |mut p| p.gate_medge(&gate).unwrap(),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_circuit_dd(c: &mut Criterion) {
    let mut group = c.benchmark_group("dd_circuit_matrix");
    for n in [6usize, 8, 10] {
        let circuit = generators::qft(n, false);
        group.bench_with_input(BenchmarkId::new("qft", n), &circuit, |b, circuit| {
            b.iter_batched(
                || Package::new(circuit.n_qubits()),
                |mut p| p.circuit_medge(circuit).unwrap(),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_dd_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dd_simulation");
    for n in [16usize, 32, 48] {
        let circuit = generators::qft(n, false);
        group.bench_with_input(BenchmarkId::new("qft_basis0", n), &circuit, |b, circuit| {
            b.iter_batched(
                || Package::new(circuit.n_qubits()),
                |mut p| p.apply_to_basis(circuit, 0).unwrap(),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_alternating_vs_construct(c: &mut Criterion) {
    let mut group = c.benchmark_group("dd_ec_scheme");
    let g = generators::qft(8, true);
    let routed =
        qcirc::mapping::route_or_panic(&g, &qcirc::mapping::CouplingMap::linear(8)).circuit;
    group.bench_function("alternating", |b| {
        b.iter_batched(
            || Package::new(8),
            |mut p| qdd::check_equivalence_alternating(&mut p, &g, &routed, None).unwrap(),
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("construct", |b| {
        b.iter_batched(
            || Package::new(8),
            |mut p| qdd::check_equivalence_construct(&mut p, &g, &routed, None).unwrap(),
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gate_dd_construction,
    bench_circuit_dd,
    bench_dd_simulation,
    bench_alternating_vs_construct
);
criterion_main!(benches);
