//! Stimulus generation for simulation-based equivalence checking.
//!
//! The paper's flow feeds both circuits `r` random *computational basis*
//! states. That choice has a structural blind spot: an error gated on `c`
//! control qubits differs from the specification on a `2^{−c}` fraction of
//! basis columns, so each run misses it with probability `1 − 2^{−c}` — the
//! escapee corpus in this workspace pins real instances. Burgholzer,
//! Raymond & Wille's follow-up work shows that richer stimuli — random
//! local *product* states and random *stabilizer* states — spread every
//! input over all columns and drive the per-run miss probability toward
//! `2^{−n}` regardless of where the error sits.
//!
//! This crate packages all of those choices behind one trait:
//!
//! * [`Stimulus`] — one input state: a basis index, a layer of per-qubit
//!   `U3` rotations, or a Clifford prefix circuit preparing a stabilizer
//!   state. Non-basis stimuli are *prefix circuits* prepended to both
//!   circuits under check, so any backend that can simulate circuits can
//!   consume them.
//! * [`StimulusSource`] — draws the full pre-run stimulus list as a pure
//!   function of `(n_qubits, seed, count)`. Purity is the load-bearing
//!   contract: schedulers pre-draw the list once and fan indices across
//!   workers, so verdicts stay byte-identical for any worker count.
//! * [`BasisSource`], [`SequentialSource`], [`ProductSource`],
//!   [`StabilizerSource`] — the four strategies. Product and stabilizer
//!   stimuli are additionally pure *per index*
//!   ([`ProductSource::sample`], [`StabilizerSource::sample`]): stimulus
//!   `i` depends only on `(n_qubits, seed, i)`, never on the draws before
//!   it.
//!
//! # Examples
//!
//! ```
//! use qstim::{StimulusSource, StabilizerSource, Stimulus};
//!
//! let stimuli = StabilizerSource.draw(4, 7, 3);
//! assert_eq!(stimuli.len(), 3);
//! for s in &stimuli {
//!     let prefix = s.prefix_circuit().expect("stabilizer stimuli carry a prefix");
//!     assert_eq!(prefix.n_qubits(), 4);
//!     assert!(qstab::is_clifford(&prefix));
//! }
//! // Same (n, seed, count) ⇒ same stimuli, always.
//! assert_eq!(stimuli, StabilizerSource.draw(4, 7, 3));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::f64::consts::TAU;
use std::fmt;

use qcirc::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The `U3` angles preparing one qubit of a product-state stimulus:
/// `U3(θ, φ, λ)|0⟩ = cos(θ/2)|0⟩ + e^{iφ} sin(θ/2)|1⟩`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProductAngles {
    /// Polar angle θ, drawn so `cos θ` is uniform (the Haar marginal).
    pub theta: f64,
    /// Relative phase φ, uniform in `[0, 2π)`.
    pub phi: f64,
    /// Trailing phase λ, uniform in `[0, 2π)` (irrelevant on `|0⟩` input
    /// but kept so the prefix is a fully specified unitary).
    pub lambda: f64,
}

/// One simulation stimulus: the input state fed to both circuits of an
/// equivalence probe.
#[derive(Debug, Clone, PartialEq)]
pub enum Stimulus {
    /// The computational basis state `|b⟩` — the paper's choice. No prefix
    /// circuit; backends start directly from the basis state.
    Basis(u64),
    /// An unentangled product state: one `U3` rotation per qubit, applied
    /// to `|0…0⟩` as a depth-1 prefix.
    Product(Vec<ProductAngles>),
    /// A stabilizer state, carried as the Clifford circuit preparing it
    /// from `|0…0⟩` (synthesized by [`qstab::synthesize_state`]).
    Stabilizer(Circuit),
}

impl Stimulus {
    /// The basis state the backend starts from: `b` for [`Stimulus::Basis`],
    /// `|0…0⟩` for the prefixed variants.
    #[must_use]
    pub fn basis_state(&self) -> u64 {
        match self {
            Stimulus::Basis(b) => *b,
            Stimulus::Product(_) | Stimulus::Stabilizer(_) => 0,
        }
    }

    /// The preparation circuit to prepend to *both* circuits under check,
    /// or `None` for plain basis stimuli.
    #[must_use]
    pub fn prefix_circuit(&self) -> Option<Circuit> {
        match self {
            Stimulus::Basis(_) => None,
            Stimulus::Product(angles) => {
                let mut c = Circuit::with_name(angles.len(), "product-stimulus");
                for (q, a) in angles.iter().enumerate() {
                    c.u3(a.theta, a.phi, a.lambda, q);
                }
                Some(c)
            }
            Stimulus::Stabilizer(c) => Some(c.clone()),
        }
    }

    /// Short machine-readable kind tag: `basis`, `product` or `stabilizer`.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Stimulus::Basis(_) => "basis",
            Stimulus::Product(_) => "product",
            Stimulus::Stabilizer(_) => "stabilizer",
        }
    }
}

impl fmt::Display for Stimulus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stimulus::Basis(b) => write!(f, "|{b}⟩"),
            Stimulus::Product(angles) => write!(f, "product state ({} qubits)", angles.len()),
            Stimulus::Stabilizer(c) => write!(
                f,
                "stabilizer state ({} qubits, {}-gate prefix)",
                c.n_qubits(),
                c.len()
            ),
        }
    }
}

/// A deterministic stimulus generator.
///
/// # Determinism contract
///
/// `draw(n_qubits, seed, count)` must be a **pure function** of its three
/// arguments: no hidden state, no dependence on call order. The checking
/// flow pre-draws the full list once and fans indices across worker
/// threads; purity is what keeps parallel verdicts byte-identical to the
/// sequential flow for any worker count.
pub trait StimulusSource {
    /// The strategy's machine-readable name (`basis`, `sequential`,
    /// `product`, `stabilizer`).
    fn name(&self) -> &'static str;

    /// Draws the stimulus list for one flow invocation.
    fn draw(&self, n_qubits: usize, seed: u64, count: usize) -> Vec<Stimulus>;
}

/// Uniformly random *distinct* computational basis states — the paper's
/// strategy. When the state space is no larger than `count`, every basis
/// state is enumerated instead (making the simulation stage complete).
///
/// The draw reproduces the RNG stream of the original
/// `qcec::sim_check::draw_stimuli` bit for bit: one `StdRng` seeded with
/// `seed`, rejection-sampling distinct states. Distinctness makes the
/// stimuli *jointly* dependent, so this source is pure per draw, not per
/// index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BasisSource;

impl StimulusSource for BasisSource {
    fn name(&self) -> &'static str {
        "basis"
    }

    fn draw(&self, n_qubits: usize, seed: u64, count: usize) -> Vec<Stimulus> {
        let mut rng = StdRng::seed_from_u64(seed);
        let space: u128 = 1u128 << n_qubits;
        if space <= count as u128 {
            return (0..space as u64).map(Stimulus::Basis).collect();
        }
        let mut chosen: Vec<u64> = Vec::with_capacity(count);
        while chosen.len() < count {
            let candidate = rng.gen_range(0..space as u64);
            if !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
        }
        chosen.into_iter().map(Stimulus::Basis).collect()
    }
}

/// The first `count` basis states `|0⟩, |1⟩, …` — the naive ablation
/// baseline. Ignores the seed by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SequentialSource;

impl StimulusSource for SequentialSource {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn draw(&self, n_qubits: usize, _seed: u64, count: usize) -> Vec<Stimulus> {
        let space: u128 = 1u128 << n_qubits;
        (0..count as u128)
            .take_while(|&i| i < space)
            .map(|i| Stimulus::Basis(i as u64))
            .collect()
    }
}

/// Random unentangled product states: per qubit, an independent Haar-random
/// single-qubit state expressed as `U3` angles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProductSource;

impl ProductSource {
    /// Samples stimulus `index` as a pure function of
    /// `(n_qubits, seed, index)`.
    #[must_use]
    pub fn sample(n_qubits: usize, seed: u64, index: usize) -> Stimulus {
        let mut rng = StdRng::seed_from_u64(index_seed(seed, index));
        let angles = (0..n_qubits)
            .map(|_| ProductAngles {
                // cos θ uniform in [−1, 1] ⇒ |⟨0|ψ⟩|² uniform: the Haar
                // marginal of a single qubit.
                theta: (1.0 - 2.0 * rng.gen::<f64>()).acos(),
                phi: TAU * rng.gen::<f64>(),
                lambda: TAU * rng.gen::<f64>(),
            })
            .collect();
        Stimulus::Product(angles)
    }
}

impl StimulusSource for ProductSource {
    fn name(&self) -> &'static str {
        "product"
    }

    fn draw(&self, n_qubits: usize, seed: u64, count: usize) -> Vec<Stimulus> {
        (0..count)
            .map(|i| ProductSource::sample(n_qubits, seed, i))
            .collect()
    }
}

/// Uniformly random stabilizer states, carried as Clifford preparation
/// circuits (drawn by [`qstab::random_stabilizer_rows`], lowered by
/// [`qstab::synthesize_state`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StabilizerSource;

impl StabilizerSource {
    /// Samples stimulus `index` as a pure function of
    /// `(n_qubits, seed, index)`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits == 0`.
    #[must_use]
    pub fn sample(n_qubits: usize, seed: u64, index: usize) -> Stimulus {
        let mut rng = StdRng::seed_from_u64(index_seed(seed, index));
        Stimulus::Stabilizer(qstab::random_stabilizer_circuit(n_qubits, &mut rng))
    }
}

impl StimulusSource for StabilizerSource {
    fn name(&self) -> &'static str {
        "stabilizer"
    }

    fn draw(&self, n_qubits: usize, seed: u64, count: usize) -> Vec<Stimulus> {
        (0..count)
            .map(|i| StabilizerSource::sample(n_qubits, seed, i))
            .collect()
    }
}

/// Derives the per-index RNG seed, SplitMix64-style: nearby `(seed, index)`
/// pairs get unrelated streams, and stimulus `i` never depends on how many
/// stimuli were drawn before it.
fn index_seed(seed: u64, index: usize) -> u64 {
    let mut z = seed;
    for salt in [0xC0FF_EE00_5EED_5EEDu64, index as u64] {
        z = z
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_draws_are_distinct_and_in_range() {
        let stimuli = BasisSource.draw(10, 1, 50);
        assert_eq!(stimuli.len(), 50);
        let mut seen = std::collections::HashSet::new();
        for s in &stimuli {
            let Stimulus::Basis(b) = s else {
                panic!("basis source drew {s}");
            };
            assert!(*b < 1024);
            assert!(seen.insert(*b), "duplicate basis state {b}");
        }
    }

    #[test]
    fn small_spaces_enumerate() {
        let stimuli = BasisSource.draw(2, 9, 10);
        assert_eq!(
            stimuli,
            (0..4).map(Stimulus::Basis).collect::<Vec<_>>(),
            "2² ≤ 10 must enumerate every basis state"
        );
    }

    #[test]
    fn sequential_ignores_the_seed() {
        assert_eq!(
            SequentialSource.draw(5, 0, 4),
            SequentialSource.draw(5, 77, 4)
        );
        assert_eq!(
            SequentialSource.draw(2, 0, 10).len(),
            4,
            "sequential stimuli stop at the space boundary"
        );
    }

    #[test]
    fn product_samples_are_per_index_pure() {
        let full = ProductSource.draw(6, 3, 8);
        for (i, s) in full.iter().enumerate() {
            assert_eq!(*s, ProductSource::sample(6, 3, i));
        }
        assert_ne!(
            full[0], full[1],
            "independent indices draw different states"
        );
        let Stimulus::Product(angles) = &full[0] else {
            panic!("product source drew {}", full[0]);
        };
        assert_eq!(angles.len(), 6);
        for a in angles {
            assert!((0.0..=std::f64::consts::PI).contains(&a.theta));
            assert!((0.0..TAU).contains(&a.phi));
            assert!((0.0..TAU).contains(&a.lambda));
        }
    }

    #[test]
    fn stabilizer_samples_are_per_index_pure_and_clifford() {
        let full = StabilizerSource.draw(5, 11, 6);
        for (i, s) in full.iter().enumerate() {
            assert_eq!(*s, StabilizerSource::sample(5, 11, i));
            let prefix = s.prefix_circuit().unwrap();
            assert_eq!(prefix.n_qubits(), 5);
            assert!(qstab::is_clifford(&prefix), "stimulus {i} is not Clifford");
        }
    }

    #[test]
    fn product_prefix_prepares_the_sampled_amplitudes() {
        let s = ProductSource::sample(3, 5, 0);
        let Stimulus::Product(angles) = &s else {
            unreachable!()
        };
        let prefix = s.prefix_circuit().unwrap();
        let out = qsim::Simulator::new().run_basis(&prefix, 0);
        // |⟨0…0|ψ⟩| = ∏ cos(θ_q / 2).
        let expected: f64 = angles.iter().map(|a| (a.theta / 2.0).cos()).product();
        assert!((out.amplitude(0).norm_sqr().sqrt() - expected.abs()).abs() < 1e-12);
        assert!(out.is_normalized());
    }

    #[test]
    fn display_names_the_kind() {
        assert_eq!(Stimulus::Basis(5).to_string(), "|5⟩");
        assert_eq!(Stimulus::Basis(5).kind(), "basis");
        let p = ProductSource::sample(2, 0, 0);
        assert!(p.to_string().contains("product"));
        let st = StabilizerSource::sample(2, 0, 0);
        assert!(st.to_string().contains("stabilizer"));
        assert_eq!(st.basis_state(), 0);
        assert_eq!(Stimulus::Basis(5).basis_state(), 5);
        assert!(Stimulus::Basis(5).prefix_circuit().is_none());
    }
}
