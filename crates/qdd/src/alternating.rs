//! The improved alternating equivalence check (`G → 𝕀 ← G'`, \[22\]).
//!
//! Instead of building both complete system matrices, maintain a single DD
//! `E` that converges to `U'† · U`: gates of `G` are multiplied onto the
//! right (in reverse order), inverted gates of `G'` onto the left (also in
//! reverse order). When the circuits are equivalent and structurally
//! similar — the common case for design-flow outputs — `E` stays close to
//! the identity, keeping the DD exponentially smaller than either full
//! matrix.
//!
//! *When* gates from each side are applied is a pluggable policy, the
//! [`ApplicationScheme`]: the verdict is scheme-independent (every
//! interleaving converges to the same `U'† · U`), but the size of the
//! intermediate DD — and hence the wall-clock — is not.

use std::time::Duration;

use qcirc::{Circuit, Gate};

use crate::check::{compare_roots, DdCheckAbort, DdEquivalence, Deadline};
use crate::package::Package;

/// The gate-interleaving policy of the alternating check: which side —
/// `G` (right multiplications) or `G'†` (left multiplications) — advances
/// next. Every scheme consumes both circuits completely, so the verdict
/// is identical across schemes; only the intermediate DD sizes differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ApplicationScheme {
    /// All of `G` first, then all of `G'†` — builds the full `U` before
    /// unwinding it, so the intermediate DD peaks at the size of `U`
    /// itself. The naive baseline the other schemes are measured against.
    Sequential,
    /// Strict alternation, one gate from each side per round. Good when
    /// the circuits are gate-for-gate similar (e.g. a mapped circuit with
    /// few inserted SWAPs), degenerate when their lengths diverge.
    OneToOne,
    /// Advance whichever side is proportionally behind in *gate count*
    /// (`i/m ≤ j/m'` ⇔ `i·m' ≤ j·m`) — the `|G| : |G'|` ratio strategy
    /// and the default.
    #[default]
    Proportional,
    /// Advance whichever side is proportionally behind in *decomposition
    /// cost*: each gate is weighted by the number of elementary gates
    /// [`qcirc::decompose::lower_gate_to_elementary`] emits for it, so a
    /// Toffoli on one side keeps pace with its 15-gate decomposition on
    /// the other. The lookahead ratio of the "Advanced Equivalence
    /// Checking" paper, derived from our own lowering costs.
    GateCost,
}

impl ApplicationScheme {
    /// Every scheme, in canonical (report) order.
    pub const ALL: [ApplicationScheme; 4] = [
        ApplicationScheme::Sequential,
        ApplicationScheme::OneToOne,
        ApplicationScheme::Proportional,
        ApplicationScheme::GateCost,
    ];

    /// Stable lowercase identifier used in CLI flags and JSON reports.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            ApplicationScheme::Sequential => "sequential",
            ApplicationScheme::OneToOne => "onetoone",
            ApplicationScheme::Proportional => "proportional",
            ApplicationScheme::GateCost => "gatecost",
        }
    }

    /// Parses a slug (case-insensitive; `-`/`_` separators are ignored,
    /// so `gate-cost` and `one_to_one` work too).
    ///
    /// # Errors
    ///
    /// Returns a message listing the expected slugs.
    pub fn parse(s: &str) -> Result<Self, String> {
        let norm: String = s
            .trim()
            .to_ascii_lowercase()
            .chars()
            .filter(|c| !matches!(c, '-' | '_'))
            .collect();
        match norm.as_str() {
            "sequential" | "seq" => Ok(ApplicationScheme::Sequential),
            "onetoone" | "1to1" => Ok(ApplicationScheme::OneToOne),
            "proportional" | "prop" => Ok(ApplicationScheme::Proportional),
            "gatecost" | "cost" => Ok(ApplicationScheme::GateCost),
            _ => Err(format!(
                "unknown application scheme {s:?}: expected sequential, onetoone, \
                 proportional or gatecost"
            )),
        }
    }
}

impl std::fmt::Display for ApplicationScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.slug())
    }
}

/// Checks equivalence with the alternating scheme, advancing whichever
/// circuit has proportionally more gates left (the "proportional" strategy
/// of \[22\]). Equivalent to
/// [`check_equivalence_alternating_scheme`] with
/// [`ApplicationScheme::Proportional`].
///
/// # Errors
///
/// Returns [`DdCheckAbort`] on timeout or node-limit exhaustion.
///
/// # Panics
///
/// Panics if the circuits' qubit counts differ from the package's.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), qdd::DdCheckAbort> {
/// use qdd::{check_equivalence_alternating, DdEquivalence, Package};
///
/// let g = qcirc::generators::qft(4, true);
/// let opt = qcirc::optimize::optimize(&g);
/// let mut p = Package::new(4);
/// let verdict = check_equivalence_alternating(&mut p, &g, &opt, None)?;
/// assert!(verdict.is_equivalent());
/// # Ok(())
/// # }
/// ```
pub fn check_equivalence_alternating(
    package: &mut Package,
    g: &Circuit,
    g_prime: &Circuit,
    deadline: Option<Duration>,
) -> Result<DdEquivalence, DdCheckAbort> {
    alternating_with_budget(
        package,
        g,
        g_prime,
        Deadline::new(deadline),
        ApplicationScheme::Proportional,
    )
}

/// [`check_equivalence_alternating`] with an explicit gate-interleaving
/// policy.
///
/// # Errors
///
/// Returns [`DdCheckAbort`] on timeout or node-limit exhaustion.
///
/// # Panics
///
/// Panics if the circuits' qubit counts differ from the package's.
pub fn check_equivalence_alternating_scheme(
    package: &mut Package,
    g: &Circuit,
    g_prime: &Circuit,
    deadline: Option<Duration>,
    scheme: ApplicationScheme,
) -> Result<DdEquivalence, DdCheckAbort> {
    alternating_with_budget(package, g, g_prime, Deadline::new(deadline), scheme)
}

/// [`check_equivalence_alternating`] with an external cancellation flag,
/// polled between gate applications alongside the deadline. Raising the
/// flag makes the check return
/// [`DdCheckAbort::Cancelled`](crate::DdCheckAbort::Cancelled) promptly —
/// this is how a concurrent checker portfolio stops a losing racer.
///
/// # Errors
///
/// Returns [`DdCheckAbort`] on timeout, node-limit exhaustion, or
/// cancellation.
///
/// # Panics
///
/// Panics if the circuits' qubit counts differ from the package's.
pub fn check_equivalence_alternating_cancellable(
    package: &mut Package,
    g: &Circuit,
    g_prime: &Circuit,
    deadline: Option<Duration>,
    cancel: &std::sync::atomic::AtomicBool,
) -> Result<DdEquivalence, DdCheckAbort> {
    alternating_with_budget(
        package,
        g,
        g_prime,
        Deadline::cancellable(deadline, cancel),
        ApplicationScheme::Proportional,
    )
}

/// [`check_equivalence_alternating_scheme`] with an external cancellation
/// flag (see [`check_equivalence_alternating_cancellable`]).
///
/// # Errors
///
/// Returns [`DdCheckAbort`] on timeout, node-limit exhaustion, or
/// cancellation.
///
/// # Panics
///
/// Panics if the circuits' qubit counts differ from the package's.
pub fn check_equivalence_alternating_scheme_cancellable(
    package: &mut Package,
    g: &Circuit,
    g_prime: &Circuit,
    deadline: Option<Duration>,
    cancel: &std::sync::atomic::AtomicBool,
    scheme: ApplicationScheme,
) -> Result<DdEquivalence, DdCheckAbort> {
    alternating_with_budget(
        package,
        g,
        g_prime,
        Deadline::cancellable(deadline, cancel),
        scheme,
    )
}

/// Prefix-sum decomposition-cost profiles for the gate-cost scheme, in
/// consumption (back-to-front) order: `consumed[i]` is the cost of the
/// first `i` gates a side has applied, `total` the whole circuit's cost.
#[derive(Debug)]
struct CostProfile {
    g_consumed: Vec<u64>,
    gp_consumed: Vec<u64>,
    g_total: u64,
    gp_total: u64,
}

impl CostProfile {
    fn new(g_gates: &[Gate], gp_gates: &[Gate]) -> Self {
        let mut buf = Vec::new();
        let mut profile = |gates: &[Gate]| {
            let mut consumed = Vec::with_capacity(gates.len() + 1);
            consumed.push(0u64);
            // Gates are consumed back-to-front.
            for gate in gates.iter().rev() {
                buf.clear();
                qcirc::decompose::lower_gate_to_elementary(gate, &mut buf);
                let cost = (buf.len() as u64).max(1);
                consumed.push(consumed.last().unwrap() + cost);
            }
            consumed
        };
        let g_consumed = profile(g_gates);
        let gp_consumed = profile(gp_gates);
        let (g_total, gp_total) = (*g_consumed.last().unwrap(), *gp_consumed.last().unwrap());
        CostProfile {
            g_consumed,
            gp_consumed,
            g_total,
            gp_total,
        }
    }

    /// `true` when G's consumed cost fraction is ≤ G'†'s:
    /// `c(i)/C ≤ c'(j)/C'` ⇔ `c(i)·C' ≤ c'(j)·C`.
    fn advance_g(&self, i: usize, j: usize) -> bool {
        u128::from(self.g_consumed[i]) * u128::from(self.gp_total)
            <= u128::from(self.gp_consumed[j]) * u128::from(self.g_total)
    }
}

/// The advance decision of one [`ApplicationScheme`] instantiated over a
/// concrete `(G, G′)` pair — which side's next gate to consume given how
/// many each side has consumed so far.
///
/// Extracted from the DD check's inner loop so other engines following the
/// same alternation (the MPO check in `qmpo`) share the *identical*
/// interleaving policies, gate-cost profiles included, instead of
/// re-deriving them.
#[derive(Debug)]
pub struct SchemeCursor {
    scheme: ApplicationScheme,
    m: usize,
    mp: usize,
    costs: Option<CostProfile>,
}

impl SchemeCursor {
    /// Builds the cursor for a scheme over the two gate lists (in circuit
    /// order; consumption is back-to-front). Gate-cost profiles are
    /// computed eagerly here, once.
    #[must_use]
    pub fn new(scheme: ApplicationScheme, g_gates: &[Gate], gp_gates: &[Gate]) -> Self {
        let costs = match scheme {
            ApplicationScheme::GateCost => Some(CostProfile::new(g_gates, gp_gates)),
            _ => None,
        };
        SchemeCursor {
            scheme,
            m: g_gates.len(),
            mp: gp_gates.len(),
            costs,
        }
    }

    /// `true` when both sides are fully consumed after `i` gates of `G`
    /// and `j` gates of `G′`.
    #[must_use]
    pub fn done(&self, i: usize, j: usize) -> bool {
        i >= self.m && j >= self.mp
    }

    /// Whether `G` (as opposed to `G′†`) supplies the next gate: forced
    /// once one circuit is exhausted, otherwise the scheme decides (ties
    /// go to `G`).
    #[must_use]
    pub fn advance_g(&self, i: usize, j: usize) -> bool {
        if j >= self.mp {
            true
        } else if i >= self.m {
            false
        } else {
            match self.scheme {
                ApplicationScheme::Sequential => true,
                ApplicationScheme::OneToOne => i <= j,
                // i/m <= j/m'  ⇔  i·m' <= j·m
                ApplicationScheme::Proportional => i * self.mp <= j * self.m,
                ApplicationScheme::GateCost => self.costs.as_ref().unwrap().advance_g(i, j),
            }
        }
    }
}

fn alternating_with_budget(
    package: &mut Package,
    g: &Circuit,
    g_prime: &Circuit,
    deadline: Deadline<'_>,
    scheme: ApplicationScheme,
) -> Result<DdEquivalence, DdCheckAbort> {
    assert_eq!(
        g.n_qubits(),
        g_prime.n_qubits(),
        "circuits must have equal qubit counts"
    );
    let mut e = package.identity_medge();

    // Consume both circuits back-to-front:
    //   from G:  E ← E · U_i      (right multiplication, i = m−1 … 0)
    //   from G': E ← U'†_j · E    (left multiplication, j = m'−1 … 0)
    // yielding E = U'†_0 ⋯ U'†_{m'−1} · U_{m−1} ⋯ U_0 = U'† · U.
    let g_gates = g.gates();
    let gp_gates = g_prime.gates();
    let (m, mp) = (g_gates.len(), gp_gates.len());
    let cursor = SchemeCursor::new(scheme, g_gates, gp_gates);
    let (mut i, mut j) = (0usize, 0usize); // consumed counts

    while i < m || j < mp {
        deadline.check()?;
        if cursor.advance_g(i, j) {
            let gate = &g_gates[m - 1 - i];
            let gd = package.gate_medge(gate)?;
            e = package.mul_mm(e, gd)?;
            i += 1;
        } else {
            let gate = gp_gates[mp - 1 - j].inverse();
            let gd = package.gate_medge(&gate)?;
            e = package.mul_mm(gd, e)?;
            j += 1;
        }
        if package.wants_gc() {
            let (roots, _) = package.compact(&[e], &[]);
            e = roots[0];
        }
    }

    let identity = package.identity_medge();
    Ok(compare_roots(package, e, identity))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::generators;
    use qcirc::mapping::{route, CouplingMap, RouterOptions};

    #[test]
    fn identical_circuits_stay_at_identity() {
        let g = generators::qft(5, true);
        let mut p = Package::new(5);
        let v = check_equivalence_alternating(&mut p, &g, &g, None).unwrap();
        assert_eq!(v, DdEquivalence::Equivalent);
    }

    #[test]
    fn agrees_with_construct_on_random_pairs() {
        for seed in 0..4 {
            let g = generators::random_clifford_t(4, 60, seed);
            let optimized = qcirc::optimize::optimize(&g);
            let mut p1 = Package::new(4);
            let a =
                crate::check::check_equivalence_construct(&mut p1, &g, &optimized, None).unwrap();
            let mut p2 = Package::new(4);
            let b = check_equivalence_alternating(&mut p2, &g, &optimized, None).unwrap();
            assert_eq!(a.is_equivalent(), b.is_equivalent(), "seed {seed}");
        }
    }

    #[test]
    fn detects_single_gate_errors() {
        let g = generators::qft(4, true);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        let (buggy, _) =
            qcirc::errors::inject(&g, qcirc::errors::ErrorKind::PerturbRotation(0.2), &mut rng)
                .unwrap();
        let mut p = Package::new(4);
        let v = check_equivalence_alternating(&mut p, &g, &buggy, None).unwrap();
        assert_eq!(v, DdEquivalence::NotEquivalent);
    }

    #[test]
    fn mapped_circuits_keep_small_intermediate_dds() {
        let g = generators::qft(6, true);
        let routed = route(&g, &CouplingMap::linear(6), RouterOptions::default()).unwrap();
        let mut p = Package::new(6);
        let v = check_equivalence_alternating(&mut p, &g, &routed.circuit, None).unwrap();
        assert_eq!(v, DdEquivalence::Equivalent);
    }

    #[test]
    fn empty_against_empty() {
        let a = qcirc::Circuit::new(3);
        let b = qcirc::Circuit::new(3);
        let mut p = Package::new(3);
        let v = check_equivalence_alternating(&mut p, &a, &b, None).unwrap();
        assert_eq!(v, DdEquivalence::Equivalent);
    }

    #[test]
    fn unbalanced_gate_counts_are_handled() {
        // G vs its decomposition: very different lengths.
        let mut g = qcirc::Circuit::new(3);
        g.ccx(0, 1, 2).swap(0, 2);
        let lowered = qcirc::decompose::decompose_to_cx_and_single_qubit(&g);
        assert!(lowered.len() > g.len() * 3);
        let mut p = Package::new(3);
        let v = check_equivalence_alternating(&mut p, &g, &lowered, None).unwrap();
        assert!(v.is_equivalent());
    }

    #[test]
    fn scheme_slugs_round_trip() {
        for scheme in ApplicationScheme::ALL {
            assert_eq!(ApplicationScheme::parse(scheme.slug()), Ok(scheme));
            assert_eq!(scheme.to_string(), scheme.slug());
        }
        assert_eq!(
            ApplicationScheme::parse("Gate-Cost"),
            Ok(ApplicationScheme::GateCost)
        );
        assert_eq!(
            ApplicationScheme::parse("one_to_one"),
            Ok(ApplicationScheme::OneToOne)
        );
        assert!(ApplicationScheme::parse("zigzag").is_err());
        assert_eq!(
            ApplicationScheme::default(),
            ApplicationScheme::Proportional
        );
    }

    /// The verdict must be scheme-independent: every interleaving
    /// converges to the same `U'† · U`.
    #[test]
    fn all_schemes_agree_on_random_pairs() {
        for seed in 0..4u64 {
            let g = generators::random_clifford_t(4, 60, seed);
            let optimized = qcirc::optimize::optimize(&g);
            let mut buggy = g.clone();
            buggy.t((seed % 4) as usize);
            for (label, a, b, want) in [
                ("optimized", &g, &optimized, true),
                ("buggy", &g, &buggy, false),
            ] {
                for scheme in ApplicationScheme::ALL {
                    let mut p = Package::new(4);
                    let v =
                        check_equivalence_alternating_scheme(&mut p, a, b, None, scheme).unwrap();
                    assert_eq!(
                        v.is_equivalent(),
                        want,
                        "seed {seed}, {label}, scheme {scheme}"
                    );
                }
            }
        }
    }

    /// Proportional via the scheme-taking entry point is the same code
    /// path as the historical function — byte-compat depends on it.
    #[test]
    fn proportional_scheme_matches_the_default_entry_point() {
        let g = generators::qft(5, true);
        let routed = route(&g, &CouplingMap::linear(5), RouterOptions::default()).unwrap();
        let mut p1 = Package::new(5);
        let a = check_equivalence_alternating(&mut p1, &g, &routed.circuit, None).unwrap();
        let mut p2 = Package::new(5);
        let b = check_equivalence_alternating_scheme(
            &mut p2,
            &g,
            &routed.circuit,
            None,
            ApplicationScheme::Proportional,
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(p1.stats().matrix_nodes, p2.stats().matrix_nodes);
    }

    /// On a circuit-vs-decomposition pair the gate-cost profile keeps the
    /// sides aligned where raw gate counts cannot: a Toffoli's cost
    /// matches its elementary expansion.
    #[test]
    fn gate_cost_handles_decomposed_pairs() {
        let adder = generators::cuccaro_adder(2);
        let lowered = qcirc::decompose::decompose_to_cx_and_single_qubit(&adder);
        let mut p = Package::new(adder.n_qubits());
        let v = check_equivalence_alternating_scheme(
            &mut p,
            &adder,
            &lowered,
            None,
            ApplicationScheme::GateCost,
        )
        .unwrap();
        assert!(v.is_equivalent());
    }

    #[test]
    fn sequential_and_onetoone_handle_empty_sides() {
        let empty = qcirc::Circuit::new(2);
        let mut id = qcirc::Circuit::new(2);
        id.x(0).x(0);
        for scheme in ApplicationScheme::ALL {
            let mut p = Package::new(2);
            let v =
                check_equivalence_alternating_scheme(&mut p, &empty, &id, None, scheme).unwrap();
            assert!(v.is_equivalent(), "scheme {scheme}");
        }
    }
}
