// 1-bit Cuccaro adder with carry, hand-written fixture
OPENQASM 2.0;
include "qelib1.inc";
qreg cin[1];
qreg b[1];
qreg a[1];
qreg cout[1];
creg result[2];
// MAJ
cx a[0], b[0];
cx a[0], cin[0];
ccx cin[0], b[0], a[0];
// carry out
cx a[0], cout[0];
// UMA
ccx cin[0], b[0], a[0];
cx a[0], cin[0];
cx cin[0], b[0];
measure b[0] -> result[0];
measure cout[0] -> result[1];
