//! End-to-end design-flow integration tests: every transformation chain the
//! paper's flow is meant to verify, checked across all crates.

use qcec::{check_equivalence_default, Outcome};
use qcirc::mapping::{respects_coupling, route, CouplingMap, RouterOptions};
use qcirc::{decompose, generators, optimize};

/// decompose → map → optimize on QFT, verified stage by stage.
#[test]
fn qft_full_pipeline() {
    let algorithm = generators::qft(6, true);
    let lowered = decompose::decompose_to_cx_and_single_qubit(&algorithm);
    assert!(lowered.is_elementary());

    let device = CouplingMap::grid(2, 3);
    let routed = route(&lowered, &device, RouterOptions::default()).unwrap();
    assert!(respects_coupling(&routed.circuit, &device));

    let optimized = optimize::optimize(&routed.circuit);
    assert!(optimized.len() <= routed.circuit.len());

    for (stage, artifact) in [
        ("decomposed", &lowered),
        ("mapped", &routed.circuit),
        ("optimized", &optimized),
    ] {
        let result = check_equivalence_default(&algorithm.widened(artifact.n_qubits()), artifact)
            .unwrap_or_else(|e| panic!("{stage}: {e}"));
        assert!(
            result.outcome.is_equivalent(),
            "{stage}: {}",
            result.outcome
        );
    }
}

/// The chemistry workload across a larger grid.
#[test]
fn chemistry_pipeline_on_grid() {
    let algorithm = generators::trotter_heisenberg(2, 4, 2, 0.07, 0.3);
    let device = CouplingMap::grid(2, 4);
    let routed = route(&algorithm, &device, RouterOptions::default()).unwrap();
    let optimized = optimize::optimize(&routed.circuit);
    let result = check_equivalence_default(&algorithm, &optimized).unwrap();
    assert!(result.outcome.is_equivalent());
}

/// Grover with ancilla decomposition, exactly the paper's register
/// inflation (Grover 6 → 9 qubits, Grover 7 → 11).
#[test]
fn grover_ancilla_decomposition_checks() {
    for (k, expected_n) in [(6usize, 9usize), (7, 11)] {
        let g = generators::grover(k, 1, 2);
        let lowered = decompose::decompose_with_dirty_ancillas(&g);
        assert_eq!(lowered.n_qubits(), expected_n, "Grover {k}");
        let result = check_equivalence_default(&g.widened(expected_n), &lowered).unwrap();
        assert!(
            result.outcome.is_equivalent(),
            "Grover {k}: {}",
            result.outcome
        );
    }
}

/// Adders survive the pipeline and still add.
#[test]
fn adder_pipeline_preserves_arithmetic() {
    let adder = generators::cuccaro_adder(3);
    let lowered = decompose::decompose_to_cx_and_single_qubit(&adder);
    let routed = route(
        &lowered,
        &CouplingMap::ring(adder.n_qubits()),
        RouterOptions::default(),
    )
    .unwrap();
    // Equivalence via the flow…
    let result = check_equivalence_default(&adder, &routed.circuit).unwrap();
    assert!(result.outcome.is_equivalent());
    // …and a direct behavioural spot-check: 5 + 6 = 11 (n = 3 bits: 3, carry 1).
    let sim = qsim::Simulator::new();
    let n = 3;
    let input = (6u64 << 1) | (5 << (1 + n));
    let out = sim.run_basis(&routed.circuit, input);
    let expected = (3u64 << 1) | (5 << (1 + n)) | (1 << (2 * n + 1));
    assert!(out.probability(expected) > 1.0 - 1e-9);
}

/// Every error class injected into a mapped artifact is caught, with a
/// counterexample, within the default r = 10.
#[test]
fn all_error_classes_are_caught_on_mapped_circuits() {
    use qcirc::errors::ErrorKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let g = generators::supremacy_2d(3, 3, 6, 5);
    // Lower CZ to the CX basis first, as a real flow would — this also
    // gives the CX-specific error classes something to corrupt.
    let lowered = decompose::decompose_to_cx_and_single_qubit(&g);
    let routed = route(&lowered, &CouplingMap::grid(3, 3), RouterOptions::default()).unwrap();
    let reference = g.widened(routed.circuit.n_qubits());
    for kind in [
        ErrorKind::RemoveGate,
        ErrorKind::MisplaceCx,
        ErrorKind::FlipCxDirection,
        ErrorKind::ReplaceSingleQubitGate,
        ErrorKind::InsertSingleQubitGate,
    ] {
        let mut rng = StdRng::seed_from_u64(17);
        let (buggy, record) = qcirc::errors::inject(&routed.circuit, kind, &mut rng).unwrap();
        let result = check_equivalence_default(&reference, &buggy).unwrap();
        match result.outcome {
            Outcome::NotEquivalent { counterexample } => {
                let ce = counterexample.expect("simulation should find the witness");
                assert!(ce.fidelity < 1.0 - 1e-9, "{record}");
            }
            // FlipCxDirection can produce an equivalent circuit when the
            // flipped CX is symmetric in context — tolerate a proven
            // equivalence, but never an unproven timeout.
            ref other => {
                assert!(other.is_equivalent(), "{record}: unexpected {other}");
            }
        }
    }
}

/// The serialized (QASM) artifact of a pipeline still checks equivalent —
/// i.e. serialization round-trips semantics, not just syntax.
#[test]
fn qasm_roundtrip_preserves_equivalence() {
    let g = generators::trotter_heisenberg(2, 2, 2, 0.11, 0.4);
    let routed = route(&g, &CouplingMap::grid(2, 2), RouterOptions::default()).unwrap();
    let text = qcirc::qasm::write(&routed.circuit);
    let parsed = qcirc::qasm::parse(&text).unwrap();
    let result = check_equivalence_default(&g, &parsed).unwrap();
    assert!(result.outcome.is_equivalent());
}

/// RevLib-format circuits flow into the checker.
#[test]
fn revlib_real_circuit_checks_against_its_decomposition() {
    let src = "\
.version 1.0
.numvars 5
.variables a b c d e
.begin
t1 a
t2 a b
t3 a b c
t4 a b c d
t5 a b c d e
f3 a d e
p b c d
.end";
    let g = qcirc::real::parse(src).unwrap();
    let lowered = decompose::decompose_with_dirty_ancillas(&g);
    let result = check_equivalence_default(&g.widened(lowered.n_qubits()), &lowered).unwrap();
    assert!(result.outcome.is_equivalent(), "{}", result.outcome);
}
