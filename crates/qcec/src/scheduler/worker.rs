//! The simulation worker: claims stimuli in index order and probes them.
//!
//! Workers share an atomic claim counter, so every stimulus index is
//! processed by exactly one worker and claiming follows stimulus order.
//! Combined with the [`CancelToken`](super::cancel::CancelToken)'s
//! watermark rule — a run is only abandoned for indices *above* the lowest
//! known failure — this guarantees that every stimulus up to and including
//! the decisive one completes, which is what lets the orchestrator replay
//! the overlaps in order and reproduce the sequential verdict exactly.
//!
//! With [`Config::batch_size`](crate::Config::batch_size) `> 1` a worker
//! claims that many *contiguous* indices per `fetch_add` and probes them
//! as one [`SimBackend::probe_batch_while`] batch. The watermark protocol
//! extends naturally: indices already superseded at claim time are
//! aborted up front (supersession is monotone in the index, so they form
//! a suffix of the claim), and an in-flight batch is abandoned only when
//! its *first* index is superseded — so every index at or below the
//! decisive one still completes, and the ordered replay reproduces the
//! batch=1 verdict bit for bit. Members above the watermark may complete
//! wastefully (bounded by one batch); their slots sit above the decisive
//! index and never reach the judge.
//!
//! Workers are backend-agnostic: the probe engine is injected through the
//! [`SchedulerContext`] as any [`SimBackend`], and each worker builds its
//! own [`SimBackend::Workspace`] once at startup. Cancellation granularity
//! is the backend's own (`keep_going` is polled gate-granularly by the
//! statevector engine, between probe halves by the decision-diagram one).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use qcirc::Circuit;
use qnum::Complex;
use qstim::Stimulus;

use crate::backend::SimBackend;
use crate::config::{Config, Criterion};
use crate::scheduler::cancel::CancelToken;
use crate::scheduler::events::{EventSink, RunEvent};

/// Everything a worker needs, shared by reference across the pool:
/// the circuit pair, the injected probe backend, and the claim/result
/// state the pool coordinates through.
pub(super) struct SchedulerContext<'a, B: SimBackend> {
    /// The left circuit `G`.
    pub g: &'a Circuit,
    /// The right circuit `G'`.
    pub g_prime: &'a Circuit,
    /// The flow configuration.
    pub config: &'a Config,
    /// The injected probe engine, shared by every worker.
    pub backend: &'a B,
    /// The pre-drawn stimuli, in judging order.
    pub stimuli: &'a [Stimulus],
    /// Shared cancellation state.
    pub token: &'a CancelToken,
    /// Next stimulus index to claim.
    pub next: AtomicUsize,
    /// `(overlap, truncation_error)` per stimulus index; `None` = not
    /// (fully) simulated. The truncation rides along so the orchestrator's
    /// ordered replay can widen the judge's tolerance exactly as the
    /// sequential flow would.
    pub results: Mutex<Vec<Option<(Complex, f64)>>>,
    /// Event sink.
    pub sink: &'a dyn EventSink,
}

impl<'a, B: SimBackend> SchedulerContext<'a, B> {
    pub(super) fn new(
        g: &'a Circuit,
        g_prime: &'a Circuit,
        config: &'a Config,
        backend: &'a B,
        stimuli: &'a [Stimulus],
        token: &'a CancelToken,
        sink: &'a dyn EventSink,
    ) -> Self {
        SchedulerContext {
            g,
            g_prime,
            config,
            backend,
            stimuli,
            token,
            next: AtomicUsize::new(0),
            results: Mutex::new(vec![None; stimuli.len()]),
            sink,
        }
    }
}

/// One worker's claim loop. Returns early only on a decision-diagram
/// node-limit overflow (statevector workers cannot fail).
pub(super) fn run_worker<B: SimBackend>(
    ctx: &SchedulerContext<'_, B>,
) -> Result<(), qdd::DdLimitError> {
    let mut workspace = ctx.backend.workspace(ctx.g.n_qubits());
    let batch = ctx.config.batch_size.max(1);
    loop {
        let first = ctx.next.fetch_add(batch, Ordering::Relaxed);
        if first >= ctx.stimuli.len() {
            return Ok(());
        }
        let end = (first + batch).min(ctx.stimuli.len());
        // Supersession is monotone in the index, so the already-moot part
        // of the claim is a suffix: probe the live prefix as one batch and
        // abort the rest up front.
        let mut live_end = first;
        while live_end < end && !ctx.token.superseded(live_end) {
            live_end += 1;
        }
        for index in live_end..end {
            ctx.sink.record(RunEvent::SimulationAborted { index });
        }
        if live_end == first {
            continue;
        }
        let start = Instant::now();
        // Abandon the batch only once its *first* member is superseded:
        // that member is the one the watermark rule obliges us to finish,
        // and later members become moot together with it.
        let outcomes = ctx.backend.probe_batch_while(
            ctx.g,
            ctx.g_prime,
            &ctx.stimuli[first..live_end],
            &mut workspace,
            &|| !ctx.token.superseded(first),
        )?;
        match outcomes {
            None => {
                for index in first..live_end {
                    ctx.sink.record(RunEvent::SimulationAborted { index });
                }
            }
            Some(outcomes) => {
                let elapsed = start.elapsed();
                let probed = outcomes.len();
                debug_assert_eq!(probed, live_end - first);
                // Per-run output mismatches are decisive on their own;
                // publish the watermarks (in index order) before any event
                // so observers of the sink never see a finished failing
                // run without a watermark. Truncating engines are exempt:
                // their mismatches are only decidable against the
                // cumulative truncation the ordered replay tracks (see
                // `SimBackend::can_truncate`), so every stimulus runs to
                // completion and the replay decides.
                if !ctx.backend.can_truncate() {
                    for (offset, outcome) in outcomes.iter().enumerate() {
                        if output_mismatch(outcome.overlap, ctx.config) {
                            ctx.token.record_sim_failure(first + offset);
                        }
                    }
                }
                {
                    let mut results = ctx.results.lock().unwrap();
                    for (offset, outcome) in outcomes.iter().enumerate() {
                        results[first + offset] =
                            Some((outcome.overlap, outcome.metrics.truncation_error));
                    }
                }
                // Per-simulation wall time is not separable inside a
                // batch; attribute an even share to each member.
                let share = elapsed / probed.max(1) as u32;
                for (offset, outcome) in outcomes.iter().enumerate() {
                    ctx.sink.record(RunEvent::SimulationFinished {
                        index: first + offset,
                        wall_time: share,
                        fidelity: outcome.overlap.norm_sqr(),
                        backend: ctx.backend.kind(),
                    });
                }
                ctx.sink.record(RunEvent::BatchFinished {
                    first,
                    claimed: end - first,
                    probed,
                    wall_time: elapsed,
                });
            }
        }
    }
}

/// The per-run failure predicate a worker can decide alone: the overlap
/// magnitude (or value, under [`Criterion::Strict`]) is off. Cross-run
/// phase inconsistencies need the whole prefix and are left to the
/// orchestrator's ordered replay.
fn output_mismatch(overlap: Complex, config: &Config) -> bool {
    match config.criterion {
        Criterion::Strict => (overlap - Complex::ONE).norm_sqr() > config.fidelity_tolerance,
        Criterion::UpToGlobalPhase => (overlap.norm_sqr() - 1.0).abs() > config.fidelity_tolerance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::StatevectorBackend;
    use crate::scheduler::events::NullSink;

    #[test]
    fn single_worker_fills_all_slots_in_order() {
        let g = qcirc::generators::ghz(3);
        let opt = qcirc::optimize::optimize(&g);
        let config = Config::default();
        let backend = StatevectorBackend::for_worker();
        let stimuli: Vec<Stimulus> = [0u64, 3, 5, 7].map(Stimulus::Basis).to_vec();
        let token = CancelToken::new();
        let ctx = SchedulerContext::new(&g, &opt, &config, &backend, &stimuli, &token, &NullSink);
        run_worker(&ctx).unwrap();
        let results = ctx.results.lock().unwrap();
        assert!(results.iter().all(Option::is_some));
        // Equivalent circuits: every overlap has unit fidelity.
        for (overlap, truncation) in results.iter().flatten() {
            assert!((overlap.norm_sqr() - 1.0).abs() < 1e-9);
            assert_eq!(*truncation, 0.0, "the dense engine is always exact");
        }
        assert_eq!(token.lowest_failure(), None);
    }

    #[test]
    fn worker_records_failure_watermark() {
        let g = qcirc::generators::ghz(3);
        let mut buggy = g.clone();
        buggy.x(0);
        let config = Config::default();
        let backend = StatevectorBackend::for_worker();
        let stimuli: Vec<Stimulus> = (0u64..8).map(Stimulus::Basis).collect();
        let token = CancelToken::new();
        let ctx = SchedulerContext::new(&g, &buggy, &config, &backend, &stimuli, &token, &NullSink);
        run_worker(&ctx).unwrap();
        // An X on a GHZ input corrupts every column: index 0 fails.
        assert_eq!(token.lowest_failure(), Some(0));
        // All later indices were superseded and skipped.
        let results = ctx.results.lock().unwrap();
        assert!(results[0].is_some());
        assert!(results[1..].iter().all(Option::is_none));
    }

    #[test]
    fn dd_backend_agrees_with_statevector_backend() {
        let g = qcirc::generators::qft(4, true);
        let opt = qcirc::optimize::optimize(&g);
        let config = Config::default();
        let stimuli: Vec<Stimulus> = [0u64, 5, 9, 15].map(Stimulus::Basis).to_vec();
        let sv = StatevectorBackend::for_worker();
        let dd = qdd::DdBackend::new();
        let token = CancelToken::new();
        let ctx = SchedulerContext::new(&g, &opt, &config, &sv, &stimuli, &token, &NullSink);
        run_worker(&ctx).unwrap();
        let sv_results: Vec<_> = ctx.results.lock().unwrap().clone();
        let token = CancelToken::new();
        let ctx = SchedulerContext::new(&g, &opt, &config, &dd, &stimuli, &token, &NullSink);
        run_worker(&ctx).unwrap();
        let dd_results: Vec<_> = ctx.results.lock().unwrap().clone();
        for (s, d) in sv_results.iter().zip(&dd_results) {
            let ((s, _), (d, _)) = (s.unwrap(), d.unwrap());
            assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
            assert!((d.norm_sqr() - 1.0).abs() < 1e-9);
        }
    }
}
