//! The service driver: batch equivalence checking with a verdict cache.
//!
//! Reads a *manifest* of circuit pairs (one `GOLDEN,FAULTY` line per job,
//! `#` comments allowed, paths relative to the manifest's directory),
//! submits every pair to an [`EquivalenceCheckingManager`], and runs the
//! whole batch `--passes` times against one shared cache — so pass 1
//! computes every verdict and pass 2+ replays them from the cache.
//!
//! Output:
//!
//! - one JSONL stream per pass in `<out>.passN.jsonl` (timings-free by
//!   default, so any two passes over the same manifest are byte-identical
//!   — `cmp` them to audit the cache);
//! - a deterministic summary JSON object on stdout (job counts and cache
//!   provenance per pass; counters only, no wall-clock);
//! - the measured re-run speedup on stderr (wall-clock, so never on
//!   stdout unless `--timings`).
//!
//! ```text
//! cargo run --release -p bench --bin serve -- \
//!     --manifest tests/fixtures/serve/manifest.txt --passes 2 --out /tmp/serve
//! ```

use std::path::{Path, PathBuf};
use std::process::exit;
use std::sync::Arc;
use std::time::Instant;

use qcec::report::json::{self, Obj};
use qcec::{Config, EquivalenceCheckingManager, VerdictCache};

struct Args {
    manifest: Option<String>,
    passes: usize,
    sims: usize,
    seed: u64,
    threads: usize,
    workers: usize,
    capacity: usize,
    out: Option<String>,
    timings: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            manifest: None,
            passes: 2,
            sims: 10,
            seed: 7,
            threads: 1,
            workers: 2,
            capacity: EquivalenceCheckingManager::DEFAULT_CACHE_CAPACITY,
            out: None,
            timings: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: serve --manifest FILE [--passes N] [--sims N] [--seed N] \
         [--threads N] [--workers N] [--capacity N] [--out PREFIX] [--timings]\n\
         manifest: one GOLDEN,FAULTY pair per line (# comments; paths \
         relative to the manifest)"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--manifest" => args.manifest = Some(val("--manifest")),
            "--passes" => args.passes = val("--passes").parse().unwrap_or_else(|_| usage()),
            "--sims" => args.sims = val("--sims").parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--threads" => args.threads = val("--threads").parse().unwrap_or_else(|_| usage()),
            "--workers" => args.workers = val("--workers").parse().unwrap_or_else(|_| usage()),
            "--capacity" => args.capacity = val("--capacity").parse().unwrap_or_else(|_| usage()),
            "--out" => args.out = Some(val("--out")),
            "--timings" => args.timings = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    if args.passes == 0 {
        eprintln!("--passes must be at least 1");
        usage();
    }
    args
}

fn load_circuit(path: &Path) -> qcirc::Circuit {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", path.display());
        exit(1);
    });
    let parsed = if path.extension().is_some_and(|e| e == "real") {
        qcirc::real::parse(&text).map_err(|e| e.to_string())
    } else {
        qcirc::qasm::parse(&text).map_err(|e| e.to_string())
    };
    parsed.unwrap_or_else(|e| {
        eprintln!("cannot parse {}: {e}", path.display());
        exit(1);
    })
}

/// One manifest entry: a job name plus the two resolved circuit paths.
struct ManifestEntry {
    name: String,
    golden: PathBuf,
    faulty: PathBuf,
}

fn read_manifest(path: &str) -> Vec<ManifestEntry> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read manifest {path}: {e}");
        exit(1);
    });
    let base = Path::new(path)
        .parent()
        .unwrap_or(Path::new("."))
        .to_path_buf();
    let mut entries = Vec::new();
    for (line_no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((golden, faulty)) = line.split_once(',') else {
            eprintln!("manifest line {}: expected GOLDEN,FAULTY", line_no + 1);
            exit(1);
        };
        let golden = base.join(golden.trim());
        let faulty = base.join(faulty.trim());
        let name = faulty
            .file_name()
            .map(|f| f.to_string_lossy().into_owned())
            .unwrap_or_else(|| faulty.display().to_string());
        entries.push(ManifestEntry {
            name,
            golden,
            faulty,
        });
    }
    if entries.is_empty() {
        eprintln!("manifest {path} holds no pairs");
        exit(1);
    }
    entries
}

fn main() {
    let args = parse_args();
    let Some(manifest_path) = &args.manifest else {
        usage();
    };
    let entries = read_manifest(manifest_path);
    let pairs: Vec<(String, qcirc::Circuit, qcirc::Circuit)> = entries
        .iter()
        .map(|e| {
            (
                e.name.clone(),
                load_circuit(&e.golden),
                load_circuit(&e.faulty),
            )
        })
        .collect();

    let config = Config::new()
        .with_simulations(args.sims)
        .with_seed(args.seed)
        .with_threads(args.threads.max(1));
    let cache = Arc::new(VerdictCache::new(args.capacity));

    let mut pass_summaries = Vec::new();
    let mut pass_walls = Vec::new();
    for pass in 1..=args.passes {
        let mut manager = EquivalenceCheckingManager::with_cache(config.clone(), cache.clone())
            .with_workers(args.workers)
            .with_timings(args.timings);
        if let Some(prefix) = &args.out {
            let stream = format!("{prefix}.pass{pass}.jsonl");
            // Start each pass's stream fresh so reruns stay comparable.
            let _ = std::fs::remove_file(&stream);
            manager = manager.with_stream_path(stream);
        }
        manager.submit_batch(pairs.iter().cloned());
        let start = Instant::now();
        let results = manager.run().unwrap_or_else(|e| {
            eprintln!("pass {pass}: {e}");
            exit(1);
        });
        let wall = start.elapsed();

        let mut computed = 0u64;
        let mut cache_hits = 0u64;
        let mut deduped = 0u64;
        let mut not_equivalent = 0u64;
        for r in results {
            match r.provenance {
                qcec::service::Provenance::Computed => computed += 1,
                qcec::service::Provenance::CacheHit => cache_hits += 1,
                qcec::service::Provenance::Deduped => deduped += 1,
            }
            if r.verdict.outcome.is_not_equivalent() {
                not_equivalent += 1;
            }
        }
        let mut o = Obj::new();
        o.int("pass", pass as u64)
            .int("jobs", results.len() as u64)
            .int("computed", computed)
            .int("cache_hits", cache_hits)
            .int("deduped", deduped)
            .int("not_equivalent", not_equivalent);
        if args.timings {
            o.num("t_s", wall.as_secs_f64());
        }
        pass_summaries.push(o.render());
        pass_walls.push(wall);
        eprintln!(
            "pass {pass}: {} jobs, {computed} computed, {cache_hits} cache hits, \
             {deduped} deduped in {:.3}s",
            results.len(),
            wall.as_secs_f64(),
        );
    }

    let mut root = Obj::new();
    root.int("pairs", pairs.len() as u64)
        .int("passes", args.passes as u64)
        .int("workers", args.workers as u64)
        .raw("pass_stats", json::array(pass_summaries))
        .raw("cache", cache.stats().to_json());
    println!("{}", root.render());

    if args.passes >= 2 {
        let first = pass_walls[0].as_secs_f64();
        let rest: f64 = pass_walls[1..].iter().map(|w| w.as_secs_f64()).sum::<f64>()
            / (pass_walls.len() - 1) as f64;
        if rest > 0.0 {
            eprintln!(
                "cache speedup: pass 1 {:.4}s vs later passes {:.4}s avg ({:.1}x)",
                first,
                rest,
                first / rest
            );
        }
    }
}
