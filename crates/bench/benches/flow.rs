//! End-to-end flow benchmarks: the proposed simulation-first flow against
//! the sole DD equivalence check, on equivalent and non-equivalent pairs
//! (the runtime comparison behind Table I).

use criterion::{criterion_group, criterion_main, Criterion};
use qcec::{Config, Fallback};
use qcirc::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn design_flow_pair() -> (qcirc::Circuit, qcirc::Circuit) {
    let g = generators::trotter_heisenberg(2, 4, 2, 0.1, 0.5);
    let routed =
        qcirc::mapping::route_or_panic(&g, &qcirc::mapping::CouplingMap::grid(2, 4)).circuit;
    (g.widened(routed.n_qubits()), routed)
}

fn bench_non_equivalent(c: &mut Criterion) {
    let (g, alt) = design_flow_pair();
    let mut rng = StdRng::seed_from_u64(99);
    let (buggy, _) = qcirc::errors::inject_random(&alt, &mut rng).unwrap();
    let mut group = c.benchmark_group("flow_non_equivalent");
    group.bench_function("simulation_flow", |b| {
        let config = Config::new().with_fallback(Fallback::None);
        b.iter(|| qcec::check_equivalence(&g, &buggy, &config).unwrap());
    });
    group.bench_function("dd_ec_alone_2s_budget", |b| {
        // The sole DD check on this non-equivalent pair runs for minutes —
        // exactly the paper's point. Benchmark it under a 2 s budget (the
        // realistic deployment) rather than to completion.
        let budget = Some(std::time::Duration::from_secs(2));
        b.iter_batched(
            || qdd::Package::new(g.n_qubits()),
            |mut p| {
                let _ = qdd::check_equivalence_alternating(&mut p, &g, &buggy, budget);
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_equivalent(c: &mut Criterion) {
    let (g, alt) = design_flow_pair();
    let mut group = c.benchmark_group("flow_equivalent");
    group.bench_function("ten_simulations", |b| {
        let config = Config::new()
            .with_fallback(Fallback::None)
            .with_simulations(10);
        b.iter(|| qcec::check_equivalence(&g, &alt, &config).unwrap());
    });
    group.bench_function("full_flow_with_fallback", |b| {
        let config = Config::new().with_simulations(10);
        b.iter(|| qcec::check_equivalence(&g, &alt, &config).unwrap());
    });
    group.finish();
}

fn bench_r_sweep(c: &mut Criterion) {
    // Ablation for design-choice 2: cost of the simulation stage vs r.
    let (g, alt) = design_flow_pair();
    let mut group = c.benchmark_group("flow_r_sweep");
    for r in [1usize, 5, 10, 20] {
        group.bench_with_input(criterion::BenchmarkId::from_parameter(r), &r, |b, &r| {
            let config = Config::new()
                .with_fallback(Fallback::None)
                .with_simulations(r);
            b.iter(|| qcec::check_equivalence(&g, &alt, &config).unwrap());
        });
    }
    group.finish();
}

fn bench_stimulus_strategies(c: &mut Criterion) {
    // Ablation for design-choice 3: random vs sequential stimuli cost the
    // same per run (the difference is *detection power*, see the
    // `sequential_strategy_misses_high_controlled_errors` test).
    let (g, alt) = design_flow_pair();
    let mut group = c.benchmark_group("flow_stimuli");
    for (name, strategy) in [
        ("random", qcec::StimulusStrategy::Random),
        ("sequential", qcec::StimulusStrategy::Sequential),
    ] {
        group.bench_function(name, |b| {
            let config = Config::new()
                .with_fallback(Fallback::None)
                .with_stimuli(strategy)
                .with_simulations(10);
            b.iter(|| qcec::check_equivalence(&g, &alt, &config).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_non_equivalent,
    bench_equivalent,
    bench_r_sweep,
    bench_stimulus_strategies
);
criterion_main!(benches);
