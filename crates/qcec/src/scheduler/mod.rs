//! Parallel orchestration of the equivalence checking flow.
//!
//! The paper's flow is embarrassingly parallel in its first stage: the `r`
//! random basis-state simulations are independent, and the *first*
//! counterexample ends the whole run. This module fans the pre-drawn
//! stimuli across a pool of scoped worker threads
//! ([`Config::with_threads`](crate::Config::with_threads)) and — in
//! *portfolio* mode
//! ([`Config::with_portfolio`](crate::Config::with_portfolio)) — races the
//! complete decision-diagram check against the pool, first definitive
//! verdict wins.
//!
//! # Determinism
//!
//! For a fixed seed the verdict (and any simulation counterexample) is
//! deterministic regardless of worker count:
//!
//! * stimuli are **pre-drawn** before any thread starts, so the RNG stream
//!   never depends on scheduling;
//! * workers claim stimulus indices **in order** from a shared counter,
//!   and the [`CancelToken`] only abandons runs *above* the lowest failing
//!   index — every run up to the decisive one always completes;
//! * the orchestrator ignores completion order and replays the collected
//!   overlaps **in stimulus order** through the same judge as the
//!   sequential flow, so the reported counterexample is always the one the
//!   sequential flow would have found.
//!
//! What *is* scheduling-dependent is how many superseded runs were already
//! in flight when the counterexample appeared — visible only through the
//! [`EventSink`] (and, in portfolio mode, whether the DD racer or the pool
//! produced the verdict first; see `with_portfolio` for the caveats).
//!
//! With `threads == 1` the flow does not use this module at all; the
//! sequential code path (and its exact `FlowResult`) is preserved.

mod cancel;
mod events;
mod worker;

pub use cancel::{CancelCause, CancelToken};
pub use events::{CollectingSink, EventSink, NullSink, RunEvent, Stage};

use std::sync::Arc;
use std::time::{Duration, Instant};

use qcirc::Circuit;

use crate::backend::{
    auto_backend, dd_for_flow, MpsBackend, SimBackend, StabBackend, StatevectorBackend,
};
use crate::config::{BackendKind, Config, Fallback};
use crate::flow::FlowError;
use crate::functional::{
    run_functional_check, run_functional_check_cancellable, AbortKind, FunctionalVerdict,
};
use crate::outcome::{AbortReason, Counterexample, FlowResult, FlowStats, Outcome};
use crate::sim_check::{draw_stimuli, Judge};

/// Runs the full flow (simulate, then complete check) on a worker pool of
/// `config.threads` threads, plus one racer thread in portfolio mode.
///
/// [`check_equivalence`](crate::check_equivalence) calls this
/// automatically when `config.threads > 1`; calling it directly with
/// `threads == 1` is permitted (one worker, same verdict) but pointless.
///
/// # Errors
///
/// Returns [`FlowError`] if the circuits' qubit counts differ, or if the
/// decision-diagram *simulation* backend overflows its node budget.
pub fn run_scheduled(
    g: &Circuit,
    g_prime: &Circuit,
    config: &Config,
) -> Result<FlowResult, FlowError> {
    match config.backend {
        BackendKind::Statevector => {
            // Per-worker kernels stay single-threaded: the pool already
            // parallelises across stimuli, so total threads = worker count.
            run_scheduled_on(&StatevectorBackend::for_worker(), g, g_prime, config)
        }
        BackendKind::DecisionDiagram => run_scheduled_on(&dd_for_flow(config), g, g_prime, config),
        BackendKind::Stab => {
            // The stab engine's dense fallback stays sequential inside
            // each worker; the tableau fast path is gated on the
            // criterion exactly as in the sequential flow.
            run_scheduled_on(&StabBackend::for_scheduled(config), g, g_prime, config)
        }
        BackendKind::Mps => run_scheduled_on(&MpsBackend::for_flow(config), g, g_prime, config),
        BackendKind::Auto => {
            // Normally resolved by `check_equivalence` before scheduling;
            // resolve here too so direct callers get the same behaviour.
            let resolved = auto_backend(g, g_prime);
            if let Some(sink) = &config.event_sink {
                sink.record(RunEvent::BackendSelected { backend: resolved });
            }
            run_scheduled(g, g_prime, &config.clone().with_backend(resolved))
        }
    }
}

/// The backend-generic body of [`run_scheduled`]: same pool, same
/// determinism contract, probe engine injected as any [`SimBackend`].
///
/// # Errors
///
/// Returns [`FlowError`] if the circuits' qubit counts differ, or if the
/// backend overflows its node budget.
pub fn run_scheduled_on<B: SimBackend>(
    backend: &B,
    g: &Circuit,
    g_prime: &Circuit,
    config: &Config,
) -> Result<FlowResult, FlowError> {
    if g.n_qubits() != g_prime.n_qubits() {
        return Err(FlowError::QubitCountMismatch {
            left: g.n_qubits(),
            right: g_prime.n_qubits(),
        });
    }

    let sink_arc: Arc<dyn EventSink> = config
        .event_sink
        .clone()
        .unwrap_or_else(|| Arc::new(NullSink));
    let sink: &dyn EventSink = sink_arc.as_ref();

    // Pre-draw every stimulus so the RNG stream is scheduling-independent.
    let stimuli = draw_stimuli(g.n_qubits(), config);
    let token = CancelToken::new();
    let ctx = worker::SchedulerContext::new(g, g_prime, config, backend, &stimuli, &token, sink);
    let workers = config.threads.max(1);
    // Racing a disabled fallback would only reproduce the instant
    // "aborted: disabled" answer; skip the extra thread.
    let race_functional = config.portfolio && config.fallback != Fallback::None;

    sink.record(RunEvent::StageStarted {
        stage: Stage::Simulation,
    });
    let sim_start = Instant::now();

    let mut pool_error: Option<qdd::DdLimitError> = None;
    let mut sim_ce: Option<Counterexample> = None;
    let mut sim_truncation = 0.0f64;
    let mut sims_completed = 0usize;
    let mut simulation_time = Duration::ZERO;
    // `Some((verdict, wall_time))` once the racer has been joined;
    // `verdict == None` means it was cancelled.
    let mut racer_result: Option<(Option<FunctionalVerdict>, Duration)> = None;
    // Set by the racer on a definitive verdict. The `Cancelled` event
    // itself is emitted by this (orchestrator) thread only after every
    // worker has been joined — the drain-then-count protocol: workers
    // drain all remaining stimulus indices (emitting `SimulationAborted`
    // per claim) *before* the cancellation marker lands in the stream, so
    // sinks always observe `finished + aborted == r` ahead of the
    // `Cancelled` event, regardless of scheduling.
    let functional_won = std::sync::atomic::AtomicBool::new(false);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| scope.spawn(|| worker::run_worker(&ctx)))
            .collect();
        let racer = race_functional.then(|| {
            sink.record(RunEvent::StageStarted {
                stage: Stage::Functional,
            });
            scope.spawn(|| {
                let start = Instant::now();
                let verdict =
                    run_functional_check_cancellable(g, g_prime, config, token.functional_flag());
                if matches!(
                    verdict,
                    Some(
                        FunctionalVerdict::Equivalent
                            | FunctionalVerdict::EquivalentUpToGlobalPhase { .. }
                            | FunctionalVerdict::NotEquivalent
                    )
                ) {
                    // A definitive answer makes the remaining runs moot.
                    token.halt_simulations();
                    functional_won.store(true, std::sync::atomic::Ordering::Release);
                }
                (verdict, start.elapsed())
            })
        });

        for handle in handles {
            if let Err(e) = handle.join().expect("simulation worker panicked") {
                pool_error = Some(e);
            }
        }
        if functional_won.load(std::sync::atomic::Ordering::Acquire) {
            sink.record(RunEvent::Cancelled {
                cause: CancelCause::FunctionalVerdict,
            });
        }
        simulation_time = sim_start.elapsed();
        sink.record(RunEvent::StageFinished {
            stage: Stage::Simulation,
            wall_time: simulation_time,
        });

        // Replay the overlaps in stimulus order through the sequential
        // judge. The contiguous completed prefix is exactly what the
        // sequential flow would have seen before stopping.
        {
            let results = ctx.results.lock().unwrap();
            let mut judge = Judge::new(config);
            for (i, slot) in results.iter().enumerate() {
                let Some((overlap, truncation)) = slot else {
                    break;
                };
                if let Some(ce) = judge.observe(*overlap, *truncation, &stimuli[i], i + 1) {
                    sim_ce = Some(ce);
                    break;
                }
            }
            sim_truncation = judge.truncation_error();
            sims_completed = results.iter().filter(|s| s.is_some()).count();
        }
        if pool_error.is_some() || sim_ce.is_some() {
            // Either way the racer's answer can no longer matter.
            token.cancel_functional();
            if sim_ce.is_some() {
                sink.record(RunEvent::Cancelled {
                    cause: CancelCause::SimulationCounterexample,
                });
            }
        }

        if let Some(racer) = racer {
            let (verdict, wall_time) = racer.join().expect("functional racer panicked");
            sink.record(RunEvent::StageFinished {
                stage: Stage::Functional,
                wall_time,
            });
            racer_result = Some((verdict, wall_time));
        }
    });

    if let Some(e) = pool_error {
        return Err(FlowError::SimulationOverflow {
            node_limit: e.node_limit,
        });
    }

    if let Some(ce) = sim_ce {
        // Simulation found a witness; a concurrent functional verdict (if
        // any) necessarily agrees on non-equivalence, so prefer the
        // counterexample — it is the more useful answer.
        let functional_time = racer_result.map_or(Duration::ZERO, |(_, t)| t);
        let decisive_run = ce.run;
        return Ok(FlowResult {
            outcome: Outcome::NotEquivalent {
                counterexample: Some(ce),
            },
            stats: FlowStats {
                simulations_run: decisive_run,
                simulation_time,
                functional_time,
            },
        });
    }

    // All completed simulations agreed: the complete check decides.
    let (verdict, functional_time) = match racer_result {
        Some((verdict, wall_time)) => {
            let verdict = verdict
                .expect("the functional racer is only cancelled after a simulation counterexample");
            (verdict, wall_time)
        }
        None => {
            sink.record(RunEvent::StageStarted {
                stage: Stage::Functional,
            });
            let start = Instant::now();
            let verdict = run_functional_check(g, g_prime, config);
            let wall_time = start.elapsed();
            sink.record(RunEvent::StageFinished {
                stage: Stage::Functional,
                wall_time,
            });
            (verdict, wall_time)
        }
    };

    let outcome = match verdict {
        FunctionalVerdict::Equivalent => Outcome::Equivalent,
        FunctionalVerdict::EquivalentUpToGlobalPhase { phase } => {
            Outcome::EquivalentUpToGlobalPhase { phase }
        }
        FunctionalVerdict::NotEquivalent => Outcome::NotEquivalent {
            counterexample: None,
        },
        // Mirrors the sequential flow: with no complete check configured,
        // truncated simulations surface the accumulated error instead of
        // the bare "no fallback" notice.
        FunctionalVerdict::Aborted(AbortKind::Disabled) if sim_truncation > 0.0 => {
            Outcome::ProbablyEquivalent {
                passed_simulations: sims_completed,
                abort: AbortReason::Truncation {
                    error: sim_truncation,
                },
            }
        }
        FunctionalVerdict::Aborted(kind) => Outcome::ProbablyEquivalent {
            passed_simulations: sims_completed,
            abort: kind.into(),
        },
    };
    Ok(FlowResult {
        outcome,
        stats: FlowStats {
            simulations_run: sims_completed,
            simulation_time,
            functional_time,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_equivalence;
    use qcirc::generators;

    #[test]
    fn scheduled_equivalent_pair_matches_sequential_verdict() {
        let g = generators::qft(5, true);
        let opt = qcirc::optimize::optimize(&g);
        let sequential = check_equivalence(&g, &opt, &Config::default()).unwrap();
        let scheduled = run_scheduled(&g, &opt, &Config::default().with_threads(4)).unwrap();
        assert_eq!(sequential.outcome, scheduled.outcome);
        assert_eq!(
            sequential.stats.simulations_run,
            scheduled.stats.simulations_run
        );
    }

    #[test]
    fn scheduled_counterexample_matches_sequential_counterexample() {
        let g = generators::grover(5, 11, 2);
        let mut buggy = g.clone();
        buggy.x(1);
        let sequential = check_equivalence(&g, &buggy, &Config::default()).unwrap();
        let scheduled = run_scheduled(&g, &buggy, &Config::default().with_threads(4)).unwrap();
        // Same witness, bit for bit: basis, overlap, fidelity, run index.
        assert_eq!(sequential.outcome, scheduled.outcome);
    }

    #[test]
    fn qubit_mismatch_is_reported() {
        let a = generators::ghz(3);
        let b = generators::ghz(4);
        let config = Config::default().with_threads(2);
        let e = run_scheduled(&a, &b, &config).unwrap_err();
        assert!(matches!(
            e,
            FlowError::QubitCountMismatch { left: 3, right: 4 }
        ));
    }

    #[test]
    fn dd_simulation_overflow_is_reported() {
        let g = generators::supremacy_2d(3, 4, 12, 1);
        let config = Config::default()
            .with_backend(crate::BackendKind::DecisionDiagram)
            .with_dd_node_limit(50)
            .with_threads(2);
        let e = run_scheduled(&g, &g, &config).unwrap_err();
        assert!(matches!(
            e,
            FlowError::SimulationOverflow { node_limit: 50 }
        ));
    }

    #[test]
    fn portfolio_agrees_on_equivalence() {
        let g = generators::qft(4, true);
        let routed = qcirc::mapping::route_or_panic(&g, &qcirc::mapping::CouplingMap::linear(4));
        let config = Config::default().with_threads(2).with_portfolio(true);
        let result = run_scheduled(&g, &routed.circuit, &config).unwrap();
        assert!(result.outcome.is_equivalent(), "{}", result.outcome);
    }

    #[test]
    fn portfolio_cancellation_lands_after_every_simulation_event() {
        // Drain-then-count: whichever side wins the race, every stimulus
        // index must have reported (finished or aborted) before the
        // `Cancelled` marker appears — counters derived from the stream
        // are deterministic even though the finished/aborted split is not.
        let g = generators::qft(6, true);
        let opt = qcirc::optimize::optimize(&g);
        for trial in 0..5 {
            let sink = Arc::new(CollectingSink::new());
            let config = Config::default()
                .with_threads(4)
                .with_portfolio(true)
                .with_simulations(24)
                .with_seed(trial)
                .with_event_sink(sink.clone());
            let result = run_scheduled(&g, &opt, &config).unwrap();
            assert!(result.outcome.is_equivalent(), "{}", result.outcome);
            assert_eq!(
                sink.simulations_finished() + sink.simulations_aborted(),
                24,
                "every claimed index reports exactly once"
            );
            let events = sink.events();
            if let Some(pos) = events
                .iter()
                .position(|e| matches!(e, RunEvent::Cancelled { .. }))
            {
                assert!(
                    events[pos..].iter().all(|e| !matches!(
                        e,
                        RunEvent::SimulationFinished { .. } | RunEvent::SimulationAborted { .. }
                    )),
                    "simulation events may not trail the cancellation marker"
                );
            }
        }
    }

    #[test]
    fn scheduled_stab_backend_matches_sequential_verdict() {
        let g = generators::clifford_adder(6);
        let mut buggy = g.clone();
        buggy.z(5);
        let base = Config::default().with_backend(crate::BackendKind::Stab);
        let sequential = check_equivalence(&g, &buggy, &base).unwrap();
        let scheduled = run_scheduled(&g, &buggy, &base.clone().with_threads(4)).unwrap();
        assert_eq!(sequential.outcome, scheduled.outcome);
    }

    #[test]
    fn scheduled_mps_backend_matches_sequential_verdict() {
        let g = generators::qft(4, true);
        let mut buggy = g.clone();
        buggy.s(1);
        let base = Config::default().with_backend(crate::BackendKind::Mps);
        let sequential = check_equivalence(&g, &buggy, &base).unwrap();
        let scheduled = run_scheduled(&g, &buggy, &base.clone().with_threads(4)).unwrap();
        assert_eq!(sequential.outcome, scheduled.outcome);
        let opt = qcirc::optimize::optimize(&g);
        let sequential = check_equivalence(&g, &opt, &base).unwrap();
        let scheduled = run_scheduled(&g, &opt, &base.clone().with_threads(4)).unwrap();
        assert_eq!(sequential.outcome, scheduled.outcome);
    }

    #[test]
    fn scheduled_auto_backend_resolves_and_logs() {
        let g = generators::qft(4, true);
        let opt = qcirc::optimize::optimize(&g);
        let sink = Arc::new(CollectingSink::new());
        let config = Config::default()
            .with_backend(crate::BackendKind::Auto)
            .with_threads(2)
            .with_event_sink(sink.clone());
        let result = run_scheduled(&g, &opt, &config).unwrap();
        assert!(result.outcome.is_equivalent(), "{}", result.outcome);
        assert!(sink.events().iter().any(|e| matches!(
            e,
            RunEvent::BackendSelected {
                backend: crate::BackendKind::Statevector
            }
        )));
    }

    #[test]
    fn portfolio_agrees_on_non_equivalence() {
        let g = generators::qft(4, true);
        let mut buggy = g.clone();
        buggy.t(0);
        let config = Config::default().with_threads(2).with_portfolio(true);
        let result = run_scheduled(&g, &buggy, &config).unwrap();
        assert!(result.outcome.is_not_equivalent(), "{}", result.outcome);
    }
}
