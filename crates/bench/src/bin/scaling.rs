//! Scaling figure: runtime of one simulation vs the complete equivalence
//! check as the register grows (the "figure" behind the paper's complexity
//! argument — columns are `O(m·2ⁿ)`, full matrices `O(m·4ⁿ)`-ish, DDs
//! structure-dependent).
//!
//! Prints one row per qubit count for the QFT and supremacy families:
//! `t_sim_sv` (one statevector run), `t_sim_dd` (one DD run), `t_ec`
//! (complete alternating DD check of the pair against its optimized self).
//!
//! Environment: `QCEC_BENCH_DEADLINE` (seconds, default 10).

use std::time::{Duration, Instant};

use bench::{deadline_from_env, fmt_secs};
use qsim::Simulator;

fn main() {
    let deadline = deadline_from_env(10);
    println!("Scaling sweep (deadline {deadline:?} per EC)");
    println!(
        "{:<22} {:>3} {:>8} {:>12} {:>12} {:>12}",
        "family", "n", "|G|", "t_sim_sv [s]", "t_sim_dd [s]", "t_ec [s]"
    );

    for n in [8usize, 12, 16, 20] {
        let g = qcirc::generators::qft(n, false);
        row("QFT", &g, n <= 24, deadline);
    }
    for (r, c, d) in [(2usize, 2usize, 8usize), (3, 3, 8), (3, 4, 8), (4, 4, 8)] {
        let g = qcirc::generators::supremacy_2d(r, c, d, 11);
        row(&format!("Supremacy {r}x{c} d{d}"), &g, true, deadline);
    }

    // Clifford circuits: the stabilizer backend runs the same flow in
    // polynomial time, far beyond any dense representation.
    println!();
    println!("Clifford family (stabilizer backend, 10 probes per check):");
    println!(
        "{:<22} {:>4} {:>8} {:>14}",
        "family", "n", "|G|", "t_10_probes [s]"
    );
    for n in [50usize, 100, 200, 400] {
        let g = qcirc::generators::ghz(n);
        let mapped = qcirc::mapping::route_or_panic(&g, &qcirc::mapping::CouplingMap::ring(n));
        let start = Instant::now();
        let verdict =
            qstab::check_clifford_equivalence(&g, &mapped.circuit, 10, 1).expect("GHZ is Clifford");
        assert!(matches!(verdict, qstab::CliffordVerdict::AllAgreed { .. }));
        println!(
            "{:<22} {:>4} {:>8} {:>14}",
            "GHZ (mapped)",
            n,
            mapped.circuit.len(),
            fmt_secs(start.elapsed())
        );
    }
}

fn row(family: &str, g: &qcirc::Circuit, sv_ok: bool, deadline: Duration) {
    let n = g.n_qubits();
    // One statevector simulation.
    let t_sv = if sv_ok {
        let sim = Simulator::new();
        let start = Instant::now();
        let _ = sim.run_basis(g, 1);
        fmt_secs(start.elapsed())
    } else {
        "-".to_string()
    };
    // One DD simulation.
    let t_dd = {
        let mut p = qdd::Package::new(n);
        let start = Instant::now();
        match p.apply_to_basis(g, 1) {
            Ok(_) => fmt_secs(start.elapsed()),
            Err(_) => "overflow".to_string(),
        }
    };
    // Complete DD check against the optimized variant.
    let optimized = qcirc::optimize::optimize(g);
    let t_ec = {
        let mut p = qdd::Package::with_node_limit(n, 2_000_000);
        let start = Instant::now();
        match qdd::check_equivalence_alternating(&mut p, g, &optimized, Some(deadline)) {
            Ok(v) => {
                assert!(v.is_equivalent());
                fmt_secs(start.elapsed())
            }
            Err(_) => format!("> {}", deadline.as_secs()),
        }
    };
    println!(
        "{:<22} {:>3} {:>8} {:>12} {:>12} {:>12}",
        family,
        n,
        g.len(),
        t_sv,
        t_dd,
        t_ec
    );
}
