//! Matrix-product states and operators over `qnum` complex arithmetic.
//!
//! A chain of `n` site tensors `A_q[α, s, β]` (left bond `α`, physical
//! index `s`, right bond `β`) represents either a state (`d = 2`, site `q`
//! ↔ qubit `q`, qubit 0 = least significant bit — the same convention as
//! `qsim` and `qdd`) or an operator (`d = 4`, the fused index
//! `s = 2·row + col` of a 2×2 block, making an MPO just an MPS with a
//! fatter physical leg — one engine serves both).
//!
//! Single-qubit gates contract a `d × d` matrix into one site. Two-qubit
//! gates contract adjacent sites into a `θ` tensor, apply the gate, and
//! re-split by SVD ([`crate::svd`]); at most `χ_max` singular values are
//! kept, the discarded squared weight is accumulated into
//! [`Mps::truncation_error`], and the kept spectrum is renormalized so the
//! chain's norm survives long gate sequences. Non-adjacent pairs are
//! routed together with SWAP splits (which truncate — and count — like any
//! other two-site operation). Gates beyond {1-qubit, singly-controlled,
//! SWAP} are lowered through [`qcirc::decompose::lower_gate_to_elementary`].

use qcirc::{Gate, GateKind};
use qnum::Complex;

use crate::svd::svd;

/// Which side of an operator a gate multiplies onto — the two directions
/// of the alternating check (`E ← E·U` from `G`, `E ← U′†·E` from `G′`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperatorSide {
    /// Left multiplication `E ← U · E`: the gate acts on the *row* half of
    /// the fused physical index.
    Left,
    /// Right multiplication `E ← E · U`: the gate acts (transposed) on the
    /// *column* half of the fused physical index.
    Right,
}

/// One site tensor, stored as a flattened `(χ_l, d, χ_r)` array with index
/// `((α·d) + s)·χ_r + β`.
#[derive(Debug, Clone)]
struct SiteTensor {
    chi_l: usize,
    chi_r: usize,
    data: Vec<Complex>,
}

impl SiteTensor {
    #[inline]
    fn at(&self, d: usize, l: usize, s: usize, r: usize) -> Complex {
        self.data[(l * d + s) * self.chi_r + r]
    }
}

/// A matrix-product state (physical dimension 2) or matrix-product
/// operator (physical dimension 4) with bounded bond dimension.
///
/// # Examples
///
/// ```
/// use qmpo::Mps;
///
/// let g = qcirc::generators::ghz(3);
/// let mut a = Mps::basis_state(3, 0);
/// for gate in g.gates() {
///     a.apply_gate(gate, 16);
/// }
/// assert_eq!(a.truncation_error(), 0.0); // χ = 2 suffices for GHZ
/// let b = a.clone();
/// assert!((a.inner_product(&b).abs() - 1.0).abs() < 1e-10);
/// ```
#[derive(Debug, Clone)]
pub struct Mps {
    d: usize,
    sites: Vec<SiteTensor>,
    truncation_error: f64,
    peak_bond: usize,
    route_hops: usize,
}

impl Mps {
    /// The computational basis state `|b⟩` over `n` qubits as a bond-1
    /// product MPS.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn basis_state(n: usize, basis: u64) -> Self {
        assert!(n > 0, "an MPS needs at least one site");
        let sites = (0..n)
            .map(|q| {
                let bit = ((basis >> q) & 1) as usize;
                let mut data = vec![Complex::ZERO; 2];
                data[bit] = Complex::ONE;
                SiteTensor {
                    chi_l: 1,
                    chi_r: 1,
                    data,
                }
            })
            .collect();
        Mps {
            d: 2,
            sites,
            truncation_error: 0.0,
            peak_bond: 1,
            route_hops: 0,
        }
    }

    /// The identity operator over `n` qubits as a bond-1 MPO, normalized
    /// per site by `1/√2` so the whole chain has Frobenius norm exactly 1
    /// — the scaling that keeps 64-qubit checks inside `f64` range
    /// (`‖𝕀‖_F = √2ⁿ` would overflow nothing, but `Tr` comparisons
    /// against it lose all precision).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn identity_operator(n: usize) -> Self {
        assert!(n > 0, "an MPO needs at least one site");
        let w = Complex::real(std::f64::consts::FRAC_1_SQRT_2);
        let sites = (0..n)
            .map(|_| SiteTensor {
                chi_l: 1,
                chi_r: 1,
                // Fused index s = 2·row + col: entries 0 and 3 are the
                // diagonal of the 2×2 identity block.
                data: vec![w, Complex::ZERO, Complex::ZERO, w],
            })
            .collect();
        Mps {
            d: 4,
            sites,
            truncation_error: 0.0,
            peak_bond: 1,
            route_hops: 0,
        }
    }

    /// Number of sites (qubits).
    #[must_use]
    pub fn n_sites(&self) -> usize {
        self.sites.len()
    }

    /// Physical dimension per site: 2 for states, 4 for operators.
    #[must_use]
    pub fn physical_dim(&self) -> usize {
        self.d
    }

    /// Accumulated truncation error: the sum over every truncating split
    /// of the discarded singular-value weight `Σ σ²_discarded / Σ σ²`.
    /// Exactly `0.0` when every split fit inside `χ_max` — the exactness
    /// certificate the verdict semantics upstream key on.
    #[must_use]
    pub fn truncation_error(&self) -> f64 {
        self.truncation_error
    }

    /// The largest bond dimension that appeared at any point of the
    /// evolution — the engine's working-set analogue of the DD backend's
    /// peak node count.
    #[must_use]
    pub fn peak_bond(&self) -> usize {
        self.peak_bond
    }

    /// Total adjacent-SWAP splits spent routing distant two-qubit gates
    /// next to each other — the dominant cost of long-range gates (each
    /// hop pays a χ-bounded SVD). Consecutive lowered gates on the same
    /// pair share one route, which this counter makes observable.
    #[must_use]
    pub fn route_hops(&self) -> usize {
        self.route_hops
    }

    /// The largest current bond dimension.
    #[must_use]
    pub fn max_bond(&self) -> usize {
        self.sites.iter().map(|t| t.chi_r).max().unwrap_or(1)
    }

    /// Applies one circuit gate to a state MPS (`d = 2`), truncating any
    /// two-site split to `chi_max` kept singular values.
    ///
    /// # Panics
    ///
    /// Panics if this is an operator MPS or a gate qubit is out of range.
    pub fn apply_gate(&mut self, gate: &Gate, chi_max: usize) {
        assert_eq!(self.d, 2, "apply_gate is for state MPS (d = 2)");
        self.apply_resolved(gate, None, chi_max);
    }

    /// Applies one circuit gate to an operator MPO (`d = 4`) from the
    /// given side: `E ← U·E` ([`OperatorSide::Left`]) or `E ← E·U`
    /// ([`OperatorSide::Right`]).
    ///
    /// # Panics
    ///
    /// Panics if this is a state MPS or a gate qubit is out of range.
    pub fn apply_operator_gate(&mut self, gate: &Gate, side: OperatorSide, chi_max: usize) {
        assert_eq!(self.d, 4, "apply_operator_gate is for MPOs (d = 4)");
        self.apply_resolved(gate, Some(side), chi_max);
    }

    /// Resolves a gate into elementary 1-site/2-site applications; `side`
    /// is `None` for states, `Some` for operators.
    fn apply_resolved(&mut self, gate: &Gate, side: Option<OperatorSide>, chi_max: usize) {
        match resolve_gate(gate) {
            ResolvedGate::Identity => {}
            ResolvedGate::One(q, u) => {
                let m: Vec<Complex> = match side {
                    None => u.to_vec(),
                    Some(s) => fuse_one(&u, s),
                };
                self.apply_one_site(q, &m);
            }
            ResolvedGate::Two(a, b, u) => {
                let m: Vec<Complex> = match side {
                    None => u.to_vec(),
                    Some(s) => fuse_two(&u, s),
                };
                self.apply_two_qubit(a, b, &m, chi_max);
            }
            ResolvedGate::Lowered(gates) => {
                // Lowering a multi-controlled gate emits runs of
                // elementary gates on the same qubit pair; flattening the
                // whole sequence first lets consecutive same-pair gates
                // share one SWAP route instead of routing per gate.
                let mut elementary = Vec::new();
                for g in &gates {
                    flatten_elementary(g, &mut elementary);
                }
                self.apply_elementary(&elementary, side, chi_max);
            }
        }
    }

    /// Applies a flattened elementary sequence, merging same-pair
    /// two-site gates into one shared SWAP route: the `(a, b)` pair is
    /// routed adjacent once, every gate of the run applied in sequence,
    /// and the sites routed back once. A run may carry interleaved
    /// one-site gates — on a site outside the displaced `a+1..=b` window
    /// they apply in place, and on `b` itself they apply at the routed
    /// position `a + 1`; either way the applied matrices are identical to
    /// the per-gate path and only the number of routing hops (each a
    /// χ-bounded SVD, the dominant cost of distant gates) drops.
    fn apply_elementary(
        &mut self,
        ops: &[ResolvedGate],
        side: Option<OperatorSide>,
        chi_max: usize,
    ) {
        // An op a route on `(a, b)` can absorb: same-pair two-site gates
        // extend the run; carried one-site gates ride along at a possibly
        // remapped site.
        let absorbable = |op: &ResolvedGate, a: usize, b: usize| match op {
            ResolvedGate::Identity => true,
            ResolvedGate::One(q, _) => *q <= a || *q >= b,
            ResolvedGate::Two(a2, b2, _) => (*a2, *b2) == (a, b),
            ResolvedGate::Lowered(_) => false,
        };
        let mut i = 0;
        while i < ops.len() {
            match &ops[i] {
                ResolvedGate::Identity => i += 1,
                ResolvedGate::One(q, u) => {
                    let m: Vec<Complex> = match side {
                        None => u.to_vec(),
                        Some(s) => fuse_one(u, s),
                    };
                    self.apply_one_site(*q, &m);
                    i += 1;
                }
                ResolvedGate::Two(a, b, _) => {
                    let (a, b) = (*a, *b);
                    assert!(a < b, "two-site matrices are lower-site-major");
                    assert!(b < self.sites.len(), "qubit {b} out of range");
                    // The run ends at the last same-pair two-site gate
                    // reachable through absorbable ops; trailing one-site
                    // gates are left outside (they need no route).
                    let mut run = i + 1;
                    let mut scan = i + 1;
                    while ops.get(scan).is_some_and(|op| absorbable(op, a, b)) {
                        if matches!(ops[scan], ResolvedGate::Two(..)) {
                            run = scan + 1;
                        }
                        scan += 1;
                    }
                    for j in ((a + 1)..b).rev() {
                        self.swap_adjacent(j, chi_max);
                    }
                    for op in &ops[i..run] {
                        match op {
                            ResolvedGate::Identity => {}
                            ResolvedGate::One(q, u) => {
                                let m: Vec<Complex> = match side {
                                    None => u.to_vec(),
                                    Some(s) => fuse_one(u, s),
                                };
                                // While routed, site b lives at a + 1.
                                self.apply_one_site(if *q == b { a + 1 } else { *q }, &m);
                            }
                            ResolvedGate::Two(_, _, u) => {
                                let m: Vec<Complex> = match side {
                                    None => u.to_vec(),
                                    Some(s) => fuse_two(u, s),
                                };
                                self.apply_two_site(a, &m, chi_max);
                            }
                            ResolvedGate::Lowered(_) => unreachable!("sequence was flattened"),
                        }
                    }
                    for j in (a + 1)..b {
                        self.swap_adjacent(j, chi_max);
                    }
                    i = run;
                }
                ResolvedGate::Lowered(_) => unreachable!("sequence was flattened"),
            }
        }
    }

    /// Contracts a `d × d` matrix into site `q`.
    fn apply_one_site(&mut self, q: usize, m: &[Complex]) {
        let d = self.d;
        let t = &mut self.sites[q];
        let mut out = vec![Complex::ZERO; t.data.len()];
        for l in 0..t.chi_l {
            for r in 0..t.chi_r {
                for sp in 0..d {
                    let mut acc = Complex::ZERO;
                    for s in 0..d {
                        acc += m[sp * d + s] * t.data[(l * d + s) * t.chi_r + r];
                    }
                    out[(l * d + sp) * t.chi_r + r] = acc;
                }
            }
        }
        t.data = out;
    }

    /// Applies a two-site matrix (pair index `p = s_a·d + s_b`, `a < b`)
    /// to qubits `(a, b)`, routing them adjacent with SWAP splits first if
    /// needed.
    fn apply_two_qubit(&mut self, a: usize, b: usize, m: &[Complex], chi_max: usize) {
        assert!(a < b, "two-site matrices are lower-site-major");
        assert!(b < self.sites.len(), "qubit {b} out of range");
        // Route site b down to a+1 …
        for j in ((a + 1)..b).rev() {
            self.swap_adjacent(j, chi_max);
        }
        self.apply_two_site(a, m, chi_max);
        // … and back, restoring the original site order.
        for j in (a + 1)..b {
            self.swap_adjacent(j, chi_max);
        }
    }

    /// Swaps the physical legs of adjacent sites `j` and `j+1` via the
    /// generic d-dimensional SWAP permutation (for operators this swaps
    /// both the row and column halves of the fused leg at once).
    fn swap_adjacent(&mut self, j: usize, chi_max: usize) {
        self.route_hops += 1;
        let d = self.d;
        let mut m = vec![Complex::ZERO; d * d * d * d];
        for sa in 0..d {
            for sb in 0..d {
                m[(sb * d + sa) * d * d + (sa * d + sb)] = Complex::ONE;
            }
        }
        self.apply_two_site(j, &m, chi_max);
    }

    /// Core two-site update on adjacent sites `(q, q+1)`: contract to θ,
    /// apply the `d² × d²` matrix, SVD-split with truncation.
    fn apply_two_site(&mut self, q: usize, m: &[Complex], chi_max: usize) {
        assert!(chi_max > 0, "chi_max must be at least 1");
        let d = self.d;
        let (left, right) = (&self.sites[q], &self.sites[q + 1]);
        assert_eq!(left.chi_r, right.chi_l, "bond mismatch");
        let (chi_l, chi_m, chi_r) = (left.chi_l, left.chi_r, right.chi_r);

        // θ[l, s1, s2, r] = Σ_k A[l, s1, k] · B[k, s2, r]
        let mut theta = vec![Complex::ZERO; chi_l * d * d * chi_r];
        for l in 0..chi_l {
            for s1 in 0..d {
                for k in 0..chi_m {
                    let av = left.at(d, l, s1, k);
                    if av == Complex::ZERO {
                        continue;
                    }
                    for s2 in 0..d {
                        for r in 0..chi_r {
                            theta[((l * d + s1) * d + s2) * chi_r + r] +=
                                av * right.at(d, k, s2, r);
                        }
                    }
                }
            }
        }

        // θ′[l, p′, r] = Σ_p m[p′, p] θ[l, p, r] with p = s1·d + s2.
        let dd = d * d;
        let mut theta2 = vec![Complex::ZERO; chi_l * dd * chi_r];
        for l in 0..chi_l {
            for pp in 0..dd {
                for p in 0..dd {
                    let w = m[pp * dd + p];
                    if w == Complex::ZERO {
                        continue;
                    }
                    for r in 0..chi_r {
                        theta2[(l * dd + pp) * chi_r + r] += w * theta[(l * dd + p) * chi_r + r];
                    }
                }
            }
        }

        // Reshape to (l·s1) × (s2·r) and split.
        let rows = chi_l * d;
        let cols = d * chi_r;
        let mut mat = vec![Complex::ZERO; rows * cols];
        for l in 0..chi_l {
            for s1 in 0..d {
                for s2 in 0..d {
                    for r in 0..chi_r {
                        mat[(l * d + s1) * cols + (s2 * chi_r + r)] =
                            theta2[((l * d + s1) * d + s2) * chi_r + r];
                    }
                }
            }
        }
        let (u, sv, vh) = svd(&mat, rows, cols);

        let total: f64 = sv.iter().map(|x| x * x).sum();
        let keep = sv.len().min(chi_max);
        let kept: f64 = sv[..keep].iter().map(|x| x * x).sum();
        if keep < sv.len() && total > 0.0 {
            self.truncation_error += (total - kept) / total;
        }
        // Renormalize the kept spectrum so the chain norm is preserved —
        // exact (`keep == sv.len()`) splits scale by exactly 1.0.
        let scale = if kept > 0.0 {
            (total / kept).sqrt()
        } else {
            1.0
        };

        let rank = u.len() / rows;
        let mut a_data = vec![Complex::ZERO; chi_l * d * keep];
        for l in 0..chi_l {
            for s1 in 0..d {
                for k in 0..keep {
                    a_data[(l * d + s1) * keep + k] = u[(l * d + s1) * rank + k];
                }
            }
        }
        let mut b_data = vec![Complex::ZERO; keep * d * chi_r];
        for k in 0..keep {
            let w = sv[k] * scale;
            for s2 in 0..d {
                for r in 0..chi_r {
                    b_data[(k * d + s2) * chi_r + r] = vh[k * cols + (s2 * chi_r + r)] * w;
                }
            }
        }
        self.sites[q] = SiteTensor {
            chi_l,
            chi_r: keep,
            data: a_data,
        };
        self.sites[q + 1] = SiteTensor {
            chi_l: keep,
            chi_r,
            data: b_data,
        };
        self.peak_bond = self.peak_bond.max(keep);
    }

    /// The inner product `⟨self|other⟩` (conjugate-linear in `self`),
    /// contracted left to right through transfer matrices in
    /// `O(n · d · χ³)`. For operator chains this is the Hilbert–Schmidt
    /// inner product `Tr(self† · other)` of the (per-site-normalized)
    /// operators.
    ///
    /// # Panics
    ///
    /// Panics if the chains differ in length or physical dimension.
    #[must_use]
    pub fn inner_product(&self, other: &Mps) -> Complex {
        assert_eq!(self.sites.len(), other.sites.len(), "length mismatch");
        assert_eq!(self.d, other.d, "physical dimension mismatch");
        let d = self.d;
        // m[α, β]: the contraction of all sites left of the cursor.
        let mut m = vec![Complex::ONE];
        let mut rows = 1usize; // χ of self
        let mut cols = 1usize; // χ of other
        for (a, b) in self.sites.iter().zip(&other.sites) {
            // t[α, s, β′] = Σ_β m[α, β] · B[β, s, β′]
            let mut t = vec![Complex::ZERO; rows * d * b.chi_r];
            for al in 0..rows {
                for be in 0..cols {
                    let w = m[al * cols + be];
                    if w == Complex::ZERO {
                        continue;
                    }
                    for s in 0..d {
                        for bp in 0..b.chi_r {
                            t[(al * d + s) * b.chi_r + bp] += w * b.at(d, be, s, bp);
                        }
                    }
                }
            }
            // m′[α′, β′] = Σ_{α,s} conj(A[α, s, α′]) · t[α, s, β′]
            let mut next = vec![Complex::ZERO; a.chi_r * b.chi_r];
            for al in 0..rows {
                for s in 0..d {
                    for ap in 0..a.chi_r {
                        let w = a.at(d, al, s, ap).conj();
                        if w == Complex::ZERO {
                            continue;
                        }
                        for bp in 0..b.chi_r {
                            next[ap * b.chi_r + bp] += w * t[(al * d + s) * b.chi_r + bp];
                        }
                    }
                }
            }
            m = next;
            rows = a.chi_r;
            cols = b.chi_r;
        }
        debug_assert_eq!(m.len(), 1);
        m[0]
    }

    /// The chain's norm `√⟨self|self⟩`.
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.inner_product(self).re.max(0.0).sqrt()
    }

    /// The amplitude `⟨basis|self⟩` of one computational basis state
    /// (`d = 2` only) — the MPS analogue of indexing a dense statevector.
    ///
    /// # Panics
    ///
    /// Panics on operator chains.
    #[must_use]
    pub fn amplitude(&self, basis: u64) -> Complex {
        assert_eq!(self.d, 2, "amplitude is for state MPS (d = 2)");
        let mut v = vec![Complex::ONE];
        for (q, t) in self.sites.iter().enumerate() {
            let s = ((basis >> q) & 1) as usize;
            let mut next = vec![Complex::ZERO; t.chi_r];
            for (l, &w) in v.iter().enumerate() {
                if w == Complex::ZERO {
                    continue;
                }
                for (r, slot) in next.iter_mut().enumerate() {
                    *slot += w * t.at(2, l, s, r);
                }
            }
            v = next;
        }
        v[0]
    }
}

/// A gate resolved to the engine's elementary operations.
enum ResolvedGate {
    Identity,
    /// `(qubit, d×d matrix)` in row-major `m[s′·2 + s]` form.
    One(usize, [Complex; 4]),
    /// `(low qubit a, high qubit b, 4×4 matrix)` with pair index
    /// `p = s_a·2 + s_b`.
    Two(usize, usize, [Complex; 16]),
    /// Needs lowering to the elementary basis first.
    Lowered(Vec<Gate>),
}

fn matrix2_entries(kind: &GateKind) -> [Complex; 4] {
    let m = kind
        .base_matrix()
        .expect("1-qubit kinds have a base matrix");
    [m.entry(0, 0), m.entry(0, 1), m.entry(1, 0), m.entry(1, 1)]
}

/// Recursively resolves a gate all the way to elementary operations,
/// appending them to `out` — the flattened form [`Mps::apply_elementary`]
/// scans for same-pair runs.
fn flatten_elementary(gate: &Gate, out: &mut Vec<ResolvedGate>) {
    match resolve_gate(gate) {
        ResolvedGate::Lowered(gates) => {
            for g in &gates {
                flatten_elementary(g, out);
            }
        }
        other => out.push(other),
    }
}

fn resolve_gate(gate: &Gate) -> ResolvedGate {
    let controls = gate.controls();
    match (gate.kind(), controls.len()) {
        (GateKind::I, 0) => ResolvedGate::Identity,
        (_, 0) if gate.width() == 1 => {
            ResolvedGate::One(gate.target(), matrix2_entries(gate.kind()))
        }
        (GateKind::Swap, 0) => {
            let (mut a, mut b) = (gate.targets()[0], gate.targets()[1]);
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            let mut m = [Complex::ZERO; 16];
            for sa in 0..2 {
                for sb in 0..2 {
                    m[(sb * 2 + sa) * 4 + (sa * 2 + sb)] = Complex::ONE;
                }
            }
            ResolvedGate::Two(a, b, m)
        }
        (kind, 1) if gate.width() == 2 && kind.base_matrix().is_some() => {
            let (c, t) = (controls[0], gate.target());
            let u = matrix2_entries(kind);
            let (a, b) = (c.min(t), c.max(t));
            let control_is_low = c < t;
            let mut m = [Complex::ZERO; 16];
            for sa in 0..2 {
                for sb in 0..2 {
                    let (sc, st) = if control_is_low { (sa, sb) } else { (sb, sa) };
                    let p = sa * 2 + sb;
                    if sc == 0 {
                        m[p * 4 + p] = Complex::ONE;
                    } else {
                        for stp in 0..2 {
                            let (pa, pb) = if control_is_low { (sa, stp) } else { (stp, sb) };
                            m[(pa * 2 + pb) * 4 + p] = u[stp * 2 + st];
                        }
                    }
                }
            }
            ResolvedGate::Two(a, b, m)
        }
        _ => {
            let mut lowered = Vec::new();
            qcirc::decompose::lower_gate_to_elementary(gate, &mut lowered);
            ResolvedGate::Lowered(lowered)
        }
    }
}

/// Lifts a 1-qubit state matrix onto the fused operator leg: `U ⊗ I₂`
/// (left multiplication, acting on rows) or `I₂ ⊗ Uᵀ` (right
/// multiplication, acting on columns).
fn fuse_one(u: &[Complex; 4], side: OperatorSide) -> Vec<Complex> {
    let mut m = vec![Complex::ZERO; 16];
    for rp in 0..2 {
        for cp in 0..2 {
            for r in 0..2 {
                for c in 0..2 {
                    let w = match side {
                        OperatorSide::Left => {
                            if c == cp {
                                u[rp * 2 + r]
                            } else {
                                Complex::ZERO
                            }
                        }
                        OperatorSide::Right => {
                            if r == rp {
                                u[c * 2 + cp]
                            } else {
                                Complex::ZERO
                            }
                        }
                    };
                    m[(rp * 2 + cp) * 4 + (r * 2 + c)] = w;
                }
            }
        }
    }
    m
}

/// Lifts a 2-qubit state matrix (pair index `p = t_a·2 + t_b`) onto a pair
/// of fused operator legs: a `16 × 16` matrix over `P = s_a·4 + s_b` with
/// `s = 2·row + col` per site.
fn fuse_two(u: &[Complex; 16], side: OperatorSide) -> Vec<Complex> {
    let mut m = vec![Complex::ZERO; 256];
    for rap in 0..2_usize {
        for cap in 0..2_usize {
            for rbp in 0..2_usize {
                for cbp in 0..2_usize {
                    let pp = (rap * 2 + cap) * 4 + (rbp * 2 + cbp);
                    for ra in 0..2_usize {
                        for ca in 0..2_usize {
                            for rb in 0..2_usize {
                                for cb in 0..2_usize {
                                    let p = (ra * 2 + ca) * 4 + (rb * 2 + cb);
                                    let w = match side {
                                        OperatorSide::Left => {
                                            if ca == cap && cb == cbp {
                                                u[(rap * 2 + rbp) * 4 + (ra * 2 + rb)]
                                            } else {
                                                Complex::ZERO
                                            }
                                        }
                                        OperatorSide::Right => {
                                            if ra == rap && rb == rbp {
                                                u[(ca * 2 + cb) * 4 + (cap * 2 + cbp)]
                                            } else {
                                                Complex::ZERO
                                            }
                                        }
                                    };
                                    m[pp * 16 + p] = w;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::{generators, Circuit};

    fn run(circuit: &Circuit, basis: u64, chi: usize) -> Mps {
        let mut mps = Mps::basis_state(circuit.n_qubits(), basis);
        for gate in circuit.gates() {
            mps.apply_gate(gate, chi);
        }
        mps
    }

    fn dense_overlap(circuit: &Circuit, other: &Circuit, basis: u64) -> Complex {
        qsim::Simulator::new().probe_basis(circuit, other, basis)
    }

    #[test]
    fn amplitudes_match_dense_simulation() {
        for (circuit, basis) in [
            (generators::ghz(4), 0u64),
            (generators::qft(4, true), 5),
            (generators::grover(3, 2, 1), 0),
            (generators::random_clifford_t(5, 40, 3), 9),
        ] {
            let mps = run(&circuit, basis, 64);
            assert_eq!(mps.truncation_error(), 0.0, "{}", circuit.name());
            let n = circuit.n_qubits();
            let evolved = qsim::Simulator::new().run(&circuit, &qsim::StateVector::basis(n, basis));
            for k in 0..(1u64 << n) {
                let want = evolved.amplitudes()[k as usize];
                let got = mps.amplitude(k);
                assert!(
                    (want - got).abs() < 1e-9,
                    "{} amp {k}: {want:?} vs {got:?}",
                    circuit.name()
                );
            }
        }
    }

    #[test]
    fn inner_products_match_dense_probes() {
        let g = generators::qft(4, true);
        let mut buggy = g.clone();
        buggy.t(2);
        for basis in [0u64, 3, 7, 11] {
            let a = run(&g, basis, 64);
            let b = run(&buggy, basis, 64);
            let got = a.inner_product(&b);
            let want = dense_overlap(&g, &buggy, basis);
            assert!(
                (got - want).abs() < 1e-9,
                "basis {basis}: {got:?} vs {want:?}"
            );
        }
    }

    #[test]
    fn non_adjacent_and_multi_controlled_gates_route_correctly() {
        // Long-range CX, a Toffoli (lowered), and a long-range SWAP.
        let mut c = Circuit::new(5);
        c.h(0);
        c.cx(0, 4);
        c.ccx(0, 4, 2);
        c.swap(1, 4);
        c.cx(4, 1);
        let mps = run(&c, 0, 64);
        assert_eq!(mps.truncation_error(), 0.0);
        let s = qsim::Simulator::new().run(&c, &qsim::StateVector::basis(5, 0));
        for k in 0..32u64 {
            assert!(
                (mps.amplitude(k) - s.amplitudes()[k as usize]).abs() < 1e-9,
                "amp {k}"
            );
        }
    }

    #[test]
    fn lowered_runs_share_one_swap_route() {
        // A distant Toffoli lowers to a burst of elementary gates, many on
        // the same far-apart pair; the flattened peephole must route each
        // same-pair run adjacent once instead of once per gate.
        let mut c = Circuit::new(6);
        c.h(0);
        c.ccx(0, 5, 2);
        let mps = run(&c, 0, 64);
        // Per-gate routing cost: every two-site gate in the lowered form
        // pays its full round trip.
        let mut per_gate_hops = 0;
        let mut elementary = Vec::new();
        for gate in c.gates() {
            flatten_elementary(gate, &mut elementary);
        }
        for op in &elementary {
            if let ResolvedGate::Two(a, b, _) = op {
                per_gate_hops += 2 * (b - a - 1);
            }
        }
        assert!(
            mps.route_hops() < per_gate_hops,
            "shared routes must beat per-gate routing: {} vs {}",
            mps.route_hops(),
            per_gate_hops
        );
        // The optimization is a pure routing change: the evolved state is
        // still exact and matches the dense reference.
        assert_eq!(mps.truncation_error(), 0.0);
        let s = qsim::Simulator::new().run(&c, &qsim::StateVector::basis(6, 0));
        for k in 0..64u64 {
            assert!(
                (mps.amplitude(k) - s.amplitudes()[k as usize]).abs() < 1e-9,
                "amp {k}"
            );
        }
    }

    #[test]
    fn truncation_accumulates_and_is_reported() {
        // A volume-law circuit at χ = 2 must truncate.
        let g = generators::supremacy_2d(2, 3, 8, 1);
        let mps = run(&g, 0, 2);
        assert!(mps.truncation_error() > 0.0);
        assert!(mps.max_bond() <= 2);
        // Per-split renormalization keeps the state usable: the global
        // norm drifts (the chain is not kept in canonical form, so a
        // split only preserves the local θ norm) but stays O(1) instead
        // of decaying exponentially with the number of truncations.
        let norm = mps.norm();
        assert!(norm.is_finite() && norm > 0.2 && norm < 5.0, "norm {norm}");
    }

    #[test]
    fn peak_bond_tracks_entanglement() {
        let mps = run(&generators::qft(6, true), 21, 64);
        assert!(mps.peak_bond() >= mps.max_bond());
        assert!(mps.peak_bond() <= 8, "QFT bond stays modest");
    }

    #[test]
    fn operator_sides_reproduce_matrix_products() {
        // Build E = U_G as an MPO by right-multiplying G's gates in
        // reverse, then check Tr(E†E)-normalized overlap against identity
        // behaviour: applying G then G† from the left must return to 𝕀.
        let g = generators::random_clifford_t(3, 25, 7);
        let mut e = Mps::identity_operator(3);
        for gate in g.gates().iter().rev() {
            e.apply_operator_gate(gate, OperatorSide::Right, 64);
        }
        // Peel U† off from the left, back-to-front like the alternating
        // check: the last-built (leftmost) factor must be removed first.
        for gate in g.gates().iter().rev() {
            e.apply_operator_gate(&gate.inverse(), OperatorSide::Left, 64);
        }
        assert_eq!(e.truncation_error(), 0.0);
        let id = Mps::identity_operator(3);
        let t = id.inner_product(&e) / e.norm();
        assert!((t - Complex::ONE).abs() < 1e-8, "t = {t:?}");
    }

    #[test]
    fn determinism_is_bitwise() {
        let g = generators::supremacy_2d(2, 3, 6, 2);
        let a = run(&g, 3, 4);
        let b = run(&g, 3, 4);
        // Conjugate symmetry holds to rounding (summation orders differ) …
        assert!((a.inner_product(&b) - b.inner_product(&a).conj()).abs() < 1e-12);
        assert!(a.truncation_error() == b.truncation_error());
        // … but identical evolutions are bitwise identical.
        let (x, y) = (run(&g, 3, 4), run(&g, 3, 4));
        assert_eq!(x.inner_product(&a), y.inner_product(&b));
    }
}
