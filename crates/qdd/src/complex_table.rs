//! Tolerance-based interning of complex edge weights.
//!
//! QMDD canonicity rests on *numerically identical* edge weights being the
//! *same object*: two DDs are equal iff their root edges carry the same node
//! pointer and the same weight index. Floating-point rounding would destroy
//! that, so every weight is interned through this table, which maps values
//! within the workspace tolerance of an existing entry to that entry
//! (the "how to efficiently handle complex values" machinery of \[26\]).

use std::collections::HashMap;

use qnum::Complex;

/// An interned complex number (index into a [`ComplexTable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cx(pub(crate) u32);

impl Cx {
    /// The interned zero.
    pub const ZERO: Cx = Cx(0);
    /// The interned one.
    pub const ONE: Cx = Cx(1);
}

/// The interning table.
///
/// # Examples
///
/// ```
/// use qdd::ComplexTable;
/// use qnum::Complex;
///
/// let mut table = ComplexTable::new();
/// let a = table.intern(Complex::new(0.5, 0.0));
/// let b = table.intern(Complex::new(0.5 + 0.5e-13, 0.0));
/// assert_eq!(a, b); // within tolerance → same entry
/// ```
#[derive(Debug, Clone)]
pub struct ComplexTable {
    values: Vec<Complex>,
    buckets: HashMap<(i64, i64), Vec<u32>>,
    tolerance: f64,
}

impl Default for ComplexTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ComplexTable {
    /// Default interning tolerance.
    ///
    /// Much tighter than the workspace comparison tolerance
    /// (`qnum::approx::DEFAULT_TOLERANCE`, `1e-10`): interning *rounds* values,
    /// and rounding errors chain through long gate sequences. `1e-13`
    /// matches the defaults of production DD packages and keeps the
    /// accumulated drift of thousand-gate circuits below the comparison
    /// tolerance.
    pub const DEFAULT_TOLERANCE: f64 = 1e-13;

    /// Creates a table with [`ComplexTable::DEFAULT_TOLERANCE`], pre-seeded
    /// with 0 and 1 (at fixed indices [`Cx::ZERO`] and [`Cx::ONE`]).
    #[must_use]
    pub fn new() -> Self {
        Self::with_tolerance(Self::DEFAULT_TOLERANCE)
    }

    /// Creates a table with a custom tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not strictly positive and finite.
    #[must_use]
    pub fn with_tolerance(tolerance: f64) -> Self {
        assert!(
            tolerance > 0.0 && tolerance.is_finite(),
            "tolerance must be positive and finite"
        );
        let mut table = ComplexTable {
            values: Vec::with_capacity(64),
            buckets: HashMap::with_capacity(64),
            tolerance,
        };
        let zero = table.intern(Complex::ZERO);
        let one = table.intern(Complex::ONE);
        debug_assert_eq!(zero, Cx::ZERO);
        debug_assert_eq!(one, Cx::ONE);
        table
    }

    /// The tolerance within which values alias.
    #[must_use]
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Drops every interned value and re-seeds 0 and 1, restoring the
    /// freshly constructed state while keeping the allocations. After a
    /// clear the table is observationally identical to a new one: the same
    /// intern sequence yields the same indices bit for bit.
    pub fn clear(&mut self) {
        self.values.clear();
        self.buckets.clear();
        let zero = self.intern(Complex::ZERO);
        let one = self.intern(Complex::ONE);
        debug_assert_eq!(zero, Cx::ZERO);
        debug_assert_eq!(one, Cx::ONE);
    }

    /// The number of distinct interned values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if no values are interned (never true in practice —
    /// the constructor seeds 0 and 1).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Interns `value`, returning the index of an existing entry within
    /// tolerance or of a freshly inserted one.
    ///
    /// # Panics
    ///
    /// Panics if `value` contains NaN.
    pub fn intern(&mut self, value: Complex) -> Cx {
        assert!(!value.is_nan(), "cannot intern NaN");
        let key = self.bucket_key(value);
        // Check the 3×3 neighbourhood of buckets so values straddling a
        // bucket boundary still alias.
        for dr in -1..=1 {
            for di in -1..=1 {
                if let Some(candidates) = self.buckets.get(&(key.0 + dr, key.1 + di)) {
                    for &idx in candidates {
                        if self.values[idx as usize].approx_eq_with(value, self.tolerance) {
                            return Cx(idx);
                        }
                    }
                }
            }
        }
        let idx = u32::try_from(self.values.len()).expect("complex table exceeded u32 indices");
        self.values.push(value);
        self.buckets.entry(key).or_default().push(idx);
        Cx(idx)
    }

    /// The value behind an index.
    ///
    /// # Panics
    ///
    /// Panics if the index does not belong to this table.
    #[inline]
    #[must_use]
    pub fn value(&self, idx: Cx) -> Complex {
        self.values[idx.0 as usize]
    }

    /// Interned multiplication (with 0/1 fast paths that skip the lookup).
    pub fn mul(&mut self, a: Cx, b: Cx) -> Cx {
        if a == Cx::ZERO || b == Cx::ZERO {
            return Cx::ZERO;
        }
        if a == Cx::ONE {
            return b;
        }
        if b == Cx::ONE {
            return a;
        }
        let v = self.value(a) * self.value(b);
        self.intern(v)
    }

    /// Interned addition.
    pub fn add(&mut self, a: Cx, b: Cx) -> Cx {
        if a == Cx::ZERO {
            return b;
        }
        if b == Cx::ZERO {
            return a;
        }
        let v = self.value(a) + self.value(b);
        self.intern(v)
    }

    /// Interned division.
    ///
    /// # Panics
    ///
    /// Panics if `b` is the interned zero.
    pub fn div(&mut self, a: Cx, b: Cx) -> Cx {
        assert!(b != Cx::ZERO, "division by interned zero");
        if a == Cx::ZERO {
            return Cx::ZERO;
        }
        if b == Cx::ONE {
            return a;
        }
        let v = self.value(a) / self.value(b);
        self.intern(v)
    }

    /// Interned conjugation.
    pub fn conj(&mut self, a: Cx) -> Cx {
        if a == Cx::ZERO || a == Cx::ONE {
            return a;
        }
        let v = self.value(a).conj();
        self.intern(v)
    }

    fn bucket_key(&self, value: Complex) -> (i64, i64) {
        let scale = 1.0 / (2.0 * self.tolerance);
        (
            (value.re * scale).round() as i64,
            (value.im * scale).round() as i64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_are_preseeded() {
        let mut t = ComplexTable::new();
        assert_eq!(t.intern(Complex::ZERO), Cx::ZERO);
        assert_eq!(t.intern(Complex::ONE), Cx::ONE);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn nearby_values_alias() {
        let mut t = ComplexTable::new();
        let a = t.intern(Complex::new(std::f64::consts::FRAC_1_SQRT_2, 0.0));
        let b = t.intern(Complex::new(
            std::f64::consts::FRAC_1_SQRT_2 + 0.5e-13,
            -0.5e-13,
        ));
        assert_eq!(a, b);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn distinct_values_do_not_alias() {
        let mut t = ComplexTable::new();
        let a = t.intern(Complex::new(0.5, 0.0));
        let b = t.intern(Complex::new(0.5 + 1e-6, 0.0));
        assert_ne!(a, b);
    }

    #[test]
    fn boundary_straddling_values_alias() {
        // Two values within tolerance of each other but falling into
        // adjacent hash buckets (straddling a bucket boundary near 1.0).
        // Bucket width is 2·tol; the boundary between buckets 1 and 2 sits
        // at 3e-10. The two values differ by 2e-11 (well within tolerance)
        // but land in different buckets.
        let mut t = ComplexTable::with_tolerance(1e-10);
        let a = t.intern(Complex::new(2.9e-10, 0.0));
        let b = t.intern(Complex::new(3.1e-10, 0.0));
        assert_eq!(a, b);
    }

    #[test]
    fn arithmetic_through_the_table() {
        let mut t = ComplexTable::new();
        let half = t.intern(Complex::real(0.5));
        let i = t.intern(Complex::I);
        assert_eq!(t.mul(half, Cx::ZERO), Cx::ZERO);
        assert_eq!(t.mul(half, Cx::ONE), half);
        let half_i = t.mul(half, i);
        assert!(t.value(half_i).approx_eq(Complex::new(0.0, 0.5)));
        let one = t.add(half, half);
        assert_eq!(one, Cx::ONE);
        assert_eq!(t.div(half_i, i), half);
        let minus_i = t.conj(i);
        assert!(t.value(minus_i).approx_eq(Complex::new(0.0, -1.0)));
    }

    #[test]
    #[should_panic(expected = "division by interned zero")]
    fn division_by_zero_panics() {
        let mut t = ComplexTable::new();
        let a = t.intern(Complex::real(2.0));
        let _ = t.div(a, Cx::ZERO);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let mut t = ComplexTable::new();
        let _ = t.intern(Complex::new(f64::NAN, 0.0));
    }

    #[test]
    fn interning_is_stable_across_repeats() {
        let mut t = ComplexTable::new();
        let v = Complex::from_polar(0.3, 1.2);
        let first = t.intern(v);
        for _ in 0..100 {
            assert_eq!(t.intern(v), first);
        }
    }
}
