//! Gate-application kernels on raw amplitude slices.
//!
//! All kernels take the amplitude slice directly so they can be reused by
//! the sequential simulator, the multithreaded wrapper and the dense
//! unitary builder. Index convention: qubit `q` is bit `q` of the amplitude
//! index.

use qnum::{Complex, Matrix2};

/// Applies a single-qubit gate `m` to `target`, restricted to amplitudes
/// whose `control_mask` bits are all set (pass 0 for no controls).
///
/// # Panics
///
/// Panics in debug builds if `target`'s bit overlaps `control_mask`.
pub fn apply_controlled_single(
    amps: &mut [Complex],
    control_mask: usize,
    target: usize,
    m: &Matrix2,
) {
    let bt = 1usize << target;
    debug_assert_eq!(control_mask & bt, 0, "target overlaps controls");
    let dim = amps.len();
    let (m00, m01, m10, m11) = (m.entry(0, 0), m.entry(0, 1), m.entry(1, 0), m.entry(1, 1));
    // Fast path: diagonal gates touch each amplitude once.
    if m01.approx_zero() && m10.approx_zero() {
        apply_controlled_diagonal(amps, control_mask, target, m00, m11);
        return;
    }
    // Walk pairs (i, i|bt) by iterating blocks aligned to 2^{target+1}.
    let block = bt << 1;
    let mut base = 0usize;
    while base < dim {
        for offset in 0..bt {
            let lo = base + offset;
            if lo & control_mask == control_mask {
                let hi = lo | bt;
                let a0 = amps[lo];
                let a1 = amps[hi];
                amps[lo] = m00 * a0 + m01 * a1;
                amps[hi] = m10 * a0 + m11 * a1;
            }
        }
        base += block;
    }
}

/// Variant of [`apply_controlled_single`] for a chunk that starts at
/// absolute amplitude index `offset` within a larger state. The chunk must
/// be aligned to the gate's block size `2^{target+1}` (so every pair lies
/// inside the chunk); the control mask is tested against *absolute* indices.
///
/// # Panics
///
/// Panics in debug builds if the alignment or overlap invariants are
/// violated.
pub fn apply_controlled_single_at(
    chunk: &mut [Complex],
    offset: usize,
    control_mask: usize,
    target: usize,
    m: &Matrix2,
) {
    let bt = 1usize << target;
    let block = bt << 1;
    debug_assert_eq!(control_mask & bt, 0, "target overlaps controls");
    debug_assert_eq!(offset % block, 0, "chunk not block-aligned");
    debug_assert_eq!(chunk.len() % block, 0, "chunk length not block-aligned");
    let (m00, m01, m10, m11) = (m.entry(0, 0), m.entry(0, 1), m.entry(1, 0), m.entry(1, 1));
    let mut base = 0usize;
    while base < chunk.len() {
        for off in 0..bt {
            let lo = base + off;
            if (offset + lo) & control_mask == control_mask {
                let hi = lo | bt;
                let a0 = chunk[lo];
                let a1 = chunk[hi];
                chunk[lo] = m00 * a0 + m01 * a1;
                chunk[hi] = m10 * a0 + m11 * a1;
            }
        }
        base += block;
    }
}

/// Diagonal specialization: multiplies amplitudes by `d0`/`d1` depending on
/// the target bit, under the control mask.
///
/// Walks blocks aligned to `2^{target+1}` so the target bit never needs a
/// per-element test, and skips blocks wholesale when a control bit at or
/// above the block size is unsatisfied.
fn apply_controlled_diagonal(
    amps: &mut [Complex],
    control_mask: usize,
    target: usize,
    d0: Complex,
    d1: Complex,
) {
    let bt = 1usize << target;
    let block = bt << 1;
    let high_controls = control_mask & !(block - 1);
    let low_controls = control_mask & (block - 1);
    let d0_is_one = d0.approx_one();
    let mut base = 0usize;
    while base < amps.len() {
        if base & high_controls == high_controls {
            for offset in 0..bt {
                let lo = base + offset;
                if lo & low_controls == low_controls {
                    if !d0_is_one {
                        amps[lo] *= d0;
                    }
                    amps[lo | bt] *= d1;
                }
            }
        }
        base += block;
    }
}

/// Applies a (possibly controlled) SWAP of qubits `a` and `b`.
///
/// Visits only the `dim/4` indices with the high swap bit set and the low
/// swap bit clear by walking nested aligned segments, instead of scanning
/// all `2^n` indices with per-element bit tests. Control bits above the
/// outer segment skip whole segments wholesale.
///
/// # Panics
///
/// Panics in debug builds if `a == b` or either overlaps the control mask.
pub fn apply_controlled_swap(amps: &mut [Complex], control_mask: usize, a: usize, b: usize) {
    let (ba, bb) = (1usize << a, 1usize << b);
    debug_assert_ne!(a, b, "swap targets must differ");
    debug_assert_eq!(control_mask & (ba | bb), 0, "swap targets overlap controls");
    let (bl, bh) = if ba < bb { (ba, bb) } else { (bb, ba) };
    let outer = bh << 1;
    let inner = bl << 1;
    let high_controls = control_mask & !(outer - 1);
    let mid_controls = control_mask & (outer - 1) & !(inner - 1);
    let low_controls = control_mask & (inner - 1);
    let swap_mask = ba ^ bb;
    let mut high = 0usize;
    while high < amps.len() {
        if high & high_controls == high_controls {
            // Visit each swapped pair once: from the (high=1, low=0) side.
            let mut mid = 0usize;
            while mid < bh {
                let base = high + bh + mid;
                if base & mid_controls == mid_controls {
                    for low in 0..bl {
                        let i = base + low;
                        if i & low_controls == low_controls {
                            amps.swap(i, i ^ swap_mask);
                        }
                    }
                }
                mid += inner;
            }
        }
        high += outer;
    }
}

/// Applies a single-qubit gate `m` to `target` across `lanes` interleaved
/// state vectors stored lane-major in `arena`: amplitude `i` of lane `l`
/// lives at `arena[i * lanes + l]`.
///
/// The gate matrix is decoded once and streamed over all lanes, so the
/// per-pair index arithmetic and control tests are amortized `lanes`× and
/// the inner lane loops are branch-free and SIMD-friendly. Per lane the
/// floating-point operations are identical to [`apply_controlled_single`],
/// so batched amplitudes are bit-identical to the single-state path.
///
/// # Panics
///
/// Panics in debug builds if `target`'s bit overlaps `control_mask` or the
/// arena length is not a multiple of `lanes`.
pub fn apply_controlled_single_batch(
    arena: &mut [Complex],
    lanes: usize,
    control_mask: usize,
    target: usize,
    m: &Matrix2,
) {
    let bt = 1usize << target;
    debug_assert!(lanes > 0, "need at least one lane");
    debug_assert_eq!(control_mask & bt, 0, "target overlaps controls");
    debug_assert_eq!(arena.len() % lanes, 0, "arena not a whole number of lanes");
    let dim = arena.len() / lanes;
    let (m00, m01, m10, m11) = (m.entry(0, 0), m.entry(0, 1), m.entry(1, 0), m.entry(1, 1));
    if m01.approx_zero() && m10.approx_zero() {
        apply_controlled_diagonal_batch(arena, lanes, control_mask, target, m00, m11);
        return;
    }
    let isa = lane_simd::detect();
    let block = bt << 1;
    let mut base = 0usize;
    while base < dim {
        for offset in 0..bt {
            let lo = base + offset;
            if lo & control_mask == control_mask {
                let hi = lo | bt;
                let (head, tail) = arena.split_at_mut(hi * lanes);
                let lo_row = &mut head[lo * lanes..lo * lanes + lanes];
                let hi_row = &mut tail[..lanes];
                lane_simd::rotate_rows(isa, lo_row, hi_row, m00, m01, m10, m11);
            }
        }
        base += block;
    }
}

/// Lane-major diagonal specialization of [`apply_controlled_single_batch`].
fn apply_controlled_diagonal_batch(
    arena: &mut [Complex],
    lanes: usize,
    control_mask: usize,
    target: usize,
    d0: Complex,
    d1: Complex,
) {
    let bt = 1usize << target;
    let block = bt << 1;
    let dim = arena.len() / lanes;
    let high_controls = control_mask & !(block - 1);
    let low_controls = control_mask & (block - 1);
    let d0_is_one = d0.approx_one();
    let isa = lane_simd::detect();
    let mut base = 0usize;
    while base < dim {
        if base & high_controls == high_controls {
            for offset in 0..bt {
                let lo = base + offset;
                if lo & low_controls == low_controls {
                    if !d0_is_one {
                        lane_simd::scale_row(isa, &mut arena[lo * lanes..lo * lanes + lanes], d0);
                    }
                    let hi = lo | bt;
                    lane_simd::scale_row(isa, &mut arena[hi * lanes..hi * lanes + lanes], d1);
                }
            }
        }
        base += block;
    }
}

/// Lane-major batched variant of [`apply_controlled_swap`]: swaps the full
/// lane rows of each visited amplitude pair.
///
/// # Panics
///
/// Panics in debug builds if `a == b`, either target overlaps the control
/// mask, or the arena length is not a multiple of `lanes`.
pub fn apply_controlled_swap_batch(
    arena: &mut [Complex],
    lanes: usize,
    control_mask: usize,
    a: usize,
    b: usize,
) {
    let (ba, bb) = (1usize << a, 1usize << b);
    debug_assert!(lanes > 0, "need at least one lane");
    debug_assert_ne!(a, b, "swap targets must differ");
    debug_assert_eq!(control_mask & (ba | bb), 0, "swap targets overlap controls");
    debug_assert_eq!(arena.len() % lanes, 0, "arena not a whole number of lanes");
    let dim = arena.len() / lanes;
    let (bl, bh) = if ba < bb { (ba, bb) } else { (bb, ba) };
    let outer = bh << 1;
    let inner = bl << 1;
    let high_controls = control_mask & !(outer - 1);
    let mid_controls = control_mask & (outer - 1) & !(inner - 1);
    let low_controls = control_mask & (inner - 1);
    let swap_mask = ba ^ bb;
    let mut high = 0usize;
    while high < dim {
        if high & high_controls == high_controls {
            let mut mid = 0usize;
            while mid < bh {
                let base = high + bh + mid;
                if base & mid_controls == mid_controls {
                    for low in 0..bl {
                        let i = base + low;
                        if i & low_controls == low_controls {
                            let j = i ^ swap_mask;
                            // j < i: the swap partner clears the high bit.
                            let (head, tail) = arena.split_at_mut(i * lanes);
                            head[j * lanes..j * lanes + lanes].swap_with_slice(&mut tail[..lanes]);
                        }
                    }
                }
                mid += inner;
            }
        }
        high += outer;
    }
}

/// Vectorized inner loops for the lane-major batched kernels.
///
/// A lane row is `lanes` consecutive [`Complex`] values — with `repr(C)`
/// that is interleaved `[re, im]` pairs, so one AVX-512 register holds four
/// lanes and one AVX2 register holds two. The instruction set is detected
/// once per kernel pass ([`detect`]) and every vector path uses only IEEE
/// multiply/add/subtract (plus sign-bit flips, which are exact) — never
/// fused multiply-add — in the same operand order as the scalar loop, so
/// batched amplitudes stay bit-identical to the single-state kernels on
/// every CPU.
mod lane_simd {
    use qnum::Complex;

    /// Widest lane-loop instruction set available at runtime.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub(super) enum Isa {
        #[cfg(target_arch = "x86_64")]
        Avx512,
        #[cfg(target_arch = "x86_64")]
        Avx2,
        Scalar,
    }

    /// Picks the widest supported path. The `std` detection macro caches
    /// its CPUID probe, so calling this once per gate pass is cheap.
    #[inline]
    pub(super) fn detect() -> Isa {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f") {
                return Isa::Avx512;
            }
            if is_x86_feature_detected!("avx2") {
                return Isa::Avx2;
            }
        }
        Isa::Scalar
    }

    /// Applies the 2×2 rotation `[m00 m01; m10 m11]` to the amplitude pair
    /// `(lo[l], hi[l])` of every lane `l`.
    #[inline]
    pub(super) fn rotate_rows(
        isa: Isa,
        lo: &mut [Complex],
        hi: &mut [Complex],
        m00: Complex,
        m01: Complex,
        m10: Complex,
        m11: Complex,
    ) {
        match isa {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `detect` returned this variant, so the CPU supports it.
            Isa::Avx512 => unsafe { x86::rotate_rows_avx512(lo, hi, m00, m01, m10, m11) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above.
            Isa::Avx2 => unsafe { x86::rotate_rows_avx2(lo, hi, m00, m01, m10, m11) },
            Isa::Scalar => rotate_rows_scalar(lo, hi, m00, m01, m10, m11),
        }
    }

    /// Multiplies every lane of `row` by the diagonal entry `d`.
    #[inline]
    pub(super) fn scale_row(isa: Isa, row: &mut [Complex], d: Complex) {
        match isa {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `detect` returned this variant, so the CPU supports it.
            Isa::Avx512 => unsafe { x86::scale_row_avx512(row, d) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above.
            Isa::Avx2 => unsafe { x86::scale_row_avx2(row, d) },
            Isa::Scalar => scale_row_scalar(row, d),
        }
    }

    #[inline]
    fn rotate_rows_scalar(
        lo: &mut [Complex],
        hi: &mut [Complex],
        m00: Complex,
        m01: Complex,
        m10: Complex,
        m11: Complex,
    ) {
        for (a0, a1) in lo.iter_mut().zip(hi.iter_mut()) {
            let (x0, x1) = (*a0, *a1);
            *a0 = m00 * x0 + m01 * x1;
            *a1 = m10 * x0 + m11 * x1;
        }
    }

    #[inline]
    fn scale_row_scalar(row: &mut [Complex], d: Complex) {
        for a in row {
            *a *= d;
        }
    }

    #[cfg(target_arch = "x86_64")]
    mod x86 {
        use super::{rotate_rows_scalar, scale_row_scalar};
        use qnum::Complex;
        use std::arch::x86_64::{
            __m256d, __m512d, _mm256_add_pd, _mm256_castpd_si256, _mm256_castsi256_pd,
            _mm256_loadu_pd, _mm256_mul_pd, _mm256_permute_pd, _mm256_set1_pd, _mm256_set_pd,
            _mm256_storeu_pd, _mm256_xor_si256, _mm512_add_pd, _mm512_castpd_si512,
            _mm512_castsi512_pd, _mm512_loadu_pd, _mm512_mul_pd, _mm512_permute_pd, _mm512_set1_pd,
            _mm512_set_pd, _mm512_storeu_pd, _mm512_xor_si512,
        };

        /// Complex multiply of a broadcast scalar `s` by the interleaved
        /// amplitudes in `x` (512-bit: four lanes).
        ///
        /// Per slot pair this computes exactly
        /// `(s.re·x.re − s.im·x.im, s.re·x.im + s.im·x.re)` — the scalar
        /// [`Complex`] product up to IEEE mul/add commutativity, with the
        /// subtraction expressed as an exact sign-bit flip plus add.
        #[inline(always)]
        unsafe fn cmul_broadcast_avx512(
            s_re: __m512d,
            s_im: __m512d,
            neg_even: __m512d,
            x: __m512d,
        ) -> __m512d {
            // [im, re] per lane, for the cross terms.
            let x_swap = _mm512_permute_pd::<0b01010101>(x);
            let t1 = _mm512_mul_pd(s_re, x);
            let t2 = _mm512_mul_pd(s_im, x_swap);
            // Negate the real slots of t2 (sign-bit XOR is exact), turning
            // the componentwise add into (t1.re − t2.re, t1.im + t2.im).
            let t2 = _mm512_castsi512_pd(_mm512_xor_si512(
                _mm512_castpd_si512(t2),
                _mm512_castpd_si512(neg_even),
            ));
            _mm512_add_pd(t1, t2)
        }

        /// 256-bit (two-lane) variant of [`cmul_broadcast_avx512`].
        #[inline(always)]
        unsafe fn cmul_broadcast_avx2(
            s_re: __m256d,
            s_im: __m256d,
            neg_even: __m256d,
            x: __m256d,
        ) -> __m256d {
            let x_swap = _mm256_permute_pd::<0b0101>(x);
            let t1 = _mm256_mul_pd(s_re, x);
            let t2 = _mm256_mul_pd(s_im, x_swap);
            let t2 = _mm256_castsi256_pd(_mm256_xor_si256(
                _mm256_castpd_si256(t2),
                _mm256_castpd_si256(neg_even),
            ));
            _mm256_add_pd(t1, t2)
        }

        /// Sign mask that flips the real (even) slots: `set_pd` lists lanes
        /// high-to-low, so `-0.0` lands in slots 0, 2, ….
        #[inline(always)]
        unsafe fn neg_even_avx512() -> __m512d {
            _mm512_set_pd(0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0)
        }

        #[inline(always)]
        unsafe fn neg_even_avx2() -> __m256d {
            _mm256_set_pd(0.0, -0.0, 0.0, -0.0)
        }

        #[target_feature(enable = "avx512f")]
        pub(super) unsafe fn rotate_rows_avx512(
            lo: &mut [Complex],
            hi: &mut [Complex],
            m00: Complex,
            m01: Complex,
            m10: Complex,
            m11: Complex,
        ) {
            let lanes = lo.len();
            let lo_p = lo.as_mut_ptr().cast::<f64>();
            let hi_p = hi.as_mut_ptr().cast::<f64>();
            let neg = neg_even_avx512();
            let (m00re, m00im) = (_mm512_set1_pd(m00.re), _mm512_set1_pd(m00.im));
            let (m01re, m01im) = (_mm512_set1_pd(m01.re), _mm512_set1_pd(m01.im));
            let (m10re, m10im) = (_mm512_set1_pd(m10.re), _mm512_set1_pd(m10.im));
            let (m11re, m11im) = (_mm512_set1_pd(m11.re), _mm512_set1_pd(m11.im));
            let mut l = 0usize;
            while l + 4 <= lanes {
                let (p0, p1) = (lo_p.add(2 * l), hi_p.add(2 * l));
                let x0 = _mm512_loadu_pd(p0);
                let x1 = _mm512_loadu_pd(p1);
                let y0 = _mm512_add_pd(
                    cmul_broadcast_avx512(m00re, m00im, neg, x0),
                    cmul_broadcast_avx512(m01re, m01im, neg, x1),
                );
                let y1 = _mm512_add_pd(
                    cmul_broadcast_avx512(m10re, m10im, neg, x0),
                    cmul_broadcast_avx512(m11re, m11im, neg, x1),
                );
                _mm512_storeu_pd(p0, y0);
                _mm512_storeu_pd(p1, y1);
                l += 4;
            }
            rotate_rows_scalar(&mut lo[l..], &mut hi[l..], m00, m01, m10, m11);
        }

        #[target_feature(enable = "avx2")]
        pub(super) unsafe fn rotate_rows_avx2(
            lo: &mut [Complex],
            hi: &mut [Complex],
            m00: Complex,
            m01: Complex,
            m10: Complex,
            m11: Complex,
        ) {
            let lanes = lo.len();
            let lo_p = lo.as_mut_ptr().cast::<f64>();
            let hi_p = hi.as_mut_ptr().cast::<f64>();
            let neg = neg_even_avx2();
            let (m00re, m00im) = (_mm256_set1_pd(m00.re), _mm256_set1_pd(m00.im));
            let (m01re, m01im) = (_mm256_set1_pd(m01.re), _mm256_set1_pd(m01.im));
            let (m10re, m10im) = (_mm256_set1_pd(m10.re), _mm256_set1_pd(m10.im));
            let (m11re, m11im) = (_mm256_set1_pd(m11.re), _mm256_set1_pd(m11.im));
            let mut l = 0usize;
            while l + 2 <= lanes {
                let (p0, p1) = (lo_p.add(2 * l), hi_p.add(2 * l));
                let x0 = _mm256_loadu_pd(p0);
                let x1 = _mm256_loadu_pd(p1);
                let y0 = _mm256_add_pd(
                    cmul_broadcast_avx2(m00re, m00im, neg, x0),
                    cmul_broadcast_avx2(m01re, m01im, neg, x1),
                );
                let y1 = _mm256_add_pd(
                    cmul_broadcast_avx2(m10re, m10im, neg, x0),
                    cmul_broadcast_avx2(m11re, m11im, neg, x1),
                );
                _mm256_storeu_pd(p0, y0);
                _mm256_storeu_pd(p1, y1);
                l += 2;
            }
            rotate_rows_scalar(&mut lo[l..], &mut hi[l..], m00, m01, m10, m11);
        }

        #[target_feature(enable = "avx512f")]
        pub(super) unsafe fn scale_row_avx512(row: &mut [Complex], d: Complex) {
            let lanes = row.len();
            let p = row.as_mut_ptr().cast::<f64>();
            let neg = neg_even_avx512();
            let (d_re, d_im) = (_mm512_set1_pd(d.re), _mm512_set1_pd(d.im));
            let mut l = 0usize;
            while l + 4 <= lanes {
                let q = p.add(2 * l);
                let x = _mm512_loadu_pd(q);
                _mm512_storeu_pd(q, cmul_broadcast_avx512(d_re, d_im, neg, x));
                l += 4;
            }
            scale_row_scalar(&mut row[l..], d);
        }

        #[target_feature(enable = "avx2")]
        pub(super) unsafe fn scale_row_avx2(row: &mut [Complex], d: Complex) {
            let lanes = row.len();
            let p = row.as_mut_ptr().cast::<f64>();
            let neg = neg_even_avx2();
            let (d_re, d_im) = (_mm256_set1_pd(d.re), _mm256_set1_pd(d.im));
            let mut l = 0usize;
            while l + 2 <= lanes {
                let q = p.add(2 * l);
                let x = _mm256_loadu_pd(q);
                _mm256_storeu_pd(q, cmul_broadcast_avx2(d_re, d_im, neg, x));
                l += 2;
            }
            scale_row_scalar(&mut row[l..], d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnum::FRAC_1_SQRT_2;

    fn basis(n: usize, i: usize) -> Vec<Complex> {
        let mut v = vec![Complex::ZERO; 1 << n];
        v[i] = Complex::ONE;
        v
    }

    #[test]
    fn x_flips_target_bit() {
        let mut amps = basis(3, 0b010);
        apply_controlled_single(&mut amps, 0, 0, &Matrix2::pauli_x());
        assert!(amps[0b011].approx_one());
    }

    #[test]
    fn hadamard_splits_amplitude() {
        let mut amps = basis(1, 0);
        apply_controlled_single(&mut amps, 0, 0, &Matrix2::hadamard());
        assert!(amps[0].approx_eq(Complex::real(FRAC_1_SQRT_2)));
        assert!(amps[1].approx_eq(Complex::real(FRAC_1_SQRT_2)));
    }

    #[test]
    fn control_blocks_application() {
        // CX with control bit 1 (qubit 1) on target 0: |01⟩ has control 0.
        let mut amps = basis(2, 0b01);
        apply_controlled_single(&mut amps, 0b10, 0, &Matrix2::pauli_x());
        assert!(amps[0b01].approx_one(), "control=0 must not fire");
        let mut amps = basis(2, 0b10);
        apply_controlled_single(&mut amps, 0b10, 0, &Matrix2::pauli_x());
        assert!(amps[0b11].approx_one(), "control=1 must fire");
    }

    #[test]
    fn diagonal_fast_path_matches_general() {
        let z = Matrix2::rz(0.7);
        let h = Complex::real(0.5);
        let mk = || vec![h, h, h, h];
        let mut fast = mk();
        apply_controlled_single(&mut fast, 0, 1, &z);
        // Force the general path by using an equivalent non-detectably
        // diagonal matrix (off-diagonals exactly zero still uses fast path),
        // so instead compare against hand-computed values.
        assert!(fast[0].approx_eq(h * z.entry(0, 0)));
        assert!(fast[1].approx_eq(h * z.entry(0, 0)));
        assert!(fast[2].approx_eq(h * z.entry(1, 1)));
        assert!(fast[3].approx_eq(h * z.entry(1, 1)));
    }

    #[test]
    fn swap_exchanges_bits() {
        let mut amps = basis(3, 0b001);
        apply_controlled_swap(&mut amps, 0, 0, 2);
        assert!(amps[0b100].approx_one());
        // Symmetric pair stays put.
        let mut amps = basis(3, 0b101);
        apply_controlled_swap(&mut amps, 0, 0, 2);
        assert!(amps[0b101].approx_one());
    }

    #[test]
    fn controlled_swap_respects_control() {
        let mut amps = basis(3, 0b001); // control qubit 1 is 0
        apply_controlled_swap(&mut amps, 0b010, 0, 2);
        assert!(amps[0b001].approx_one());
        let mut amps = basis(3, 0b011); // control qubit 1 is 1
        apply_controlled_swap(&mut amps, 0b010, 0, 2);
        assert!(amps[0b110].approx_one());
    }

    #[test]
    fn kernels_preserve_norm() {
        let h = Complex::real(0.5);
        let mut amps = vec![h, h * Complex::I, -h, h];
        apply_controlled_single(&mut amps, 0, 1, &Matrix2::u3(0.3, 1.0, -0.4));
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-10);
    }

    /// Deterministic pseudo-random state, distinct per seed.
    fn scrambled(n: usize, seed: u64) -> Vec<Complex> {
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..1usize << n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let re = ((s >> 40) as f64) / (1u64 << 24) as f64 - 0.5;
                let im = ((s >> 16) as f64 % (1u64 << 24) as f64) / (1u64 << 24) as f64 - 0.5;
                Complex::new(re, im)
            })
            .collect()
    }

    #[test]
    fn controlled_diagonal_respects_high_and_low_controls() {
        // Controls both below (qubit 0) and above (qubit 3) the target
        // (qubit 1) exercise the block-skip and per-offset tests.
        let n = 4;
        let z = Matrix2::rz(0.9);
        let mut amps = scrambled(n, 7);
        let expected: Vec<Complex> = amps
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let mask = 0b1001;
                if i & mask != mask {
                    a
                } else if i & 0b10 != 0 {
                    a * z.entry(1, 1)
                } else {
                    a * z.entry(0, 0)
                }
            })
            .collect();
        apply_controlled_single(&mut amps, 0b1001, 1, &z);
        for (got, want) in amps.iter().zip(expected.iter()) {
            assert!(got.approx_eq(*want));
        }
    }

    #[test]
    fn controlled_swap_matches_full_scan_reference() {
        let n = 5;
        for &(a, b, mask) in &[(0, 4, 0b01010), (3, 1, 0b10001), (2, 4, 0b00011)] {
            let mut amps = scrambled(n, (a * 31 + b) as u64);
            let mut want = amps.clone();
            let (ba, bb) = (1usize << a, 1usize << b);
            for i in 0..want.len() {
                if i & ba != 0 && i & bb == 0 && i & mask == mask {
                    want.swap(i, i ^ ba ^ bb);
                }
            }
            apply_controlled_swap(&mut amps, mask, a, b);
            assert_eq!(amps, want, "swap({a},{b}) mask {mask:#b}");
        }
    }

    /// Scatter `states` into a lane-major arena.
    fn to_arena(states: &[Vec<Complex>]) -> Vec<Complex> {
        let lanes = states.len();
        let dim = states[0].len();
        let mut arena = vec![Complex::ZERO; dim * lanes];
        for (l, s) in states.iter().enumerate() {
            for (i, &amp) in s.iter().enumerate() {
                arena[i * lanes + l] = amp;
            }
        }
        arena
    }

    #[test]
    fn batched_single_is_bit_identical_to_single() {
        let n = 4;
        for lanes in [1usize, 3, 8] {
            let mut states: Vec<Vec<Complex>> =
                (0..lanes).map(|l| scrambled(n, l as u64)).collect();
            let mut arena = to_arena(&states);
            for (mask, target, m) in [
                (0usize, 2usize, Matrix2::hadamard()),
                (0b0100, 0, Matrix2::pauli_x()),
                (0b1001, 1, Matrix2::rz(0.7)),
                (0, 3, Matrix2::u3(0.3, 1.0, -0.4)),
            ] {
                for s in &mut states {
                    apply_controlled_single(s, mask, target, &m);
                }
                apply_controlled_single_batch(&mut arena, lanes, mask, target, &m);
            }
            assert_eq!(arena, to_arena(&states), "lanes={lanes}");
        }
    }

    #[test]
    fn batched_swap_is_bit_identical_to_single() {
        let n = 4;
        for lanes in [1usize, 3, 8] {
            let mut states: Vec<Vec<Complex>> =
                (0..lanes).map(|l| scrambled(n, 100 + l as u64)).collect();
            let mut arena = to_arena(&states);
            for (mask, a, b) in [(0usize, 0usize, 3usize), (0b0100, 1, 3), (0b1000, 2, 0)] {
                for s in &mut states {
                    apply_controlled_swap(s, mask, a, b);
                }
                apply_controlled_swap_batch(&mut arena, lanes, mask, a, b);
            }
            assert_eq!(arena, to_arena(&states), "lanes={lanes}");
        }
    }
}
