//! Fault-injection campaigns: the paper's detection-power evaluation.
//!
//! Table I of the paper is produced by taking compiled benchmark circuits,
//! injecting design-flow errors, and measuring how quickly the
//! simulation-driven flow detects them. This module turns that experiment
//! into a library routine: [`run_campaign`] injects `k` seeded faults per
//! trial with the [`qfault`] mutators, labels each mutation with the
//! complete-check guard (so accidentally benign mutations never count as
//! missed errors), runs the full flow (scheduler, instrumentation and all)
//! on every faulty pair, and aggregates per-error-class detection
//! statistics — sims-to-first-counterexample histograms, detection rates
//! after `r` runs, per-family breakdowns, and stage timings.
//!
//! The whole campaign is a pure function of its seed: every injected fault
//! is reproducible from `(seed, benchmark index, class index, trial
//! index)`, and the default JSON rendering excludes wall-clock time so two
//! runs with the same seed are byte-identical.
//!
//! # Scaling
//!
//! Two knobs make thousands-of-trials sweeps tractable without touching
//! the contract above:
//!
//! * **trial-level parallelism** ([`CampaignConfig::with_trial_threads`]):
//!   the (benchmark × class × trial) cells fan across a worker pool. Trial
//!   seeds are independent SplitMix derivations, workers claim cells from
//!   a shared counter, and results are merged in deterministic trial order
//!   — never completion order — so the reproducible JSON is byte-identical
//!   for any worker count;
//! * **memoized guarding** ([`CampaignConfig::with_guard_cache`], default
//!   on): golden-side guard work is done once per benchmark
//!   ([`qfault::GuardCache`]) instead of once per trial — each mutant is
//!   diffed against the memoized golden gate list so only the differing
//!   gates are completely checked (exact, by unitary conjugation), with
//!   the golden DD built once as the whole-circuit fallback. Labels are
//!   identical either way.
//!
//! # Examples
//!
//! ```
//! use qcec::campaign::{run_campaign, CampaignBenchmark, CampaignConfig};
//!
//! let bench = CampaignBenchmark::optimized("qft4", "qft", &qcirc::generators::qft(4, true));
//! let config = CampaignConfig::default().with_trials(2).with_simulations(4);
//! let result = run_campaign(&[bench], &config);
//! assert_eq!(result.classes.len(), qfault::MutationKind::ALL.len());
//! assert_eq!(result.to_json(false), result.to_json(false));
//! ```

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qcirc::mapping::{route, CouplingMap, RouterOptions};
use qcirc::{decompose, optimize, Circuit};
use qfault::{mutator_for, GuardCache, GuardOptions, GuardVerdict, MutationKind, Mutator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{ApplicationScheme, BackendKind, Config, Fallback, StimulusStrategy};
use crate::flow::check_equivalence;
use crate::outcome::Outcome;
use crate::report::{json, StageTimings};
use crate::scheduler::CollectingSink;

/// How a [`CampaignBenchmark`]'s alternative realization `G'` is derived
/// from `G` — the verified design-flow step that faults are injected into.
#[derive(Debug, Clone)]
pub enum CompileRoute {
    /// Exact optimization passes ([`qcirc::optimize::optimize`]).
    Optimize,
    /// Lowering to `{1q, CX}` followed by SWAP-insertion routing onto a
    /// device.
    Map(CouplingMap),
    /// Lowering with dirty ancillas (register may grow; `G` is widened).
    Decompose,
}

/// One benchmark of a campaign: a name, its family (the row group of the
/// rendered tables), and the verified pair `(G, G')`.
#[derive(Debug, Clone)]
pub struct CampaignBenchmark {
    /// Instance name, e.g. `"qft 6"`.
    pub name: String,
    /// Family name, e.g. `"qft"` — statistics are also broken down per
    /// family.
    pub family: String,
    /// The specification circuit `G`.
    pub original: Circuit,
    /// The compiled realization `G'`; faults are injected here.
    pub alternative: Circuit,
}

impl CampaignBenchmark {
    /// Compiles `g` along `route` into a campaign benchmark.
    ///
    /// # Panics
    ///
    /// Panics if routing fails (the circuit does not fit the device).
    #[must_use]
    pub fn compile(
        name: impl Into<String>,
        family: impl Into<String>,
        g: &Circuit,
        route_kind: &CompileRoute,
    ) -> Self {
        let (original, alternative) = match route_kind {
            CompileRoute::Optimize => (g.clone(), optimize::optimize(g)),
            CompileRoute::Map(device) => {
                let lowered = decompose::decompose_to_cx_and_single_qubit(g);
                let routed = route(&lowered, device, RouterOptions::default())
                    .expect("campaign benchmark must fit its device");
                let n = routed.circuit.n_qubits();
                (g.widened(n), routed.circuit)
            }
            CompileRoute::Decompose => {
                let lowered = decompose::decompose_with_dirty_ancillas(g);
                (g.widened(lowered.n_qubits()), lowered)
            }
        };
        CampaignBenchmark {
            name: name.into(),
            family: family.into(),
            original,
            alternative,
        }
    }

    /// Shorthand for [`CampaignBenchmark::compile`] with
    /// [`CompileRoute::Optimize`].
    #[must_use]
    pub fn optimized(name: impl Into<String>, family: impl Into<String>, g: &Circuit) -> Self {
        CampaignBenchmark::compile(name, family, g, &CompileRoute::Optimize)
    }

    /// The register size shared by `G` and `G'`.
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.original.n_qubits()
    }
}

/// Parameters of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Base RNG seed; every trial derives its own seed from this.
    pub seed: u64,
    /// Trials per (benchmark, error class) pair.
    pub trials: usize,
    /// Faults injected per trial (all of the trial's class).
    pub faults: usize,
    /// Mixed-class composition width `k`: after the cell's own class has
    /// injected its `faults` mutations, `k − 1` further faults are
    /// injected whose classes are drawn uniformly from `classes` by the
    /// trial RNG — modelling compiler bugs that corrupt a circuit in more
    /// than one way at once. The cell keeps its class label (the *first*
    /// mutation is always the cell's class). `1` — the default — draws
    /// nothing and reproduces the single-class campaign bit-for-bit.
    pub compose: usize,
    /// Random basis-state simulations `r` per equivalence check.
    pub simulations: usize,
    /// Worker threads for the checking flow (≥ 2 exercises the scheduler).
    pub threads: usize,
    /// Worker threads at the *trial* level: (benchmark × class × trial)
    /// cells are fanned across this many workers. Every trial is a pure
    /// function of its derived seed and results are merged in trial order,
    /// so the campaign's reproducible JSON is byte-identical for any value
    /// here (1 = the sequential inner loop).
    pub trial_threads: usize,
    /// Memoize the golden circuit `G'`'s decision diagram per benchmark
    /// (build once, check every mutant against the cached DD) instead of
    /// rebuilding it inside each trial's guard check. Labels are identical
    /// either way; `false` is the ablation baseline.
    pub guard_cache: bool,
    /// Magnitude of [`qfault::PerturbAngle`] offsets.
    pub epsilon: f64,
    /// Budget for the benign-mutation guard.
    pub guard: GuardOptions,
    /// Wall-clock budget for each complete check inside the flow.
    pub deadline: Option<Duration>,
    /// Simulation engines to ablate over: every (benchmark × strategy ×
    /// class × trial) cell is checked once per backend, against the *same*
    /// injected fault (the trial seed is keyed on the cell coordinates,
    /// not the backend), so per-backend detection statistics are directly
    /// comparable. Default: just the dense statevector engine.
    pub backends: Vec<BackendKind>,
    /// Stimulus strategies to ablate over: every (benchmark × class ×
    /// trial) cell is checked once per strategy, against the *same*
    /// injected fault (the trial seed is keyed on the cell coordinates,
    /// not the strategy), so per-strategy detection rates are directly
    /// comparable. Default: just the paper's random basis states.
    pub strategies: Vec<StimulusStrategy>,
    /// Application schemes of the alternating complete check to ablate
    /// over: every (benchmark × backend × strategy × class × trial) cell
    /// is checked once per scheme, against the *same* injected fault (the
    /// trial seed is keyed on the cell coordinates, not the scheme), so
    /// per-scheme detection statistics *and* complete-check wall-clock
    /// are directly comparable. Default: just the proportional scheme.
    pub schemes: Vec<ApplicationScheme>,
    /// Bond-dimension caps to ablate over — the tensor-network accuracy
    /// axis. Every cell is checked once per χ, against the *same*
    /// injected fault (the trial seed excludes the χ coordinate), so the
    /// detection-power cost of truncation is directly measurable. Only
    /// meaningful for [`BackendKind::Mps`] arms (dense engines ignore χ).
    /// Default: just [`qmpo::DEFAULT_CHI_MAX`].
    pub chis: Vec<usize>,
    /// Probe batch sizes to ablate over — the throughput axis. Every cell
    /// is checked once per batch size, against the *same* injected fault
    /// (the trial seed excludes the batch coordinate). Per-stimulus probe
    /// outcomes are bit-identical at any batch size
    /// ([`Config::batch_size`]), so the arms must report identical
    /// verdicts; the axis exists to demonstrate exactly that while the
    /// wall-clock ([`StageTimings`]) shows the amortization win.
    /// Default: just `1` (the historical one-stimulus-at-a-time path).
    pub batches: Vec<usize>,
    /// Fault classes to inject, in reporting order. Default: all of
    /// [`MutationKind::ALL`]. Trial seeds are keyed on each class's
    /// position in `ALL` (not its position here), so a filtered campaign
    /// injects exactly the same faults for its classes as the full
    /// campaign does.
    pub classes: Vec<MutationKind>,
    /// Run every flow invocation with Clifford peeling
    /// ([`Config::with_peel`]). Peeling preserves verdict classes but not
    /// verdict bytes (the residual pair sees different stimuli), so the
    /// flag renders in the reproducible config JSON whenever it is set.
    pub peel: bool,
}

impl Default for CampaignConfig {
    /// Paper-shaped defaults: `r = 10` simulations, one fault per trial,
    /// 10 trials per class, two worker threads.
    fn default() -> Self {
        CampaignConfig {
            seed: 0,
            trials: 10,
            faults: 1,
            compose: 1,
            simulations: 10,
            threads: 2,
            trial_threads: 1,
            guard_cache: true,
            epsilon: 0.1,
            guard: GuardOptions::default(),
            deadline: Some(Duration::from_secs(30)),
            backends: vec![BackendKind::Statevector],
            strategies: vec![StimulusStrategy::Random],
            schemes: vec![ApplicationScheme::Proportional],
            chis: vec![qmpo::DEFAULT_CHI_MAX],
            batches: vec![1],
            classes: MutationKind::ALL.to_vec(),
            peel: false,
        }
    }
}

impl CampaignConfig {
    /// Sets the base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the trials per (benchmark, class) pair.
    #[must_use]
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the number of faults injected per trial.
    #[must_use]
    pub fn with_faults(mut self, faults: usize) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the mixed-class composition width `k`: each trial injects its
    /// cell's own fault(s) first, then `k − 1` extras of classes drawn
    /// from the configured class set by the trial RNG. `1` reproduces the
    /// single-class campaign bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `compose` is zero.
    #[must_use]
    pub fn with_compose(mut self, compose: usize) -> Self {
        assert!(compose >= 1, "compose width must be at least 1");
        self.compose = compose;
        self
    }

    /// Enables or disables Clifford peeling in every flow invocation.
    #[must_use]
    pub fn with_peel(mut self, peel: bool) -> Self {
        self.peel = peel;
        self
    }

    /// Sets the simulations `r` per equivalence check.
    #[must_use]
    pub fn with_simulations(mut self, r: usize) -> Self {
        self.simulations = r;
        self
    }

    /// Sets the flow's worker thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the trial-level worker count (1 = sequential trials).
    #[must_use]
    pub fn with_trial_threads(mut self, trial_threads: usize) -> Self {
        self.trial_threads = trial_threads;
        self
    }

    /// Enables or disables the per-benchmark memoized guard DD.
    #[must_use]
    pub fn with_guard_cache(mut self, guard_cache: bool) -> Self {
        self.guard_cache = guard_cache;
        self
    }

    /// Sets the angle-perturbation magnitude ε.
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Replaces the backend ablation set.
    ///
    /// # Panics
    ///
    /// Panics if `backends` is empty.
    #[must_use]
    pub fn with_backends(mut self, backends: Vec<BackendKind>) -> Self {
        assert!(!backends.is_empty(), "need at least one backend");
        self.backends = backends;
        self
    }

    /// Shorthand for a single-backend campaign.
    #[must_use]
    pub fn with_backend(self, backend: BackendKind) -> Self {
        self.with_backends(vec![backend])
    }

    /// Replaces the stimulus-strategy ablation set.
    ///
    /// # Panics
    ///
    /// Panics if `strategies` is empty.
    #[must_use]
    pub fn with_strategies(mut self, strategies: Vec<StimulusStrategy>) -> Self {
        assert!(!strategies.is_empty(), "need at least one strategy");
        self.strategies = strategies;
        self
    }

    /// Shorthand for a single-strategy campaign.
    #[must_use]
    pub fn with_stimuli(self, strategy: StimulusStrategy) -> Self {
        self.with_strategies(vec![strategy])
    }

    /// Replaces the application-scheme ablation set.
    ///
    /// # Panics
    ///
    /// Panics if `schemes` is empty.
    #[must_use]
    pub fn with_schemes(mut self, schemes: Vec<ApplicationScheme>) -> Self {
        assert!(!schemes.is_empty(), "need at least one application scheme");
        self.schemes = schemes;
        self
    }

    /// Shorthand for a single-scheme campaign.
    #[must_use]
    pub fn with_scheme(self, scheme: ApplicationScheme) -> Self {
        self.with_schemes(vec![scheme])
    }

    /// Replaces the bond-dimension ablation set (MPS arms only; dense
    /// engines ignore χ).
    ///
    /// # Panics
    ///
    /// Panics if `chis` is empty or contains a zero.
    #[must_use]
    pub fn with_chis(mut self, chis: Vec<usize>) -> Self {
        assert!(!chis.is_empty(), "need at least one bond-dimension cap");
        assert!(chis.iter().all(|&c| c > 0), "χ caps must be positive");
        self.chis = chis;
        self
    }

    /// Shorthand for a single-χ campaign.
    #[must_use]
    pub fn with_chi(self, chi: usize) -> Self {
        self.with_chis(vec![chi])
    }

    /// Replaces the probe-batch-size ablation set.
    ///
    /// # Panics
    ///
    /// Panics if `batches` is empty or contains a zero.
    #[must_use]
    pub fn with_batches(mut self, batches: Vec<usize>) -> Self {
        assert!(!batches.is_empty(), "need at least one batch size");
        assert!(
            batches.iter().all(|&k| k > 0),
            "batch sizes must be positive"
        );
        self.batches = batches;
        self
    }

    /// Shorthand for a single-batch-size campaign.
    #[must_use]
    pub fn with_batch(self, batch: usize) -> Self {
        self.with_batches(vec![batch])
    }

    /// Restricts injection to the given fault classes (e.g. a `--inject`
    /// sweep over one error model). Seeds stay aligned with the full
    /// campaign: each class injects the same faults it would in an
    /// unfiltered run.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty.
    #[must_use]
    pub fn with_classes(mut self, classes: Vec<MutationKind>) -> Self {
        assert!(!classes.is_empty(), "need at least one fault class");
        self.classes = classes;
        self
    }
}

/// How one injected fault was (or was not) detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detection {
    /// A simulation counterexample on run `sims` (1-based) — the paper's
    /// `#sims` column.
    Simulation {
        /// Which run found the counterexample.
        sims: usize,
    },
    /// All simulations agreed; the complete DD check found the difference.
    Complete,
    /// The flow concluded (or strongly suggested) equivalence — the fault
    /// escaped.
    Missed,
}

/// One trial of a campaign: the injected mutations, the guard's label, and
/// the flow's verdict.
#[derive(Debug, Clone)]
pub struct TrialRecord {
    /// Index of the benchmark in the campaign's benchmark list.
    pub benchmark: usize,
    /// The probe backend the flow checked this trial with.
    pub backend: BackendKind,
    /// The stimulus strategy the flow checked this trial with.
    pub strategy: StimulusStrategy,
    /// The application scheme the flow's complete check used this trial.
    pub scheme: ApplicationScheme,
    /// The bond-dimension cap the flow ran under (only consequential for
    /// MPS arms).
    pub chi: usize,
    /// The probe batch size the flow ran under (verdict-neutral by the
    /// batch contract; ablated for throughput).
    pub batch: usize,
    /// The injected error class.
    pub kind: MutationKind,
    /// Trial index within the (benchmark, class) pair.
    pub trial: usize,
    /// The derived seed driving both injection and checking.
    pub seed: u64,
    /// Human-readable descriptions of the injected mutations (empty when
    /// the class was inapplicable to the circuit).
    pub mutations: Vec<String>,
    /// The guard's label for the combined mutation.
    pub guard: GuardVerdict,
    /// The flow's detection result (`None` when the class was
    /// inapplicable and no check ran).
    pub detection: Option<Detection>,
    /// Simulations actually run by the flow.
    pub sims_run: usize,
}

/// Aggregated statistics for one error class.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Trials attempted.
    pub trials: usize,
    /// Trials where the class had no applicable fault site.
    pub inapplicable: usize,
    /// Trials whose mutation the guard proved benign (excluded from
    /// detection rates).
    pub benign: usize,
    /// Trials where the guard abstained (register too large or budget
    /// exhausted); detection is still recorded but kept separate from the
    /// proven-fault rate.
    pub unchecked: usize,
    /// Guard-confirmed real faults.
    pub faults: usize,
    /// Faults detected by a simulation counterexample.
    pub detected_by_sim: usize,
    /// Faults detected only by the complete check.
    pub detected_by_complete: usize,
    /// Guard-confirmed faults the flow failed to flag.
    pub missed: usize,
    /// Benign mutations the flow (unsoundly) flagged non-equivalent —
    /// always zero unless something is broken.
    pub false_positives: usize,
    /// `histogram[i]` = number of sim detections on run `i + 1`.
    pub sims_histogram: Vec<usize>,
    /// Total simulations run across the class's trials.
    pub total_sims: usize,
}

impl ClassStats {
    /// Folds one trial into the aggregate. Benign mutations are excluded
    /// from the detection-rate population by construction: they can add to
    /// `false_positives` (flow unsoundness) but never to `missed`.
    pub fn record(&mut self, t: &TrialRecord) {
        self.trials += 1;
        self.total_sims += t.sims_run;
        let Some(detection) = t.detection else {
            self.inapplicable += 1;
            return;
        };
        match &t.guard {
            GuardVerdict::Benign { .. } => {
                self.benign += 1;
                if detection != Detection::Missed {
                    self.false_positives += 1;
                }
                return;
            }
            GuardVerdict::Unchecked { .. } => self.unchecked += 1,
            GuardVerdict::Fault => self.faults += 1,
        }
        match detection {
            Detection::Simulation { sims } => {
                self.detected_by_sim += 1;
                if self.sims_histogram.len() < sims {
                    self.sims_histogram.resize(sims, 0);
                }
                self.sims_histogram[sims - 1] += 1;
            }
            Detection::Complete => self.detected_by_complete += 1,
            Detection::Missed => {
                if t.guard.is_fault() {
                    self.missed += 1;
                }
            }
        }
    }

    /// Fraction of guard-confirmed faults detected (by either stage);
    /// `None` when no faults were confirmed.
    #[must_use]
    pub fn detection_rate(&self) -> Option<f64> {
        let detected = (self.detected_by_sim + self.detected_by_complete + self.missed) as f64;
        if detected == 0.0 {
            return None;
        }
        Some((detected - self.missed as f64) / detected)
    }

    /// Fraction of sim-detected faults found within the first `r` runs.
    #[must_use]
    pub fn detection_within(&self, r: usize) -> Option<f64> {
        if self.detected_by_sim == 0 {
            return None;
        }
        let within: usize = self.sims_histogram.iter().take(r).sum();
        Some(within as f64 / self.detected_by_sim as f64)
    }

    /// Mean number of simulations until the first counterexample, over the
    /// sim-detected trials.
    #[must_use]
    pub fn mean_sims_to_detect(&self) -> Option<f64> {
        if self.detected_by_sim == 0 {
            return None;
        }
        let weighted: usize = self
            .sims_histogram
            .iter()
            .enumerate()
            .map(|(i, c)| (i + 1) * c)
            .sum();
        Some(weighted as f64 / self.detected_by_sim as f64)
    }
}

/// Detection counts for one (family, class) cell of the breakdown matrix.
#[derive(Debug, Clone, Default)]
pub struct FamilyCell {
    /// Guard-confirmed faults in the cell.
    pub faults: usize,
    /// Of those, how many either stage detected.
    pub detected: usize,
}

/// Cost accounting for the benign-mutation guard across a whole campaign.
/// Wall-clock fields are scheduling-dependent; the build/check counters
/// depend on `trial_threads` and `guard_cache` but not on the seed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardStats {
    /// Total wall time spent labelling mutations.
    pub guard_time: Duration,
    /// Golden-circuit DD constructions. With the cache on this is at most
    /// `benchmarks × concurrent workers` (exactly `benchmarks` when
    /// sequential); without it, one per checked trial.
    pub golden_builds: usize,
    /// Mutations labelled by a complete check.
    pub checks: usize,
}

/// The complete outcome of [`run_campaign`].
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The configuration that produced this result.
    pub config: CampaignConfig,
    /// Benchmark metadata in campaign order: `(name, family, n, |G|, |G'|)`.
    pub benchmarks: Vec<(String, String, usize, usize, usize)>,
    /// Per-class aggregates over *all* strategies, in
    /// [`MutationKind::ALL`] order.
    pub classes: Vec<(MutationKind, ClassStats)>,
    /// Per-strategy breakdown of the same aggregates, in
    /// `config.strategies` order — the stimulus-ablation axis.
    pub strategy_classes: Vec<(StimulusStrategy, Vec<(MutationKind, ClassStats)>)>,
    /// Per-backend breakdown of the same aggregates, in `config.backends`
    /// order — the engine-ablation axis. Identical trial seeds per cell
    /// mean every backend faces the same injected faults.
    pub backend_classes: Vec<(BackendKind, Vec<(MutationKind, ClassStats)>)>,
    /// Per-application-scheme breakdown of the same aggregates, in
    /// `config.schemes` order — the complete-check ablation axis. Trial
    /// seeds exclude the scheme, so every arm faces the same faults; the
    /// per-scheme complete-check wall-clock lives in
    /// [`StageTimings::functional_time_for`].
    pub scheme_classes: Vec<(ApplicationScheme, Vec<(MutationKind, ClassStats)>)>,
    /// Per-χ breakdown of the same aggregates, in `config.chis` order —
    /// the tensor-network truncation-ablation axis. Trial seeds exclude
    /// the χ coordinate, so every cap faces the same faults.
    pub chi_classes: Vec<(usize, Vec<(MutationKind, ClassStats)>)>,
    /// Per-batch-size breakdown of the same aggregates, in
    /// `config.batches` order — the probe-throughput ablation axis. Trial
    /// seeds exclude the batch coordinate and per-stimulus outcomes are
    /// bit-identical at any batch size, so matching rows here are the
    /// campaign-level witness of the batch contract.
    pub batch_classes: Vec<(usize, Vec<(MutationKind, ClassStats)>)>,
    /// `families[f]` is the family name; `cells[f][k]` the counts for
    /// family `f` under class `MutationKind::ALL[k]`.
    pub families: Vec<String>,
    /// The family × class detection matrix.
    pub cells: Vec<Vec<FamilyCell>>,
    /// Every trial, in deterministic campaign order.
    pub trials: Vec<TrialRecord>,
    /// Scheduler-event summary accumulated over all flow invocations
    /// (wall-clock fields are only rendered on request).
    pub stage_timings: StageTimings,
    /// Guard cost accounting (wall-clock; never part of reproducible JSON).
    pub guard_stats: GuardStats,
    /// Campaign wall-clock from first to last trial (never part of
    /// reproducible JSON).
    pub wall_time: Duration,
}

/// Derives the seed of one trial from the campaign seed and the trial's
/// coordinates, SplitMix64-style: nearby coordinates get unrelated seeds.
#[must_use]
pub fn trial_seed(seed: u64, benchmark: usize, class: usize, trial: usize) -> u64 {
    let mut z = seed;
    for salt in [benchmark as u64, class as u64, trial as u64] {
        z = z
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    z
}

/// One (benchmark × backend × scheme × strategy × χ × batch × class ×
/// trial) cell of the campaign's work list. The seed is keyed on
/// everything *except* the backend, scheme, strategy, χ, and batch size,
/// so all ablation arms face the identical injected fault.
#[derive(Debug, Clone, Copy)]
struct TrialCell {
    benchmark: usize,
    backend: usize,
    scheme: usize,
    strategy: usize,
    chi: usize,
    batch: usize,
    class: usize,
    trial: usize,
    seed: u64,
}

/// What one executed cell hands back to the deterministic merge.
struct TrialOutput {
    record: TrialRecord,
    timings: StageTimings,
    guard_time: Duration,
}

/// Runs the detection-power experiment: for every benchmark × error class ×
/// trial, inject `faults` seeded mutations into `G'`, label them with the
/// guard, and run the full checking flow against `G`.
///
/// Cells are executed by `config.trial_threads` workers. Each trial is a
/// pure function of its [`trial_seed`]-derived seed, and results are merged
/// back in deterministic trial order (never completion order), so the
/// reproducible JSON rendering ([`CampaignResult::to_json`] without
/// timings) is a pure function of `(benchmarks, config.seed, …)` —
/// byte-identical for any worker count. See the module docs.
#[must_use]
pub fn run_campaign(benchmarks: &[CampaignBenchmark], config: &CampaignConfig) -> CampaignResult {
    let start = Instant::now();
    let mutators: Vec<Box<dyn Mutator>> = config
        .classes
        .iter()
        .map(|&kind| mutator_for(kind, config.epsilon))
        .collect();
    // Seeds are keyed on each class's position in `MutationKind::ALL`,
    // so filtering classes never changes which faults the kept classes
    // inject.
    let class_seed_idx: Vec<usize> = config
        .classes
        .iter()
        .map(|kind| {
            MutationKind::ALL
                .iter()
                .position(|a| a == kind)
                .expect("every MutationKind is in ALL")
        })
        .collect();
    let mut families: Vec<String> = Vec::new();
    for b in benchmarks {
        if !families.contains(&b.family) {
            families.push(b.family.clone());
        }
    }

    // The work list, in the deterministic order results are merged in.
    let cells: Vec<TrialCell> = benchmarks
        .iter()
        .enumerate()
        .flat_map(|(b_idx, _)| {
            let trials = config.trials;
            let n_backends = config.backends.len();
            let n_schemes = config.schemes.len();
            let n_strategies = config.strategies.len();
            let n_chis = config.chis.len();
            let n_batches = config.batches.len();
            let n_classes = mutators.len();
            let class_seed_idx = &class_seed_idx;
            (0..n_backends).flat_map(move |e_idx| {
                (0..n_schemes).flat_map(move |a_idx| {
                    (0..n_strategies).flat_map(move |s_idx| {
                        (0..n_chis).flat_map(move |x_idx| {
                            (0..n_batches).flat_map(move |q_idx| {
                                (0..n_classes).flat_map(move |k_idx| {
                                    (0..trials).map(move |t_idx| TrialCell {
                                        benchmark: b_idx,
                                        backend: e_idx,
                                        scheme: a_idx,
                                        strategy: s_idx,
                                        chi: x_idx,
                                        batch: q_idx,
                                        class: k_idx,
                                        trial: t_idx,
                                        seed: trial_seed(
                                            config.seed,
                                            b_idx,
                                            class_seed_idx[k_idx],
                                            t_idx,
                                        ),
                                    })
                                })
                            })
                        })
                    })
                })
            })
        })
        .collect();

    // One memoized guard per benchmark: golden-side work (the gate list
    // mutants are diffed against, and the golden DD for whole-circuit
    // fallbacks) happens here once, instead of inside every trial. The
    // eager builds are charged to guard time below, so the cached/uncached
    // comparison stays honest.
    let guard_setup = Instant::now();
    let guards: Option<Vec<GuardCache>> = config.guard_cache.then(|| {
        benchmarks
            .iter()
            .map(|b| GuardCache::new(&b.alternative, &config.guard))
            .collect()
    });
    let guard_setup_time = guard_setup.elapsed();

    // Fan the cells across the shared ordered pool: trial order in, trial
    // order out, byte-identical at any worker count.
    let outputs: Vec<TrialOutput> =
        crate::pool::run_ordered(cells.len(), config.trial_threads, |i| {
            run_cell(benchmarks, &mutators, guards.as_deref(), &cells[i], config)
        });

    // Deterministic merge: aggregate in trial order, exactly as the
    // sequential inner loop would have.
    let mut cell_stats = vec![vec![FamilyCell::default(); mutators.len()]; families.len()];
    let mut classes: Vec<(MutationKind, ClassStats)> = mutators
        .iter()
        .map(|m| (m.kind(), ClassStats::default()))
        .collect();
    let mut strategy_classes: Vec<(StimulusStrategy, Vec<(MutationKind, ClassStats)>)> = config
        .strategies
        .iter()
        .map(|s| (*s, classes.clone()))
        .collect();
    let mut backend_classes: Vec<(BackendKind, Vec<(MutationKind, ClassStats)>)> = config
        .backends
        .iter()
        .map(|b| (*b, classes.clone()))
        .collect();
    let mut scheme_classes: Vec<(ApplicationScheme, Vec<(MutationKind, ClassStats)>)> = config
        .schemes
        .iter()
        .map(|s| (*s, classes.clone()))
        .collect();
    let mut chi_classes: Vec<(usize, Vec<(MutationKind, ClassStats)>)> =
        config.chis.iter().map(|c| (*c, classes.clone())).collect();
    let mut batch_classes: Vec<(usize, Vec<(MutationKind, ClassStats)>)> = config
        .batches
        .iter()
        .map(|k| (*k, classes.clone()))
        .collect();
    let mut trials = Vec::with_capacity(outputs.len());
    let mut stage_timings = StageTimings::default();
    let mut guard_stats = GuardStats::default();
    for output in outputs {
        stage_timings = stage_timings.merged(output.timings);
        guard_stats.guard_time += output.guard_time;
        let record = output.record;
        let cell = cells[trials.len()];
        let k_idx = cell.class;
        let family = families
            .iter()
            .position(|f| f == &benchmarks[record.benchmark].family)
            .expect("every benchmark's family is registered");
        classes[k_idx].1.record(&record);
        strategy_classes[cell.strategy].1[k_idx].1.record(&record);
        backend_classes[cell.backend].1[k_idx].1.record(&record);
        scheme_classes[cell.scheme].1[k_idx].1.record(&record);
        chi_classes[cell.chi].1[k_idx].1.record(&record);
        batch_classes[cell.batch].1[k_idx].1.record(&record);
        if record.guard.is_fault() {
            let cell = &mut cell_stats[family][k_idx];
            cell.faults += 1;
            if !matches!(record.detection, Some(Detection::Missed) | None) {
                cell.detected += 1;
            }
        }
        trials.push(record);
    }
    match &guards {
        Some(caches) => {
            guard_stats.guard_time += guard_setup_time;
            guard_stats.golden_builds = caches.iter().map(GuardCache::golden_builds).sum();
            guard_stats.checks = caches.iter().map(GuardCache::mutants_checked).sum();
        }
        None => {
            // Without memoization every applicable trial built the golden
            // DD from scratch inside its own check.
            guard_stats.checks = trials.iter().filter(|t| !t.mutations.is_empty()).count();
            guard_stats.golden_builds = guard_stats.checks;
        }
    }

    CampaignResult {
        config: config.clone(),
        benchmarks: benchmarks
            .iter()
            .map(|b| {
                (
                    b.name.clone(),
                    b.family.clone(),
                    b.n_qubits(),
                    b.original.len(),
                    b.alternative.len(),
                )
            })
            .collect(),
        classes,
        strategy_classes,
        backend_classes,
        scheme_classes,
        chi_classes,
        batch_classes,
        families,
        cells: cell_stats,
        trials,
        stage_timings,
        guard_stats,
        wall_time: start.elapsed(),
    }
}

fn run_cell(
    benchmarks: &[CampaignBenchmark],
    mutators: &[Box<dyn Mutator>],
    guards: Option<&[GuardCache]>,
    cell: &TrialCell,
    config: &CampaignConfig,
) -> TrialOutput {
    run_trial(
        &benchmarks[cell.benchmark],
        cell.benchmark,
        config.backends[cell.backend],
        config.schemes[cell.scheme],
        config.strategies[cell.strategy],
        config.chis[cell.chi],
        config.batches[cell.batch],
        mutators[cell.class].as_ref(),
        guards.map(|g| &g[cell.benchmark]),
        cell.trial,
        cell.seed,
        config,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_trial(
    bench: &CampaignBenchmark,
    b_idx: usize,
    backend: BackendKind,
    scheme: ApplicationScheme,
    strategy: StimulusStrategy,
    chi: usize,
    batch: usize,
    mutator: &dyn Mutator,
    guard_cache: Option<&GuardCache>,
    t_idx: usize,
    seed: u64,
    config: &CampaignConfig,
) -> TrialOutput {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mutated = bench.alternative.clone();
    let mut mutations = Vec::new();
    for _ in 0..config.faults.max(1) {
        match mutator.apply(&mutated, &mut rng) {
            Ok((next, record)) => {
                mutated = next;
                mutations.push(record.to_string());
            }
            Err(_) if mutations.is_empty() => {
                // The class has no applicable site at all — record and bail.
                return TrialOutput {
                    record: TrialRecord {
                        benchmark: b_idx,
                        backend,
                        scheme,
                        strategy,
                        chi,
                        batch,
                        kind: mutator.kind(),
                        trial: t_idx,
                        seed,
                        mutations,
                        guard: GuardVerdict::Unchecked {
                            reason: "inapplicable".to_string(),
                        },
                        detection: None,
                        sims_run: 0,
                    },
                    timings: StageTimings::default(),
                    guard_time: Duration::ZERO,
                };
            }
            // Later faults may become inapplicable (e.g. RemoveGate emptied
            // the circuit); keep what was injected so far.
            Err(_) => break,
        }
    }
    // Mixed-class composition: `compose − 1` extra faults of classes drawn
    // from the configured set, stacked on top of the cell's own. With
    // `compose == 1` this loop never touches the RNG, so plain campaigns
    // keep injecting bit-identical faults. A drawn class with no
    // applicable site is skipped — unlike the cell's own class, it says
    // nothing about this cell.
    for _ in 1..config.compose.max(1) {
        let kind = config.classes[rng.gen_range(0..config.classes.len())];
        if let Ok((next, record)) = mutator_for(kind, config.epsilon).apply(&mutated, &mut rng) {
            mutated = next;
            mutations.push(record.to_string());
        }
    }

    let guard_start = Instant::now();
    let guard = match guard_cache {
        Some(cache) => cache.classify(&mutated),
        None => qfault::guard::classify(&bench.alternative, &mutated, &config.guard),
    };
    let guard_time = guard_start.elapsed();

    let sink = Arc::new(CollectingSink::new());
    let flow_config = Config::new()
        .with_simulations(config.simulations)
        .with_seed(seed)
        .with_stimuli(strategy)
        .with_threads(config.threads.max(1))
        .with_backend(backend)
        .with_fallback(Fallback::Alternating)
        .with_deadline(config.deadline)
        .with_peel(config.peel)
        .with_scheme(scheme)
        .with_chi_max(chi)
        .with_batch_size(batch)
        .with_event_sink(sink.clone());
    let result = check_equivalence(&bench.original, &mutated, &flow_config)
        .expect("mutators preserve the register, so the flow must accept the pair");
    let mut timings = StageTimings::from_events(&sink.events());
    // Charge this trial's complete-check time to its scheme's bucket, so
    // the ablation report can compare wall-clock per scheme. The buckets
    // render only under `with_timings`, so reproducible JSON is untouched.
    timings.attribute_functional_to_scheme(scheme);

    let detection = Some(match &result.outcome {
        Outcome::NotEquivalent {
            counterexample: Some(ce),
        } => Detection::Simulation { sims: ce.run },
        Outcome::NotEquivalent {
            counterexample: None,
        } => Detection::Complete,
        _ => Detection::Missed,
    });

    TrialOutput {
        record: TrialRecord {
            benchmark: b_idx,
            backend,
            scheme,
            strategy,
            chi,
            batch,
            kind: mutator.kind(),
            trial: t_idx,
            seed,
            mutations,
            guard,
            detection,
            sims_run: result.stats.simulations_run,
        },
        timings,
        guard_time,
    }
}

impl CampaignResult {
    /// Renders the campaign as deterministic JSON. With
    /// `with_timings = false` (the reproducible default) wall-clock fields
    /// are omitted and two same-seed runs are byte-identical.
    #[must_use]
    pub fn to_json(&self, with_timings: bool) -> String {
        let mut root = json::Obj::new();

        let mut cfg = json::Obj::new();
        cfg.int("seed", self.config.seed)
            .int("trials", self.config.trials as u64)
            .int("faults", self.config.faults as u64);
        // Composition and peeling render only when engaged, keeping
        // campaigns that predate the knobs byte-identical to their goldens.
        if self.config.compose > 1 {
            cfg.int("compose", self.config.compose as u64);
        }
        if self.config.peel {
            cfg.int("peel", 1);
        }
        cfg.int("simulations", self.config.simulations as u64)
            .int("threads", self.config.threads as u64)
            .num("epsilon", self.config.epsilon)
            .raw(
                "stimuli",
                json::array(
                    self.config
                        .strategies
                        .iter()
                        .map(|s| format!("\"{}\"", s.slug())),
                ),
            );
        // The backend field is stable across reruns but only rendered for
        // non-default selections, keeping campaigns that predate backend
        // ablation byte-identical.
        if self.config.backends != [BackendKind::Statevector] {
            if let [backend] = self.config.backends[..] {
                cfg.str("backend", backend.slug());
            } else {
                cfg.raw(
                    "backends",
                    json::array(
                        self.config
                            .backends
                            .iter()
                            .map(|b| format!("\"{}\"", b.slug())),
                    ),
                );
            }
        }
        // Like the backend field: the scheme only renders for non-default
        // selections, keeping campaigns that predate scheme ablation
        // byte-identical.
        if self.config.schemes != [ApplicationScheme::Proportional] {
            if let [scheme] = self.config.schemes[..] {
                cfg.str("scheme", scheme.slug());
            } else {
                cfg.raw(
                    "schemes",
                    json::array(
                        self.config
                            .schemes
                            .iter()
                            .map(|s| format!("\"{}\"", s.slug())),
                    ),
                );
            }
        }
        // Like the backend field: the χ cap only renders for non-default
        // selections, keeping campaigns that predate the tensor-network
        // axis byte-identical.
        if self.config.chis != [qmpo::DEFAULT_CHI_MAX] {
            if let [chi] = self.config.chis[..] {
                cfg.int("chi", chi as u64);
            } else {
                cfg.raw(
                    "chis",
                    json::array(self.config.chis.iter().map(ToString::to_string)),
                );
            }
        }
        // Like the backend field: the batch size only renders for
        // non-default selections, keeping campaigns that predate the
        // batched probe path byte-identical.
        if self.config.batches != [1] {
            if let [batch] = self.config.batches[..] {
                cfg.int("batch", batch as u64);
            } else {
                cfg.raw(
                    "batches",
                    json::array(self.config.batches.iter().map(ToString::to_string)),
                );
            }
        }
        // Like the backend field: only a filtered class selection renders,
        // keeping full campaigns byte-identical to pre-filter goldens.
        if self.config.classes != MutationKind::ALL {
            cfg.raw(
                "inject",
                json::array(
                    self.config
                        .classes
                        .iter()
                        .map(|k| format!("\"{}\"", k.slug())),
                ),
            );
        }
        root.raw("config", cfg.render());

        root.raw(
            "benchmarks",
            json::array(self.benchmarks.iter().map(|(name, family, n, g, gp)| {
                let mut o = json::Obj::new();
                o.str("name", name)
                    .str("family", family)
                    .int("n", *n as u64)
                    .int("gates_g", *g as u64)
                    .int("gates_g_prime", *gp as u64);
                o.render()
            })),
        );

        root.raw("classes", class_stats_json(&self.classes));

        root.raw(
            "strategies",
            json::array(self.strategy_classes.iter().map(|(strategy, classes)| {
                let mut o = json::Obj::new();
                o.str("strategy", strategy.slug())
                    .raw("classes", class_stats_json(classes));
                o.render()
            })),
        );

        // The per-backend breakdown only exists when there is an ablation
        // to report (≥ 2 backends); a single-backend campaign's aggregate
        // is already the `classes` section.
        if self.backend_classes.len() > 1 {
            root.raw(
                "backends",
                json::array(self.backend_classes.iter().map(|(backend, classes)| {
                    let mut o = json::Obj::new();
                    o.str("backend", backend.slug())
                        .raw("classes", class_stats_json(classes));
                    o.render()
                })),
            );
        }

        // Likewise the per-scheme breakdown: only rendered when there is a
        // scheme ablation to report.
        if self.scheme_classes.len() > 1 {
            root.raw(
                "schemes",
                json::array(self.scheme_classes.iter().map(|(scheme, classes)| {
                    let mut o = json::Obj::new();
                    o.str("scheme", scheme.slug())
                        .raw("classes", class_stats_json(classes));
                    o.render()
                })),
            );
        }

        // Likewise the per-χ breakdown: only rendered when there is a
        // truncation ablation to report.
        if self.chi_classes.len() > 1 {
            root.raw(
                "chis",
                json::array(self.chi_classes.iter().map(|(chi, classes)| {
                    let mut o = json::Obj::new();
                    o.int("chi", *chi as u64)
                        .raw("classes", class_stats_json(classes));
                    o.render()
                })),
            );
        }

        // Likewise the per-batch-size breakdown: only rendered when there
        // is a throughput ablation to report. Identical rows are expected
        // — that is the batch contract made visible.
        if self.batch_classes.len() > 1 {
            root.raw(
                "batches",
                json::array(self.batch_classes.iter().map(|(batch, classes)| {
                    let mut o = json::Obj::new();
                    o.int("batch", *batch as u64)
                        .raw("classes", class_stats_json(classes));
                    o.render()
                })),
            );
        }

        root.raw(
            "families",
            json::array(self.families.iter().enumerate().map(|(f, name)| {
                let mut o = json::Obj::new();
                o.str("family", name);
                for (k, (kind, _)) in self.classes.iter().enumerate() {
                    let cell = &self.cells[f][k];
                    o.raw(kind.slug(), format!("[{},{}]", cell.detected, cell.faults));
                }
                o.render()
            })),
        );

        // The stage summary is entirely timing-dependent: even its
        // counters (how many in-flight runs finish before a cancellation
        // lands) vary between runs, so it only renders on request. The
        // guard summary likewise (its build counter depends on worker
        // overlap). Execution knobs (`trial_threads`, `guard_cache`) are
        // deliberately absent from the config object above: they must not
        // change the reproducible rendering.
        if with_timings {
            root.raw("stage_summary", self.stage_timings.to_json(true));
            let mut guard = json::Obj::new();
            guard
                .num("t_guard_s", self.guard_stats.guard_time.as_secs_f64())
                .int("golden_builds", self.guard_stats.golden_builds as u64)
                .int("checks", self.guard_stats.checks as u64);
            root.raw("guard_summary", guard.render());
            let mut run = json::Obj::new();
            run.num("wall_s", self.wall_time.as_secs_f64())
                .int("trial_threads", self.config.trial_threads as u64)
                .int("guard_cache", u64::from(self.config.guard_cache));
            root.raw("run_summary", run.render());
        }
        root.render()
    }

    /// Renders the campaign as a human-readable Markdown report.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("# Fault-injection campaign\n\n");
        out.push_str(&format!(
            "seed {}, {} trials × {} fault(s) per class, r = {} simulations, {} threads\n\n",
            self.config.seed,
            self.config.trials,
            self.config.faults,
            self.config.simulations,
            self.config.threads,
        ));
        if self.config.compose > 1 {
            out.push_str(&format!(
                "composed trials: {} extra mixed-class fault(s) stacked per trial\n\n",
                self.config.compose - 1,
            ));
        }
        if self.config.peel {
            out.push_str("Clifford peeling enabled for every check\n\n");
        }

        out.push_str(
            "## Benchmarks\n\n| name | family | n | |G| | |G'| |\n|---|---|---|---|---|\n",
        );
        for (name, family, n, g, gp) in &self.benchmarks {
            out.push_str(&format!("| {name} | {family} | {n} | {g} | {gp} |\n"));
        }

        out.push_str(
            "\n## Detection by error class\n\n\
             | class | faults | benign | det. sim | det. complete | missed | mean #sims | rate |\n\
             |---|---|---|---|---|---|---|---|\n",
        );
        for (kind, s) in &self.classes {
            let mean = s
                .mean_sims_to_detect()
                .map_or_else(|| "—".to_string(), |m| format!("{m:.2}"));
            let rate = s
                .detection_rate()
                .map_or_else(|| "—".to_string(), |r| format!("{:.0}%", r * 100.0));
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} | {} |\n",
                kind.slug(),
                s.faults,
                s.benign,
                s.detected_by_sim,
                s.detected_by_complete,
                s.missed,
                mean,
                rate,
            ));
        }

        out.push_str(
            "\n## Detection by stimulus strategy\n\n\
             | strategy | faults | det. sim | det. complete | missed | mean #sims | rate |\n\
             |---|---|---|---|---|---|---|\n",
        );
        for (strategy, classes) in &self.strategy_classes {
            out.push_str(&ablation_row(strategy.slug(), classes));
        }

        if self.backend_classes.len() > 1 {
            out.push_str(
                "\n## Detection by backend\n\n\
                 | backend | faults | det. sim | det. complete | missed | mean #sims | rate |\n\
                 |---|---|---|---|---|---|---|\n",
            );
            for (backend, classes) in &self.backend_classes {
                out.push_str(&ablation_row(backend.slug(), classes));
            }
        }

        if self.chi_classes.len() > 1 {
            out.push_str(
                "\n## Detection by bond dimension\n\n\
                 | chi | faults | det. sim | det. complete | missed | mean #sims | rate |\n\
                 |---|---|---|---|---|---|---|\n",
            );
            for (chi, classes) in &self.chi_classes {
                out.push_str(&ablation_row(&chi.to_string(), classes));
            }
        }

        if self.batch_classes.len() > 1 {
            out.push_str(
                "\n## Detection by batch size\n\n\
                 | batch | faults | det. sim | det. complete | missed | mean #sims | rate |\n\
                 |---|---|---|---|---|---|---|\n",
            );
            // Rows here must be identical by construction (per-stimulus
            // outcomes are bit-identical at any batch size); what differs
            // between arms is only wall-clock.
            for (batch, classes) in &self.batch_classes {
                out.push_str(&ablation_row(&batch.to_string(), classes));
            }
        }

        if self.scheme_classes.len() > 1 {
            out.push_str(
                "\n## Detection by application scheme\n\n\
                 | scheme | faults | det. sim | det. complete | missed | mean #sims | t_ec (s) |\n\
                 |---|---|---|---|---|---|---|\n",
            );
            // The last column is the scheme's complete-check wall-clock
            // rather than a detection rate: the verdicts per arm are
            // identical by construction (same faults, same flow); what
            // differs between schemes is how long the alternating check
            // takes to reach them.
            for (scheme, classes) in &self.scheme_classes {
                let total = ablation_totals(classes);
                let mean = total
                    .mean_sims_to_detect()
                    .map_or_else(|| "—".to_string(), |m| format!("{m:.2}"));
                out.push_str(&format!(
                    "| {} | {} | {} | {} | {} | {} | {:.3} |\n",
                    scheme.slug(),
                    total.faults,
                    total.detected_by_sim,
                    total.detected_by_complete,
                    total.missed,
                    mean,
                    self.stage_timings
                        .functional_time_for(*scheme)
                        .as_secs_f64(),
                ));
            }
        }

        out.push_str("\n## Detected / faults per family\n\n| family |");
        for (kind, _) in &self.classes {
            out.push_str(&format!(" {} |", kind.slug()));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.classes {
            out.push_str("---|");
        }
        out.push('\n');
        for (f, family) in self.families.iter().enumerate() {
            out.push_str(&format!("| {family} |"));
            for k in 0..self.classes.len() {
                let cell = &self.cells[f][k];
                out.push_str(&format!(" {}/{} |", cell.detected, cell.faults));
            }
            out.push('\n');
        }

        out.push_str(&format!(
            "\nstage summary: {} sims finished, {} aborted, {} cancellations; \
             t_sim {:.3}s, t_ec {:.3}s\n",
            self.stage_timings.simulations_finished,
            self.stage_timings.simulations_aborted,
            self.stage_timings.cancellations,
            self.stage_timings.simulation_time.as_secs_f64(),
            self.stage_timings.functional_time.as_secs_f64(),
        ));
        out.push_str(&format!(
            "guard summary: {} checks, {} golden DD build(s) ({}), t_guard {:.3}s\n",
            self.guard_stats.checks,
            self.guard_stats.golden_builds,
            if self.config.guard_cache {
                "memoized"
            } else {
                "per-trial"
            },
            self.guard_stats.guard_time.as_secs_f64(),
        ));
        out.push_str(&format!(
            "campaign wall-clock: {:.3}s with {} trial worker(s)\n",
            self.wall_time.as_secs_f64(),
            self.config.trial_threads.max(1),
        ));
        out
    }
}

impl fmt::Display for CampaignResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

/// One flow invocation of a pair audit.
#[derive(Debug, Clone)]
pub struct PairTrial {
    /// The derived flow seed.
    pub seed: u64,
    /// The detection result.
    pub detection: Detection,
    /// Simulations the flow actually ran.
    pub sims_run: usize,
}

/// The result of [`audit_pair`]: per-strategy detection results for one
/// explicit `(golden, faulty)` circuit pair.
#[derive(Debug, Clone)]
pub struct PairAudit {
    /// Label for the pair (e.g. the faulty file's name).
    pub name: String,
    /// Register size.
    pub n_qubits: usize,
    /// The guard's label for the pair — [`GuardVerdict::Benign`] means the
    /// two circuits are actually equivalent and every "miss" below is
    /// correct behaviour.
    pub guard: GuardVerdict,
    /// Trials per strategy, in `config.strategies` order.
    pub strategies: Vec<(StimulusStrategy, Vec<PairTrial>)>,
}

impl PairAudit {
    /// Detected / total counts for one strategy row.
    #[must_use]
    pub fn detection_counts(&self, strategy: StimulusStrategy) -> Option<(usize, usize)> {
        self.strategies
            .iter()
            .find(|(s, _)| *s == strategy)
            .map(|(_, trials)| {
                let detected = trials
                    .iter()
                    .filter(|t| t.detection != Detection::Missed)
                    .count();
                (detected, trials.len())
            })
    }

    /// Deterministic JSON rendering (no wall-clock content).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut root = json::Obj::new();
        let guard = match &self.guard {
            GuardVerdict::Benign { .. } => "benign",
            GuardVerdict::Unchecked { .. } => "unchecked",
            GuardVerdict::Fault => "fault",
        };
        root.str("name", &self.name)
            .int("n", self.n_qubits as u64)
            .str("guard", guard)
            .raw(
                "strategies",
                json::array(self.strategies.iter().map(|(strategy, trials)| {
                    let mut o = json::Obj::new();
                    o.str("strategy", strategy.slug()).raw(
                        "trials",
                        json::array(trials.iter().map(|t| {
                            let mut o = json::Obj::new();
                            o.int("seed", t.seed);
                            match t.detection {
                                Detection::Simulation { sims } => {
                                    o.int("detected_on_run", sims as u64)
                                }
                                Detection::Complete => o.str("detected_by", "complete"),
                                Detection::Missed => o.raw("detected_on_run", "null"),
                            };
                            o.int("sims_run", t.sims_run as u64);
                            o.render()
                        })),
                    );
                    o.render()
                })),
            );
        root.render()
    }

    /// Human-readable Markdown table.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "## Pair audit: {} ({} qubits, guard: {})\n\n\
             | strategy | detected | mean #sims |\n|---|---|---|\n",
            self.name,
            self.n_qubits,
            match &self.guard {
                GuardVerdict::Benign { .. } => "benign — pair is equivalent",
                GuardVerdict::Unchecked { .. } => "unchecked",
                GuardVerdict::Fault => "real fault",
            }
        );
        for (strategy, trials) in &self.strategies {
            let (detected, total) = self
                .detection_counts(*strategy)
                .expect("strategy taken from the audit's own list");
            let sims: Vec<usize> = trials
                .iter()
                .filter_map(|t| match t.detection {
                    Detection::Simulation { sims } => Some(sims),
                    _ => None,
                })
                .collect();
            let mean = if sims.is_empty() {
                "—".to_string()
            } else {
                format!(
                    "{:.2}",
                    sims.iter().sum::<usize>() as f64 / sims.len() as f64
                )
            };
            out.push_str(&format!(
                "| {} | {}/{} | {} |\n",
                strategy.slug(),
                detected,
                total,
                mean
            ));
        }
        out
    }
}

/// Audits one explicit `(golden, faulty)` pair: labels it with the guard,
/// then runs the simulation stage alone (`Fallback::None`) `config.trials`
/// times per configured strategy, so the per-strategy detection power is
/// measured without the complete check masking misses.
///
/// The trial seeds are shared across strategies
/// ([`trial_seed`]`(seed, 0, 0, t)`), making rows directly comparable; the
/// audit is a pure function of the pair and the configuration.
///
/// # Panics
///
/// Panics if the circuits' qubit counts differ.
#[must_use]
pub fn audit_pair(
    name: impl Into<String>,
    golden: &Circuit,
    faulty: &Circuit,
    config: &CampaignConfig,
) -> PairAudit {
    assert_eq!(
        golden.n_qubits(),
        faulty.n_qubits(),
        "pair audit requires equal qubit counts"
    );
    let guard = qfault::guard::classify(golden, faulty, &config.guard);
    let strategies = config
        .strategies
        .iter()
        .map(|&strategy| {
            let trials = (0..config.trials.max(1))
                .map(|t| {
                    let seed = trial_seed(config.seed, 0, 0, t);
                    let flow_config = Config::new()
                        .with_simulations(config.simulations)
                        .with_seed(seed)
                        .with_stimuli(strategy)
                        .with_threads(config.threads.max(1))
                        .with_backend(config.backends[0])
                        .with_chi_max(config.chis[0])
                        .with_batch_size(config.batches[0])
                        .with_peel(config.peel)
                        .with_fallback(Fallback::None);
                    let result = check_equivalence(golden, faulty, &flow_config)
                        .expect("equal registers were asserted above");
                    let detection = match &result.outcome {
                        Outcome::NotEquivalent {
                            counterexample: Some(ce),
                        } => Detection::Simulation { sims: ce.run },
                        Outcome::NotEquivalent {
                            counterexample: None,
                        } => Detection::Complete,
                        _ => Detection::Missed,
                    };
                    PairTrial {
                        seed,
                        detection,
                        sims_run: result.stats.simulations_run,
                    }
                })
                .collect();
            (strategy, trials)
        })
        .collect();
    PairAudit {
        name: name.into(),
        n_qubits: golden.n_qubits(),
        guard,
        strategies,
    }
}

/// Renders one row of an ablation Markdown table (strategy or backend):
/// the class-summed detection counts behind a single label.
fn ablation_totals(classes: &[(MutationKind, ClassStats)]) -> ClassStats {
    let mut total = ClassStats::default();
    for (_, s) in classes {
        total.faults += s.faults;
        total.detected_by_sim += s.detected_by_sim;
        total.detected_by_complete += s.detected_by_complete;
        total.missed += s.missed;
        if total.sims_histogram.len() < s.sims_histogram.len() {
            total.sims_histogram.resize(s.sims_histogram.len(), 0);
        }
        for (i, c) in s.sims_histogram.iter().enumerate() {
            total.sims_histogram[i] += c;
        }
    }
    total
}

fn ablation_row(label: &str, classes: &[(MutationKind, ClassStats)]) -> String {
    let total = ablation_totals(classes);
    let mean = total
        .mean_sims_to_detect()
        .map_or_else(|| "—".to_string(), |m| format!("{m:.2}"));
    let rate = total
        .detection_rate()
        .map_or_else(|| "—".to_string(), |r| format!("{:.0}%", r * 100.0));
    format!(
        "| {} | {} | {} | {} | {} | {} | {} |\n",
        label,
        total.faults,
        total.detected_by_sim,
        total.detected_by_complete,
        total.missed,
        mean,
        rate,
    )
}

/// Renders one per-class statistics table as a JSON array (shared by the
/// overall aggregate and the per-strategy/per-backend breakdowns).
fn class_stats_json(classes: &[(MutationKind, ClassStats)]) -> String {
    json::array(classes.iter().map(|(kind, s)| {
        let mut o = json::Obj::new();
        o.str("class", kind.slug())
            .int("trials", s.trials as u64)
            .int("inapplicable", s.inapplicable as u64)
            .int("benign", s.benign as u64)
            .int("unchecked", s.unchecked as u64)
            .int("faults", s.faults as u64)
            .int("detected_by_sim", s.detected_by_sim as u64)
            .int("detected_by_complete", s.detected_by_complete as u64)
            .int("missed", s.missed as u64)
            .int("false_positives", s.false_positives as u64)
            .int("total_sims", s.total_sims as u64)
            .raw(
                "sims_histogram",
                json::array(s.sims_histogram.iter().map(|c| c.to_string())),
            );
        match s.mean_sims_to_detect() {
            Some(m) => o.num("mean_sims_to_detect", m),
            None => o.raw("mean_sims_to_detect", "null"),
        };
        match s.detection_rate() {
            Some(r) => o.num("detection_rate", r),
            None => o.raw("detection_rate", "null"),
        };
        o.render()
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::generators;

    fn tiny_campaign() -> (Vec<CampaignBenchmark>, CampaignConfig) {
        let benches = vec![
            CampaignBenchmark::optimized("qft 4", "qft", &generators::qft(4, true)),
            CampaignBenchmark::compile(
                "ghz 4",
                "ghz",
                &generators::ghz(4),
                &CompileRoute::Map(CouplingMap::linear(4)),
            ),
        ];
        let config = CampaignConfig::default()
            .with_trials(2)
            .with_simulations(4)
            .with_threads(2);
        (benches, config)
    }

    #[test]
    fn filtered_classes_inject_the_same_faults_as_the_full_campaign() {
        let (benches, config) = tiny_campaign();
        let full = run_campaign(&benches, &config);
        let picked = vec![MutationKind::RemoveGate, MutationKind::PerturbAngle];
        let filtered = run_campaign(&benches, &config.clone().with_classes(picked.clone()));
        assert_eq!(
            filtered.classes.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            picked
        );
        // Seeds are keyed on the class's position in ALL, so every kept
        // class reproduces exactly the trials of the unfiltered run.
        for (kind, stats) in &filtered.classes {
            let full_stats = full
                .classes
                .iter()
                .find(|(k, _)| k == kind)
                .map(|(_, s)| s)
                .unwrap();
            assert_eq!(stats, full_stats, "{kind}: stats diverged under filtering");
        }
        // The filtered selection renders in config JSON; the full one not.
        assert!(filtered
            .to_json(false)
            .contains(r#""inject":["remove_gate","perturb_angle"]"#));
        assert!(!full.to_json(false).contains(r#""inject""#));
    }

    #[test]
    fn campaign_covers_every_class_and_family() {
        let (benches, config) = tiny_campaign();
        let result = run_campaign(&benches, &config);
        assert_eq!(result.classes.len(), MutationKind::ALL.len());
        assert_eq!(result.families, vec!["qft", "ghz"]);
        assert_eq!(
            result.trials.len(),
            benches.len() * MutationKind::ALL.len() * config.trials
        );
        // Detection is sound: no benign mutation is ever flagged.
        for (kind, s) in &result.classes {
            assert_eq!(s.false_positives, 0, "{kind}: unsound verdicts");
        }
        // The experiment has power: real faults exist and most are caught.
        let faults: usize = result.classes.iter().map(|(_, s)| s.faults).sum();
        let detected: usize = result
            .classes
            .iter()
            .map(|(_, s)| s.detected_by_sim + s.detected_by_complete)
            .sum();
        assert!(faults > 0, "guard never confirmed a fault");
        assert!(detected * 2 > faults, "detected {detected} of {faults}");
    }

    #[test]
    fn campaigns_are_deterministic() {
        let (benches, config) = tiny_campaign();
        let a = run_campaign(&benches, &config).to_json(false);
        let b = run_campaign(&benches, &config).to_json(false);
        assert_eq!(a, b, "same seed must render byte-identical JSON");
        let other = run_campaign(&benches, &config.clone().with_seed(99)).to_json(false);
        assert_ne!(a, other, "different seeds explore different faults");
    }

    #[test]
    fn trial_pool_preserves_the_byte_identical_contract() {
        let (benches, config) = tiny_campaign();
        let sequential = run_campaign(&benches, &config);
        for workers in [2, 5] {
            let pooled = run_campaign(&benches, &config.clone().with_trial_threads(workers));
            assert_eq!(
                sequential.to_json(false),
                pooled.to_json(false),
                "{workers} trial workers changed the reproducible JSON"
            );
            // Stronger than the JSON: every trial record agrees.
            assert_eq!(sequential.trials.len(), pooled.trials.len());
            for (a, b) in sequential.trials.iter().zip(&pooled.trials) {
                assert_eq!(a.seed, b.seed);
                assert_eq!(a.mutations, b.mutations);
                assert_eq!(a.detection, b.detection);
                assert_eq!(a.guard.is_fault(), b.guard.is_fault());
            }
        }
    }

    #[test]
    fn guard_cache_ablation_changes_labels_not_at_all() {
        let (benches, config) = tiny_campaign();
        let cached = run_campaign(&benches, &config);
        let uncached = run_campaign(&benches, &config.clone().with_guard_cache(false));
        assert_eq!(cached.to_json(false), uncached.to_json(false));
        // The memoized run built one golden DD per benchmark; the ablation
        // paid one build per checked trial.
        assert_eq!(cached.guard_stats.golden_builds, benches.len());
        assert_eq!(
            uncached.guard_stats.golden_builds,
            uncached.guard_stats.checks
        );
        assert!(uncached.guard_stats.golden_builds > cached.guard_stats.golden_builds);
    }

    #[test]
    fn trial_seeds_are_well_spread() {
        let mut seen = std::collections::HashSet::new();
        for b in 0..4 {
            for k in 0..8 {
                for t in 0..4 {
                    assert!(seen.insert(trial_seed(7, b, k, t)), "seed collision");
                }
            }
        }
        assert_eq!(trial_seed(7, 1, 2, 3), trial_seed(7, 1, 2, 3));
        assert_ne!(trial_seed(7, 1, 2, 3), trial_seed(8, 1, 2, 3));
    }

    #[test]
    fn markdown_mentions_all_sections() {
        let (benches, config) = tiny_campaign();
        let md = run_campaign(&benches, &config.with_trials(1)).to_markdown();
        assert!(md.contains("## Benchmarks"));
        assert!(md.contains("## Detection by error class"));
        assert!(md.contains("remove_gate"));
        assert!(md.contains("per family"));
    }

    #[test]
    fn stimulus_ablation_adds_a_strategy_axis() {
        let benches = vec![CampaignBenchmark::optimized(
            "qft 4",
            "qft",
            &generators::qft(4, true),
        )];
        let config = CampaignConfig::default()
            .with_trials(1)
            .with_simulations(4)
            .with_strategies(vec![StimulusStrategy::Random, StimulusStrategy::Stabilizer]);
        let result = run_campaign(&benches, &config);
        assert_eq!(result.strategy_classes.len(), 2);
        assert_eq!(result.trials.len(), 2 * MutationKind::ALL.len());
        // The strategy axis re-checks the *same* faults: trial seeds and
        // injected mutations repeat between the two halves.
        let half = result.trials.len() / 2;
        for (a, b) in result.trials[..half].iter().zip(&result.trials[half..]) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.mutations, b.mutations);
            assert_eq!(a.strategy, StimulusStrategy::Random);
            assert_eq!(b.strategy, StimulusStrategy::Stabilizer);
        }
        let js = result.to_json(false);
        assert!(js.contains(r#""stimuli":["basis","stabilizer"]"#));
        assert!(js.contains(r#""strategy":"stabilizer""#));
        // The byte-identity contract holds per strategy set, including
        // across trial-pool sizes.
        assert_eq!(js, run_campaign(&benches, &config).to_json(false));
        let pooled = run_campaign(&benches, &config.clone().with_trial_threads(3));
        assert_eq!(js, pooled.to_json(false));
        assert!(result
            .to_markdown()
            .contains("## Detection by stimulus strategy"));
    }

    #[test]
    fn backend_ablation_adds_an_engine_axis() {
        let benches = vec![CampaignBenchmark::optimized(
            "qft 4",
            "qft",
            &generators::qft(4, true),
        )];
        let config = CampaignConfig::default()
            .with_trials(1)
            .with_simulations(4)
            .with_backends(vec![BackendKind::Statevector, BackendKind::DecisionDiagram]);
        let result = run_campaign(&benches, &config);
        assert_eq!(result.backend_classes.len(), 2);
        assert_eq!(result.trials.len(), 2 * MutationKind::ALL.len());
        // The backend axis re-checks the *same* faults with the same
        // stimuli: seeds and mutations repeat between the halves, and the
        // two engines must agree on every guard label and verdict.
        let half = result.trials.len() / 2;
        for (a, b) in result.trials[..half].iter().zip(&result.trials[half..]) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.mutations, b.mutations);
            assert_eq!(a.backend, BackendKind::Statevector);
            assert_eq!(b.backend, BackendKind::DecisionDiagram);
            assert_eq!(a.guard.is_fault(), b.guard.is_fault());
            assert_eq!(a.detection, b.detection, "engines disagree: {a:?} {b:?}");
        }
        let js = result.to_json(false);
        assert!(js.contains(r#""backends":["sv","dd"]"#));
        assert!(js.contains(r#""backend":"dd""#));
        assert_eq!(js, run_campaign(&benches, &config).to_json(false));
        let pooled = run_campaign(&benches, &config.clone().with_trial_threads(3));
        assert_eq!(js, pooled.to_json(false));
        assert!(result.to_markdown().contains("## Detection by backend"));
    }

    #[test]
    fn chi_ablation_adds_a_truncation_axis() {
        let benches = vec![CampaignBenchmark::optimized(
            "ghz 5",
            "ghz",
            &generators::ghz(5),
        )];
        let config = CampaignConfig::default()
            .with_trials(1)
            .with_simulations(4)
            .with_backend(BackendKind::Mps)
            .with_classes(vec![MutationKind::RemoveGate, MutationKind::AddGate])
            .with_chis(vec![1, 64]);
        let result = run_campaign(&benches, &config);
        assert_eq!(result.chi_classes.len(), 2);
        // The χ axis re-checks the *same* faults: seeds and mutations
        // repeat between the two arms.
        let half = result.trials.len() / 2;
        for (a, b) in result.trials[..half].iter().zip(&result.trials[half..]) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.mutations, b.mutations);
            assert_eq!(a.chi, 1);
            assert_eq!(b.chi, 64);
        }
        // Soundness survives truncation: even at χ = 1 no benign mutation
        // is flagged non-equivalent (truncated runs abort, never accuse).
        for (kind, s) in &result.classes {
            assert_eq!(s.false_positives, 0, "{kind}: unsound under truncation");
        }
        let js = result.to_json(false);
        assert!(js.contains(r#""chis":[1,64]"#));
        assert!(js.contains(r#""chi":64"#));
        assert_eq!(js, run_campaign(&benches, &config).to_json(false));
        let pooled = run_campaign(&benches, &config.clone().with_trial_threads(3));
        assert_eq!(js, pooled.to_json(false));
        assert!(result
            .to_markdown()
            .contains("## Detection by bond dimension"));
        // The default single-χ campaign renders no χ field at all.
        let default_js = run_campaign(
            &benches,
            &CampaignConfig::default()
                .with_trials(1)
                .with_simulations(4)
                .with_classes(vec![MutationKind::RemoveGate]),
        )
        .to_json(false);
        assert!(!default_js.contains("chi"));
    }

    #[test]
    fn batch_ablation_arms_report_identical_verdicts() {
        let benches = vec![CampaignBenchmark::optimized(
            "qft 5",
            "qft",
            &generators::qft(5, true),
        )];
        let config = CampaignConfig::default()
            .with_trials(2)
            .with_simulations(6)
            .with_classes(vec![MutationKind::RemoveGate, MutationKind::AddGate])
            .with_batches(vec![1, 8]);
        let result = run_campaign(&benches, &config);
        assert_eq!(result.batch_classes.len(), 2);
        // The batch axis re-checks the *same* faults, and per-stimulus
        // outcomes are bit-identical at any batch size — so the arms must
        // agree not only on seeds and mutations but on every verdict and
        // sims-run count.
        let half = result.trials.len() / 2;
        for (a, b) in result.trials[..half].iter().zip(&result.trials[half..]) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.mutations, b.mutations);
            assert_eq!(a.batch, 1);
            assert_eq!(b.batch, 8);
            assert_eq!(a.detection, b.detection, "batch changed a verdict");
            assert_eq!(a.sims_run, b.sims_run);
        }
        assert_eq!(result.batch_classes[0].1, result.batch_classes[1].1);
        let js = result.to_json(false);
        assert!(js.contains(r#""batches":[1,8]"#));
        assert!(js.contains(r#""batch":8"#));
        assert_eq!(js, run_campaign(&benches, &config).to_json(false));
        let pooled = run_campaign(&benches, &config.clone().with_trial_threads(3));
        assert_eq!(js, pooled.to_json(false));
        assert!(result.to_markdown().contains("## Detection by batch size"));
        // The default batch=1 campaign renders no batch field at all.
        let default_js = run_campaign(
            &benches,
            &CampaignConfig::default()
                .with_trials(1)
                .with_simulations(4)
                .with_classes(vec![MutationKind::RemoveGate]),
        )
        .to_json(false);
        assert!(!default_js.contains("batch"));
    }

    #[test]
    fn single_nondefault_backend_renders_a_stable_config_field() {
        let benches = vec![CampaignBenchmark::optimized(
            "ghz 4",
            "ghz",
            &generators::ghz(4),
        )];
        let config = CampaignConfig::default()
            .with_trials(1)
            .with_simulations(4)
            .with_backend(BackendKind::DecisionDiagram);
        let js = run_campaign(&benches, &config).to_json(false);
        assert!(js.contains(r#""backend":"dd""#));
        // A single non-default backend is a selection, not an ablation:
        // no per-backend breakdown section.
        assert!(!js.contains(r#""backends":"#));
        assert_eq!(js, run_campaign(&benches, &config).to_json(false));
    }

    #[test]
    fn pair_audit_separates_strategy_power() {
        // An escapee-shaped pair: the only difference hides behind eight
        // controls, so 10 random basis states almost surely miss it while
        // non-classical stimuli see the fidelity deficit immediately.
        let n = 9;
        let golden = Circuit::new(n);
        let mut faulty = Circuit::new(n);
        faulty.mcz((0..n - 1).collect(), n - 1);
        let config = CampaignConfig::default()
            .with_trials(3)
            .with_simulations(10)
            .with_strategies(vec![StimulusStrategy::Random, StimulusStrategy::Stabilizer]);
        let audit = audit_pair("mcz escapee", &golden, &faulty, &config);
        assert!(audit.guard.is_fault());
        let (basis_hits, total) = audit.detection_counts(StimulusStrategy::Random).unwrap();
        let (stab_hits, _) = audit
            .detection_counts(StimulusStrategy::Stabilizer)
            .unwrap();
        assert_eq!(total, 3);
        assert_eq!(stab_hits, total, "stabilizer stimuli must catch the fault");
        assert!(
            basis_hits < total,
            "basis stimuli should miss at least one trial"
        );
        // Deterministic JSON; markdown names both rows.
        assert_eq!(
            audit.to_json(),
            audit_pair("mcz escapee", &golden, &faulty, &config).to_json()
        );
        let md = audit.to_markdown();
        assert!(md.contains("| basis |"));
        assert!(md.contains("| stabilizer |"));
        assert!(md.contains("real fault"));
    }

    #[test]
    fn composed_faults_stack_mixed_classes_deterministically() {
        let benches = vec![CampaignBenchmark::optimized(
            "qft 4",
            "qft",
            &generators::qft(4, true),
        )];
        let base = CampaignConfig::default().with_trials(2).with_simulations(4);
        // compose == 1 is the identity, bit-for-bit.
        assert_eq!(
            run_campaign(&benches, &base).to_json(false),
            run_campaign(&benches, &base.clone().with_compose(1)).to_json(false),
        );
        let config = base.clone().with_compose(3);
        let result = run_campaign(&benches, &config);
        // The cell's own class always leads the plan; extras stack behind.
        let mut saw_extras = false;
        for t in &result.trials {
            if let Some(first) = t.mutations.first() {
                assert!(
                    first.starts_with(t.kind.slug()),
                    "first mutation '{first}' is not the cell's class {}",
                    t.kind.slug()
                );
            }
            saw_extras |= t.mutations.len() > config.faults;
        }
        assert!(saw_extras, "compose=3 never stacked an extra fault");
        // Soundness survives composition: no benign pile-up is ever flagged.
        for (kind, s) in &result.classes {
            assert_eq!(s.false_positives, 0, "{kind}: unsound under composition");
        }
        // The knob renders only when engaged, and the byte-identity
        // contract holds across reruns and trial-pool sizes.
        let js = result.to_json(false);
        assert!(js.contains(r#""compose":3"#));
        assert!(!run_campaign(&benches, &base)
            .to_json(false)
            .contains("compose"));
        assert_eq!(js, run_campaign(&benches, &config).to_json(false));
        assert_eq!(
            js,
            run_campaign(&benches, &config.clone().with_trial_threads(3)).to_json(false),
        );
    }

    #[test]
    fn peeled_campaigns_stay_sound_and_render_the_flag() {
        let (benches, config) = tiny_campaign();
        let config = config.with_peel(true);
        let result = run_campaign(&benches, &config);
        assert!(result.to_json(false).contains(r#""peel":1"#));
        for (kind, s) in &result.classes {
            assert_eq!(s.false_positives, 0, "{kind}: unsound under peeling");
        }
        assert_eq!(
            result.to_json(false),
            run_campaign(&benches, &config).to_json(false),
            "peeled campaigns must stay deterministic"
        );
        assert!(result.to_markdown().contains("Clifford peeling enabled"));
    }

    #[test]
    fn compile_routes_produce_equivalent_pairs() {
        let g = generators::ghz(4);
        for route_kind in [
            CompileRoute::Optimize,
            CompileRoute::Map(CouplingMap::linear(4)),
            CompileRoute::Decompose,
        ] {
            let b = CampaignBenchmark::compile("ghz", "ghz", &g, &route_kind);
            assert_eq!(b.original.n_qubits(), b.alternative.n_qubits());
            let ok = crate::check_equivalence_default(&b.original, &b.alternative).unwrap();
            assert!(ok.outcome.is_equivalent(), "{route_kind:?}: {}", ok.outcome);
        }
    }
}
