//! The simulation stage of the flow: `r` random stimuli, early exit on
//! the first counterexample.

use qcirc::Circuit;
use qnum::Complex;
use qstim::{
    BasisSource, ProductSource, SequentialSource, StabilizerSource, Stimulus, StimulusSource,
};

use crate::backend::{
    auto_backend, dd_for_flow, MpsBackend, SimBackend, StabBackend, StatevectorBackend,
};
use crate::config::{BackendKind, Config, Criterion, StimulusStrategy};
use crate::outcome::Counterexample;

/// Outcome of the simulation stage.
#[derive(Debug, Clone, PartialEq)]
pub enum SimVerdict {
    /// A differing stimulus was found — non-equivalence is proven.
    CounterexampleFound(Counterexample),
    /// All runs agreed.
    AllAgreed {
        /// The number of runs performed.
        runs: usize,
        /// The truncation error accumulated across all probes — `0.0`
        /// (the exactness certificate) on every backend except a
        /// bond-limited MPS run. When non-zero, "all agreed" was judged
        /// against a tolerance widened by the accumulated error and the
        /// agreement is evidence, not proof.
        truncation_error: f64,
    },
}

/// Runs up to `config.simulations` random stimulus simulations of both
/// circuits, comparing outputs per the configured criterion.
///
/// Under the default [`StimulusStrategy::Random`] the stimuli are distinct
/// uniformly random basis states; for small registers (`2ⁿ ≤ r`) every
/// basis state is enumerated instead, making the stage a *complete* check
/// by itself. [`StimulusStrategy::Product`] and
/// [`StimulusStrategy::Stabilizer`] instead prepare non-classical input
/// states through a seeded prefix circuit applied to both `G` and `G'`.
///
/// # Errors
///
/// Returns [`qdd::DdLimitError`] only with the decision-diagram backend,
/// when a simulation exceeds the node limit.
///
/// # Panics
///
/// Panics if the circuits' qubit counts differ.
pub fn run_simulations(
    g: &Circuit,
    g_prime: &Circuit,
    config: &Config,
) -> Result<SimVerdict, qdd::DdLimitError> {
    match config.backend {
        BackendKind::Statevector => {
            run_simulations_on(&StatevectorBackend::for_flow(config), g, g_prime, config)
        }
        BackendKind::DecisionDiagram => {
            run_simulations_on(&dd_for_flow(config), g, g_prime, config)
        }
        BackendKind::Stab => run_simulations_on(&StabBackend::for_flow(config), g, g_prime, config),
        BackendKind::Mps => run_simulations_on(&MpsBackend::for_flow(config), g, g_prime, config),
        BackendKind::Auto => {
            let resolved = auto_backend(g, g_prime);
            run_simulations(g, g_prime, &config.clone().with_backend(resolved))
        }
    }
}

/// The backend-generic body of [`run_simulations`]: one workspace, one
/// probe per stimulus through the injected engine, one [`Judge`] — the
/// single sequential code path both built-in backends (and any external
/// [`SimBackend`] implementation) share.
///
/// With [`Config::batch_size`](Config) `> 1` the stimuli are probed in
/// contiguous chunks through [`SimBackend::probe_batch_while`] instead of
/// one at a time. Per-stimulus outcomes are bit-identical either way
/// (that is the batch contract), and the judge still observes them in
/// stimulus order, so the verdict never depends on the batch size — a
/// counterexample inside a chunk merely means the rest of that chunk was
/// probed wastefully.
///
/// # Errors
///
/// Returns [`qdd::DdLimitError`] if the backend exhausts its node budget.
///
/// # Panics
///
/// Panics if the circuits' qubit counts differ.
pub fn run_simulations_on<B: SimBackend>(
    backend: &B,
    g: &Circuit,
    g_prime: &Circuit,
    config: &Config,
) -> Result<SimVerdict, qdd::DdLimitError> {
    assert_eq!(
        g.n_qubits(),
        g_prime.n_qubits(),
        "circuits must have equal qubit counts"
    );
    let n = g.n_qubits();
    let stimuli = draw_stimuli(n, config);

    // One scratch allocation for the whole loop — statevector probes are
    // allocation-free after this (stimulus prefixes are materialised per
    // run, but those circuits are O(n²) gates, not O(2ⁿ)).
    let mut workspace = backend.workspace(n);
    let mut judge = Judge::new(config);
    if config.batch_size > 1 {
        for (chunk_index, chunk) in stimuli.chunks(config.batch_size).enumerate() {
            let outcomes = backend
                .probe_batch_while(g, g_prime, chunk, &mut workspace, &|| true)?
                .expect("an uncancellable batch always completes");
            let first = chunk_index * config.batch_size;
            for (offset, (outcome, stimulus)) in outcomes.iter().zip(chunk).enumerate() {
                if let Some(ce) = judge.observe(
                    outcome.overlap,
                    outcome.metrics.truncation_error,
                    stimulus,
                    first + offset + 1,
                ) {
                    return Ok(SimVerdict::CounterexampleFound(ce));
                }
            }
        }
    } else {
        for (run, stimulus) in stimuli.iter().enumerate() {
            let outcome = backend.probe(g, g_prime, stimulus, &mut workspace)?;
            if let Some(ce) = judge.observe(
                outcome.overlap,
                outcome.metrics.truncation_error,
                stimulus,
                run + 1,
            ) {
                return Ok(SimVerdict::CounterexampleFound(ce));
            }
        }
    }
    Ok(SimVerdict::AllAgreed {
        runs: stimuli.len(),
        truncation_error: judge.truncation_error(),
    })
}

/// Draws the full stimulus list for one flow invocation: the seeded
/// stimulus stream depends only on the configuration, never on scheduling
/// — the scheduler pre-draws through this same function, which is what
/// keeps parallel verdicts deterministic.
///
/// This is the crate's single dispatch point from
/// [`StimulusStrategy`] onto the [`qstim`] generators, exposed so external
/// tools (campaign runners, fixture audits) can reproduce exactly the
/// stimuli a flow invocation will use.
///
/// # Examples
///
/// ```
/// use qcec::{Config, StimulusStrategy};
///
/// let config = Config::new().with_seed(7).with_simulations(4);
/// let basis = qcec::draw_stimuli(5, &config);
/// assert_eq!(basis.len(), 4);
/// let stab = qcec::draw_stimuli(
///     5,
///     &config.with_stimuli(StimulusStrategy::Stabilizer),
/// );
/// assert!(stab.iter().all(|s| s.kind() == "stabilizer"));
/// ```
#[must_use]
pub fn draw_stimuli(n_qubits: usize, config: &Config) -> Vec<Stimulus> {
    let source: &dyn StimulusSource = match config.stimuli {
        StimulusStrategy::Random => &BasisSource,
        StimulusStrategy::Sequential => &SequentialSource,
        StimulusStrategy::Product => &ProductSource,
        StimulusStrategy::Stabilizer => &StabilizerSource,
    };
    source.draw(n_qubits, config.seed, config.simulations)
}

/// Stateful per-run comparison.
///
/// Under [`Criterion::UpToGlobalPhase`] a single run only checks
/// `|⟨u|u′⟩| = 1`; a diagonal error that leaves each *basis* input in a
/// pure phase would slip through every run individually. Soundness comes
/// from the cross-run condition: `U' = e^{iφ}U` forces the *same* overlap
/// phase on every column, so the judge records the first run's phase and
/// flags any later run that disagrees
/// ([`Mismatch::PhaseInconsistency`](crate::Mismatch)).
pub(crate) struct Judge<'a> {
    config: &'a Config,
    expected_phase: Option<Complex>,
    truncation: f64,
}

/// How many units of accumulated truncation error widen the judge's
/// tolerance. Matches the engine-side window in `qmpo`: a bond-limited
/// probe can move each overlap by O(ε) in the worst case, so agreement is
/// only judged outside that slack.
pub(crate) const TRUNCATION_SLACK: f64 = 8.0;

impl<'a> Judge<'a> {
    pub(crate) fn new(config: &'a Config) -> Self {
        Judge {
            config,
            expected_phase: None,
            truncation: 0.0,
        }
    }

    /// The truncation error accumulated over all observed runs, in
    /// stimulus order (which keeps parallel verdicts deterministic —
    /// the scheduler replays observations in that same order).
    pub(crate) fn truncation_error(&self) -> f64 {
        self.truncation
    }

    pub(crate) fn observe(
        &mut self,
        overlap: Complex,
        truncation_error: f64,
        stimulus: &Stimulus,
        run: usize,
    ) -> Option<Counterexample> {
        use crate::outcome::Mismatch;
        self.truncation += truncation_error;
        let tolerance = self.config.fidelity_tolerance + TRUNCATION_SLACK * self.truncation;
        let ce = |mismatch: Mismatch| Counterexample {
            stimulus: stimulus.clone(),
            overlap,
            fidelity: overlap.norm_sqr(),
            run,
            mismatch,
        };
        match self.config.criterion {
            // ⟨u|u′⟩ = 1 exactly (within tolerance).
            Criterion::Strict => {
                if (overlap - Complex::ONE).norm_sqr() > tolerance {
                    return Some(ce(Mismatch::Output));
                }
            }
            Criterion::UpToGlobalPhase => {
                if (overlap.norm_sqr() - 1.0).abs() > tolerance {
                    return Some(ce(Mismatch::Output));
                }
                match self.expected_phase {
                    None => self.expected_phase = Some(overlap),
                    Some(expected) => {
                        if (overlap - expected).norm_sqr() > tolerance {
                            return Some(ce(Mismatch::PhaseInconsistency {
                                expected: expected.arg(),
                                found: overlap.arg(),
                            }));
                        }
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::generators;

    #[test]
    fn equivalent_circuits_pass_all_runs() {
        let g = generators::qft(4, true);
        let opt = qcirc::optimize::optimize(&g);
        let v = run_simulations(&g, &opt, &Config::default()).unwrap();
        assert_eq!(
            v,
            SimVerdict::AllAgreed {
                runs: 10,
                truncation_error: 0.0
            }
        );
    }

    #[test]
    fn single_qubit_error_is_caught_first_run() {
        let g = generators::qft(5, true);
        let mut buggy = g.clone();
        buggy.x(3);
        let v = run_simulations(&g, &buggy, &Config::default()).unwrap();
        match v {
            SimVerdict::CounterexampleFound(ce) => {
                assert_eq!(ce.run, 1, "a 1q error affects every column");
                assert!(ce.fidelity < 1.0 - 1e-6);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn small_registers_enumerate_every_basis_state() {
        let mut a = qcirc::Circuit::new(2);
        a.h(0);
        // b differs only on the |11⟩-ish column: a CZ.
        let mut b = a.clone();
        b.cz(0, 1);
        let v = run_simulations(&a, &b, &Config::default().with_simulations(10)).unwrap();
        // 2² = 4 ≤ 10 → full enumeration must find the difference.
        assert!(matches!(v, SimVerdict::CounterexampleFound(_)));
    }

    #[test]
    fn global_phase_handling_differs_by_criterion() {
        let mut a = qcirc::Circuit::new(2);
        a.h(0).cx(0, 1);
        let mut b = a.clone();
        b.rz(2.0 * std::f64::consts::PI, 1); // global −1
        let strict = Config::default().with_criterion(Criterion::Strict);
        let v = run_simulations(&a, &b, &strict).unwrap();
        assert!(matches!(v, SimVerdict::CounterexampleFound(_)));
        let phased = Config::default().with_criterion(Criterion::UpToGlobalPhase);
        let v = run_simulations(&a, &b, &phased).unwrap();
        assert!(matches!(v, SimVerdict::AllAgreed { .. }));
    }

    #[test]
    fn dd_backend_agrees_with_statevector() {
        let g = generators::grover(4, 3, 2);
        let mut buggy = g.clone();
        buggy.s(1);
        for backend in BackendKind::ALL {
            let config = Config::default().with_backend(backend).with_seed(5);
            let v = run_simulations(&g, &buggy, &config).unwrap();
            assert!(
                matches!(v, SimVerdict::CounterexampleFound(_)),
                "backend {backend:?}"
            );
            let v = run_simulations(&g, &g, &config).unwrap();
            assert!(matches!(v, SimVerdict::AllAgreed { .. }));
        }
    }

    #[test]
    fn dd_backend_agrees_with_statevector_on_nonclassical_stimuli() {
        let g = generators::qft(4, true);
        let mut buggy = g.clone();
        buggy.t(2);
        for strategy in [StimulusStrategy::Product, StimulusStrategy::Stabilizer] {
            let config = Config::default().with_stimuli(strategy).with_seed(11);
            let sv = run_simulations(&g, &buggy, &config).unwrap();
            let dd = run_simulations(
                &g,
                &buggy,
                &config.clone().with_backend(BackendKind::DecisionDiagram),
            )
            .unwrap();
            // Both backends judge the same pre-drawn stimuli, so the
            // decisive run (and the witnessing stimulus) must match.
            match (&sv, &dd) {
                (SimVerdict::CounterexampleFound(a), SimVerdict::CounterexampleFound(b)) => {
                    assert_eq!(a.run, b.run, "strategy {strategy:?}");
                    assert_eq!(a.stimulus, b.stimulus, "strategy {strategy:?}");
                    assert!((a.fidelity - b.fidelity).abs() < 1e-9);
                }
                other => panic!("expected matching counterexamples, got {other:?}"),
            }
        }
    }

    #[test]
    fn basis_dependent_phases_are_caught_by_consistency_tracking() {
        // An S gate on a qubit that stays classical turns every basis input
        // into a pure phase (i^b): each run individually looks like "equal
        // up to global phase", but the phases differ across runs.
        let a = qcirc::Circuit::new(2);
        let mut b = qcirc::Circuit::new(2);
        b.s(0);
        let config = Config::default().with_simulations(4);
        let v = run_simulations(&a, &b, &config).unwrap();
        match v {
            SimVerdict::CounterexampleFound(ce) => {
                assert!(matches!(
                    ce.mismatch,
                    crate::outcome::Mismatch::PhaseInconsistency { .. }
                ));
                assert!((ce.fidelity - 1.0).abs() < 1e-9);
            }
            other => panic!("diagonal error slipped through: {other:?}"),
        }
        // The same pair on the DD backend.
        let config = config.with_backend(BackendKind::DecisionDiagram);
        let v = run_simulations(&a, &b, &config).unwrap();
        assert!(matches!(v, SimVerdict::CounterexampleFound(_)));
    }

    #[test]
    fn batched_runs_reproduce_single_run_verdicts() {
        let g = generators::qft(5, true);
        let mut buggy = g.clone();
        buggy.t(2);
        for backend in BackendKind::ALL {
            for strategy in [StimulusStrategy::Random, StimulusStrategy::Stabilizer] {
                let base = Config::default()
                    .with_backend(backend)
                    .with_stimuli(strategy)
                    .with_seed(5);
                let single = run_simulations(&g, &buggy, &base).unwrap();
                for batch in [3, 8, 64] {
                    let batched =
                        run_simulations(&g, &buggy, &base.clone().with_batch_size(batch)).unwrap();
                    assert_eq!(single, batched, "backend {backend:?} batch {batch}");
                }
                let agree = run_simulations(&g, &g, &base.with_batch_size(3)).unwrap();
                assert!(matches!(agree, SimVerdict::AllAgreed { .. }));
            }
        }
    }

    #[test]
    fn runs_are_reproducible_per_seed() {
        let g = generators::supremacy_2d(2, 3, 6, 1);
        let mut buggy = g.clone();
        buggy.z(4);
        let config = Config::default().with_seed(42);
        let a = run_simulations(&g, &buggy, &config).unwrap();
        let b = run_simulations(&g, &buggy, &config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_simulations_always_agree() {
        let g = generators::ghz(3);
        let mut buggy = g.clone();
        buggy.x(0);
        let config = Config::default().with_simulations(0);
        let v = run_simulations(&g, &buggy, &config).unwrap();
        assert_eq!(
            v,
            SimVerdict::AllAgreed {
                runs: 0,
                truncation_error: 0.0
            }
        );
    }

    #[test]
    fn sequential_strategy_misses_high_controlled_errors() {
        // An error gated on the top qubits being |1⟩ lives in the highest
        // columns; sequential stimuli |0⟩, |1⟩, … never reach them, while
        // random stimuli have a fair chance. This is the ablation that
        // justifies the paper's *random* choice.
        let n = 10;
        let g = qcirc::Circuit::new(n);
        let mut buggy = qcirc::Circuit::new(n);
        buggy.mcz((0..n - 1).collect(), n - 1);
        let sequential = Config::default()
            .with_stimuli(StimulusStrategy::Sequential)
            .with_simulations(16);
        let v = run_simulations(&g, &buggy, &sequential).unwrap();
        assert!(
            matches!(v, SimVerdict::AllAgreed { .. }),
            "sequential stimuli cannot reach the corrupted columns"
        );
        // Random stimuli find it eventually (with enough runs).
        let random = Config::default().with_simulations(1000).with_seed(3);
        let v = run_simulations(&g, &buggy, &random).unwrap();
        assert!(matches!(v, SimVerdict::CounterexampleFound(_)));
    }

    #[test]
    fn nonclassical_stimuli_catch_what_basis_stimuli_miss() {
        // The same highly-controlled fault as above: basis stimuli hit the
        // corrupted column with probability 2^{1-n} per run, while product
        // and stabilizer states overlap many columns at once, so the
        // fidelity deficit shows up within a handful of runs (a product
        // state sees every column; a stabilizer state may have zero
        // support on the one corrupted column, but not ten times in a row).
        let n = 10;
        let g = qcirc::Circuit::new(n);
        let mut buggy = qcirc::Circuit::new(n);
        buggy.mcz((0..n - 1).collect(), n - 1);
        let basis = Config::default().with_simulations(10).with_seed(0);
        let v = run_simulations(&g, &buggy, &basis).unwrap();
        assert!(
            matches!(v, SimVerdict::AllAgreed { .. }),
            "10 random basis states should miss a 9-controlled fault"
        );
        for strategy in [StimulusStrategy::Product, StimulusStrategy::Stabilizer] {
            let config = Config::default()
                .with_stimuli(strategy)
                .with_simulations(10)
                .with_seed(0);
            let v = run_simulations(&g, &buggy, &config).unwrap();
            match v {
                SimVerdict::CounterexampleFound(ce) => {
                    assert!(ce.run <= 10, "strategy {strategy:?} took {} runs", ce.run);
                }
                other => panic!("strategy {strategy:?} missed the fault: {other:?}"),
            }
        }
    }

    #[test]
    fn drawn_stimuli_match_their_strategy() {
        let config = Config::default().with_simulations(6).with_seed(9);
        for (strategy, kind) in [
            (StimulusStrategy::Random, "basis"),
            (StimulusStrategy::Sequential, "basis"),
            (StimulusStrategy::Product, "product"),
            (StimulusStrategy::Stabilizer, "stabilizer"),
        ] {
            let stimuli = draw_stimuli(8, &config.clone().with_stimuli(strategy));
            assert_eq!(stimuli.len(), 6, "{strategy}");
            assert!(stimuli.iter().all(|s| s.kind() == kind), "{strategy}");
        }
    }

    #[test]
    fn chosen_bases_are_distinct() {
        let config = Config::default().with_simulations(50).with_seed(1);
        let stimuli = draw_stimuli(20, &config);
        let mut bases: Vec<u64> = stimuli.iter().map(Stimulus::basis_state).collect();
        assert_eq!(bases.len(), 50);
        bases.sort_unstable();
        bases.dedup();
        assert_eq!(bases.len(), 50);
    }
}
