//! The theoretical machinery of the paper's Section IV-A.
//!
//! The difference of two circuits is the unitary `D = U†U'`; if `D` is (up
//! to phase) a single operation with `c` controls, it deviates from the
//! identity in `2^{n−c}` of the `2ⁿ` columns, so a uniformly random basis
//! state exposes the error with probability `2^{−c}` per simulation. These
//! helpers compute both the predicted and the empirically measured
//! quantities, feeding the `theory_detection` benchmark (experiment TH1 of
//! DESIGN.md).

use qcirc::{Circuit, Gate, GateKind};
use qsim::Simulator;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The predicted probability that one uniformly random basis-state
/// simulation detects a difference gate with `c` controls: `2^{−c}`
/// (Examples 7 and 8 of the paper are the cases `c = 0` and `c = n−1`).
#[must_use]
pub fn predicted_detection_probability(controls: usize) -> f64 {
    f64::powi(2.0, -(controls as i32))
}

/// The predicted probability that at least one of `r` independent random
/// simulations detects a difference gate with `c` controls:
/// `1 − (1 − 2^{−c})^r`.
#[must_use]
pub fn predicted_detection_probability_after(controls: usize, runs: usize) -> f64 {
    1.0 - (1.0 - predicted_detection_probability(controls)).powi(runs as i32)
}

/// Counts the columns in which the unitaries of `g` and `g_prime` differ,
/// by dense construction — the exact quantity behind the paper's
/// "a difference with `c` controls affects `2^{n−c}` columns".
///
/// # Panics
///
/// Panics if the circuits differ in qubit count or exceed 12 qubits.
#[must_use]
pub fn differing_columns(g: &Circuit, g_prime: &Circuit) -> usize {
    assert_eq!(g.n_qubits(), g_prime.n_qubits(), "qubit counts differ");
    let u = qcirc::dense::unitary(g);
    let u_prime = qcirc::dense::unitary(g_prime);
    u.differing_columns(&u_prime)
}

/// Builds the canonical worst-case-to-best-case difference circuit of the
/// paper's Examples 7/8: a single `X` on qubit 0 controlled by the first
/// `controls` remaining qubits, on `n` qubits total.
///
/// # Panics
///
/// Panics if `controls >= n`.
#[must_use]
pub fn controlled_difference_gate(n: usize, controls: usize) -> Circuit {
    assert!(controls < n, "need a free target qubit");
    let mut c = Circuit::with_name(n, format!("difference_c{controls}"));
    if controls == 0 {
        c.x(0);
    } else {
        c.push(Gate::controlled(GateKind::X, (1..=controls).collect(), 0));
    }
    c
}

/// Empirically measures the per-simulation detection rate for the pair
/// `(G, G·D)` where `D` is [`controlled_difference_gate`]: runs `trials`
/// independent single-simulation probes with fresh random basis states and
/// reports the fraction that detected the difference.
///
/// # Panics
///
/// Panics if `controls >= n` or `trials == 0`.
#[must_use]
pub fn empirical_detection_rate(n: usize, controls: usize, trials: usize, seed: u64) -> f64 {
    assert!(trials > 0, "need at least one trial");
    let g = Circuit::new(n); // identity reference
    let mut g_prime = Circuit::new(n);
    g_prime.append(&controlled_difference_gate(n, controls));
    let sim = Simulator::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut detected = 0usize;
    for _ in 0..trials {
        let basis = rng.gen_range(0..(1u64 << n));
        let overlap = sim.probe_basis(&g, &g_prime, basis);
        if (overlap.norm_sqr() - 1.0).abs() > 1e-9 {
            detected += 1;
        }
    }
    detected as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicted_probabilities_match_the_examples() {
        // Example 7: a single-qubit difference is caught by 100% of runs.
        assert_eq!(predicted_detection_probability(0), 1.0);
        // Example 8: n−1 controls → only 2 of 2ⁿ columns differ.
        assert_eq!(predicted_detection_probability(3), 0.125);
        assert!(
            (predicted_detection_probability_after(3, 10) - (1.0 - 0.875f64.powi(10))).abs()
                < 1e-12
        );
    }

    #[test]
    fn differing_columns_follow_two_to_the_n_minus_c() {
        let n = 5;
        for c in 0..n {
            let g = Circuit::new(n);
            let mut g_prime = Circuit::new(n);
            g_prime.append(&controlled_difference_gate(n, c));
            assert_eq!(differing_columns(&g, &g_prime), 1 << (n - c), "c = {c}");
        }
    }

    #[test]
    fn empirical_rate_tracks_prediction() {
        let n = 6;
        for c in [0usize, 1, 2, 3] {
            let rate = empirical_detection_rate(n, c, 2000, 7);
            let predicted = predicted_detection_probability(c);
            assert!(
                (rate - predicted).abs() < 0.05,
                "c = {c}: empirical {rate} vs predicted {predicted}"
            );
        }
    }

    #[test]
    fn difference_gate_shapes() {
        let d = controlled_difference_gate(4, 0);
        assert_eq!(d.len(), 1);
        assert_eq!(d.max_controls(), 0);
        let d = controlled_difference_gate(4, 3);
        assert_eq!(d.max_controls(), 3);
    }

    #[test]
    #[should_panic(expected = "free target")]
    fn too_many_controls_rejected() {
        let _ = controlled_difference_gate(3, 3);
    }
}
