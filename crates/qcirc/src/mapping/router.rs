//! SWAP-insertion routing: making a circuit respect a device coupling map.
//!
//! The paper's Fig. 2 example is exactly this transformation — the original
//! circuit `G` plus SWAP gates yields `G'` with the *same* unitary (the
//! router keeps the identity initial layout and restores the permutation at
//! the end), which is what the equivalence checker then verifies.

use std::fmt;

use crate::circuit::Circuit;
use crate::mapping::coupling::CouplingMap;

/// Options controlling the router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterOptions {
    /// Append SWAPs at the end so the net qubit permutation is the identity,
    /// making the routed circuit *strictly* equivalent to the input
    /// (default: `true`). When `false` the final layout is reported in
    /// [`RoutedCircuit::final_layout`] instead.
    pub restore_layout: bool,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            restore_layout: true,
        }
    }
}

/// The result of routing: the transformed circuit plus layout bookkeeping.
#[derive(Debug, Clone)]
pub struct RoutedCircuit {
    /// The routed circuit (only coupling-respecting 2-qubit gates).
    pub circuit: Circuit,
    /// `final_layout[logical] = physical` after the last gate. Identity when
    /// [`RouterOptions::restore_layout`] was set.
    pub final_layout: Vec<usize>,
    /// The number of SWAP gates inserted.
    pub swap_count: usize,
}

/// Error returned when a circuit cannot be routed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The device has fewer qubits than the circuit.
    DeviceTooSmall {
        /// Qubits the circuit needs.
        needed: usize,
        /// Qubits the device has.
        available: usize,
    },
    /// A gate acts on three or more qubits; decompose the circuit first.
    GateTooWide {
        /// Rendering of the offending gate.
        gate: String,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::DeviceTooSmall { needed, available } => write!(
                f,
                "device has {available} qubits but the circuit needs {needed}"
            ),
            RouteError::GateTooWide { gate } => write!(
                f,
                "gate '{gate}' acts on more than two qubits; run decomposition before routing"
            ),
        }
    }
}

impl std::error::Error for RouteError {}

/// Routes a circuit onto a device by inserting SWAP gates along shortest
/// paths (greedy nearest-neighbour router, in the spirit of \[6\]–\[10\]).
///
/// The initial layout is the identity (logical qubit `q` starts on physical
/// qubit `q`); the circuit is widened to the device size if needed. With
/// [`RouterOptions::restore_layout`] (the default), the routed circuit's
/// unitary equals the widened input's unitary exactly.
///
/// # Errors
///
/// Returns [`RouteError`] if the device is too small or the circuit contains
/// gates wider than two qubits (decompose first).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), qcirc::mapping::RouteError> {
/// use qcirc::mapping::{route, CouplingMap, RouterOptions};
/// use qcirc::Circuit;
///
/// let mut c = Circuit::new(3);
/// c.cx(0, 2); // not adjacent on a line — needs a SWAP
/// let routed = route(&c, &CouplingMap::linear(3), RouterOptions::default())?;
/// assert!(routed.swap_count > 0);
/// # Ok(())
/// # }
/// ```
pub fn route(
    circuit: &Circuit,
    device: &CouplingMap,
    options: RouterOptions,
) -> Result<RoutedCircuit, RouteError> {
    if device.n_qubits() < circuit.n_qubits() {
        return Err(RouteError::DeviceTooSmall {
            needed: circuit.n_qubits(),
            available: device.n_qubits(),
        });
    }
    let n = device.n_qubits();
    let mut out = Circuit::with_name(n, format!("{}_mapped", circuit.name()));
    // layout[logical] = physical; phys_to_log inverse.
    let mut layout: Vec<usize> = (0..n).collect();
    let mut phys_to_log: Vec<usize> = (0..n).collect();
    let mut swap_count = 0usize;

    let do_swap = |out: &mut Circuit,
                   layout: &mut [usize],
                   phys_to_log: &mut [usize],
                   pa: usize,
                   pb: usize| {
        out.swap(pa, pb);
        let (la, lb) = (phys_to_log[pa], phys_to_log[pb]);
        layout.swap(la, lb);
        phys_to_log.swap(pa, pb);
    };

    for gate in circuit.gates() {
        match gate.width() {
            1 => {
                out.push(gate.remap(|q| layout[q]));
            }
            2 => {
                let qs: Vec<usize> = gate.qubits().collect();
                let (mut pa, pb) = (layout[qs[0]], layout[qs[1]]);
                if !device.are_adjacent(pa, pb) {
                    // Walk qubit A along a shortest path until adjacent to B.
                    let path = device.shortest_path(pa, pb);
                    for hop in path.windows(2).take(path.len().saturating_sub(2)) {
                        do_swap(&mut out, &mut layout, &mut phys_to_log, hop[0], hop[1]);
                        swap_count += 1;
                        pa = hop[1];
                    }
                }
                debug_assert!(device.are_adjacent(pa, pb));
                out.push(gate.remap(|q| layout[q]));
            }
            _ => {
                return Err(RouteError::GateTooWide {
                    gate: gate.to_string(),
                })
            }
        }
    }

    if options.restore_layout {
        // Undo the net permutation by token routing on a spanning tree:
        // repeatedly pick a leaf position of the remaining tree, walk its
        // logical qubit home along tree edges, then retire the leaf. Fixed
        // positions are never disturbed again, so this terminates after at
        // most n·diameter swaps.
        let tree = spanning_tree(device);
        let mut remaining: Vec<bool> = vec![true; n];
        for _ in 0..n {
            let Some(leaf) = (0..n)
                .find(|&p| remaining[p] && tree[p].iter().filter(|&&q| remaining[q]).count() <= 1)
            else {
                break;
            };
            let start = layout[leaf];
            if start != leaf {
                let path =
                    tree_path(&tree, &remaining, start, leaf).expect("leaf reachable in tree");
                for hop in path.windows(2) {
                    do_swap(&mut out, &mut layout, &mut phys_to_log, hop[0], hop[1]);
                    swap_count += 1;
                }
            }
            remaining[leaf] = false;
        }
        debug_assert!(layout.iter().enumerate().all(|(l, p)| l == *p));
    }

    Ok(RoutedCircuit {
        circuit: out,
        final_layout: layout,
        swap_count,
    })
}

/// Builds a BFS spanning tree of the device as an adjacency list.
fn spanning_tree(device: &CouplingMap) -> Vec<Vec<usize>> {
    let n = device.n_qubits();
    let mut tree = vec![Vec::new(); n];
    let mut seen = vec![false; n];
    seen[0] = true;
    let mut queue = std::collections::VecDeque::from([0usize]);
    while let Some(u) = queue.pop_front() {
        for &v in device.neighbors(u) {
            if !seen[v] {
                seen[v] = true;
                tree[u].push(v);
                tree[v].push(u);
                queue.push_back(v);
            }
        }
    }
    tree
}

/// Unique path between two nodes inside the still-`remaining` part of a
/// tree, found by BFS.
fn tree_path(
    tree: &[Vec<usize>],
    remaining: &[bool],
    from: usize,
    to: usize,
) -> Option<Vec<usize>> {
    let n = tree.len();
    let mut prev: Vec<Option<usize>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[from] = true;
    let mut queue = std::collections::VecDeque::from([from]);
    while let Some(u) = queue.pop_front() {
        if u == to {
            let mut path = vec![to];
            let mut cur = to;
            while let Some(p) = prev[cur] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &v in &tree[u] {
            if !seen[v] && remaining[v] {
                seen[v] = true;
                prev[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    None
}

/// Checks that every multi-qubit gate of `circuit` acts on device-adjacent
/// qubits — the property routing establishes.
#[must_use]
pub fn respects_coupling(circuit: &Circuit, device: &CouplingMap) -> bool {
    if circuit.n_qubits() > device.n_qubits() {
        return false;
    }
    circuit.gates().iter().all(|g| match g.width() {
        1 => true,
        2 => {
            let qs: Vec<usize> = g.qubits().collect();
            device.are_adjacent(qs[0], qs[1])
        }
        _ => false,
    })
}

/// Convenience wrapper: route, asserting on gates the router cannot handle.
///
/// # Panics
///
/// Panics where [`route`] would return an error — for quick scripts and
/// benchmark harnesses where those conditions are bugs.
#[must_use]
pub fn route_or_panic(circuit: &Circuit, device: &CouplingMap) -> RoutedCircuit {
    match route(circuit, device, RouterOptions::default()) {
        Ok(r) => r,
        Err(e) => panic!("routing failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense;

    fn assert_strictly_equal(a: &Circuit, b: &Circuit) {
        assert!(
            dense::unitary(a).approx_eq(&dense::unitary(b)),
            "routing changed the unitary"
        );
    }

    #[test]
    fn adjacent_gates_untouched() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let r = route(&c, &CouplingMap::linear(3), RouterOptions::default()).unwrap();
        assert_eq!(r.swap_count, 0);
        assert_eq!(r.circuit.len(), c.len());
    }

    #[test]
    fn distant_cx_gets_swaps_and_stays_equivalent() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 3).t(3).cx(3, 0);
        let r = route(&c, &CouplingMap::linear(4), RouterOptions::default()).unwrap();
        assert!(r.swap_count > 0);
        assert!(respects_coupling(&r.circuit, &CouplingMap::linear(4)));
        assert_strictly_equal(&c, &r.circuit);
        assert_eq!(r.final_layout, vec![0, 1, 2, 3]);
    }

    #[test]
    fn without_restore_layout_reports_permutation() {
        let mut c = Circuit::new(3);
        c.cx(0, 2);
        let r = route(
            &c,
            &CouplingMap::linear(3),
            RouterOptions {
                restore_layout: false,
            },
        )
        .unwrap();
        assert!(respects_coupling(&r.circuit, &CouplingMap::linear(3)));
        // Layout is a permutation of 0..n.
        let mut sorted = r.final_layout.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn routing_widens_to_device() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let r = route(&c, &CouplingMap::grid(2, 2), RouterOptions::default()).unwrap();
        assert_eq!(r.circuit.n_qubits(), 4);
        assert_strictly_equal(&c.widened(4), &r.circuit);
    }

    #[test]
    fn bigger_random_circuit_routes_equivalently() {
        let c = crate::generators::random_clifford_t(5, 60, 13);
        let device = CouplingMap::ring(5);
        let r = route(&c, &device, RouterOptions::default()).unwrap();
        assert!(respects_coupling(&r.circuit, &device));
        assert_strictly_equal(&c, &r.circuit);
    }

    #[test]
    fn grid_routing_of_qft() {
        let c = crate::generators::qft(6, true);
        let device = CouplingMap::grid(2, 3);
        let r = route(&c, &device, RouterOptions::default()).unwrap();
        assert!(respects_coupling(&r.circuit, &device));
        assert_strictly_equal(&c, &r.circuit);
    }

    #[test]
    fn too_small_device_rejected() {
        let mut c = Circuit::new(5);
        c.h(0);
        let e = route(&c, &CouplingMap::linear(3), RouterOptions::default()).unwrap_err();
        assert!(matches!(e, RouteError::DeviceTooSmall { .. }));
        assert!(e.to_string().contains("3 qubits"));
    }

    #[test]
    fn wide_gate_rejected() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let e = route(&c, &CouplingMap::linear(3), RouterOptions::default()).unwrap_err();
        assert!(matches!(e, RouteError::GateTooWide { .. }));
    }

    #[test]
    fn respects_coupling_detects_violations() {
        let mut c = Circuit::new(3);
        c.cx(0, 2);
        assert!(!respects_coupling(&c, &CouplingMap::linear(3)));
        let mut ok = Circuit::new(3);
        ok.cx(0, 1);
        assert!(respects_coupling(&ok, &CouplingMap::linear(3)));
    }
}
