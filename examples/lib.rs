//! Runnable examples for the `qcec` workspace.
//!
//! Each binary in this package is a self-contained walkthrough of one usage
//! scenario (run with `cargo run -p qcec-examples --bin <name>`):
//!
//! * `quickstart` — check two small circuits in a dozen lines,
//! * `verify_mapping` — verify a full decompose→map→optimize design flow,
//! * `detect_bug` — hunt an injected design-flow bug with the flow and
//!   inspect the counterexample,
//! * `grover_flow` — verify Grover's algorithm across an ancilla-based
//!   decomposition, including on registers where the complete check starts
//!   to struggle.
