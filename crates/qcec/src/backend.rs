//! Simulation backends: the engines that execute one equivalence probe.
//!
//! Every consumer of the simulation stage — the sequential flow
//! ([`run_simulations`](crate::run_simulations)), the
//! [`scheduler`](crate::scheduler) worker pool, counterexample replay in
//! [`diagnose`](crate::diagnose), and the fault-injection
//! [`campaign`](crate::campaign) — drives probes through one trait,
//! [`SimBackend`], and is therefore engine-agnostic. Two implementations
//! ship:
//!
//! * [`StatevectorBackend`] — dense `O(2ⁿ)` simulation via
//!   [`qsim::Simulator`]; fast and predictable, and the default;
//! * [`qdd::DdBackend`] — decision-diagram simulation (the paper's engine
//!   \[25\]): each stimulus is pushed through both circuits as vector-edge
//!   passes, exponentially compact whenever the intermediate states stay
//!   structured (basis-permutation arithmetic, Clifford prefixes, …).
//!
//! # Contract
//!
//! A probe is a **pure function** of `(G, G′, stimulus)`: backends must not
//! let hidden state leak between runs. The statevector backend reuses raw
//! buffers (overwritten wholesale each run); the DD backend builds a fresh
//! hash-consing package per run precisely because interned edge weights
//! *would* otherwise depend on probe order. This purity is what lets the
//! scheduler replay pool results in stimulus order and reproduce the
//! sequential verdict bit for bit, for either engine.
//!
//! Cancellation granularity differs by engine and is part of the contract:
//! the statevector backend polls `keep_going` between gate applications,
//! while the DD backend polls once between its two circuit passes (a DD
//! pass has no cheap intermediate abort points). Either way a `false` poll
//! yields `None`, never a partial overlap.

use qcirc::Circuit;
use qnum::Complex;
use qsim::{ProbeWorkspace, Simulator};
use qstim::Stimulus;

use crate::config::{BackendKind, Config};

/// What one completed probe hands back: the overlap plus backend-specific
/// effort instrumentation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeOutcome {
    /// The overlap `⟨u|u′⟩` of the two output states.
    pub overlap: Complex,
    /// Effort counters (zero for backends that do not track them).
    pub metrics: ProbeMetrics,
}

impl ProbeOutcome {
    /// An outcome carrying only an overlap (no effort counters).
    #[must_use]
    pub fn bare(overlap: Complex) -> Self {
        ProbeOutcome {
            overlap,
            metrics: ProbeMetrics::default(),
        }
    }
}

/// Per-probe effort counters. The dense backend's working set is fixed
/// (two `2ⁿ` buffers), so it reports zeros; the DD backend reports its
/// node-count instrumentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProbeMetrics {
    /// Peak live decision-diagram nodes during the run (0 for dense
    /// backends).
    pub peak_nodes: usize,
    /// Distinct complex values interned by the end of the run (0 for dense
    /// backends).
    pub complex_values: usize,
}

/// One simulation engine, usable from the sequential flow and from worker
/// pools alike.
///
/// Implementations are shared by reference across scheduler workers, so
/// they must be `Send + Sync`; all per-run mutable state lives in the
/// per-thread [`Workspace`](SimBackend::Workspace).
pub trait SimBackend: Send + Sync {
    /// Per-thread scratch state: allocated once per worker (or once per
    /// sequential loop), reused across every probe on that thread.
    type Workspace: Send;

    /// The serializable selector naming this engine.
    fn kind(&self) -> BackendKind;

    /// Allocates one thread's scratch state for `n_qubits`-qubit probes.
    fn workspace(&self, n_qubits: usize) -> Self::Workspace;

    /// Probes one stimulus: prepares it, pushes it through both circuits,
    /// and returns the overlap `⟨u|u′⟩` of the outputs.
    ///
    /// # Errors
    ///
    /// Returns [`qdd::DdLimitError`] if the engine exhausts its node
    /// budget (dense backends never fail).
    fn probe(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimulus: &Stimulus,
        workspace: &mut Self::Workspace,
    ) -> Result<ProbeOutcome, qdd::DdLimitError> {
        Ok(self
            .probe_while(g, g_prime, stimulus, workspace, &|| true)?
            .expect("unconditional probe cannot be cancelled"))
    }

    /// Like [`SimBackend::probe`], but polls `keep_going` at the engine's
    /// natural abort points and returns `None` as soon as it reads
    /// `false` — the cancellable variant for worker pools whose remaining
    /// stimuli become moot once a counterexample is found elsewhere.
    ///
    /// # Errors
    ///
    /// Returns [`qdd::DdLimitError`] if the engine exhausts its node
    /// budget.
    fn probe_while(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimulus: &Stimulus,
        workspace: &mut Self::Workspace,
        keep_going: &dyn Fn() -> bool,
    ) -> Result<Option<ProbeOutcome>, qdd::DdLimitError>;

    /// Replays one stimulus through both circuits and returns the two
    /// *dense* output amplitude vectors, for counterexample diagnosis.
    /// Output is `O(2ⁿ)` regardless of engine, so this is for registers
    /// that fit in memory.
    ///
    /// # Errors
    ///
    /// Returns [`qdd::DdLimitError`] if the engine exhausts its node
    /// budget.
    fn replay(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimulus: &Stimulus,
        workspace: &mut Self::Workspace,
    ) -> Result<(Vec<Complex>, Vec<Complex>), qdd::DdLimitError>;
}

/// The dense statevector engine: wraps [`qsim::Simulator`] and a reusable
/// pair of state buffers per thread.
///
/// # Examples
///
/// ```
/// use qcec::backend::{SimBackend, StatevectorBackend};
/// use qcec::Stimulus;
///
/// let g = qcirc::generators::ghz(3);
/// let backend = StatevectorBackend::new();
/// let mut ws = backend.workspace(3);
/// let out = backend.probe(&g, &g, &Stimulus::Basis(5), &mut ws).unwrap();
/// assert!((out.overlap.norm_sqr() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StatevectorBackend {
    sim: Simulator,
}

impl StatevectorBackend {
    /// A backend running its kernels sequentially.
    #[must_use]
    pub fn new() -> Self {
        StatevectorBackend {
            sim: Simulator::new(),
        }
    }

    /// A backend splitting large kernels over `threads` OS threads — for
    /// the *sequential* flow, where the probe itself is the only
    /// parallelism available.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        StatevectorBackend {
            sim: Simulator::with_threads(threads),
        }
    }

    /// A backend for use *inside* scheduler workers: kernels stay
    /// sequential so an `N`-worker pool uses exactly `N` OS threads.
    #[must_use]
    pub fn for_worker() -> Self {
        StatevectorBackend {
            sim: Simulator::for_worker(),
        }
    }

    /// The backend the sequential flow derives from its configuration:
    /// kernel-parallel when `config.threads > 1` (the probe is then the
    /// only parallelism), sequential otherwise.
    #[must_use]
    pub fn for_flow(config: &Config) -> Self {
        if config.threads > 1 {
            StatevectorBackend::with_threads(config.threads)
        } else {
            StatevectorBackend::new()
        }
    }
}

impl SimBackend for StatevectorBackend {
    type Workspace = ProbeWorkspace;

    fn kind(&self) -> BackendKind {
        BackendKind::Statevector
    }

    fn workspace(&self, n_qubits: usize) -> ProbeWorkspace {
        ProbeWorkspace::new(n_qubits)
    }

    fn probe_while(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimulus: &Stimulus,
        workspace: &mut ProbeWorkspace,
        keep_going: &dyn Fn() -> bool,
    ) -> Result<Option<ProbeOutcome>, qdd::DdLimitError> {
        let prefix = stimulus.prefix_circuit();
        Ok(self
            .sim
            .probe_stimulus_while(
                g,
                g_prime,
                prefix.as_ref(),
                stimulus.basis_state(),
                workspace,
                keep_going,
            )
            .map(ProbeOutcome::bare))
    }

    fn replay(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimulus: &Stimulus,
        workspace: &mut ProbeWorkspace,
    ) -> Result<(Vec<Complex>, Vec<Complex>), qdd::DdLimitError> {
        // After a probe the workspace buffers hold exactly the two output
        // states.
        self.probe(g, g_prime, stimulus, workspace)?;
        Ok((
            workspace.left().amplitudes().to_vec(),
            workspace.right().amplitudes().to_vec(),
        ))
    }
}

/// The decision-diagram engine ([`qdd::DdBackend`]) seen through the flow's
/// probe trait.
///
/// Stateless per run — a fresh package is built for every probe (see the
/// module docs on purity), so its workspace carries nothing.
impl SimBackend for qdd::DdBackend {
    type Workspace = ();

    fn kind(&self) -> BackendKind {
        BackendKind::DecisionDiagram
    }

    fn workspace(&self, _n_qubits: usize) {}

    fn probe_while(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimulus: &Stimulus,
        (): &mut (),
        keep_going: &dyn Fn() -> bool,
    ) -> Result<Option<ProbeOutcome>, qdd::DdLimitError> {
        let prefix = stimulus.prefix_circuit();
        Ok(self
            .probe_while(
                g,
                g_prime,
                prefix.as_ref(),
                stimulus.basis_state(),
                keep_going,
            )?
            .map(|run| ProbeOutcome {
                overlap: run.overlap,
                metrics: ProbeMetrics {
                    peak_nodes: run.peak_nodes,
                    complex_values: run.complex_values,
                },
            }))
    }

    fn replay(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        stimulus: &Stimulus,
        (): &mut (),
    ) -> Result<(Vec<Complex>, Vec<Complex>), qdd::DdLimitError> {
        let mut package = qdd::Package::with_node_limit(g.n_qubits(), self.node_limit());
        let input = {
            let b = package.basis_vedge(stimulus.basis_state())?;
            match stimulus.prefix_circuit() {
                None => b,
                Some(prefix) => package.apply_to_vedge(&prefix, b)?,
            }
        };
        let a = package.apply_to_vedge(g, input)?;
        let b = package.apply_to_vedge(g_prime, input)?;
        Ok((package.to_statevector(a), package.to_statevector(b)))
    }
}

/// The DD engine the flow derives from its configuration (honouring
/// [`Config::dd_node_limit`](crate::Config::dd_node_limit)).
#[must_use]
pub fn dd_for_flow(config: &Config) -> qdd::DdBackend {
    qdd::DdBackend::with_node_limit(config.dd_node_limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::generators;

    fn probe_on<B: SimBackend>(
        backend: &B,
        g: &Circuit,
        g_prime: &Circuit,
        s: &Stimulus,
    ) -> Complex {
        let mut ws = backend.workspace(g.n_qubits());
        backend.probe(g, g_prime, s, &mut ws).unwrap().overlap
    }

    #[test]
    fn backends_agree_on_basis_probes() {
        let g = generators::grover(4, 6, 2);
        let mut buggy = g.clone();
        buggy.z(2);
        let sv = StatevectorBackend::new();
        let dd = qdd::DdBackend::new();
        for basis in [0u64, 3, 9, 15] {
            let s = Stimulus::Basis(basis);
            let a = probe_on(&sv, &g, &buggy, &s);
            let b = probe_on(&dd, &g, &buggy, &s);
            assert!((a - b).norm_sqr() < 1e-18, "basis {basis}: {a} vs {b}");
        }
    }

    #[test]
    fn backends_agree_on_prefixed_stimuli() {
        let g = generators::qft(4, true);
        let mut buggy = g.clone();
        buggy.t(1);
        let config = Config::default()
            .with_stimuli(crate::StimulusStrategy::Stabilizer)
            .with_simulations(4)
            .with_seed(13);
        let sv = StatevectorBackend::new();
        let dd = qdd::DdBackend::new();
        for s in crate::draw_stimuli(4, &config) {
            let a = probe_on(&sv, &g, &buggy, &s);
            let b = probe_on(&dd, &g, &buggy, &s);
            assert!((a - b).norm_sqr() < 1e-18, "{}: {a} vs {b}", s.kind());
        }
    }

    #[test]
    fn dd_metrics_are_populated_and_sv_metrics_are_zero() {
        let g = generators::ghz(6);
        let s = Stimulus::Basis(0);
        let sv = StatevectorBackend::new();
        let mut ws = sv.workspace(6);
        let out = sv.probe(&g, &g, &s, &mut ws).unwrap();
        assert_eq!(out.metrics, ProbeMetrics::default());
        let dd = qdd::DdBackend::new();
        let out = SimBackend::probe(&dd, &g, &g, &s, &mut ()).unwrap();
        assert!(out.metrics.peak_nodes > 0);
        assert!(out.metrics.complex_values > 0);
    }

    #[test]
    fn replay_returns_matching_dense_outputs() {
        let g = generators::w_state(3);
        let mut buggy = g.clone();
        buggy.x(1);
        let s = Stimulus::Basis(0);
        let sv = StatevectorBackend::new();
        let dd = qdd::DdBackend::new();
        let (a_sv, b_sv) = sv.replay(&g, &buggy, &s, &mut sv.workspace(3)).unwrap();
        let (a_dd, b_dd) = dd.replay(&g, &buggy, &s, &mut ()).unwrap();
        assert_eq!(a_sv.len(), 8);
        for (x, y) in a_sv.iter().zip(&a_dd) {
            assert!((*x - *y).norm_sqr() < 1e-18);
        }
        for (x, y) in b_sv.iter().zip(&b_dd) {
            assert!((*x - *y).norm_sqr() < 1e-18);
        }
    }

    #[test]
    fn cancelled_probe_is_none_on_both_backends() {
        let g = generators::qft(5, true);
        let s = Stimulus::Basis(7);
        let never = || false;
        let sv = StatevectorBackend::new();
        let out = sv
            .probe_while(&g, &g, &s, &mut sv.workspace(5), &never)
            .unwrap();
        assert!(out.is_none());
        let dd = qdd::DdBackend::new();
        let out = SimBackend::probe_while(&dd, &g, &g, &s, &mut (), &never).unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn dd_node_budget_errors_surface_through_the_trait() {
        let g = generators::supremacy_2d(3, 4, 12, 1);
        let dd = dd_for_flow(&Config::default().with_dd_node_limit(50));
        let e = SimBackend::probe(&dd, &g, &g, &Stimulus::Basis(0), &mut ()).unwrap_err();
        assert_eq!(e.node_limit, 50);
    }
}
