//! Parser for the RevLib `.real` reversible-circuit format.
//!
//! The paper's benchmark set (\[27\]) consists of RevLib functions
//! (`urf4_187`, `hwb9_119`, `5xp1_194`, …) given as Toffoli-gate networks in
//! the `.real` format. This module parses the common subset of that format:
//!
//! * header lines `.version`, `.numvars`, `.variables`, `.inputs`,
//!   `.outputs`, `.constants`, `.garbage` (the latter five are accepted and
//!   recorded but do not affect the unitary),
//! * the gate list between `.begin` and `.end` with gate types
//!   `t<k>` (multi-controlled Toffoli, `t1` = NOT), `f<k>` (multi-controlled
//!   Fredkin/SWAP), `p` (Peres), `p'`/`pi` (inverse Peres), `v` / `v+`
//!   (controlled √X / √X†),
//! * negative control lines (`-var`), handled by conjugating with X gates.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), qcirc::real::ParseRealError> {
//! let src = "\
//! .version 1.0
//! .numvars 3
//! .variables a b c
//! .begin
//! t3 a b c
//! t1 a
//! .end";
//! let c = qcirc::real::parse(src)?;
//! assert_eq!(c.n_qubits(), 3);
//! assert_eq!(c.len(), 2);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind};

/// Error produced when parsing `.real` source fails.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseRealError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
}

impl fmt::Display for ParseRealError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            ".real parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseRealError {}

/// Parses RevLib `.real` source text into a [`Circuit`].
///
/// Negative controls (spelled `-var`) are lowered to positive controls
/// conjugated with X gates, so the returned circuit only contains the
/// workspace gate model.
///
/// # Errors
///
/// Returns [`ParseRealError`] on malformed headers, unknown gate types,
/// references to undeclared variables, or a missing `.numvars`.
pub fn parse(source: &str) -> Result<Circuit, ParseRealError> {
    let mut numvars: Option<usize> = None;
    let mut variables: HashMap<String, usize> = HashMap::new();
    let mut gates: Vec<Gate> = Vec::new();
    let mut in_body = false;
    let mut ended = false;

    for (line_no, raw) in source.lines().enumerate() {
        let line_no = line_no + 1;
        let err = |message: String| ParseRealError {
            message,
            line: line_no,
        };
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() || ended {
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            let mut parts = rest.split_whitespace();
            let key = parts.next().unwrap_or("");
            match key {
                "version" => {}
                "numvars" => {
                    let v: usize = parts
                        .next()
                        .ok_or_else(|| err(".numvars needs a value".into()))?
                        .parse()
                        .map_err(|_| err("invalid .numvars value".into()))?;
                    if v == 0 {
                        return Err(err(".numvars must be positive".into()));
                    }
                    numvars = Some(v);
                }
                "variables" => {
                    for (i, name) in parts.enumerate() {
                        variables.insert(name.to_string(), i);
                    }
                }
                // Metadata headers that do not affect the unitary.
                "inputs" | "outputs" | "constants" | "garbage" | "inputbus" | "outputbus"
                | "state" | "module" | "define" => {}
                "begin" => in_body = true,
                "end" => {
                    in_body = false;
                    ended = true;
                }
                other => return Err(err(format!("unknown header '.{other}'"))),
            }
            continue;
        }
        if !in_body {
            return Err(err(format!("gate line '{line}' outside .begin/.end")));
        }
        let n = numvars.ok_or_else(|| err(".numvars must precede the gate list".into()))?;
        if variables.is_empty() {
            // RevLib defaults variable names to x0..x{n-1} when omitted.
            for i in 0..n {
                variables.insert(format!("x{i}"), i);
            }
        }

        let mut parts = line.split_whitespace();
        let gate_ty = parts.next().expect("non-empty line");
        let mut pos_qubits: Vec<usize> = Vec::new();
        let mut negated: Vec<usize> = Vec::new();
        for token in parts {
            let (neg, name) = match token.strip_prefix('-') {
                Some(stripped) => (true, stripped),
                None => (false, token),
            };
            let &q = variables
                .get(name)
                .ok_or_else(|| err(format!("unknown variable '{name}'")))?;
            if q >= n {
                return Err(err(format!("variable '{name}' exceeds .numvars {n}")));
            }
            if neg {
                negated.push(q);
            }
            pos_qubits.push(q);
        }
        let lowered = lower_gate(gate_ty, &pos_qubits, &negated).map_err(err)?;
        gates.extend(lowered);
    }

    let n = numvars.ok_or(ParseRealError {
        message: "missing .numvars header".into(),
        line: 0,
    })?;
    let mut circuit = Circuit::new(n);
    for g in gates {
        circuit.try_push(g).map_err(|e| ParseRealError {
            message: e.to_string(),
            line: 0,
        })?;
    }
    Ok(circuit)
}

/// Lowers one `.real` gate line to workspace gates, wrapping X conjugation
/// around negative controls.
fn lower_gate(gate_ty: &str, qubits: &[usize], negated: &[usize]) -> Result<Vec<Gate>, String> {
    let core: Vec<Gate> = match gate_ty {
        t if t.starts_with('t') => {
            let k: usize = t[1..]
                .parse()
                .map_err(|_| format!("invalid Toffoli arity in '{t}'"))?;
            if qubits.len() != k {
                return Err(format!("'{t}' expects {k} lines, got {}", qubits.len()));
            }
            let (controls, target) = qubits.split_at(k - 1);
            if negated.contains(&target[0]) {
                return Err("the Toffoli target line cannot be negated".into());
            }
            if controls.is_empty() {
                vec![Gate::single(GateKind::X, target[0])]
            } else {
                vec![Gate::controlled(GateKind::X, controls.to_vec(), target[0])]
            }
        }
        f if f.starts_with('f') => {
            let k: usize = f[1..]
                .parse()
                .map_err(|_| format!("invalid Fredkin arity in '{f}'"))?;
            if qubits.len() != k || k < 2 {
                return Err(format!("'{f}' expects {k} ≥ 2 lines, got {}", qubits.len()));
            }
            let (controls, targets) = qubits.split_at(k - 2);
            if negated.contains(&targets[0]) || negated.contains(&targets[1]) {
                return Err("Fredkin target lines cannot be negated".into());
            }
            if controls.is_empty() {
                vec![Gate::swap(targets[0], targets[1])]
            } else {
                vec![Gate::controlled_swap(
                    controls.to_vec(),
                    targets[0],
                    targets[1],
                )]
            }
        }
        "p" | "p'" | "pi" => {
            // Peres(a, b, c) = CCX(a,b,c) · CX(a,b); inverse in reverse.
            if qubits.len() != 3 {
                return Err(format!("Peres expects 3 lines, got {}", qubits.len()));
            }
            if !negated.is_empty() {
                return Err("negative controls on Peres gates are not supported".into());
            }
            let (a, b, c) = (qubits[0], qubits[1], qubits[2]);
            let ccx = Gate::controlled(GateKind::X, vec![a, b], c);
            let cx = Gate::controlled(GateKind::X, vec![a], b);
            if gate_ty == "p" {
                vec![ccx, cx]
            } else {
                vec![cx, ccx]
            }
        }
        "v" | "v+" => {
            // Controlled √X (or its inverse) — last line is the target.
            if qubits.len() < 2 {
                return Err(format!("'{gate_ty}' expects at least 2 lines"));
            }
            let (controls, target) = qubits.split_at(qubits.len() - 1);
            if negated.contains(&target[0]) {
                return Err("the V target line cannot be negated".into());
            }
            let kind = if gate_ty == "v" {
                GateKind::Sx
            } else {
                GateKind::Sxdg
            };
            vec![Gate::controlled(kind, controls.to_vec(), target[0])]
        }
        other => return Err(format!("unknown gate type '{other}'")),
    };
    if negated.is_empty() {
        return Ok(core);
    }
    // Conjugate with X on each negated control line.
    let mut out: Vec<Gate> = negated
        .iter()
        .map(|&q| Gate::single(GateKind::X, q))
        .collect();
    out.extend(core);
    out.extend(negated.iter().map(|&q| Gate::single(GateKind::X, q)));
    Ok(out)
}

/// Serializes a reversible circuit in RevLib `.real` format.
///
/// Supported gates: (multi-controlled) X → `t<k>`, (controlled) SWAP →
/// `f<k>`, and controlled √X / √X† → `v` / `v+`.
///
/// # Errors
///
/// Returns [`WriteRealError`] if the circuit contains a gate the format
/// cannot express (rotations, Hadamards, …) — `.real` describes classical
/// reversible netlists.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), qcirc::real::WriteRealError> {
/// let mut c = qcirc::Circuit::new(3);
/// c.x(0).cx(0, 1).ccx(0, 1, 2);
/// let text = qcirc::real::write(&c)?;
/// let back = qcirc::real::parse(&text).expect("round-trip");
/// assert_eq!(back.len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn write(circuit: &Circuit) -> Result<String, WriteRealError> {
    use std::fmt::Write as _;
    let n = circuit.n_qubits();
    let var = |q: usize| format!("x{q}");
    let mut out = String::new();
    out.push_str("# generated by qcirc\n.version 1.0\n");
    let _ = writeln!(out, ".numvars {n}");
    let names: Vec<String> = (0..n).map(var).collect();
    let _ = writeln!(out, ".variables {}", names.join(" "));
    out.push_str(".begin\n");
    for gate in circuit.gates() {
        let controls: Vec<String> = gate.controls().iter().map(|&q| var(q)).collect();
        let line = match gate.kind() {
            GateKind::X => {
                let k = controls.len() + 1;
                format!("t{k} {} {}", controls.join(" "), var(gate.target()))
            }
            GateKind::Swap => {
                let k = controls.len() + 2;
                format!(
                    "f{k} {} {} {}",
                    controls.join(" "),
                    var(gate.targets()[0]),
                    var(gate.targets()[1])
                )
            }
            GateKind::Sx if !controls.is_empty() => {
                format!("v {} {}", controls.join(" "), var(gate.target()))
            }
            GateKind::Sxdg if !controls.is_empty() => {
                format!("v+ {} {}", controls.join(" "), var(gate.target()))
            }
            _ => {
                return Err(WriteRealError {
                    gate: gate.to_string(),
                })
            }
        };
        // Collapse double spaces from empty control lists.
        let _ = writeln!(
            out,
            "{}",
            line.split_whitespace().collect::<Vec<_>>().join(" ")
        );
    }
    out.push_str(".end\n");
    Ok(out)
}

/// Error returned by [`write()`] for gates outside the `.real` gate set.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteRealError {
    /// Rendering of the unsupported gate.
    pub gate: String,
}

impl fmt::Display for WriteRealError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gate '{}' has no .real representation (the format covers Toffoli/Fredkin/V netlists)",
            self.gate
        )
    }
}

impl std::error::Error for WriteRealError {}

/// Reads and parses a RevLib `.real` file.
///
/// # Errors
///
/// Returns an I/O error if the file cannot be read, or a boxed
/// [`ParseRealError`] if the contents do not parse.
pub fn parse_file(
    path: impl AsRef<std::path::Path>,
) -> Result<Circuit, Box<dyn std::error::Error + Send + Sync>> {
    let source = std::fs::read_to_string(path.as_ref())?;
    Ok(parse(&source)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_toffoli_network() {
        let src = "\
.version 1.0
.numvars 3
.variables a b c
.constants ---
.garbage ---
.begin
t1 c
t2 a c
t3 a b c
.end";
        let c = parse(src).unwrap();
        assert_eq!(c.n_qubits(), 3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.gates()[0].to_string(), "x q[2]");
        assert_eq!(c.gates()[1].to_string(), "cx q[0], q[2]");
        assert_eq!(c.gates()[2].to_string(), "ccx q[0], q[1], q[2]");
    }

    #[test]
    fn default_variable_names() {
        let src = ".numvars 2\n.begin\nt2 x0 x1\n.end";
        let c = parse(src).unwrap();
        assert_eq!(c.gates()[0].to_string(), "cx q[0], q[1]");
    }

    #[test]
    fn fredkin_and_peres() {
        let src = "\
.numvars 3
.variables a b c
.begin
f3 a b c
p a b c
p' a b c
.end";
        let c = parse(src).unwrap();
        assert_eq!(c.gates()[0].to_string(), "cswap q[0], q[1], q[2]");
        // Peres expands to two gates, inverse Peres to two more.
        assert_eq!(c.len(), 5);
        assert_eq!(c.gates()[1].to_string(), "ccx q[0], q[1], q[2]");
        assert_eq!(c.gates()[2].to_string(), "cx q[0], q[1]");
        assert_eq!(c.gates()[3].to_string(), "cx q[0], q[1]");
        assert_eq!(c.gates()[4].to_string(), "ccx q[0], q[1], q[2]");
    }

    #[test]
    fn v_gates() {
        let src = ".numvars 2\n.variables a b\n.begin\nv a b\nv+ a b\n.end";
        let c = parse(src).unwrap();
        assert_eq!(c.gates()[0].to_string(), "csx q[0], q[1]");
        assert_eq!(c.gates()[1].to_string(), "csxdg q[0], q[1]");
    }

    #[test]
    fn negative_controls_are_conjugated() {
        let src = ".numvars 2\n.variables a b\n.begin\nt2 -a b\n.end";
        let c = parse(src).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.gates()[0].to_string(), "x q[0]");
        assert_eq!(c.gates()[1].to_string(), "cx q[0], q[1]");
        assert_eq!(c.gates()[2].to_string(), "x q[0]");
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let src = "# a comment\n.numvars 1\n\n.begin\nt1 x0 # inline\n.end\n";
        let c = parse(src).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let e = parse(".numvars 2\n.begin\nq9 x0\n.end").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("unknown gate type"));
        let e = parse(".numvars 1\n.begin\nt1 zz\n.end").unwrap_err();
        assert!(e.to_string().contains("unknown variable"));
        let e = parse(".begin\nt1 x0\n.end").unwrap_err();
        assert!(e.to_string().contains(".numvars"));
        let e = parse("t1 x0").unwrap_err();
        assert!(e.to_string().contains("outside"));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let e = parse(".numvars 3\n.begin\nt3 x0 x1\n.end").unwrap_err();
        assert!(e.to_string().contains("expects 3"));
    }

    #[test]
    fn writer_roundtrips_toffoli_networks() {
        let c = crate::generators::toffoli_network(6, 40, 4, 5);
        let text = write(&c).unwrap();
        let back = parse(&text).unwrap();
        assert_eq!(back.n_qubits(), c.n_qubits());
        assert_eq!(back.len(), c.len());
        for (a, b) in c.gates().iter().zip(back.gates()) {
            assert!(a.approx_eq(b), "{a} vs {b}");
        }
    }

    #[test]
    fn writer_covers_fredkin_and_v() {
        let mut c = Circuit::new(3);
        c.swap(0, 1).cswap(2, 0, 1);
        c.push(Gate::controlled(GateKind::Sx, vec![0], 2));
        c.push(Gate::controlled(GateKind::Sxdg, vec![1], 2));
        let text = write(&c).unwrap();
        assert!(text.contains("f2 x0 x1"));
        assert!(text.contains("f3 x2 x0 x1"));
        assert!(text.contains("v x0 x2"));
        assert!(text.contains("v+ x1 x2"));
        let back = parse(&text).unwrap();
        assert_eq!(back.len(), c.len());
    }

    #[test]
    fn writer_rejects_non_reversible_gates() {
        let mut c = Circuit::new(1);
        c.h(0);
        let e = write(&c).unwrap_err();
        assert!(e.to_string().contains("no .real representation"));
    }
}
