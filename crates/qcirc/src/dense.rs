//! Reference semantics: building a circuit's full dense unitary.
//!
//! This is the `O(4ⁿ)`-memory construction the paper's flow exists to avoid —
//! but it is the ground truth everything else is tested against, and it
//! reproduces the matrices of Fig. 1c/1d directly.

use qnum::{Complex, MatrixN};

use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind};

/// Builds the full `2ⁿ × 2ⁿ` system matrix `U = U_{m−1} ⋯ U₀` of a circuit.
///
/// Intended for reference checks and tiny circuits; cost is
/// `O(m · 4ⁿ)` time and `O(4ⁿ)` memory.
///
/// # Panics
///
/// Panics if the circuit has more than 12 qubits (a deliberately tight cap —
/// use `qsim` or `qdd` beyond that).
///
/// # Examples
///
/// ```
/// use qcirc::{dense, Circuit};
/// use qnum::MatrixN;
///
/// let mut c = Circuit::new(1);
/// c.h(0).h(0);
/// assert!(dense::unitary(&c).approx_eq(&MatrixN::identity(1)));
/// ```
#[must_use]
pub fn unitary(circuit: &Circuit) -> MatrixN {
    assert!(
        circuit.n_qubits() <= 12,
        "dense unitaries limited to 12 qubits; use the simulator instead"
    );
    let mut u = MatrixN::identity(circuit.n_qubits());
    for gate in circuit.gates() {
        apply_gate_to_matrix(&mut u, gate);
    }
    u
}

/// Left-multiplies the matrix by the gate's full-register unitary, i.e.
/// applies the gate to every column (each column is the image of one basis
/// state).
fn apply_gate_to_matrix(u: &mut MatrixN, gate: &Gate) {
    let dim = u.dim();
    let control_mask: usize = gate.controls().iter().map(|&q| 1usize << q).sum();
    match gate.kind() {
        GateKind::Swap => {
            let (a, b) = (gate.targets()[0], gate.targets()[1]);
            let (ba, bb) = (1usize << a, 1usize << b);
            for col in 0..dim {
                for row in 0..dim {
                    if row & control_mask != control_mask {
                        continue;
                    }
                    let bit_a = row & ba != 0;
                    let bit_b = row & bb != 0;
                    // Swap only when bits differ and we are the lower partner.
                    if bit_a && !bit_b {
                        let partner = row ^ ba ^ bb;
                        let tmp = u.entry(row, col);
                        u.set(row, col, u.entry(partner, col));
                        u.set(partner, col, tmp);
                    }
                }
            }
        }
        kind => {
            let m = kind.base_matrix().expect("single-target kind");
            let t = gate.target();
            let bt = 1usize << t;
            for col in 0..dim {
                for row in 0..dim {
                    // Visit each (row, row^bt) pair once, from the 0 side.
                    if row & bt != 0 {
                        continue;
                    }
                    if row & control_mask != control_mask {
                        continue;
                    }
                    let hi = row | bt;
                    let a0 = u.entry(row, col);
                    let a1 = u.entry(hi, col);
                    u.set(row, col, m.entry(0, 0) * a0 + m.entry(0, 1) * a1);
                    u.set(hi, col, m.entry(1, 0) * a0 + m.entry(1, 1) * a1);
                }
            }
        }
    }
}

/// Builds the state obtained by simulating the circuit on basis state `|i⟩` —
/// i.e. the `i`-th column of the unitary — by dense matrix-vector products.
///
/// # Panics
///
/// Panics if `basis >= 2ⁿ`.
#[must_use]
pub fn column(circuit: &Circuit, basis: usize) -> Vec<Complex> {
    let dim = 1usize << circuit.n_qubits();
    assert!(basis < dim, "basis state out of range");
    // Reuse the matrix kernel on a 1-column "matrix" stored as a vector.
    let mut amps = vec![Complex::ZERO; dim];
    amps[basis] = Complex::ONE;
    for gate in circuit.gates() {
        apply_gate_to_vec(&mut amps, gate);
    }
    amps
}

fn apply_gate_to_vec(amps: &mut [Complex], gate: &Gate) {
    let dim = amps.len();
    let control_mask: usize = gate.controls().iter().map(|&q| 1usize << q).sum();
    match gate.kind() {
        GateKind::Swap => {
            let (a, b) = (gate.targets()[0], gate.targets()[1]);
            let (ba, bb) = (1usize << a, 1usize << b);
            for row in 0..dim {
                if row & control_mask != control_mask {
                    continue;
                }
                if row & ba != 0 && row & bb == 0 {
                    amps.swap(row, row ^ ba ^ bb);
                }
            }
        }
        kind => {
            let m = kind.base_matrix().expect("single-target kind");
            let bt = 1usize << gate.target();
            for row in 0..dim {
                if row & bt != 0 || row & control_mask != control_mask {
                    continue;
                }
                let hi = row | bt;
                let a0 = amps[row];
                let a1 = amps[hi];
                amps[row] = m.entry(0, 0) * a0 + m.entry(0, 1) * a1;
                amps[hi] = m.entry(1, 0) * a0 + m.entry(1, 1) * a1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnum::{Matrix2, Matrix4};

    #[test]
    fn single_gates_match_their_matrices() {
        let mut c = Circuit::new(1);
        c.h(0);
        assert!(unitary(&c).approx_eq(&MatrixN::from_matrix2(&Matrix2::hadamard())));
    }

    #[test]
    fn cx_matches_matrix4() {
        // Gate convention: control = qubit 1 (high bit), target = qubit 0.
        let mut c = Circuit::new(2);
        c.cx(1, 0);
        assert!(unitary(&c).approx_eq(&MatrixN::from_matrix4(&Matrix4::cx())));
    }

    #[test]
    fn swap_matches_matrix4() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        assert!(unitary(&c).approx_eq(&MatrixN::from_matrix4(&Matrix4::swap())));
    }

    #[test]
    fn gate_order_is_right_to_left_in_matrix_product() {
        // Circuit [H q0, X q0] has matrix X·H (H applied first).
        let mut c = Circuit::new(1);
        c.h(0).x(0);
        let expect = MatrixN::from_matrix2(&Matrix2::pauli_x().mul(&Matrix2::hadamard()));
        assert!(unitary(&c).approx_eq(&expect));
    }

    #[test]
    fn circuit_inverse_gives_adjoint() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(2).ccx(0, 1, 2).swap(0, 2).rz(0.37, 1);
        let u = unitary(&c);
        let ui = unitary(&c.inverse());
        assert!(u.mul(&ui).approx_eq(&MatrixN::identity(3)));
    }

    #[test]
    fn every_circuit_unitary_is_unitary() {
        let c = crate::generators::random_clifford_t(4, 60, 5);
        assert!(unitary(&c).is_unitary());
    }

    #[test]
    fn column_matches_unitary_columns() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ccx(0, 1, 2).swap(1, 2);
        let u = unitary(&c);
        for basis in 0..8 {
            let col = column(&c, basis);
            let expect = u.column(basis);
            for (a, b) in col.iter().zip(expect.iter()) {
                assert!(a.approx_eq(*b));
            }
        }
    }

    #[test]
    fn controlled_swap_controls_respected() {
        let mut c = Circuit::new(3);
        c.cswap(0, 1, 2);
        let u = unitary(&c);
        // With control (qubit 0) equal to 0 the matrix acts as identity.
        for basis in [0b000usize, 0b010, 0b100, 0b110] {
            let col = u.column(basis);
            for (i, amp) in col.iter().enumerate() {
                let expect = if i == basis { 1.0 } else { 0.0 };
                assert!(amp.approx_eq(qnum::Complex::real(expect)));
            }
        }
        // With control 1: |011⟩ ↔ |101⟩.
        let col = u.column(0b011);
        assert!(col[0b101].approx_eq(qnum::Complex::ONE));
    }

    #[test]
    fn ghz_column_is_uniform_pair() {
        let c = crate::generators::ghz(3);
        let col = column(&c, 0);
        let h = qnum::FRAC_1_SQRT_2;
        assert!(col[0].approx_eq(qnum::Complex::real(h)));
        assert!(col[7].approx_eq(qnum::Complex::real(h)));
        for amp in &col[1..7] {
            assert!(amp.approx_zero());
        }
    }
}
