//! Running `qcirc` circuits on the stabilizer tableau.

use std::fmt;

use qcirc::{Circuit, Gate, GateKind};
use qnum::angle;

use crate::tableau::Tableau;

/// Error raised when a circuit contains a non-Clifford operation.
#[derive(Debug, Clone, PartialEq)]
pub struct NotCliffordError {
    /// Rendering of the offending gate.
    pub gate: String,
}

impl fmt::Display for NotCliffordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gate '{}' is not a Clifford operation (stabilizer simulation covers H, S, S†, √X, √X†, Paulis, CX, CZ, SWAP, and rotations at multiples of π/2)",
            self.gate
        )
    }
}

impl std::error::Error for NotCliffordError {}

/// Returns `true` if every gate of the circuit is Clifford (i.e. the
/// circuit is stabilizer-simulable).
#[must_use]
pub fn is_clifford(circuit: &Circuit) -> bool {
    circuit.gates().iter().all(|g| classify(g).is_some())
}

/// Applies one gate to a tableau.
///
/// # Errors
///
/// Returns [`NotCliffordError`] for non-Clifford gates.
///
/// # Panics
///
/// Panics if the gate does not fit the tableau's register.
pub fn apply_gate(tableau: &mut Tableau, gate: &Gate) -> Result<(), NotCliffordError> {
    let op = classify(gate).ok_or_else(|| NotCliffordError {
        gate: gate.to_string(),
    })?;
    match op {
        CliffordOp::I => {}
        CliffordOp::X(q) => tableau.x_gate(q),
        CliffordOp::Y(q) => tableau.y_gate(q),
        CliffordOp::Z(q) => tableau.z_gate(q),
        CliffordOp::H(q) => tableau.h(q),
        CliffordOp::S(q) => tableau.s(q),
        CliffordOp::Sdg(q) => tableau.sdg(q),
        CliffordOp::Sx(q) => tableau.sx(q),
        CliffordOp::Sxdg(q) => tableau.sxdg(q),
        CliffordOp::SyPlus(q) => tableau.sy(q),
        CliffordOp::SyMinus(q) => tableau.sydg(q),
        CliffordOp::Cx(c, t) => tableau.cx(c, t),
        CliffordOp::Cz(a, b) => tableau.cz(a, b),
        CliffordOp::Swap(a, b) => tableau.swap(a, b),
    }
    Ok(())
}

/// Simulates a circuit on basis state `|basis⟩`.
///
/// # Errors
///
/// Returns [`NotCliffordError`] if a non-Clifford gate is encountered.
///
/// # Panics
///
/// Panics if `basis` is out of range.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), qstab::NotCliffordError> {
/// let ghz = qcirc::generators::ghz(3);
/// let t = qstab::run(&ghz, 0)?;
/// assert_eq!(t.measure_probability_of_one(2), Some(0.5));
/// # Ok(())
/// # }
/// ```
pub fn run(circuit: &Circuit, basis: u64) -> Result<Tableau, NotCliffordError> {
    let mut tableau = Tableau::basis(circuit.n_qubits(), basis);
    for gate in circuit.gates() {
        apply_gate(&mut tableau, gate)?;
    }
    Ok(tableau)
}

/// The Clifford operations the tableau implements directly.
enum CliffordOp {
    I,
    X(usize),
    Y(usize),
    Z(usize),
    H(usize),
    S(usize),
    Sdg(usize),
    Sx(usize),
    Sxdg(usize),
    SyPlus(usize),
    SyMinus(usize),
    Cx(usize, usize),
    Cz(usize, usize),
    Swap(usize, usize),
}

/// Classifies a gate as Clifford, folding π/2-multiple rotations onto the
/// discrete gates (up to global phase — stabilizer states carry none).
fn classify(gate: &Gate) -> Option<CliffordOp> {
    let controls = gate.controls();
    match (gate.kind(), controls.len()) {
        (GateKind::Swap, 0) => Some(CliffordOp::Swap(gate.targets()[0], gate.targets()[1])),
        (GateKind::Swap, _) => None,
        (kind, 0) => {
            let t = gate.target();
            match *kind {
                GateKind::I => Some(CliffordOp::I),
                GateKind::X => Some(CliffordOp::X(t)),
                GateKind::Y => Some(CliffordOp::Y(t)),
                GateKind::Z => Some(CliffordOp::Z(t)),
                GateKind::H => Some(CliffordOp::H(t)),
                GateKind::S => Some(CliffordOp::S(t)),
                GateKind::Sdg => Some(CliffordOp::Sdg(t)),
                GateKind::Sx => Some(CliffordOp::Sx(t)),
                GateKind::Sxdg => Some(CliffordOp::Sxdg(t)),
                GateKind::Rz(theta) | GateKind::Phase(theta) => match quarter_turns(theta)? {
                    0 => Some(CliffordOp::I),
                    1 => Some(CliffordOp::S(t)),
                    2 => Some(CliffordOp::Z(t)),
                    _ => Some(CliffordOp::Sdg(t)),
                },
                GateKind::Rx(theta) => match quarter_turns(theta)? {
                    0 => Some(CliffordOp::I),
                    1 => Some(CliffordOp::Sx(t)),
                    2 => Some(CliffordOp::X(t)),
                    _ => Some(CliffordOp::Sxdg(t)),
                },
                GateKind::Ry(theta) => match quarter_turns(theta)? {
                    0 => Some(CliffordOp::I),
                    // Ry(π/2) = S·√X·S† · (phase)… avoid the algebra: √Y.
                    1 => Some(CliffordOp::SyPlus(t)),
                    2 => Some(CliffordOp::Y(t)),
                    _ => Some(CliffordOp::SyMinus(t)),
                },
                GateKind::Sy => Some(CliffordOp::SyPlus(t)),
                GateKind::Sydg => Some(CliffordOp::SyMinus(t)),
                _ => None,
            }
        }
        (GateKind::X, 1) => Some(CliffordOp::Cx(controls[0], gate.target())),
        (GateKind::Z, 1) => Some(CliffordOp::Cz(controls[0], gate.target())),
        (GateKind::Phase(theta), 1) => {
            // CP(π) = CZ is the only Clifford controlled phase (besides I).
            match quarter_turns(*theta)? {
                0 => Some(CliffordOp::I),
                2 => Some(CliffordOp::Cz(controls[0], gate.target())),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Maps `theta` to its multiple of π/2 in `0..4`, or `None` if it is not a
/// quarter turn (within the workspace tolerance).
fn quarter_turns(theta: f64) -> Option<u8> {
    let normalized = angle::normalize(theta);
    let quarters = normalized / std::f64::consts::FRAC_PI_2;
    let rounded = quarters.round();
    if (quarters - rounded).abs() < 1e-9 {
        Some((rounded as i64).rem_euclid(4) as u8)
    } else {
        None
    }
}
