//! The cancellation token shared by the simulation worker pool and the
//! racing functional checker.
//!
//! Cancellation is *cooperative* and deliberately asymmetric, because the
//! two sides of the portfolio stop for different reasons:
//!
//! * The functional (DD) racer stops the moment **any** simulation proves
//!   non-equivalence — its verdict can no longer come first.
//! * Simulation workers stop claiming (and abandon in-flight runs) for
//!   stimulus **indices above the lowest failing index** only. Runs below
//!   it always complete, which is what makes the reported counterexample
//!   deterministic: the judge later replays the overlaps in stimulus
//!   order, so the winner is always the *earliest* failing stimulus of
//!   the pre-drawn list, never whichever worker happened to finish first.
//! * A definitive functional verdict halts the whole simulation pool
//!   (`halt_simulations`) — every remaining run is moot.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Why in-flight work was cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelCause {
    /// A simulation run proved non-equivalence; remaining simulations and
    /// the functional racer were stopped.
    SimulationCounterexample,
    /// The racing functional check reached a definitive verdict first;
    /// the simulation pool was stopped.
    FunctionalVerdict,
}

impl std::fmt::Display for CancelCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelCause::SimulationCounterexample => write!(f, "simulation counterexample"),
            CancelCause::FunctionalVerdict => write!(f, "functional verdict"),
        }
    }
}

/// Shared cancellation state for one scheduled run.
///
/// All operations are lock-free; workers poll the token between gate
/// applications, so a cancellation propagates within one gate's worth of
/// work.
#[derive(Debug, Default)]
pub struct CancelToken {
    /// Raised when the functional racer should stop.
    functional_cancel: AtomicBool,
    /// Raised when the simulation pool should stop entirely.
    sim_halt: AtomicBool,
    /// Lowest stimulus index observed to fail so far (`usize::MAX` =
    /// none). Workers abandon indices strictly above this watermark.
    lowest_failure: AtomicUsize,
}

impl CancelToken {
    /// A fresh token with nothing cancelled.
    #[must_use]
    pub fn new() -> Self {
        CancelToken {
            functional_cancel: AtomicBool::new(false),
            sim_halt: AtomicBool::new(false),
            lowest_failure: AtomicUsize::new(usize::MAX),
        }
    }

    /// Records that the simulation at stimulus `index` proved
    /// non-equivalence: lowers the failure watermark and stops the
    /// functional racer.
    pub fn record_sim_failure(&self, index: usize) {
        self.lowest_failure.fetch_min(index, Ordering::Relaxed);
        self.functional_cancel.store(true, Ordering::Relaxed);
    }

    /// Stops the whole simulation pool (a definitive functional verdict
    /// makes the remaining runs moot).
    pub fn halt_simulations(&self) {
        self.sim_halt.store(true, Ordering::Relaxed);
    }

    /// Stops the functional racer (orchestrator shutdown or a simulation
    /// counterexample).
    pub fn cancel_functional(&self) {
        self.functional_cancel.store(true, Ordering::Relaxed);
    }

    /// The lowest failing stimulus index recorded so far.
    #[must_use]
    pub fn lowest_failure(&self) -> Option<usize> {
        match self.lowest_failure.load(Ordering::Relaxed) {
            usize::MAX => None,
            index => Some(index),
        }
    }

    /// Returns `true` if the simulation at `index` is no longer worth
    /// running or finishing: the pool is halted, or a failure at a lower
    /// (or equal) index already decides the verdict.
    ///
    /// Indices *below* every recorded failure are never superseded, which
    /// is the invariant behind deterministic counterexamples.
    #[must_use]
    pub fn superseded(&self, index: usize) -> bool {
        self.sim_halt.load(Ordering::Relaxed) || index > self.lowest_failure.load(Ordering::Relaxed)
    }

    /// Returns `true` if the simulation pool was halted wholesale.
    #[must_use]
    pub fn simulations_halted(&self) -> bool {
        self.sim_halt.load(Ordering::Relaxed)
    }

    /// Returns `true` if the functional racer was told to stop.
    #[must_use]
    pub fn functional_cancelled(&self) -> bool {
        self.functional_cancel.load(Ordering::Relaxed)
    }

    /// The raw flag handed to `qdd`'s cancellable check routines.
    pub(crate) fn functional_flag(&self) -> &AtomicBool {
        &self.functional_cancel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_cancels_nothing() {
        let token = CancelToken::new();
        assert!(!token.superseded(0));
        assert!(!token.superseded(usize::MAX - 1));
        assert!(!token.simulations_halted());
        assert!(!token.functional_cancelled());
        assert_eq!(token.lowest_failure(), None);
    }

    #[test]
    fn failure_watermark_supersedes_higher_indices_only() {
        let token = CancelToken::new();
        token.record_sim_failure(5);
        assert_eq!(token.lowest_failure(), Some(5));
        assert!(!token.superseded(3), "runs below the watermark must finish");
        assert!(!token.superseded(5), "the failing run itself must finish");
        assert!(token.superseded(6));
        assert!(
            token.functional_cancelled(),
            "a counterexample is definitive"
        );
        // A later, lower failure lowers the watermark.
        token.record_sim_failure(2);
        assert_eq!(token.lowest_failure(), Some(2));
        assert!(token.superseded(5));
        assert!(!token.superseded(1));
        // A later, higher failure does not raise it back.
        token.record_sim_failure(4);
        assert_eq!(token.lowest_failure(), Some(2));
    }

    #[test]
    fn halting_supersedes_everything() {
        let token = CancelToken::new();
        token.halt_simulations();
        assert!(token.superseded(0));
        assert!(token.simulations_halted());
        assert!(!token.functional_cancelled());
    }
}
