//! Properties of the `qstim` stimulus sources — the contracts the
//! scheduler's determinism guarantees are built on.

use proptest::prelude::*;
use qcec::Config;
use qstim::{ProductSource, StabilizerSource, Stimulus, StimulusSource};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every stabilizer stimulus is a valid Clifford prefix whose tableau
    /// round-trips: simulating the prefix on the tableau, re-synthesizing a
    /// circuit from the canonical stabilizers, and simulating *that* lands
    /// on the same stabilizer state.
    #[test]
    fn stabilizer_prefixes_roundtrip_their_tableau(
        n in 1usize..7,
        seed in any::<u64>(),
        index in 0usize..16,
    ) {
        let s = StabilizerSource::sample(n, seed, index);
        let prefix = s.prefix_circuit().expect("stabilizer stimuli carry a prefix");
        prop_assert_eq!(prefix.n_qubits(), n);
        prop_assert!(qstab::is_clifford(&prefix));

        let tableau = qstab::run(&prefix, 0).expect("prefix is Clifford");
        let resynth = qstab::synthesize_state(&tableau.canonical_stabilizers());
        let tableau2 = qstab::run(&resynth, 0).expect("synthesis is Clifford");
        prop_assert!(
            tableau.same_state(&tableau2),
            "re-synthesized circuit prepares a different stabilizer state"
        );
    }

    /// Product stimuli are pure per index: stimulus `i` of any draw equals
    /// the direct sample and never depends on `count` or earlier draws.
    #[test]
    fn product_draws_are_per_index_pure(
        n in 1usize..8,
        seed in any::<u64>(),
        count in 1usize..12,
    ) {
        let full = ProductSource.draw(n, seed, count);
        prop_assert_eq!(full.len(), count);
        for (i, s) in full.iter().enumerate() {
            prop_assert_eq!(s, &ProductSource::sample(n, seed, i));
            let Stimulus::Product(angles) = s else {
                panic!("product source drew {s}");
            };
            prop_assert_eq!(angles.len(), n);
        }
        // A longer draw is an extension, not a reshuffle.
        let longer = ProductSource.draw(n, seed, count + 3);
        prop_assert_eq!(&longer[..count], &full[..]);
    }

    /// Same per-index purity for stabilizer stimuli.
    #[test]
    fn stabilizer_draws_are_per_index_pure(
        n in 1usize..6,
        seed in any::<u64>(),
        count in 1usize..8,
    ) {
        let full = StabilizerSource.draw(n, seed, count);
        let longer = StabilizerSource.draw(n, seed, count + 2);
        prop_assert_eq!(&longer[..count], &full[..]);
        for (i, s) in full.iter().enumerate() {
            prop_assert_eq!(s, &StabilizerSource::sample(n, seed, i));
        }
    }

    /// `draw_stimuli` under the default (basis) strategy is a pure function
    /// of `(n_qubits, seed, simulations)`.
    #[test]
    fn basis_draws_are_pure(n in 1usize..20, seed in any::<u64>(), r in 1usize..12) {
        let config = Config::new().with_seed(seed).with_simulations(r);
        prop_assert_eq!(
            qcec::draw_stimuli(n, &config),
            qcec::draw_stimuli(n, &config)
        );
    }
}

/// The basis strategy reproduces the pre-`qstim` `draw_stimuli` RNG stream
/// bit for bit — golden values captured from the tree before the stimulus
/// sources were extracted. Seeds recorded in reports and the escapee corpus
/// stay replayable.
#[test]
fn basis_strategy_matches_pre_qstim_golden_draws() {
    let golden: [(usize, u64, usize, &[u64]); 4] = [
        (
            20,
            42,
            10,
            &[
                419999, 997265, 322956, 538040, 289395, 56957, 669014, 576326, 380103, 303316,
            ],
        ),
        (6, 0, 10, &[31, 7, 60, 26, 42, 46, 25, 63, 22, 40]),
        // 2³ ≤ r ⇒ full enumeration, seed irrelevant.
        (3, 7, 10, &[0, 1, 2, 3, 4, 5, 6, 7]),
        (
            12,
            123,
            8,
            &[2170, 1582, 2175, 3067, 2624, 1577, 3448, 2266],
        ),
    ];
    for (n, seed, r, expected) in golden {
        let config = Config::new().with_seed(seed).with_simulations(r);
        let drawn: Vec<u64> = qcec::draw_stimuli(n, &config)
            .into_iter()
            .map(|s| match s {
                Stimulus::Basis(b) => b,
                other => panic!("basis strategy drew {other}"),
            })
            .collect();
        assert_eq!(drawn, expected, "n={n} seed={seed} r={r}");
    }
}
