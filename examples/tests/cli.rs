//! End-to-end tests of the `check_qasm` command-line tool: spawn the real
//! binary, feed it files, check output and exit codes.

use std::io::Write as _;
use std::process::Command;

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("qcec_cli_tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create temp file");
    f.write_all(contents.as_bytes()).expect("write temp file");
    path
}

fn check_qasm(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_check_qasm"))
        .args(args)
        .output()
        .expect("run check_qasm")
}

const GHZ: &str =
    "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\nh q[0];\ncx q[0], q[1];\ncx q[1], q[2];\n";
const GHZ_MAPPED: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\nh q[0];\ncx q[0], q[1];\nswap q[1], q[2];\ncx q[2], q[1];\nswap q[1], q[2];\n";
const GHZ_BUGGY: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\nh q[0];\ncx q[0], q[1];\ncx q[0], q[2];\nz q[2];\n";

#[test]
fn equivalent_files_exit_zero() {
    let a = write_temp("eq_a.qasm", GHZ);
    let b = write_temp("eq_b.qasm", GHZ_MAPPED);
    let out = check_qasm(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("equivalent"), "{text}");
}

#[test]
fn non_equivalent_files_exit_one() {
    let a = write_temp("ne_a.qasm", GHZ);
    let b = write_temp("ne_b.qasm", GHZ_BUGGY);
    let out = check_qasm(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("not equivalent"), "{text}");
}

#[test]
fn sim_only_exits_two_on_agreement() {
    let a = write_temp("so_a.qasm", GHZ);
    let b = write_temp("so_b.qasm", GHZ_MAPPED);
    let out = check_qasm(&["--sim-only", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stdout).contains("probably equivalent"));
}

#[test]
fn csv_output_has_a_header_row() {
    let a = write_temp("csv_a.qasm", GHZ);
    let b = write_temp("csv_b.qasm", GHZ_MAPPED);
    let out = check_qasm(&["--csv", a.to_str().unwrap(), b.to_str().unwrap()]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("name,n,"), "{text}");
}

#[test]
fn measurements_are_stripped_with_a_note() {
    let measured = format!("{GHZ}creg c[3];\nmeasure q -> c;\n");
    let a = write_temp("m_a.qasm", GHZ);
    let b = write_temp("m_b.qasm", &measured);
    let out = check_qasm(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("stripped 3"));
}

#[test]
fn real_format_is_accepted() {
    let real = ".numvars 3\n.variables a b c\n.begin\nt1 a\nt2 a b\nt3 a b c\n.end\n";
    let qasm_equiv = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\nx q[0];\ncx q[0], q[1];\nccx q[0], q[1], q[2];\n";
    let a = write_temp("r_a.real", real);
    let b = write_temp("r_b.qasm", qasm_equiv);
    let out = check_qasm(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn usage_errors_exit_sixty_four() {
    let out = check_qasm(&["only_one.qasm"]);
    assert_eq!(out.status.code(), Some(64));
    let out = check_qasm(&["--bogus-flag", "a.qasm", "b.qasm"]);
    assert_eq!(out.status.code(), Some(64));
    let out = check_qasm(&["/nonexistent/a.qasm", "/nonexistent/b.qasm"]);
    assert_eq!(out.status.code(), Some(64));
}

#[test]
fn mismatched_registers_are_widened() {
    let small = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0], q[1];\n";
    let wide = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\nh q[0];\ncx q[0], q[1];\n";
    let a = write_temp("w_a.qasm", small);
    let b = write_temp("w_b.qasm", wide);
    let out = check_qasm(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
}
