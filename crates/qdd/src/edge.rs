//! Edges and nodes of the decision diagrams.

use crate::complex_table::Cx;

/// Index of a node in the package arena; [`NodeId::TERMINAL`] is the shared
/// terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The terminal node (no successors; the single sink of every DD).
    pub const TERMINAL: NodeId = NodeId(u32::MAX);

    /// Returns `true` if this is the terminal node.
    #[inline]
    #[must_use]
    pub fn is_terminal(self) -> bool {
        self == NodeId::TERMINAL
    }
}

/// A weighted edge into a *matrix* DD node.
///
/// The matrix represented by an edge is `weight ·` (the node's matrix).
/// Canonicity: after normalization and unique-table lookup, two edges
/// represent the same matrix iff they are `==`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MEdge {
    /// Target node.
    pub node: NodeId,
    /// Interned weight.
    pub weight: Cx,
}

impl MEdge {
    /// The zero matrix (terminal with weight 0) — valid at any level.
    pub const ZERO: MEdge = MEdge {
        node: NodeId::TERMINAL,
        weight: Cx::ZERO,
    };

    /// A terminal edge with the given weight (a 1×1 "matrix", i.e. a scalar).
    #[inline]
    #[must_use]
    pub fn terminal(weight: Cx) -> Self {
        MEdge {
            node: NodeId::TERMINAL,
            weight,
        }
    }

    /// Returns `true` if this edge denotes the zero matrix.
    #[inline]
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.weight == Cx::ZERO
    }
}

/// A weighted edge into a *vector* DD node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VEdge {
    /// Target node.
    pub node: NodeId,
    /// Interned weight.
    pub weight: Cx,
}

impl VEdge {
    /// The zero vector.
    pub const ZERO: VEdge = VEdge {
        node: NodeId::TERMINAL,
        weight: Cx::ZERO,
    };

    /// A terminal edge with the given weight (a scalar amplitude).
    #[inline]
    #[must_use]
    pub fn terminal(weight: Cx) -> Self {
        VEdge {
            node: NodeId::TERMINAL,
            weight,
        }
    }

    /// Returns `true` if this edge denotes the zero vector.
    #[inline]
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.weight == Cx::ZERO
    }
}

/// A matrix DD node: variable level and the four sub-block edges in
/// row-major order `[e00, e01, e10, e11]` (block `e_rc` is rows with qubit
/// bit `r`, columns with qubit bit `c`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MNode {
    /// The qubit level this node decides (qubit 0 is the bottom level).
    pub var: u16,
    /// Sub-block edges `[e00, e01, e10, e11]`.
    pub children: [MEdge; 4],
}

/// A vector DD node: variable level and the two sub-vector edges
/// `[e0, e1]` (qubit bit 0 / 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VNode {
    /// The qubit level this node decides.
    pub var: u16,
    /// Sub-vector edges `[e0, e1]`.
    pub children: [VEdge; 2],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_identification() {
        assert!(NodeId::TERMINAL.is_terminal());
        assert!(!NodeId(0).is_terminal());
    }

    #[test]
    fn zero_edges() {
        assert!(MEdge::ZERO.is_zero());
        assert!(VEdge::ZERO.is_zero());
        assert!(!MEdge::terminal(Cx::ONE).is_zero());
        assert_eq!(MEdge::terminal(Cx::ZERO), MEdge::ZERO);
    }
}
