//! Canonical byte encoding of circuits for content addressing.
//!
//! The service layer in `qcec` keys its verdict cache by a fingerprint of
//! the circuit *semantics-as-written*: the exact gate list, with just enough
//! normalization that trivially-equal spellings of the same gate collapse to
//! one representative. This module produces that canonical byte stream; the
//! hashing itself lives upstream so the encoding stays reusable.
//!
//! The encoding normalizes exactly three things:
//!
//! - **Rotation angles** are reduced modulo their exact gate period —
//!   4π for `Rx`/`Ry`/`Rz` and the θ of `U3` (whose matrices have period
//!   4π), 2π for `Phase` and the φ/λ of `U3` (whose matrices have period
//!   2π). Angles congruent modulo the period denote the *same unitary*, so
//!   they must encode identically; angles differing by 2π on an `Rz` denote
//!   unitaries differing by a global phase of −1 and must *not* collapse,
//!   which is why the θ-type period is 4π and not 2π.
//! - **Control lists** are sorted: controls are a set, not a sequence.
//! - **SWAP targets** are sorted: `swap a,b` equals `swap b,a`.
//!
//! Everything else — gate order, qubit labels, the qubit count — is
//! preserved verbatim: the fingerprint deliberately distinguishes circuits
//! that are merely *equivalent* (that distinction is the whole equivalence
//! checker's job, not the cache key's).
//!
//! The circuit [`name`](crate::Circuit::name) is metadata and is excluded.
//!
//! # Examples
//!
//! ```
//! use qcirc::{canon, Circuit};
//! use std::f64::consts::PI;
//!
//! let mut a = Circuit::new(2);
//! a.rz(0.25, 0).cx(0, 1);
//! let mut b = Circuit::new(2);
//! b.rz(0.25 + 4.0 * PI, 0).cx(0, 1);
//! assert_eq!(canon::encode_circuit(&a), canon::encode_circuit(&b));
//!
//! let mut c = Circuit::new(2);
//! c.rz(0.25 + 2.0 * PI, 0).cx(0, 1); // global phase −1: distinct
//! assert_ne!(canon::encode_circuit(&a), canon::encode_circuit(&c));
//! ```

use std::f64::consts::PI;

use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind};

const TWO_PI: f64 = 2.0 * PI;
const FOUR_PI: f64 = 4.0 * PI;

/// Stable one-byte opcode for a [`GateKind`], independent of parameter
/// values. The numbering follows the declaration order of the enum and is
/// part of the fingerprint format: renumbering invalidates every persisted
/// cache entry, so append new kinds instead of reordering.
#[must_use]
pub fn opcode(kind: &GateKind) -> u8 {
    match kind {
        GateKind::I => 0,
        GateKind::X => 1,
        GateKind::Y => 2,
        GateKind::Z => 3,
        GateKind::H => 4,
        GateKind::S => 5,
        GateKind::Sdg => 6,
        GateKind::T => 7,
        GateKind::Tdg => 8,
        GateKind::Sx => 9,
        GateKind::Sxdg => 10,
        GateKind::Sy => 11,
        GateKind::Sydg => 12,
        GateKind::Rx(_) => 13,
        GateKind::Ry(_) => 14,
        GateKind::Rz(_) => 15,
        GateKind::Phase(_) => 16,
        GateKind::U3(..) => 17,
        GateKind::Swap => 18,
    }
}

/// Canonical representative of a θ-type angle (period 4π), in `(-2π, 2π]`.
#[must_use]
pub fn canonical_theta(theta: f64) -> f64 {
    let mut t = theta % FOUR_PI;
    if t <= -TWO_PI {
        t += FOUR_PI;
    } else if t > TWO_PI {
        t -= FOUR_PI;
    }
    scrub_zero(t)
}

/// Canonical representative of a phase-type angle (period 2π), in `(-π, π]`.
#[must_use]
pub fn canonical_phase(lambda: f64) -> f64 {
    scrub_zero(qnum::angle::normalize(lambda))
}

/// Collapses `-0.0` onto `+0.0` so the two IEEE zeros (bit-distinct, value
/// equal) encode identically.
fn scrub_zero(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else {
        x
    }
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_angle(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Appends the canonical encoding of one gate to `out`.
///
/// Layout: opcode byte, canonicalized parameters (f64 bit patterns, count
/// fixed by the opcode), control count + sorted controls, then the targets
/// (sorted for SWAP, whose operands commute).
pub fn encode_gate_into(gate: &Gate, out: &mut Vec<u8>) {
    out.push(opcode(gate.kind()));
    match *gate.kind() {
        GateKind::Rx(t) | GateKind::Ry(t) | GateKind::Rz(t) => {
            push_angle(out, canonical_theta(t));
        }
        GateKind::Phase(l) => push_angle(out, canonical_phase(l)),
        GateKind::U3(t, p, l) => {
            push_angle(out, canonical_theta(t));
            push_angle(out, canonical_phase(p));
            push_angle(out, canonical_phase(l));
        }
        _ => {}
    }
    let mut controls: Vec<usize> = gate.controls().to_vec();
    controls.sort_unstable();
    push_u64(out, controls.len() as u64);
    for c in controls {
        push_u64(out, c as u64);
    }
    let mut targets: Vec<usize> = gate.targets().to_vec();
    if matches!(gate.kind(), GateKind::Swap) {
        targets.sort_unstable();
    }
    for t in targets {
        push_u64(out, t as u64);
    }
}

/// The canonical byte encoding of a whole circuit: a qubit-count and
/// gate-count header followed by each gate's encoding in circuit order.
#[must_use]
pub fn encode_circuit(circuit: &Circuit) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + circuit.gates().len() * 32);
    push_u64(&mut out, circuit.n_qubits() as u64);
    push_u64(&mut out, circuit.gates().len() as u64);
    for gate in circuit.gates() {
        encode_gate_into(gate, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcodes_are_distinct() {
        let kinds = [
            GateKind::I,
            GateKind::X,
            GateKind::Y,
            GateKind::Z,
            GateKind::H,
            GateKind::S,
            GateKind::Sdg,
            GateKind::T,
            GateKind::Tdg,
            GateKind::Sx,
            GateKind::Sxdg,
            GateKind::Sy,
            GateKind::Sydg,
            GateKind::Rx(0.0),
            GateKind::Ry(0.0),
            GateKind::Rz(0.0),
            GateKind::Phase(0.0),
            GateKind::U3(0.0, 0.0, 0.0),
            GateKind::Swap,
        ];
        let mut codes: Vec<u8> = kinds.iter().map(opcode).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), kinds.len());
    }

    #[test]
    fn theta_period_is_four_pi() {
        let a = canonical_theta(0.7);
        assert!((canonical_theta(0.7 + FOUR_PI) - a).abs() < 1e-12);
        assert!((canonical_theta(0.7 - FOUR_PI) - a).abs() < 1e-12);
        // 2π apart ⇒ global phase −1 ⇒ must stay distinct.
        assert!((canonical_theta(0.7 + TWO_PI) - a).abs() > 1.0);
    }

    #[test]
    fn phase_period_is_two_pi() {
        let a = canonical_phase(0.7);
        assert!((canonical_phase(0.7 + TWO_PI) - a).abs() < 1e-12);
        assert!((canonical_phase(0.7 - TWO_PI) - a).abs() < 1e-12);
    }

    #[test]
    fn negative_zero_collapses() {
        assert_eq!(
            canonical_theta(-0.0).to_bits(),
            canonical_theta(0.0).to_bits()
        );
        assert_eq!(
            canonical_phase(-0.0).to_bits(),
            canonical_phase(0.0).to_bits()
        );
    }

    #[test]
    fn control_order_is_irrelevant() {
        let a = Gate::controlled(GateKind::X, vec![0, 2], 3);
        let b = Gate::controlled(GateKind::X, vec![2, 0], 3);
        let mut ea = Vec::new();
        let mut eb = Vec::new();
        encode_gate_into(&a, &mut ea);
        encode_gate_into(&b, &mut eb);
        assert_eq!(ea, eb);
    }

    #[test]
    fn swap_targets_commute_but_cx_operands_do_not() {
        let mut a = Circuit::new(3);
        a.swap(0, 2);
        let mut b = Circuit::new(3);
        b.swap(2, 0);
        assert_eq!(encode_circuit(&a), encode_circuit(&b));

        let mut c = Circuit::new(3);
        c.cx(0, 2);
        let mut d = Circuit::new(3);
        d.cx(2, 0);
        assert_ne!(encode_circuit(&c), encode_circuit(&d));
    }

    #[test]
    fn name_is_excluded_and_width_included() {
        let a = Circuit::with_name(2, "alpha");
        let b = Circuit::with_name(2, "beta");
        assert_eq!(encode_circuit(&a), encode_circuit(&b));
        assert_ne!(
            encode_circuit(&Circuit::new(2)),
            encode_circuit(&Circuit::new(3))
        );
    }
}
