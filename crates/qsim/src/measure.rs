//! Measurement: probabilities, sampling, and state collapse.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::Rng;

use crate::state::StateVector;

/// The probability of measuring qubit `q` as `1`.
///
/// # Panics
///
/// Panics if `q` is out of range.
#[must_use]
pub fn probability_of_one(state: &StateVector, q: usize) -> f64 {
    assert!(q < state.n_qubits(), "qubit index out of range");
    let bit = 1usize << q;
    state
        .amplitudes()
        .iter()
        .enumerate()
        .filter(|(i, _)| i & bit != 0)
        .map(|(_, a)| a.norm_sqr())
        .sum()
}

/// The expectation value `⟨Z_q⟩ = P(0) − P(1)` of qubit `q`.
///
/// # Panics
///
/// Panics if `q` is out of range.
#[must_use]
pub fn expectation_z(state: &StateVector, q: usize) -> f64 {
    1.0 - 2.0 * probability_of_one(state, q)
}

/// Samples one full-register measurement outcome (all qubits) without
/// collapsing the state.
#[must_use]
pub fn sample_once(state: &StateVector, rng: &mut StdRng) -> u64 {
    let r: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, a) in state.amplitudes().iter().enumerate() {
        acc += a.norm_sqr();
        if r < acc {
            return i as u64;
        }
    }
    // Rounding can leave acc at 1−ε; attribute the sliver to the last
    // nonzero amplitude.
    (state.dim() - 1) as u64
}

/// Samples `shots` measurement outcomes, returning outcome → count.
#[must_use]
pub fn sample_counts(state: &StateVector, shots: usize, rng: &mut StdRng) -> HashMap<u64, usize> {
    let mut counts = HashMap::new();
    for _ in 0..shots {
        *counts.entry(sample_once(state, rng)).or_insert(0) += 1;
    }
    counts
}

/// Measures qubit `q`, collapsing the state and returning the observed bit.
///
/// # Panics
///
/// Panics if `q` is out of range.
pub fn measure_qubit(state: &mut StateVector, q: usize, rng: &mut StdRng) -> bool {
    let p1 = probability_of_one(state, q);
    let outcome = rng.gen::<f64>() < p1;
    collapse_qubit(state, q, outcome);
    outcome
}

/// Projects qubit `q` onto `outcome` and renormalizes.
///
/// # Panics
///
/// Panics if `q` is out of range or the projected state has zero norm (the
/// outcome was impossible).
pub fn collapse_qubit(state: &mut StateVector, q: usize, outcome: bool) {
    assert!(q < state.n_qubits(), "qubit index out of range");
    let bit = 1usize << q;
    for (i, a) in state.amplitudes_mut().iter_mut().enumerate() {
        if (i & bit != 0) != outcome {
            *a = qnum::Complex::ZERO;
        }
    }
    let norm = state.norm_sqr();
    assert!(
        norm > 1e-12,
        "collapse onto an impossible outcome (probability 0)"
    );
    state.renormalize();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use qcirc::generators;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn basis_state_probabilities() {
        let s = StateVector::basis(3, 0b101);
        assert_eq!(probability_of_one(&s, 0), 1.0);
        assert_eq!(probability_of_one(&s, 1), 0.0);
        assert_eq!(probability_of_one(&s, 2), 1.0);
        assert_eq!(expectation_z(&s, 1), 1.0);
        assert_eq!(expectation_z(&s, 0), -1.0);
    }

    #[test]
    fn ghz_samples_only_extremes() {
        let out = Simulator::new().run_basis(&generators::ghz(3), 0);
        let counts = sample_counts(&out, 500, &mut rng(1));
        assert!(counts.keys().all(|&k| k == 0 || k == 0b111));
        let zeros = counts.get(&0).copied().unwrap_or(0);
        assert!(
            zeros > 150 && zeros < 350,
            "suspicious balance: {zeros}/500"
        );
    }

    #[test]
    fn sampling_matches_distribution_roughly() {
        let out = Simulator::new().run_basis(&generators::qft(3, true), 0);
        // QFT|0⟩ is the uniform superposition: every outcome ~1/8.
        let counts = sample_counts(&out, 4000, &mut rng(2));
        for i in 0..8 {
            let c = counts.get(&i).copied().unwrap_or(0);
            assert!(c > 350 && c < 650, "outcome {i}: {c}/4000");
        }
    }

    #[test]
    fn measurement_collapses_entanglement() {
        let mut state = Simulator::new().run_basis(&generators::bell(), 0);
        let bit = measure_qubit(&mut state, 0, &mut rng(3));
        // After measuring qubit 0 of a Bell pair, qubit 1 is determined.
        let expected = if bit { 0b11u64 } else { 0b00 };
        assert!(state.probability(expected) > 1.0 - 1e-9);
    }

    #[test]
    fn collapse_renormalizes() {
        let mut state = Simulator::new().run_basis(&generators::ghz(3), 0);
        collapse_qubit(&mut state, 1, true);
        assert!(state.is_normalized());
        assert!(state.probability(0b111) > 1.0 - 1e-9);
    }

    #[test]
    #[should_panic(expected = "impossible outcome")]
    fn impossible_collapse_panics() {
        let mut state = StateVector::basis(2, 0);
        collapse_qubit(&mut state, 0, true);
    }
}
