//! Scheduler benchmarks: the sequential flow against 2/4/8-worker pools
//! (and the DD-racing portfolio) on an equivalent and a non-equivalent
//! pair. Parallel speed-up on the simulation stage, cancellation payoff on
//! the counterexample case.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcec::{Config, Fallback};
use qcirc::generators;

/// A pair big enough (14 qubits) that one simulation costs real work and
/// the pool has something to parallelise.
fn equivalent_pair() -> (qcirc::Circuit, qcirc::Circuit) {
    let g = generators::qft(14, true);
    let optimized = qcirc::optimize::optimize(&g);
    (g, optimized)
}

fn non_equivalent_pair() -> (qcirc::Circuit, qcirc::Circuit) {
    let (g, optimized) = equivalent_pair();
    let mut buggy = optimized;
    // A controlled error: only 1/8 of the columns differ, so several
    // stimuli typically run before the counterexample — the case where
    // cancellation of in-flight work matters.
    buggy.ccx(0, 1, 9);
    (g, buggy)
}

fn bench_worker_sweep(c: &mut Criterion) {
    let (g, g_prime) = equivalent_pair();
    let mut group = c.benchmark_group("scheduler_equivalent_sims");
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                // Simulation stage only: the DD fallback would dominate
                // and is identical across worker counts.
                let config = Config::new()
                    .with_simulations(32)
                    .with_threads(threads)
                    .with_fallback(Fallback::None);
                b.iter(|| qcec::check_equivalence(&g, &g_prime, &config).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_counterexample_sweep(c: &mut Criterion) {
    let (g, buggy) = non_equivalent_pair();
    let mut group = c.benchmark_group("scheduler_counterexample");
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let config = Config::new()
                    .with_simulations(32)
                    .with_seed(5)
                    .with_threads(threads)
                    .with_fallback(Fallback::None);
                b.iter(|| {
                    let result = qcec::check_equivalence(&g, &buggy, &config).unwrap();
                    assert!(result.outcome.is_not_equivalent());
                });
            },
        );
    }
    group.finish();
}

fn bench_portfolio(c: &mut Criterion) {
    let (g, g_prime) = equivalent_pair();
    let mut group = c.benchmark_group("scheduler_portfolio_equivalent");
    group.bench_function("sequential_then_fallback", |b| {
        let config = Config::new().with_simulations(10);
        b.iter(|| qcec::check_equivalence(&g, &g_prime, &config).unwrap());
    });
    group.bench_function("portfolio_4_workers", |b| {
        let config = Config::new()
            .with_simulations(10)
            .with_threads(4)
            .with_portfolio(true);
        b.iter(|| qcec::check_equivalence(&g, &g_prime, &config).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_worker_sweep,
    bench_counterexample_sweep,
    bench_portfolio
);
criterion_main!(benches);
