//! Application-scheme benchmarks of the alternating complete check.
//!
//! Every scheme decides the same question — interleave gates of `G` and
//! `G'⁻¹` so the working diagram `U'† · U` stays close to the identity —
//! but with different information: `sequential` ignores `G'` entirely,
//! `onetoone` balances raw gate counts, `proportional` balances gate-count
//! *fractions*, and `gatecost` balances elementary-gate cost fractions.
//! The pairs below are chosen so the policies genuinely diverge: an
//! optimized pair (near 1:1 gate counts) and a decomposed adder (one
//! Toffoli-level gate on the left expands to many elementary gates on the
//! right).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcirc::generators;
use qdd::{ApplicationScheme, Package};

/// Compiled pairs exercising different gate-count ratios: `qft` after the
/// exact optimizer (counts shrink moderately) and the Cuccaro adder after
/// dirty-ancilla decomposition (counts explode on one side — the regime
/// the lookahead schemes are built for).
fn pairs() -> Vec<(&'static str, qcirc::Circuit, qcirc::Circuit)> {
    let qft = generators::qft(8, true);
    let qft_opt = qcirc::optimize::optimize(&qft);

    let adder = generators::cuccaro_adder(2);
    let lowered = qcirc::decompose::decompose_with_dirty_ancillas(&adder);
    let adder = adder.widened(lowered.n_qubits());

    vec![
        ("qft8_optimized", qft, qft_opt),
        ("adder6_decomposed", adder, lowered),
    ]
}

fn bench_alternating_scheme(c: &mut Criterion) {
    let mut group = c.benchmark_group("alternating_scheme");
    for (name, g, g_prime) in pairs() {
        for scheme in ApplicationScheme::ALL {
            group.bench_with_input(
                BenchmarkId::new(scheme.slug(), name),
                &(&g, &g_prime),
                |b, (g, g_prime)| {
                    b.iter_batched(
                        || Package::new(g.n_qubits()),
                        |mut p| {
                            qdd::check_equivalence_alternating_scheme(
                                &mut p, g, g_prime, None, scheme,
                            )
                            .unwrap()
                        },
                        criterion::BatchSize::SmallInput,
                    );
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_alternating_scheme);
criterion_main!(benches);
