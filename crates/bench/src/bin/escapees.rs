//! Hunts *escaped faults*: guard-confirmed real faults that `r = 10`
//! random basis-state simulations fail to expose, so only the complete
//! decision-diagram check catches them — the paper's worst case
//! (Section IV-A: few differing columns, detection probability `2^{−c}`
//! per run).
//!
//! Every find is persisted as a QASM fixture pair
//! (`<name>.golden.qasm` / `<name>.faulty.qasm`) for the adversarial
//! regression suite in `tests/tests/adversarial.rs`, which pins the flow's
//! known blind spots: any change to the stimulus strategy is measured
//! against this corpus. The faulty file records which stimulus seeds the
//! fault escapes (`// escapes-seeds: …`); the suite replays exactly those.
//! To grow the corpus, run
//!
//! ```text
//! cargo run --release -p bench --bin escapees -- --out tests/fixtures/escapees
//! ```
//!
//! and commit the new pairs (the suite discovers them by directory scan).
//!
//! A fault qualifies when it escapes all ten runs for at least
//! [`MIN_ESCAPED_SEEDS`] of the [`STIM_SEEDS`] stimulus seeds — a
//! systematic blind spot, not one lucky draw. (Empirically, *no* single
//! gate drop in a dirty-ancilla V-chain escapes all three seeds: a drop
//! breaks the uncompute symmetry and leaks ancilla garbage on a
//! non-negligible input fraction. Only differences gated on *computed*
//! ancilla wires — e.g. a spurious control on a deep ancilla — reach true
//! `2^{−c}` behaviour on every seed.)

use std::path::{Path, PathBuf};
use std::process::exit;

use qcec::{check_equivalence, Config, Fallback, Outcome};
use qcirc::{decompose, generators, qasm, Circuit};
use qfault::{registry, GuardCache, GuardOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Stimulus seeds tried against every candidate escapee. Keep in sync with
/// the adversarial suite.
const STIM_SEEDS: [u64; 3] = [0, 1, 2];
/// A candidate qualifies when it escapes at least this many seeds.
const MIN_ESCAPED_SEEDS: usize = 2;
/// Simulations per stimulus seed — the paper's `r`.
const SIMS: usize = 10;
/// Mutation seeds tried per (golden, class) pair.
const HUNT_SEEDS: u64 = 24;
/// Cap on hunted escapees per golden circuit (the deterministic V-chain
/// drop is emitted on top of this).
const PER_GOLDEN: usize = 2;

fn usage() -> ! {
    eprintln!("usage: escapees [--out DIR] [--max N]");
    exit(2);
}

/// The stimulus seeds for which `r = 10` sims alone (no fallback) fail to
/// expose the pair. Early-exits per seed on the first counterexample, so
/// easily-detected faults cost one or two simulations.
fn escaping_seeds(golden: &Circuit, faulty: &Circuit) -> Vec<u64> {
    STIM_SEEDS
        .iter()
        .copied()
        .filter(|&seed| {
            let config = Config::new()
                .with_simulations(SIMS)
                .with_seed(seed)
                .with_fallback(Fallback::None)
                .with_threads(1);
            let result =
                check_equivalence(golden, faulty, &config).expect("fixture pairs share a register");
            matches!(result.outcome, Outcome::ProbablyEquivalent { .. })
        })
        .collect()
}

fn write_pair(
    dir: &Path,
    name: &str,
    golden: &Circuit,
    faulty: &Circuit,
    seeds: &[u64],
    note: &str,
) {
    let mut golden_src = format!("// escapee fixture '{name}': golden circuit\n");
    golden_src.push_str(&qasm::write(golden));
    let rendered: Vec<String> = seeds.iter().map(u64::to_string).collect();
    let mut faulty_src = format!(
        "// escapee fixture '{name}': {note}\n\
         // guard: Fault; escapes r = {SIMS} sims for the seeds below\n\
         // escapes-seeds: {}\n",
        rendered.join(",")
    );
    faulty_src.push_str(&qasm::write(faulty));
    std::fs::write(dir.join(format!("{name}.golden.qasm")), golden_src)
        .expect("write golden fixture");
    std::fs::write(dir.join(format!("{name}.faulty.qasm")), faulty_src)
        .expect("write faulty fixture");
    eprintln!("escapee: {name} (seeds {seeds:?}) — {note}");
}

/// The known `2^{−c}` escapee, found by exhaustive site scan: a CX dropped
/// deep inside the dirty-ancilla V-chain of a 7-control MCX — the CX that
/// writes the result onto the target, controlled by the deepest dirty
/// ancilla. The difference is gated on a computed ancilla wire that is
/// rarely set on random basis inputs, so each run detects it with
/// probability ~`2^{−c}`.
fn vchain_cx_drop(dir: &Path, guard_opts: &GuardOptions) -> usize {
    let controls = 7;
    let mut spec = Circuit::with_name(controls + 1, "mcx7");
    spec.mcx((0..controls).collect(), controls);
    let golden = decompose::decompose_with_dirty_ancillas(&spec);
    let guard = GuardCache::new(&golden, guard_opts);

    // Deep (late) sites first: drops there sit under the most accumulated
    // control structure.
    for site in (0..golden.len()).rev() {
        if golden.gates()[site].controls().len() != 1 {
            continue;
        }
        let mut faulty = golden.clone();
        let removed = faulty.remove(site);
        let seeds = escaping_seeds(&golden, &faulty);
        if seeds.len() < MIN_ESCAPED_SEEDS || !guard.classify(&faulty).is_fault() {
            continue;
        }
        write_pair(
            dir,
            "vchain_cx_drop",
            &golden,
            &faulty,
            &seeds,
            &format!(
                "dropped '{removed}' (gate {site} of {}) deep in a dirty-ancilla V-chain",
                golden.len()
            ),
        );
        return 1;
    }
    eprintln!("warning: deterministic V-chain drop found no escapee");
    0
}

/// Exhaustive single-gate-drop scan over one golden circuit.
fn hunt_drops(dir: &Path, name: &str, golden: &Circuit, guard: &GuardCache, cap: usize) -> usize {
    let mut wrote = 0;
    for site in (0..golden.len()).rev() {
        let mut faulty = golden.clone();
        let removed = faulty.remove(site);
        let seeds = escaping_seeds(golden, &faulty);
        if seeds.len() < MIN_ESCAPED_SEEDS || !guard.classify(&faulty).is_fault() {
            continue;
        }
        write_pair(
            dir,
            &format!("{name}_drop_{site}"),
            golden,
            &faulty,
            &seeds,
            &format!("dropped '{removed}' (gate {site} of {})", golden.len()),
        );
        wrote += 1;
        if wrote >= cap {
            break;
        }
    }
    wrote
}

/// Golden circuits whose compiled structure hides low-detection-probability
/// fault sites: dirty-ancilla V-chains and deep multi-controlled logic.
fn golden_pool() -> Vec<(String, Circuit)> {
    let mut pool = Vec::new();
    let mut mcx6 = Circuit::with_name(7, "mcx6");
    mcx6.mcx((0..6).collect(), 6);
    pool.push((
        "mcx6_vchain".to_string(),
        decompose::decompose_with_dirty_ancillas(&mcx6),
    ));
    pool.push((
        "toffnet8_vchain".to_string(),
        decompose::decompose_with_dirty_ancillas(&generators::toffoli_network(8, 30, 3, 11)),
    ));
    pool.push((
        "grover4_vchain".to_string(),
        decompose::decompose_with_dirty_ancillas(&generators::grover(
            4,
            0b1011,
            generators::optimal_grover_iterations(4),
        )),
    ));
    pool.push((
        "bv10".to_string(),
        generators::bernstein_vazirani(10, 0b1011011011),
    ));
    pool
}

fn main() {
    let mut out_dir = PathBuf::from("tests/fixtures/escapees");
    let mut max = 8usize;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out_dir = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--max" => {
                max = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    std::fs::create_dir_all(&out_dir).expect("create fixture directory");

    let guard_opts = GuardOptions::default();
    let mut found = vchain_cx_drop(&out_dir, &guard_opts);

    'pool: for (name, golden) in golden_pool() {
        if golden.n_qubits() > guard_opts.max_qubits {
            eprintln!("skipping {name}: register exceeds the guard limit");
            continue;
        }
        let guard = GuardCache::new(&golden, &guard_opts);
        let mut per_golden = hunt_drops(&out_dir, &name, &golden, &guard, PER_GOLDEN);
        found += per_golden;
        if found >= max {
            break 'pool;
        }
        for mutator in registry(0.1) {
            if per_golden >= PER_GOLDEN {
                break;
            }
            for seed in 0..HUNT_SEEDS {
                let mut rng = StdRng::seed_from_u64(seed);
                let Ok((faulty, record)) = mutator.apply(&golden, &mut rng) else {
                    continue;
                };
                let seeds = escaping_seeds(&golden, &faulty);
                if seeds.len() < MIN_ESCAPED_SEEDS || !guard.classify(&faulty).is_fault() {
                    continue;
                }
                write_pair(
                    &out_dir,
                    &format!("{name}_{}_{seed}", record.kind.slug()),
                    &golden,
                    &faulty,
                    &seeds,
                    &record.to_string(),
                );
                found += 1;
                per_golden += 1;
                if found >= max {
                    break 'pool;
                }
                if per_golden >= PER_GOLDEN {
                    break;
                }
            }
        }
    }

    eprintln!("{found} escapee pair(s) in {}", out_dir.display());
    if found < 4 {
        eprintln!("error: hunt produced fewer than 4 pairs");
        exit(1);
    }
}
