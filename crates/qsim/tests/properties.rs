//! Property-based tests of the statevector simulator.

use proptest::prelude::*;
use qcirc::generators;
use qsim::{Simulator, StateVector};

fn circuit_params() -> impl Strategy<Value = (usize, usize, u64)> {
    (2usize..6, 5usize..80, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Unitarity: norms are preserved for every circuit and basis input.
    #[test]
    fn norm_preservation((n, m, seed) in circuit_params(), basis_sel in any::<u64>()) {
        let c = generators::random_clifford_t(n, m, seed);
        let basis = basis_sel % (1 << n);
        let out = Simulator::new().run_basis(&c, basis);
        prop_assert!(out.is_normalized());
    }

    /// Linearity: simulating a superposition equals superposing simulations.
    #[test]
    fn linearity((n, m, seed) in circuit_params()) {
        let c = generators::random_clifford_t(n, m, seed);
        let sim = Simulator::new();
        // (|0⟩ + |1⟩)/√2 input built by hand.
        let h = qnum::Complex::real(qnum::FRAC_1_SQRT_2);
        let mut amps = vec![qnum::Complex::ZERO; 1 << n];
        amps[0] = h;
        amps[1] = h;
        let input = StateVector::from_amplitudes(amps).unwrap();
        let combined = sim.run(&c, &input);
        let a = sim.run_basis(&c, 0);
        let b = sim.run_basis(&c, 1);
        for i in 0..(1usize << n) {
            let expect = (a.amplitudes()[i] + b.amplitudes()[i]) * qnum::FRAC_1_SQRT_2;
            prop_assert!(combined.amplitudes()[i].approx_eq(expect));
        }
    }

    /// Inner products are preserved by unitaries: ⟨Uφ|Uψ⟩ = ⟨φ|ψ⟩.
    #[test]
    fn inner_product_preservation((n, m, seed) in circuit_params(), i in any::<u64>(), j in any::<u64>()) {
        let c = generators::random_clifford_t(n, m, seed);
        let sim = Simulator::new();
        let (i, j) = (i % (1 << n), j % (1 << n));
        let a = sim.run_basis(&c, i);
        let b = sim.run_basis(&c, j);
        let expect = if i == j { 1.0 } else { 0.0 };
        prop_assert!((a.inner_product(&b).abs() - expect).abs() < 1e-9);
    }

    /// The probe used by the flow is symmetric up to conjugation.
    #[test]
    fn probe_conjugate_symmetry((n, m, seed) in circuit_params(), basis_sel in any::<u64>()) {
        let g = generators::random_clifford_t(n, m, seed);
        let g_prime = generators::random_clifford_t(n, m, seed.wrapping_add(9));
        let basis = basis_sel % (1 << n);
        let sim = Simulator::new();
        let ab = sim.probe_basis(&g, &g_prime, basis);
        let ba = sim.probe_basis(&g_prime, &g, basis);
        prop_assert!(ab.approx_eq(ba.conj()));
    }

    /// Measurement marginals sum consistently: P(q=1) + P(q=0) = 1.
    #[test]
    fn marginals_are_probabilities((n, m, seed) in circuit_params(), q_sel in any::<usize>()) {
        let c = generators::random_clifford_t(n, m, seed);
        let out = Simulator::new().run_basis(&c, 0);
        let q = q_sel % n;
        let p1 = qsim::measure::probability_of_one(&out, q);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&p1));
        let ez = qsim::measure::expectation_z(&out, q);
        prop_assert!((ez - (1.0 - 2.0 * p1)).abs() < 1e-12);
    }

    /// Collapsing onto a measured outcome leaves a state consistent with
    /// that outcome.
    #[test]
    fn collapse_consistency((n, m, seed) in circuit_params(), q_sel in any::<usize>()) {
        use rand::SeedableRng;
        let c = generators::random_clifford_t(n, m, seed);
        let mut out = Simulator::new().run_basis(&c, 0);
        let q = q_sel % n;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let bit = qsim::measure::measure_qubit(&mut out, q, &mut rng);
        let p1 = qsim::measure::probability_of_one(&out, q);
        let expected = if bit { 1.0 } else { 0.0 };
        prop_assert!((p1 - expected).abs() < 1e-9);
        prop_assert!(out.is_normalized());
    }

    /// Pauli expectations lie in [−1, 1] and match between equivalent
    /// circuits.
    #[test]
    fn pauli_expectations_bounded((n, m, seed) in (2usize..5, 5usize..60, any::<u64>())) {
        use qsim::expectation::PauliString;
        let c = generators::random_clifford_t(n, m, seed);
        let o = qcirc::optimize::optimize(&c);
        let sim = Simulator::new();
        let a = sim.run_basis(&c, 1);
        let b = sim.run_basis(&o, 1);
        let label: String = (0..n).map(|q| ['I', 'X', 'Y', 'Z'][(seed as usize + q) % 4]).collect();
        let p: PauliString = label.parse().unwrap();
        let ea = p.expectation(&a);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&ea));
        prop_assert!((ea - p.expectation(&b)).abs() < 1e-9);
    }
}
