//! Counterexample diagnosis: turning "the circuits differ on `|i⟩`" into
//! an actionable report of *where* the outputs diverge.
//!
//! A verification engineer who receives a counterexample wants to see the
//! basis states whose amplitudes disagree — they usually point straight at
//! the corrupted qubits (e.g. a misplaced CX shows up as probability mass on
//! outputs with the wrong bit flipped).

use qcirc::Circuit;
use qnum::Complex;
use qsim::Simulator;

use crate::outcome::Counterexample;

/// One disagreeing output amplitude.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmplitudeDiff {
    /// The output basis state.
    pub basis: u64,
    /// Amplitude under `G`.
    pub in_g: Complex,
    /// Amplitude under `G'`.
    pub in_g_prime: Complex,
    /// `|in_g − in_g_prime|²`.
    pub magnitude: f64,
}

/// A diagnosis of a simulation counterexample.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnosis {
    /// The counterexample being explained.
    pub counterexample: Counterexample,
    /// The disagreeing output amplitudes, largest difference first
    /// (at most the requested `top` entries).
    pub top_diffs: Vec<AmplitudeDiff>,
    /// The qubits whose marginal probabilities differ noticeably — the
    /// prime suspects for the faulty gate's location.
    pub suspicious_qubits: Vec<usize>,
}

impl std::fmt::Display for Diagnosis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "counterexample: {}", self.counterexample)?;
        writeln!(f, "largest output differences:")?;
        for d in &self.top_diffs {
            writeln!(
                f,
                "  |{:b}⟩: {} vs {} (|Δ|² = {:.4})",
                d.basis, d.in_g, d.in_g_prime, d.magnitude
            )?;
        }
        write!(f, "suspicious qubits: {:?}", self.suspicious_qubits)
    }
}

/// Re-simulates both circuits on the counterexample's stimulus (preparing
/// its prefix circuit first for product/stabilizer witnesses) and reports
/// the `top` largest amplitude differences plus per-qubit marginal
/// discrepancies.
///
/// Uses the statevector simulator, so it is limited to registers that fit
/// in memory (the counterexample itself may have come from either backend).
///
/// # Panics
///
/// Panics if the circuits' qubit counts differ or exceed the statevector
/// limit.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), qcec::FlowError> {
/// use qcec::Outcome;
///
/// let g = qcirc::generators::w_state(3);
/// let mut buggy = g.clone();
/// buggy.x(1);
/// let result = qcec::check_equivalence_default(&g, &buggy)?;
/// if let Outcome::NotEquivalent { counterexample: Some(ce) } = result.outcome {
///     let diagnosis = qcec::diagnose::explain(&g, &buggy, ce, 4);
///     assert!(diagnosis.suspicious_qubits.contains(&1));
/// }
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn explain(g: &Circuit, g_prime: &Circuit, ce: Counterexample, top: usize) -> Diagnosis {
    assert_eq!(
        g.n_qubits(),
        g_prime.n_qubits(),
        "circuits must have equal qubit counts"
    );
    let sim = Simulator::new();
    let input = match ce.stimulus.prefix_circuit() {
        None => qsim::StateVector::basis(g.n_qubits(), ce.stimulus.basis_state()),
        Some(prefix) => sim.run_basis(&prefix, ce.stimulus.basis_state()),
    };
    let a = sim.run(g, &input);
    let b = sim.run(g_prime, &input);

    let mut diffs: Vec<AmplitudeDiff> = a
        .amplitudes()
        .iter()
        .zip(b.amplitudes().iter())
        .enumerate()
        .filter_map(|(i, (&x, &y))| {
            let magnitude = (x - y).norm_sqr();
            if magnitude > 1e-12 {
                Some(AmplitudeDiff {
                    basis: i as u64,
                    in_g: x,
                    in_g_prime: y,
                    magnitude,
                })
            } else {
                None
            }
        })
        .collect();
    diffs.sort_by(|l, r| r.magnitude.total_cmp(&l.magnitude));
    diffs.truncate(top);

    let suspicious_qubits = (0..g.n_qubits())
        .filter(|&q| {
            let pa = qsim::measure::probability_of_one(&a, q);
            let pb = qsim::measure::probability_of_one(&b, q);
            (pa - pb).abs() > 1e-6
        })
        .collect();

    Diagnosis {
        counterexample: ce,
        top_diffs: diffs,
        suspicious_qubits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_equivalence_default, Outcome};
    use qcirc::generators;

    fn counterexample_for(g: &Circuit, buggy: &Circuit) -> Counterexample {
        match check_equivalence_default(g, buggy).unwrap().outcome {
            Outcome::NotEquivalent {
                counterexample: Some(ce),
            } => ce,
            other => panic!("expected counterexample, got {other}"),
        }
    }

    #[test]
    fn stray_x_is_localized() {
        // A W state's marginals are 1/n per qubit; an X on qubit 2 pushes
        // that qubit's marginal to (n−1)/n — clearly suspicious. (GHZ would
        // *not* work here: its marginals are invariant under single flips.)
        let g = generators::w_state(4);
        let mut buggy = g.clone();
        buggy.x(2);
        let ce = counterexample_for(&g, &buggy);
        let d = explain(&g, &buggy, ce, 4);
        assert_eq!(d.suspicious_qubits, vec![2]);
        assert!(!d.top_diffs.is_empty());
        assert!(d.top_diffs[0].magnitude > 0.1);
        // Sorted descending.
        for w in d.top_diffs.windows(2) {
            assert!(w[0].magnitude >= w[1].magnitude);
        }
    }

    #[test]
    fn phase_error_shows_amplitude_diffs_without_marginals() {
        // A Z error changes phases, not marginals: suspicious qubits stays
        // empty, but amplitude diffs appear.
        let mut g = qcirc::Circuit::new(2);
        g.h(0).cx(0, 1);
        let mut buggy = g.clone();
        buggy.z(1);
        let ce = counterexample_for(&g, &buggy);
        let d = explain(&g, &buggy, ce, 4);
        assert!(d.suspicious_qubits.is_empty());
        assert!(!d.top_diffs.is_empty());
    }

    #[test]
    fn top_truncation() {
        let g = generators::qft(4, true);
        let mut buggy = g.clone();
        buggy.x(0);
        let ce = counterexample_for(&g, &buggy);
        let d = explain(&g, &buggy, ce, 3);
        assert!(d.top_diffs.len() <= 3);
        let text = d.to_string();
        assert!(text.contains("largest output differences"));
    }
}
