//! A dependency-free thin complex SVD via one-sided Jacobi rotations.
//!
//! The build environment vendors no linear-algebra crates, so the MPS
//! engine carries its own factorization. One-sided Jacobi orthogonalizes
//! the *columns* of `M` by complex Givens rotations applied from the
//! right; at convergence the column norms are the singular values, the
//! normalized columns are `U`, and the accumulated rotations are `V`:
//! `M = U Σ V†`. The method is unconditionally stable, needs no
//! bidiagonalization, and — crucially for the deterministic scheduler
//! upstream — is a pure function of its input: the sweep order is fixed
//! and there is no pivoting on runtime-dependent state.

use qnum::Complex;

/// Relative noise floor: singular values below `σ_max · 1e-12` are
/// numerically zero (their squared weight is ≤ 1e-24 of the spectrum) and
/// are dropped *silently* — they do not count as truncation, so rank
/// compression of structured states (Clifford circuits, product states)
/// keeps `truncation_error == 0` exactly.
const REL_NOISE_FLOOR: f64 = 1e-12;

/// Off-diagonal convergence threshold for the Jacobi sweeps, relative to
/// the geometric mean of the two column norms.
const JACOBI_TOL: f64 = 1e-14;

/// Maximum number of Jacobi sweeps; in practice well-conditioned MPS
/// splits converge in 2–6.
const MAX_SWEEPS: usize = 60;

/// Computes the thin SVD `m = U Σ V†` of a `rows × cols` row-major
/// complex matrix.
///
/// Returns `(u, s, vh)` with `s` the singular values in descending order
/// (length `r`, the numerical rank after the relative noise floor), `u`
/// a `rows × r` row-major matrix with orthonormal columns and `vh` an
/// `r × cols` row-major matrix with orthonormal rows.
///
/// # Panics
///
/// Panics if `m.len() != rows * cols` or either dimension is zero.
///
/// # Examples
///
/// ```
/// use qnum::Complex;
///
/// // A rank-1 matrix: [1, 1; 1, 1] = U [2] V† with σ = 2.
/// let m = vec![Complex::ONE; 4];
/// let (u, s, vh) = qmpo::svd(&m, 2, 2);
/// assert_eq!(s.len(), 1);
/// assert!((s[0] - 2.0).abs() < 1e-12);
/// assert_eq!(u.len(), 2);
/// assert_eq!(vh.len(), 2);
/// ```
#[must_use]
pub fn svd(m: &[Complex], rows: usize, cols: usize) -> (Vec<Complex>, Vec<f64>, Vec<Complex>) {
    assert!(rows > 0 && cols > 0, "svd of an empty matrix");
    assert_eq!(m.len(), rows * cols, "matrix shape mismatch");

    // Work column-major: a[j] is column j of M, v[j] column j of V.
    let mut a: Vec<Vec<Complex>> = (0..cols)
        .map(|j| (0..rows).map(|i| m[i * cols + j]).collect())
        .collect();
    let mut v: Vec<Vec<Complex>> = (0..cols)
        .map(|j| {
            let mut col = vec![Complex::ZERO; cols];
            col[j] = Complex::ONE;
            col
        })
        .collect();

    for _ in 0..MAX_SWEEPS {
        let mut rotated = false;
        for p in 0..cols {
            for q in (p + 1)..cols {
                let (mut app, mut aqq) = (0.0f64, 0.0f64);
                let mut apq = Complex::ZERO;
                for (zp, zq) in a[p].iter().zip(&a[q]) {
                    app += zp.norm_sqr();
                    aqq += zq.norm_sqr();
                    apq += zp.conj() * *zq;
                }
                let off = apq.abs();
                if off <= JACOBI_TOL * (app * aqq).sqrt() || off == 0.0 {
                    continue;
                }
                rotated = true;
                // Zero the off-diagonal of the 2×2 Gram block
                // [[app, apq], [conj(apq), aqq]] with a complex rotation:
                // tan 2φ = 2|apq| / (app − aqq), phase e^{iθ} = apq/|apq|.
                let phase = apq * (1.0 / off);
                let tau = (app - aqq) / (2.0 * off);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // Column update M ← M·J (and V ← V·J):
                //   col_p ← c·col_p + s·e^{−iθ}·col_q
                //   col_q ← −s·e^{iθ}·col_p + c·col_q
                let sp = phase.conj() * s;
                let sq = phase * s;
                rotate_pair(&mut a, p, q, c, sp, sq);
                rotate_pair(&mut v, p, q, c, sp, sq);
            }
        }
        if !rotated {
            break;
        }
    }

    // Column norms are the singular values; sort descending, drop noise.
    let norms: Vec<f64> = a
        .iter()
        .map(|col| col.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt())
        .collect();
    let mut order: Vec<usize> = (0..cols).collect();
    order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).expect("finite norms"));
    let sigma_max = norms[order[0]];
    let floor = sigma_max * REL_NOISE_FLOOR;
    let rank = order
        .iter()
        .take_while(|&&j| norms[j] > floor && norms[j] > 0.0)
        .count()
        .max(1);

    let mut u = vec![Complex::ZERO; rows * rank];
    let mut s = Vec::with_capacity(rank);
    let mut vh = vec![Complex::ZERO; rank * cols];
    for (k, &j) in order.iter().take(rank).enumerate() {
        let sigma = norms[j];
        s.push(sigma);
        let inv = if sigma > 0.0 { 1.0 / sigma } else { 0.0 };
        for i in 0..rows {
            u[i * rank + k] = a[j][i] * inv;
        }
        for i in 0..cols {
            vh[k * cols + i] = v[j][i].conj();
        }
    }
    (u, s, vh)
}

#[inline]
fn rotate_pair(cols: &mut [Vec<Complex>], p: usize, q: usize, c: f64, sp: Complex, sq: Complex) {
    let (head, tail) = cols.split_at_mut(q);
    let (cp, cq) = (&mut head[p], &mut tail[0]);
    for (zp, zq) in cp.iter_mut().zip(cq.iter_mut()) {
        let new_p = *zp * c + *zq * sp;
        let new_q = *zq * c - *zp * sq;
        *zp = new_p;
        *zq = new_q;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matmul(a: &[Complex], ar: usize, ac: usize, b: &[Complex], bc: usize) -> Vec<Complex> {
        let mut out = vec![Complex::ZERO; ar * bc];
        for i in 0..ar {
            for k in 0..ac {
                let aik = a[i * ac + k];
                for j in 0..bc {
                    out[i * bc + j] += aik * b[k * bc + j];
                }
            }
        }
        out
    }

    fn reconstruct(
        u: &[Complex],
        s: &[f64],
        vh: &[Complex],
        rows: usize,
        cols: usize,
    ) -> Vec<Complex> {
        let r = s.len();
        let us: Vec<Complex> = (0..rows * r).map(|idx| u[idx] * s[idx % r]).collect();
        matmul(&us, rows, r, vh, cols)
    }

    fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Vec<Complex> {
        // SplitMix-style generator: deterministic, no rand dependency.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64 - 0.5
        };
        (0..rows * cols)
            .map(|_| Complex::new(next(), next()))
            .collect()
    }

    #[test]
    fn reconstructs_random_matrices() {
        for (rows, cols, seed) in [
            (4, 4, 1),
            (6, 3, 2),
            (3, 6, 3),
            (8, 8, 4),
            (1, 5, 5),
            (5, 1, 6),
        ] {
            let m = pseudo_random(rows, cols, seed);
            let (u, s, vh) = svd(&m, rows, cols);
            assert!(s.len() <= rows.min(cols));
            reconstruct(&u, &s, &vh, rows, cols)
                .iter()
                .zip(&m)
                .for_each(|(x, y)| assert!((*x - *y).abs() < 1e-9, "{x:?} vs {y:?}"));
        }
    }

    #[test]
    fn singular_values_descend_and_factors_are_orthonormal() {
        let m = pseudo_random(6, 5, 9);
        let (u, s, vh) = svd(&m, 6, 5);
        for w in s.windows(2) {
            assert!(w[0] >= w[1]);
        }
        let r = s.len();
        // U† U = I.
        for j in 0..r {
            for k in 0..r {
                let mut dot = Complex::ZERO;
                for i in 0..6 {
                    dot += u[i * r + j].conj() * u[i * r + k];
                }
                let expect = if j == k { 1.0 } else { 0.0 };
                assert!((dot - Complex::real(expect)).abs() < 1e-10);
            }
        }
        // V† V = I (rows of vh are orthonormal).
        for j in 0..r {
            for k in 0..r {
                let mut dot = Complex::ZERO;
                for i in 0..5 {
                    dot += vh[j * 5 + i] * vh[k * 5 + i].conj();
                }
                let expect = if j == k { 1.0 } else { 0.0 };
                assert!((dot - Complex::real(expect)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn rank_deficiency_is_compressed() {
        // Two identical columns: numerical rank 1.
        let m = vec![
            Complex::ONE,
            Complex::ONE,
            Complex::new(0.0, 2.0),
            Complex::new(0.0, 2.0),
        ];
        let (_, s, _) = svd(&m, 2, 2);
        assert_eq!(s.len(), 1, "noise-floor columns dropped: {s:?}");
    }

    #[test]
    fn deterministic_bit_for_bit() {
        let m = pseudo_random(7, 7, 42);
        let a = svd(&m, 7, 7);
        let b = svd(&m, 7, 7);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
    }
}
