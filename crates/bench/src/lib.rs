//! Shared harness for regenerating the paper's tables and figures.
//!
//! The binaries in `src/bin/` print the artifacts:
//!
//! * `table1a` — Table Ia (non-equivalent benchmarks),
//! * `table1b` — Table Ib (equivalent benchmarks),
//! * `theory_detection` — the Section IV-A detection-probability analysis,
//! * `sims_histogram` — the "#sims until counterexample" distribution,
//! * `fig1_example` — the Fig. 1/Fig. 2 worked example.
//!
//! [`suite`] builds the benchmark pairs `(G, G')`: each paper family is
//! instantiated at sizes that run on a laptop (the substitutions are
//! documented in DESIGN.md), with `G'` produced by a *verified* design-flow
//! step (decomposition, mapping, optimization).

use std::time::Duration;

use qcirc::mapping::{route, CouplingMap, RouterOptions};
use qcirc::{decompose, generators, optimize, Circuit};

/// How the alternative realization `G'` was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Derivation {
    /// SWAP-insertion mapping to a coupling map.
    Mapped,
    /// Lowering to the `{1q, CX}` basis (with dirty ancillas where needed).
    Decomposed,
    /// Exact optimization passes.
    Optimized,
}

/// One benchmark pair of the evaluation.
#[derive(Debug, Clone)]
pub struct BenchmarkPair {
    /// Row name (mirrors the paper's naming).
    pub name: String,
    /// The original circuit `G` (widened to `G'`'s register if the
    /// derivation added ancillas).
    pub original: Circuit,
    /// The alternative realization `G'`.
    pub alternative: Circuit,
    /// Which design-flow step produced `G'`.
    pub derivation: Derivation,
    /// Whether dense statevector simulation is sensible at this size
    /// (≤ ~20 qubits); above that use the DD backend.
    pub statevector_ok: bool,
}

impl BenchmarkPair {
    /// The register size `n` shared by both circuits.
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.original.n_qubits()
    }
}

/// Builds the benchmark suite. `scale` widens the sweep: 0 = smoke-test
/// sizes (CI), 1 = paper-shaped sizes that still finish in minutes.
#[must_use]
pub fn suite(scale: usize) -> Vec<BenchmarkPair> {
    let mut pairs = Vec::new();

    // --- Quantum chemistry (Trotterized lattice model; see DESIGN.md) ----
    pairs.push(mapped_pair(
        "Chemistry 2x4",
        generators::trotter_heisenberg(2, 4, 2, 0.1, 0.5),
        &CouplingMap::grid(2, 4),
    ));
    if scale >= 1 {
        pairs.push(mapped_pair(
            "Chemistry 3x6",
            generators::trotter_heisenberg(3, 6, 2, 0.1, 0.5),
            &CouplingMap::grid(3, 6),
        ));
    }

    // --- Supremacy-style random circuits ---------------------------------
    for &depth in if scale >= 1 {
        &[5usize, 15, 50][..]
    } else {
        &[5usize][..]
    } {
        let g = generators::supremacy_2d(4, 4, depth, 1234 + depth as u64);
        pairs.push(mapped_pair(
            &format!("Supremacy 4x4 {depth:02}"),
            g,
            &CouplingMap::grid(4, 4),
        ));
    }

    // --- Grover (ancilla decomposition inflates the register, as in the
    //     paper's Grover rows) ---------------------------------------------
    for &k in if scale >= 1 {
        &[5usize, 6, 7][..]
    } else {
        &[5usize][..]
    } {
        let g = generators::grover(k, (1 << k) - 2, generators::optimal_grover_iterations(k));
        let lowered = decompose::decompose_with_dirty_ancillas(&g);
        let widened = g.widened(lowered.n_qubits());
        pairs.push(BenchmarkPair {
            name: format!("Grover {k}"),
            original: widened,
            alternative: lowered,
            derivation: Derivation::Decomposed,
            statevector_ok: true,
        });
    }

    // --- QFT (large registers: DD simulation only, like the paper's
    //     QFT 48/64 rows) ----------------------------------------------------
    let qft_sizes: &[usize] = if scale >= 1 { &[16, 32, 48] } else { &[16] };
    for &n in qft_sizes {
        let g = generators::qft(n, false);
        let optimized = optimize::optimize(&g);
        // Optimization alone is too gentle for QFT; add an exactly
        // cancelling pair per qubit so |G'| differs visibly.
        let mut alt = optimized;
        for q in 0..n {
            alt.h(q).h(q);
        }
        pairs.push(BenchmarkPair {
            name: format!("QFT {n}"),
            original: g,
            alternative: alt,
            derivation: Derivation::Optimized,
            statevector_ok: n <= 20,
        });
    }

    // --- Oracle / arithmetic families (beyond the paper's table, same
    //     methodology) ------------------------------------------------------
    if scale >= 1 {
        pairs.push(mapped_pair(
            "BV 16",
            generators::bernstein_vazirani(16, 0b1011_0110_1001_0011),
            &CouplingMap::linear(17),
        ));
        let qpe = generators::phase_estimation(8, 37.0 / 256.0);
        pairs.push(mapped_pair("QPE 8", qpe, &CouplingMap::linear(9)));
        let mult = generators::multiplier(2);
        let lowered = decompose::decompose_to_cx_and_single_qubit(&mult);
        pairs.push(BenchmarkPair {
            name: "Multiplier 2".to_string(),
            original: mult,
            alternative: lowered,
            derivation: Derivation::Decomposed,
            statevector_ok: true,
        });
    }

    // --- RevLib-class reversible netlists (seeded substitutes) ------------
    let revlib: &[(usize, usize, usize, u64)] = if scale >= 1 {
        &[(10, 60, 4, 1), (12, 80, 5, 2), (14, 60, 6, 3)]
    } else {
        &[(10, 40, 4, 1)]
    };
    for &(n, m, cmax, seed) in revlib {
        let g = generators::toffoli_network(n, m, cmax, seed);
        let lowered = decompose::decompose_with_dirty_ancillas(&g);
        let widened = g.widened(lowered.n_qubits());
        pairs.push(BenchmarkPair {
            name: format!("toffnet_{n}_{seed}"),
            original: widened,
            alternative: lowered,
            derivation: Derivation::Decomposed,
            statevector_ok: true,
        });
    }

    pairs
}

fn mapped_pair(name: &str, g: Circuit, device: &CouplingMap) -> BenchmarkPair {
    let lowered = decompose::decompose_to_cx_and_single_qubit(&g);
    let routed = route(&lowered, device, RouterOptions::default())
        .expect("suite circuits fit their devices");
    let n = routed.circuit.n_qubits();
    BenchmarkPair {
        name: name.to_string(),
        original: g.widened(n),
        alternative: routed.circuit,
        derivation: Derivation::Mapped,
        statevector_ok: n <= 20,
    }
}

/// Formats a duration like the paper's tables (seconds with two decimals).
#[must_use]
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Formats a possibly-timed-out duration: `Some(d)` → seconds, `None` →
/// `"> limit"`.
#[must_use]
pub fn fmt_secs_or_timeout(d: Option<Duration>, limit: Duration) -> String {
    match d {
        Some(d) => fmt_secs(d),
        None => format!("> {}", limit.as_secs_f64()),
    }
}

/// Reads the harness deadline (seconds) from `QCEC_BENCH_DEADLINE`,
/// defaulting to `default_secs`.
#[must_use]
pub fn deadline_from_env(default_secs: u64) -> Duration {
    std::env::var("QCEC_BENCH_DEADLINE")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(Duration::from_secs(default_secs), Duration::from_secs)
}

/// Reads the harness scale (0 = smoke, 1 = full) from `QCEC_BENCH_SCALE`.
#[must_use]
pub fn scale_from_env() -> usize {
    std::env::var("QCEC_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcec::check_equivalence_default;

    #[test]
    fn smoke_suite_pairs_are_equivalent() {
        for pair in suite(0) {
            assert_eq!(pair.original.n_qubits(), pair.alternative.n_qubits());
            if pair.statevector_ok && pair.n_qubits() <= 12 {
                let result = check_equivalence_default(&pair.original, &pair.alternative).unwrap();
                assert!(
                    result.outcome.is_equivalent(),
                    "{}: {}",
                    pair.name,
                    result.outcome
                );
            }
        }
    }

    #[test]
    fn suite_covers_every_derivation() {
        let pairs = suite(1);
        for d in [
            Derivation::Mapped,
            Derivation::Decomposed,
            Derivation::Optimized,
        ] {
            assert!(pairs.iter().any(|p| p.derivation == d), "{d:?} missing");
        }
        assert!(pairs.len() >= 10);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(Duration::from_millis(1500)), "1.50");
        assert_eq!(fmt_secs_or_timeout(None, Duration::from_secs(10)), "> 10");
        assert_eq!(
            fmt_secs_or_timeout(Some(Duration::from_millis(250)), Duration::from_secs(10)),
            "0.25"
        );
    }
}
