//! Quantum phase estimation.

use std::f64::consts::PI;

use crate::circuit::Circuit;
use crate::generators::qft;

/// Builds a quantum-phase-estimation circuit estimating the eigenphase of
/// `P(2π·phase)` on its `|1⟩` eigenstate with `m` counting qubits.
///
/// Layout: counting qubits `0..m` (qubit 0 = least significant result bit),
/// eigenstate qubit `m` (prepared in `|1⟩`). For `phase = j / 2^m` the
/// counting register ends exactly in `|j⟩`.
///
/// # Panics
///
/// Panics if `m == 0`.
///
/// # Examples
///
/// ```
/// let c = qcirc::generators::phase_estimation(4, 3.0 / 16.0);
/// assert_eq!(c.n_qubits(), 5);
/// ```
#[must_use]
pub fn phase_estimation(m: usize, phase: f64) -> Circuit {
    assert!(m > 0, "need at least one counting qubit");
    let mut c = Circuit::with_name(m + 1, format!("qpe_{m}"));
    // Eigenstate |1⟩ of the phase gate.
    c.x(m);
    for q in 0..m {
        c.h(q);
    }
    // Controlled powers: counting qubit k applies P(2π·phase·2^k).
    for k in 0..m {
        c.cp(2.0 * PI * phase * f64::powi(2.0, k as i32), k, m);
    }
    // Inverse QFT on the counting register.
    let iqft = qft(m, true).inverse();
    for gate in iqft.gates() {
        c.push(gate.clone());
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_shape() {
        let c = phase_estimation(3, 0.125);
        assert_eq!(c.n_qubits(), 4);
        // 1 X + 3 H + 3 CP + inverse QFT (6 gates + 1 swap).
        assert_eq!(c.len(), 1 + 3 + 3 + 7);
    }

    #[test]
    fn exact_phase_is_recovered() {
        // Verified against the dense reference: phase j/2^m ends in |j⟩
        // exactly (probability 1).
        let m = 3;
        for j in [1u64, 3, 6] {
            let c = phase_estimation(m, j as f64 / 8.0);
            let col = crate::dense::column(&c, 0);
            // Expected output: counting register |j⟩, eigenstate |1⟩.
            let expected = (1usize << m) | j as usize;
            assert!(
                col[expected].norm_sqr() > 1.0 - 1e-9,
                "j = {j}: p = {}",
                col[expected].norm_sqr()
            );
        }
    }

    #[test]
    fn inexact_phase_peaks_at_nearest_fraction() {
        let m = 3;
        let c = phase_estimation(m, 0.3); // nearest 3-bit fraction: 2/8 or 3/8
        let col = crate::dense::column(&c, 0);
        let p2 = col[(1 << m) | 2].norm_sqr();
        let p3 = col[(1 << m) | 3].norm_sqr();
        assert!(
            p2 + p3 > 0.5,
            "mass should concentrate near 0.3: {}",
            p2 + p3
        );
    }
}
