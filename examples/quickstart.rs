//! Quickstart: build two circuits, check their equivalence, read the
//! verdict.
//!
//! Run with `cargo run -p qcec-examples --bin quickstart`.

use qcec::{check_equivalence_default, Outcome};
use qcirc::Circuit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // G: prepare a Bell pair, then rotate.
    let mut g = Circuit::with_name(2, "original");
    g.h(0).cx(0, 1).rz(0.5, 1);

    // G': the same computation written differently —
    // Rz(0.25)·Rz(0.25) = Rz(0.5), and an inserted CX·CX cancels.
    let mut g_prime = Circuit::with_name(2, "alternative");
    g_prime
        .h(0)
        .cx(0, 1)
        .rz(0.25, 1)
        .cx(0, 1)
        .cx(0, 1)
        .rz(0.25, 1);

    let result = check_equivalence_default(&g, &g_prime)?;
    println!("G  = {g}");
    println!("G' = {g_prime}");
    println!("verdict: {result}");
    assert!(result.outcome.is_equivalent());

    // Now break G' — one wrong rotation angle.
    let mut buggy = g_prime.clone();
    buggy.rz(0.1, 0);
    let result = check_equivalence_default(&g, &buggy)?;
    println!("\nafter injecting a stray rz(0.1): {result}");
    match result.outcome {
        Outcome::NotEquivalent {
            counterexample: Some(ce),
        } => println!(
            "counterexample: simulate both circuits on {} and compare — fidelity {:.4}",
            ce.stimulus, ce.fidelity
        ),
        other => println!("unexpected outcome: {other}"),
    }
    Ok(())
}
