//! A minimal, allocation-free complex number type.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::approx;

/// A complex number with `f64` components.
///
/// The type is deliberately small and `Copy`; all quantum amplitudes and
/// matrix entries in the workspace are values of this type. Arithmetic
/// follows the usual field rules; comparisons meant for amplitude equality
/// should use [`Complex::approx_eq`], not `==`.
///
/// # Examples
///
/// ```
/// use qnum::Complex;
///
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::new(3.0, -1.0);
/// assert_eq!(a + b, Complex::new(4.0, 1.0));
/// assert_eq!(a * Complex::I, Complex::new(-2.0, 1.0));
/// assert!(a.conj().approx_eq(Complex::new(1.0, -2.0)));
/// ```
// `repr(C)` pins the `[re, im]` field order so SIMD kernels can view a
// `&[Complex]` as interleaved `f64` pairs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    #[must_use]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    ///
    /// # Examples
    ///
    /// ```
    /// use qnum::Complex;
    /// let c = Complex::from_polar(1.0, std::f64::consts::PI);
    /// assert!(c.approx_eq(Complex::new(-1.0, 0.0)));
    /// ```
    #[inline]
    #[must_use]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `e^{iθ}`, a unit-magnitude phase factor.
    #[inline]
    #[must_use]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Returns the complex conjugate.
    #[inline]
    #[must_use]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Returns the squared magnitude `|z|²` (the measurement probability of an
    /// amplitude).
    #[inline]
    #[must_use]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the magnitude `|z|`.
    #[inline]
    #[must_use]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Returns the argument (phase angle) in `(-π, π]`.
    #[inline]
    #[must_use]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Returns the multiplicative inverse `1/z`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `z` is (numerically) zero.
    #[inline]
    #[must_use]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        debug_assert!(d > 0.0, "attempted to invert a zero complex number");
        Complex::new(self.re / d, -self.im / d)
    }

    /// Multiplies by a real scalar.
    #[inline]
    #[must_use]
    pub fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }

    /// Returns `true` if both components are within the workspace tolerance of
    /// `other`'s components.
    #[inline]
    #[must_use]
    pub fn approx_eq(self, other: Complex) -> bool {
        approx::approx_eq(self.re, other.re) && approx::approx_eq(self.im, other.im)
    }

    /// Returns `true` if both components are within `tolerance` of `other`.
    #[inline]
    #[must_use]
    pub fn approx_eq_with(self, other: Complex, tolerance: f64) -> bool {
        approx::approx_eq_with(self.re, other.re, tolerance)
            && approx::approx_eq_with(self.im, other.im, tolerance)
    }

    /// Returns `true` if this value is within the workspace tolerance of zero.
    #[inline]
    #[must_use]
    pub fn approx_zero(self) -> bool {
        approx::approx_zero(self.re) && approx::approx_zero(self.im)
    }

    /// Returns `true` if this value is within the workspace tolerance of one.
    #[inline]
    #[must_use]
    pub fn approx_one(self) -> bool {
        approx::approx_one(self.re) && approx::approx_zero(self.im)
    }

    /// Returns `true` if any component is NaN.
    #[inline]
    #[must_use]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Fused multiply-add: `self * b + c`, the inner-loop primitive of every
    /// kernel in the workspace.
    #[inline]
    #[must_use]
    pub fn mul_add(self, b: Complex, c: Complex) -> Complex {
        Complex::new(
            self.re * b.re - self.im * b.im + c.re,
            self.re * b.im + self.im * b.re + c.im,
        )
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, c| acc + c)
    }
}

impl Product for Complex {
    fn product<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ONE, |acc, c| acc * c)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex::ZERO, Complex::new(0.0, 0.0));
        assert_eq!(Complex::ONE, Complex::new(1.0, 0.0));
        assert_eq!(Complex::I, Complex::new(0.0, 1.0));
        assert_eq!(Complex::from(2.5), Complex::real(2.5));
    }

    #[test]
    fn field_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -4.0);
        assert_eq!(a + b, Complex::new(4.0, -2.0));
        assert_eq!(a - b, Complex::new(-2.0, 6.0));
        assert_eq!(a * b, Complex::new(11.0, 2.0));
        assert!((a / b * b).approx_eq(a));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((Complex::I * Complex::I).approx_eq(-Complex::ONE));
    }

    #[test]
    fn assign_operators() {
        let mut c = Complex::new(1.0, 1.0);
        c += Complex::ONE;
        assert_eq!(c, Complex::new(2.0, 1.0));
        c -= Complex::I;
        assert_eq!(c, Complex::new(2.0, 0.0));
        c *= Complex::I;
        assert_eq!(c, Complex::new(0.0, 2.0));
        c /= Complex::new(0.0, 2.0);
        assert!(c.approx_eq(Complex::ONE));
    }

    #[test]
    fn polar_roundtrip() {
        let c = Complex::from_polar(2.0, FRAC_PI_2);
        assert!(c.approx_eq(Complex::new(0.0, 2.0)));
        assert!(approx_f(c.abs(), 2.0));
        assert!(approx_f(c.arg(), FRAC_PI_2));
    }

    #[test]
    fn cis_covers_the_unit_circle() {
        assert!(Complex::cis(0.0).approx_eq(Complex::ONE));
        assert!(Complex::cis(PI).approx_eq(-Complex::ONE));
        assert!(Complex::cis(FRAC_PI_2).approx_eq(Complex::I));
    }

    #[test]
    fn conjugation_and_norm() {
        let c = Complex::new(3.0, 4.0);
        assert_eq!(c.conj(), Complex::new(3.0, -4.0));
        assert!(approx_f(c.norm_sqr(), 25.0));
        assert!(approx_f(c.abs(), 5.0));
        // z · z̄ = |z|²
        assert!((c * c.conj()).approx_eq(Complex::real(25.0)));
    }

    #[test]
    fn recip_inverts() {
        let c = Complex::new(1.0, -3.0);
        assert!((c * c.recip()).approx_eq(Complex::ONE));
    }

    #[test]
    fn scalar_multiplication_both_sides() {
        let c = Complex::new(1.0, -1.0);
        assert_eq!(c * 2.0, Complex::new(2.0, -2.0));
        assert_eq!(2.0 * c, Complex::new(2.0, -2.0));
        assert_eq!(c / 2.0, Complex::new(0.5, -0.5));
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = Complex::new(1.5, -0.5);
        let b = Complex::new(-2.0, 3.0);
        let c = Complex::new(0.25, 0.75);
        assert!(a.mul_add(b, c).approx_eq(a * b + c));
    }

    #[test]
    fn sum_and_product() {
        let xs = [Complex::ONE, Complex::I, Complex::new(1.0, 1.0)];
        let s: Complex = xs.iter().copied().sum();
        assert!(s.approx_eq(Complex::new(2.0, 2.0)));
        let p: Complex = xs.iter().copied().product();
        assert!(p.approx_eq(Complex::new(-1.0, 1.0)));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn approx_helpers() {
        assert!(Complex::new(1e-12, -1e-12).approx_zero());
        assert!(Complex::new(1.0 + 1e-12, 1e-12).approx_one());
        assert!(!Complex::I.approx_one());
        assert!(Complex::new(0.5, 0.5).approx_eq_with(Complex::new(0.51, 0.5), 0.02));
    }

    #[test]
    fn nan_detection() {
        assert!(Complex::new(f64::NAN, 0.0).is_nan());
        assert!(!Complex::ONE.is_nan());
    }

    fn approx_f(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }
}
