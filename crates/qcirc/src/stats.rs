//! Circuit statistics: the quantities benchmark tables report.

use std::collections::BTreeMap;
use std::fmt;

use crate::circuit::Circuit;
use crate::gate::GateKind;

/// Aggregated structural statistics of a circuit.
///
/// # Examples
///
/// ```
/// use qcirc::stats::CircuitStats;
///
/// let c = qcirc::generators::qft(4, true);
/// let s = CircuitStats::of(&c);
/// assert_eq!(s.gate_count, c.len());
/// assert!(s.two_qubit_count > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitStats {
    /// Total gates `|G|`.
    pub gate_count: usize,
    /// Circuit depth (parallel layers).
    pub depth: usize,
    /// Gates touching exactly two qubits.
    pub two_qubit_count: usize,
    /// Gates touching three or more qubits.
    pub multi_qubit_count: usize,
    /// Depth counting only multi-qubit gates (the dominant cost on
    /// hardware).
    pub two_qubit_depth: usize,
    /// T/T† gates (the magic-state cost in fault-tolerant settings).
    pub t_count: usize,
    /// Mnemonic → occurrence count, sorted by mnemonic.
    pub histogram: BTreeMap<&'static str, usize>,
}

impl CircuitStats {
    /// Computes the statistics of a circuit in one pass (plus a depth scan).
    #[must_use]
    pub fn of(circuit: &Circuit) -> Self {
        let mut histogram: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut two_qubit_count = 0;
        let mut multi_qubit_count = 0;
        let mut t_count = 0;
        for g in circuit.gates() {
            *histogram.entry(g.kind().mnemonic()).or_insert(0) += 1;
            match g.width() {
                0 | 1 => {}
                2 => two_qubit_count += 1,
                _ => multi_qubit_count += 1,
            }
            if matches!(g.kind(), GateKind::T | GateKind::Tdg) {
                t_count += 1;
            }
        }
        // Two-qubit depth: layer counting restricted to entangling gates.
        let mut frontier = vec![0usize; circuit.n_qubits()];
        let mut two_qubit_depth = 0;
        for g in circuit.gates() {
            if g.width() < 2 {
                continue;
            }
            let layer = g.qubits().map(|q| frontier[q]).max().unwrap_or(0) + 1;
            for q in g.qubits() {
                frontier[q] = layer;
            }
            two_qubit_depth = two_qubit_depth.max(layer);
        }
        CircuitStats {
            gate_count: circuit.len(),
            depth: circuit.depth(),
            two_qubit_count,
            multi_qubit_count,
            two_qubit_depth,
            t_count,
            histogram,
        }
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "gates {} | depth {} | 2q {} (depth {}) | ≥3q {} | T {}",
            self.gate_count,
            self.depth,
            self.two_qubit_count,
            self.two_qubit_depth,
            self.multi_qubit_count,
            self.t_count
        )?;
        let rendered: Vec<String> = self
            .histogram
            .iter()
            .map(|(name, count)| format!("{name}:{count}"))
            .collect();
        write!(f, "{}", rendered.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Circuit;

    #[test]
    fn counts_a_mixed_circuit() {
        let mut c = Circuit::new(3);
        c.h(0).t(0).tdg(1).cx(0, 1).ccx(0, 1, 2).swap(1, 2);
        let s = CircuitStats::of(&c);
        assert_eq!(s.gate_count, 6);
        assert_eq!(s.t_count, 2);
        assert_eq!(s.two_qubit_count, 2); // cx + swap
        assert_eq!(s.multi_qubit_count, 1); // ccx
        assert_eq!(s.histogram["x"], 2); // cx + ccx share the base mnemonic
        assert_eq!(s.histogram["h"], 1);
    }

    #[test]
    fn two_qubit_depth_ignores_single_qubit_gates() {
        let mut c = Circuit::new(2);
        c.h(0).h(0).h(0).cx(0, 1).h(1).cx(0, 1);
        let s = CircuitStats::of(&c);
        assert_eq!(s.two_qubit_depth, 2);
        assert!(s.depth > s.two_qubit_depth);
    }

    #[test]
    fn empty_circuit() {
        let s = CircuitStats::of(&Circuit::new(2));
        assert_eq!(s.gate_count, 0);
        assert_eq!(s.depth, 0);
        assert_eq!(s.two_qubit_depth, 0);
        assert!(s.histogram.is_empty());
    }

    #[test]
    fn display_is_compact() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let text = CircuitStats::of(&c).to_string();
        assert!(text.contains("gates 2"));
        assert!(text.contains("h:1"));
        assert!(text.contains("x:1"));
    }
}
