//! The decision-diagram package: arenas, unique tables, compute tables and
//! the DD algebra (add, multiply, adjoint, gate construction).

use std::collections::HashMap;
use std::fmt;

use qcirc::{Gate, GateKind};
use qnum::Complex;

use crate::complex_table::{ComplexTable, Cx};
use crate::edge::{MEdge, MNode, NodeId, VEdge, VNode};

/// Error raised when a DD operation would exceed the package's node limit —
/// the "resource-out" analogue of the paper's timeouts (DD sizes explode on
/// exactly the circuits where the EC routine times out).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DdLimitError {
    /// The configured limit that was hit.
    pub node_limit: usize,
}

impl fmt::Display for DdLimitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decision diagram exceeded the node limit of {}",
            self.node_limit
        )
    }
}

impl std::error::Error for DdLimitError {}

/// Aggregate size statistics of a package (see [`Package::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackageStats {
    /// Allocated matrix nodes.
    pub matrix_nodes: usize,
    /// Allocated vector nodes.
    pub vector_nodes: usize,
    /// Distinct interned complex values.
    pub complex_values: usize,
}

/// A QMDD-style decision diagram package over a fixed number of qubits.
///
/// Matrix DDs decompose a `2ⁿ×2ⁿ` matrix by the top qubit into four
/// `2ⁿ⁻¹×2ⁿ⁻¹` blocks per node; vector DDs decompose a state vector into
/// two halves. Edge weights are interned complex factors; nodes are
/// *normalized* (largest-magnitude child weight scaled to 1 and pulled up)
/// and hash-consed, so structural edge equality coincides with semantic
/// matrix/vector equality — the property the equivalence checker relies on.
///
/// DDs here are *quasi-reduced*: every path visits all levels (no skipped
/// variables), except that zero edges jump straight to the terminal.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), qdd::DdLimitError> {
/// use qdd::Package;
///
/// let mut p = Package::new(2);
/// let bell = qcirc::generators::bell();
/// let u = p.circuit_medge(&bell)?;
/// let v = p.apply_to_basis(&bell, 0)?;
/// assert!((p.amplitude(v, 0).abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
/// let _ = u;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Package {
    n_qubits: usize,
    ct: ComplexTable,
    mnodes: Vec<MNode>,
    vnodes: Vec<VNode>,
    munique: HashMap<MNode, NodeId>,
    vunique: HashMap<VNode, NodeId>,
    identity: Vec<MEdge>,
    madd_cache: HashMap<(NodeId, NodeId, Cx), MEdge>,
    mmul_cache: HashMap<(NodeId, NodeId), MEdge>,
    mv_cache: HashMap<(NodeId, NodeId), VEdge>,
    vadd_cache: HashMap<(NodeId, NodeId, Cx), VEdge>,
    adj_cache: HashMap<NodeId, MEdge>,
    ip_cache: HashMap<(NodeId, NodeId), Complex>,
    maxabs_cache: HashMap<NodeId, f64>,
    node_limit: usize,
    gc_threshold: usize,
}

impl Package {
    /// Default node limit (matrix + vector nodes combined).
    pub const DEFAULT_NODE_LIMIT: usize = 20_000_000;

    /// Default automatic-GC threshold: long-running loops compact their
    /// arenas once this many nodes are allocated.
    pub const DEFAULT_GC_THRESHOLD: usize = 400_000;

    /// Creates a package for `n_qubits` qubits with the default node limit.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is zero or exceeds `u16::MAX`.
    #[must_use]
    pub fn new(n_qubits: usize) -> Self {
        Self::with_node_limit(n_qubits, Self::DEFAULT_NODE_LIMIT)
    }

    /// Creates a package with an explicit node limit; operations return
    /// [`DdLimitError`] when growth would exceed it.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is zero or exceeds `u16::MAX`.
    #[must_use]
    pub fn with_node_limit(n_qubits: usize, node_limit: usize) -> Self {
        assert!(n_qubits > 0, "a package needs at least one qubit");
        assert!(n_qubits < u16::MAX as usize, "too many qubits");
        let mut package = Package {
            n_qubits,
            ct: ComplexTable::new(),
            mnodes: Vec::new(),
            vnodes: Vec::new(),
            munique: HashMap::new(),
            vunique: HashMap::new(),
            identity: Vec::new(),
            madd_cache: HashMap::new(),
            mmul_cache: HashMap::new(),
            mv_cache: HashMap::new(),
            vadd_cache: HashMap::new(),
            adj_cache: HashMap::new(),
            ip_cache: HashMap::new(),
            maxabs_cache: HashMap::new(),
            node_limit,
            gc_threshold: Self::DEFAULT_GC_THRESHOLD.min(node_limit / 2).max(1024),
        };
        package.build_identity_cache();
        package
    }

    fn build_identity_cache(&mut self) {
        let mut below = MEdge::terminal(Cx::ONE);
        for level in 0..self.n_qubits {
            let e = self
                .make_mnode(level as u16, [below, MEdge::ZERO, MEdge::ZERO, below])
                .expect("identity fits any sane node limit");
            self.identity.push(e);
            below = e;
        }
    }

    /// The number of qubits.
    #[inline]
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The identity matrix DD over all qubits.
    #[must_use]
    pub fn identity_medge(&self) -> MEdge {
        self.identity[self.n_qubits - 1]
    }

    /// The interned complex value behind a weight.
    #[inline]
    #[must_use]
    pub fn weight_value(&self, w: Cx) -> Complex {
        self.ct.value(w)
    }

    /// Current size statistics.
    #[must_use]
    pub fn stats(&self) -> PackageStats {
        PackageStats {
            matrix_nodes: self.mnodes.len(),
            vector_nodes: self.vnodes.len(),
            complex_values: self.ct.len(),
        }
    }

    /// Garbage-collects the package: drops every node not reachable from
    /// the given root edges, rebuilding arenas, unique tables and the
    /// identity cache, and returns the remapped roots (in input order).
    ///
    /// All compute tables are cleared. **Every edge not passed as a root is
    /// dangling afterwards** — holding onto one is a logic error. The
    /// complex table is kept (weight indices stay valid).
    ///
    /// Long-running consumers ([`Package::circuit_medge`],
    /// [`Package::apply_to_basis`], the equivalence checkers) call this
    /// automatically when the arenas pass [`Package::gc_threshold`].
    pub fn compact(&mut self, mroots: &[MEdge], vroots: &[VEdge]) -> (Vec<MEdge>, Vec<VEdge>) {
        let old_mnodes = std::mem::take(&mut self.mnodes);
        let old_vnodes = std::mem::take(&mut self.vnodes);
        self.munique.clear();
        self.vunique.clear();
        self.clear_compute_tables();
        self.identity.clear();
        self.build_identity_cache();

        let mut mmemo: HashMap<NodeId, NodeId> = HashMap::new();
        let mut vmemo: HashMap<NodeId, NodeId> = HashMap::new();
        let new_mroots = mroots
            .iter()
            .map(|&e| self.copy_medge(e, &old_mnodes, &mut mmemo))
            .collect();
        let new_vroots = vroots
            .iter()
            .map(|&e| self.copy_vedge(e, &old_vnodes, &mut vmemo))
            .collect();
        (new_mroots, new_vroots)
    }

    fn copy_medge(
        &mut self,
        edge: MEdge,
        old_nodes: &[MNode],
        memo: &mut HashMap<NodeId, NodeId>,
    ) -> MEdge {
        if edge.node.is_terminal() {
            return edge;
        }
        if let Some(&new_id) = memo.get(&edge.node) {
            return MEdge {
                node: new_id,
                weight: edge.weight,
            };
        }
        let old = old_nodes[edge.node.0 as usize];
        let children = [
            self.copy_medge(old.children[0], old_nodes, memo),
            self.copy_medge(old.children[1], old_nodes, memo),
            self.copy_medge(old.children[2], old_nodes, memo),
            self.copy_medge(old.children[3], old_nodes, memo),
        ];
        // Children were already normalized, so re-making the node cannot
        // change weights; the arena shrank, so the limit cannot trip.
        let made = self
            .make_mnode(old.var, children)
            .expect("compaction shrinks the arena");
        debug_assert_eq!(made.weight, Cx::ONE, "re-normalization must be trivial");
        memo.insert(edge.node, made.node);
        MEdge {
            node: made.node,
            weight: edge.weight,
        }
    }

    fn copy_vedge(
        &mut self,
        edge: VEdge,
        old_nodes: &[VNode],
        memo: &mut HashMap<NodeId, NodeId>,
    ) -> VEdge {
        if edge.node.is_terminal() {
            return edge;
        }
        if let Some(&new_id) = memo.get(&edge.node) {
            return VEdge {
                node: new_id,
                weight: edge.weight,
            };
        }
        let old = old_nodes[edge.node.0 as usize];
        let children = [
            self.copy_vedge(old.children[0], old_nodes, memo),
            self.copy_vedge(old.children[1], old_nodes, memo),
        ];
        let made = self
            .make_vnode(old.var, children)
            .expect("compaction shrinks the arena");
        debug_assert_eq!(made.weight, Cx::ONE, "re-normalization must be trivial");
        memo.insert(edge.node, made.node);
        VEdge {
            node: made.node,
            weight: edge.weight,
        }
    }

    /// The arena size above which long-running loops garbage-collect.
    #[must_use]
    pub fn gc_threshold(&self) -> usize {
        self.gc_threshold
    }

    /// Sets the automatic-GC threshold (node count).
    pub fn set_gc_threshold(&mut self, threshold: usize) {
        self.gc_threshold = threshold.max(1024);
    }

    /// Returns `true` if the arenas have outgrown the GC threshold.
    #[must_use]
    pub fn wants_gc(&self) -> bool {
        self.mnodes.len() + self.vnodes.len() > self.gc_threshold
    }

    /// Resets the package to its freshly constructed state while keeping
    /// every allocation: arenas, unique tables, compute tables and the
    /// complex table are all emptied, and the identity cache is rebuilt.
    ///
    /// This is the workspace-pooling primitive: a reset package is
    /// *observationally identical* to `Package::with_node_limit(n, limit)`
    /// — the same operation sequence afterwards allocates the same node
    /// ids and interns the same weight indices bit for bit — so reusing
    /// one package across independent probes cannot leak interned state
    /// between runs. Every edge obtained before the reset is dangling.
    pub fn reset(&mut self) {
        self.ct.clear();
        self.mnodes.clear();
        self.vnodes.clear();
        self.munique.clear();
        self.vunique.clear();
        self.clear_compute_tables();
        self.identity.clear();
        self.build_identity_cache();
    }

    /// Clears all compute tables (the unique tables and arenas stay).
    ///
    /// Useful between independent problems to keep cache lookups fast.
    pub fn clear_compute_tables(&mut self) {
        self.madd_cache.clear();
        self.mmul_cache.clear();
        self.mv_cache.clear();
        self.vadd_cache.clear();
        self.adj_cache.clear();
        self.ip_cache.clear();
        self.maxabs_cache.clear();
    }

    // ---- node construction --------------------------------------------------

    fn check_limit(&self) -> Result<(), DdLimitError> {
        if self.mnodes.len() + self.vnodes.len() >= self.node_limit {
            return Err(DdLimitError {
                node_limit: self.node_limit,
            });
        }
        Ok(())
    }

    /// Creates (or finds) the normalized, hash-consed matrix node.
    fn make_mnode(&mut self, var: u16, children: [MEdge; 4]) -> Result<MEdge, DdLimitError> {
        if children.iter().all(|c| c.is_zero()) {
            return Ok(MEdge::ZERO);
        }
        #[cfg(debug_assertions)]
        for c in &children {
            if !c.is_zero() {
                if var == 0 {
                    debug_assert!(c.node.is_terminal(), "level-0 child must be terminal");
                } else {
                    debug_assert!(!c.node.is_terminal(), "skipped level below var {var}");
                    debug_assert_eq!(self.mnodes[c.node.0 as usize].var, var - 1);
                }
            }
        }
        // Normalize: pull out the largest-magnitude child weight.
        let norm_idx = max_weight_index(&self.ct, children.iter().map(|c| c.weight));
        let norm = children[norm_idx].weight;
        let mut normalized = children;
        for c in &mut normalized {
            if !c.is_zero() {
                c.weight = self.ct.div(c.weight, norm);
            }
        }
        let node = MNode {
            var,
            children: normalized,
        };
        let id = if let Some(&id) = self.munique.get(&node) {
            id
        } else {
            self.check_limit()?;
            let id = NodeId(u32::try_from(self.mnodes.len()).expect("arena index overflow"));
            self.mnodes.push(node);
            self.munique.insert(node, id);
            id
        };
        Ok(MEdge {
            node: id,
            weight: norm,
        })
    }

    /// Creates (or finds) the normalized, hash-consed vector node.
    fn make_vnode(&mut self, var: u16, children: [VEdge; 2]) -> Result<VEdge, DdLimitError> {
        if children.iter().all(|c| c.is_zero()) {
            return Ok(VEdge::ZERO);
        }
        #[cfg(debug_assertions)]
        for c in &children {
            if !c.is_zero() {
                if var == 0 {
                    debug_assert!(c.node.is_terminal(), "level-0 child must be terminal");
                } else {
                    debug_assert!(!c.node.is_terminal(), "skipped level below var {var}");
                    debug_assert_eq!(self.vnodes[c.node.0 as usize].var, var - 1);
                }
            }
        }
        let norm_idx = max_weight_index(&self.ct, children.iter().map(|c| c.weight));
        let norm = children[norm_idx].weight;
        let mut normalized = children;
        for c in &mut normalized {
            if !c.is_zero() {
                c.weight = self.ct.div(c.weight, norm);
            }
        }
        let node = VNode {
            var,
            children: normalized,
        };
        let id = if let Some(&id) = self.vunique.get(&node) {
            id
        } else {
            self.check_limit()?;
            let id = NodeId(u32::try_from(self.vnodes.len()).expect("arena index overflow"));
            self.vnodes.push(node);
            self.vunique.insert(node, id);
            id
        };
        Ok(VEdge {
            node: id,
            weight: norm,
        })
    }

    fn mnode(&self, id: NodeId) -> &MNode {
        &self.mnodes[id.0 as usize]
    }

    fn vnode(&self, id: NodeId) -> &VNode {
        &self.vnodes[id.0 as usize]
    }

    /// The four sub-block edges of a matrix node (`[e00, e01, e10, e11]`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is the terminal or not a live matrix node.
    #[must_use]
    pub fn mnode_children(&self, id: NodeId) -> [MEdge; 4] {
        self.mnode(id).children
    }

    /// The variable level a matrix node decides.
    ///
    /// # Panics
    ///
    /// Panics if `id` is the terminal or not a live matrix node.
    #[must_use]
    pub fn mnode_var(&self, id: NodeId) -> u16 {
        self.mnode(id).var
    }

    /// The two sub-vector edges of a vector node (`[e0, e1]`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is the terminal or not a live vector node.
    #[must_use]
    pub fn vnode_children(&self, id: NodeId) -> [VEdge; 2] {
        self.vnode(id).children
    }

    /// The variable level a vector node decides.
    ///
    /// # Panics
    ///
    /// Panics if `id` is the terminal or not a live vector node.
    #[must_use]
    pub fn vnode_var(&self, id: NodeId) -> u16 {
        self.vnode(id).var
    }

    // ---- gate construction --------------------------------------------------

    /// Builds the matrix DD of a single gate over the full register.
    ///
    /// # Errors
    ///
    /// Returns [`DdLimitError`] if the node limit is exceeded.
    ///
    /// # Panics
    ///
    /// Panics if the gate does not fit the register.
    pub fn gate_medge(&mut self, gate: &Gate) -> Result<MEdge, DdLimitError> {
        assert!(
            gate.max_qubit() < self.n_qubits,
            "gate {gate} exceeds the package's {} qubits",
            self.n_qubits
        );
        match gate.kind() {
            GateKind::Swap => {
                // SWAP (optionally controlled) = CX(b→a) · C⁺X(C∪{a}→b) · CX(b→a).
                let (a, b) = (gate.targets()[0], gate.targets()[1]);
                let outer = Gate::controlled(GateKind::X, vec![b], a);
                let mut mid_controls = gate.controls().to_vec();
                mid_controls.push(a);
                let mid = Gate::controlled(GateKind::X, mid_controls, b);
                let e1 = self.gate_medge(&outer)?;
                let e2 = self.gate_medge(&mid)?;
                let m = self.mul_mm(e2, e1)?;
                self.mul_mm(e1, m)
            }
            kind => {
                let m = kind.base_matrix().expect("single-target kind");
                let target = gate.target();
                let entries = [m.entry(0, 0), m.entry(0, 1), m.entry(1, 0), m.entry(1, 1)];
                let mut em: [MEdge; 4] = [
                    MEdge::terminal(self.ct.intern(entries[0])),
                    MEdge::terminal(self.ct.intern(entries[1])),
                    MEdge::terminal(self.ct.intern(entries[2])),
                    MEdge::terminal(self.ct.intern(entries[3])),
                ];
                // Canonical zero edges for vanishing matrix entries.
                for e in &mut em {
                    if e.weight == Cx::ZERO {
                        *e = MEdge::ZERO;
                    }
                }
                let is_control = |q: usize| gate.controls().contains(&q);
                // Levels below the target.
                for z in 0..target {
                    let below_id = self.identity_below(z);
                    if is_control(z) {
                        em = [
                            self.make_mnode(z as u16, [below_id, MEdge::ZERO, MEdge::ZERO, em[0]])?,
                            self.make_mnode(
                                z as u16,
                                [MEdge::ZERO, MEdge::ZERO, MEdge::ZERO, em[1]],
                            )?,
                            self.make_mnode(
                                z as u16,
                                [MEdge::ZERO, MEdge::ZERO, MEdge::ZERO, em[2]],
                            )?,
                            self.make_mnode(z as u16, [below_id, MEdge::ZERO, MEdge::ZERO, em[3]])?,
                        ];
                    } else {
                        for e in &mut em {
                            *e = self.make_mnode(z as u16, [*e, MEdge::ZERO, MEdge::ZERO, *e])?;
                        }
                    }
                }
                let mut e = self.make_mnode(target as u16, em)?;
                // Levels above the target.
                for z in target + 1..self.n_qubits {
                    if is_control(z) {
                        let below_id = self.identity_below(z);
                        e = self.make_mnode(z as u16, [below_id, MEdge::ZERO, MEdge::ZERO, e])?;
                    } else {
                        e = self.make_mnode(z as u16, [e, MEdge::ZERO, MEdge::ZERO, e])?;
                    }
                }
                Ok(e)
            }
        }
    }

    /// The identity DD over levels strictly below `z` (a scalar 1 for `z = 0`).
    fn identity_below(&self, z: usize) -> MEdge {
        if z == 0 {
            MEdge::terminal(Cx::ONE)
        } else {
            self.identity[z - 1]
        }
    }

    /// Builds the full system matrix DD `U = U_{m−1} ⋯ U₀` of a circuit.
    ///
    /// # Errors
    ///
    /// Returns [`DdLimitError`] if the node limit is exceeded.
    ///
    /// # Panics
    ///
    /// Panics if the circuit's qubit count differs from the package's.
    pub fn circuit_medge(&mut self, circuit: &qcirc::Circuit) -> Result<MEdge, DdLimitError> {
        assert_eq!(
            circuit.n_qubits(),
            self.n_qubits,
            "circuit and package qubit counts differ"
        );
        let mut u = self.identity_medge();
        for gate in circuit.gates() {
            let g = self.gate_medge(gate)?;
            u = self.mul_mm(g, u)?;
            if self.wants_gc() {
                let (mroots, _) = self.compact(&[u], &[]);
                u = mroots[0];
            }
        }
        Ok(u)
    }

    // ---- matrix algebra -------------------------------------------------------

    /// Matrix addition `a + b`.
    ///
    /// # Errors
    ///
    /// Returns [`DdLimitError`] if the node limit is exceeded.
    pub fn add_mm(&mut self, a: MEdge, b: MEdge) -> Result<MEdge, DdLimitError> {
        if a.is_zero() {
            return Ok(b);
        }
        if b.is_zero() {
            return Ok(a);
        }
        if a.node.is_terminal() && b.node.is_terminal() {
            return Ok(MEdge::terminal(self.ct.add(a.weight, b.weight)));
        }
        debug_assert!(!a.node.is_terminal() && !b.node.is_terminal());
        // Canonical operand order (addition commutes).
        let (a, b) = if (b.node, b.weight) < (a.node, a.weight) {
            (b, a)
        } else {
            (a, b)
        };
        // Factor a's weight out: result = a.w · (A₁ + (b.w/a.w)·B₁).
        let rel = self.ct.div(b.weight, a.weight);
        if let Some(&cached) = self.madd_cache.get(&(a.node, b.node, rel)) {
            return Ok(MEdge {
                node: cached.node,
                weight: self.ct.mul(a.weight, cached.weight),
            });
        }
        let an = *self.mnode(a.node);
        let bn = *self.mnode(b.node);
        debug_assert_eq!(an.var, bn.var, "misaligned add");
        let mut children = [MEdge::ZERO; 4];
        for ((child, &ac), &bc) in children.iter_mut().zip(&an.children).zip(&bn.children) {
            let bw = self.ct.mul(bc.weight, rel);
            let b_child = MEdge {
                node: bc.node,
                weight: bw,
            };
            *child = self.add_mm(ac, b_child)?;
        }
        let result = self.make_mnode(an.var, children)?;
        self.madd_cache.insert((a.node, b.node, rel), result);
        Ok(MEdge {
            node: result.node,
            weight: self.ct.mul(a.weight, result.weight),
        })
    }

    /// Matrix multiplication `a · b`.
    ///
    /// # Errors
    ///
    /// Returns [`DdLimitError`] if the node limit is exceeded.
    pub fn mul_mm(&mut self, a: MEdge, b: MEdge) -> Result<MEdge, DdLimitError> {
        if a.is_zero() || b.is_zero() {
            return Ok(MEdge::ZERO);
        }
        let w = self.ct.mul(a.weight, b.weight);
        if a.node.is_terminal() && b.node.is_terminal() {
            return Ok(MEdge::terminal(w));
        }
        debug_assert!(!a.node.is_terminal() && !b.node.is_terminal());
        if let Some(&cached) = self.mmul_cache.get(&(a.node, b.node)) {
            return Ok(MEdge {
                node: cached.node,
                weight: self.ct.mul(w, cached.weight),
            });
        }
        let an = *self.mnode(a.node);
        let bn = *self.mnode(b.node);
        debug_assert_eq!(an.var, bn.var, "misaligned multiply");
        let mut children = [MEdge::ZERO; 4];
        for row in 0..2 {
            for col in 0..2 {
                let p0 = self.mul_mm(an.children[row * 2], bn.children[col])?;
                let p1 = self.mul_mm(an.children[row * 2 + 1], bn.children[2 + col])?;
                children[row * 2 + col] = self.add_mm(p0, p1)?;
            }
        }
        let result = self.make_mnode(an.var, children)?;
        self.mmul_cache.insert((a.node, b.node), result);
        Ok(MEdge {
            node: result.node,
            weight: self.ct.mul(w, result.weight),
        })
    }

    /// Conjugate transpose `a†`.
    ///
    /// # Errors
    ///
    /// Returns [`DdLimitError`] if the node limit is exceeded.
    pub fn adjoint(&mut self, a: MEdge) -> Result<MEdge, DdLimitError> {
        if a.is_zero() {
            return Ok(MEdge::ZERO);
        }
        let w = self.ct.conj(a.weight);
        if a.node.is_terminal() {
            return Ok(MEdge::terminal(w));
        }
        if let Some(&cached) = self.adj_cache.get(&a.node) {
            return Ok(MEdge {
                node: cached.node,
                weight: self.ct.mul(w, cached.weight),
            });
        }
        let an = *self.mnode(a.node);
        let children = [
            self.adjoint(an.children[0])?,
            self.adjoint(an.children[2])?,
            self.adjoint(an.children[1])?,
            self.adjoint(an.children[3])?,
        ];
        let result = self.make_mnode(an.var, children)?;
        self.adj_cache.insert(a.node, result);
        Ok(MEdge {
            node: result.node,
            weight: self.ct.mul(w, result.weight),
        })
    }

    // ---- vector algebra -------------------------------------------------------

    /// Builds the basis-state vector DD `|i⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`DdLimitError`] if the node limit is exceeded (practically
    /// impossible for a chain of `n` nodes).
    ///
    /// # Panics
    ///
    /// Panics if `basis ≥ 2ⁿ`.
    pub fn basis_vedge(&mut self, basis: u64) -> Result<VEdge, DdLimitError> {
        assert!(
            (basis >> self.n_qubits) == 0,
            "basis state {basis} out of range for {} qubits",
            self.n_qubits
        );
        let mut e = VEdge::terminal(Cx::ONE);
        for z in 0..self.n_qubits {
            let bit = (basis >> z) & 1;
            let children = if bit == 0 {
                [e, VEdge::ZERO]
            } else {
                [VEdge::ZERO, e]
            };
            e = self.make_vnode(z as u16, children)?;
        }
        Ok(e)
    }

    /// Builds a vector DD from a dense amplitude array (length `2ⁿ`),
    /// recursively splitting on the top qubit.
    ///
    /// # Errors
    ///
    /// Returns [`DdLimitError`] if the node limit is exceeded.
    ///
    /// # Panics
    ///
    /// Panics if `amplitudes.len() != 2ⁿ`.
    pub fn vedge_from_amplitudes(&mut self, amplitudes: &[Complex]) -> Result<VEdge, DdLimitError> {
        assert_eq!(
            amplitudes.len(),
            1usize << self.n_qubits,
            "amplitude count must be 2^n"
        );
        self.vedge_from_slice(amplitudes, self.n_qubits)
    }

    fn vedge_from_slice(&mut self, amps: &[Complex], levels: usize) -> Result<VEdge, DdLimitError> {
        if levels == 0 {
            let a = amps[0];
            if a.approx_zero() {
                return Ok(VEdge::ZERO);
            }
            return Ok(VEdge::terminal(self.ct.intern(a)));
        }
        let half = amps.len() / 2;
        // Qubit `levels-1` is the most significant bit of the index: the
        // low half of the array has it 0, the high half 1.
        let lo = self.vedge_from_slice(&amps[..half], levels - 1)?;
        let hi = self.vedge_from_slice(&amps[half..], levels - 1)?;
        self.make_vnode((levels - 1) as u16, [lo, hi])
    }

    /// Vector addition `a + b`.
    ///
    /// # Errors
    ///
    /// Returns [`DdLimitError`] if the node limit is exceeded.
    pub fn add_vv(&mut self, a: VEdge, b: VEdge) -> Result<VEdge, DdLimitError> {
        if a.is_zero() {
            return Ok(b);
        }
        if b.is_zero() {
            return Ok(a);
        }
        if a.node.is_terminal() && b.node.is_terminal() {
            return Ok(VEdge::terminal(self.ct.add(a.weight, b.weight)));
        }
        debug_assert!(!a.node.is_terminal() && !b.node.is_terminal());
        let (a, b) = if (b.node, b.weight) < (a.node, a.weight) {
            (b, a)
        } else {
            (a, b)
        };
        let rel = self.ct.div(b.weight, a.weight);
        if let Some(&cached) = self.vadd_cache.get(&(a.node, b.node, rel)) {
            return Ok(VEdge {
                node: cached.node,
                weight: self.ct.mul(a.weight, cached.weight),
            });
        }
        let an = *self.vnode(a.node);
        let bn = *self.vnode(b.node);
        debug_assert_eq!(an.var, bn.var, "misaligned vector add");
        let mut children = [VEdge::ZERO; 2];
        for ((child, &ac), &bc) in children.iter_mut().zip(&an.children).zip(&bn.children) {
            let bw = self.ct.mul(bc.weight, rel);
            *child = self.add_vv(
                ac,
                VEdge {
                    node: bc.node,
                    weight: bw,
                },
            )?;
        }
        let result = self.make_vnode(an.var, children)?;
        self.vadd_cache.insert((a.node, b.node, rel), result);
        Ok(VEdge {
            node: result.node,
            weight: self.ct.mul(a.weight, result.weight),
        })
    }

    /// Matrix-vector product `m · v` — one simulation step.
    ///
    /// # Errors
    ///
    /// Returns [`DdLimitError`] if the node limit is exceeded.
    pub fn mul_mv(&mut self, m: MEdge, v: VEdge) -> Result<VEdge, DdLimitError> {
        if m.is_zero() || v.is_zero() {
            return Ok(VEdge::ZERO);
        }
        let w = self.ct.mul(m.weight, v.weight);
        if m.node.is_terminal() && v.node.is_terminal() {
            return Ok(VEdge::terminal(w));
        }
        debug_assert!(!m.node.is_terminal() && !v.node.is_terminal());
        if let Some(&cached) = self.mv_cache.get(&(m.node, v.node)) {
            return Ok(VEdge {
                node: cached.node,
                weight: self.ct.mul(w, cached.weight),
            });
        }
        let mn = *self.mnode(m.node);
        let vn = *self.vnode(v.node);
        debug_assert_eq!(mn.var, vn.var, "misaligned matrix-vector multiply");
        let mut children = [VEdge::ZERO; 2];
        for (row, child) in children.iter_mut().enumerate() {
            let p0 = self.mul_mv(mn.children[row * 2], vn.children[0])?;
            let p1 = self.mul_mv(mn.children[row * 2 + 1], vn.children[1])?;
            *child = self.add_vv(p0, p1)?;
        }
        let result = self.make_vnode(mn.var, children)?;
        self.mv_cache.insert((m.node, v.node), result);
        Ok(VEdge {
            node: result.node,
            weight: self.ct.mul(w, result.weight),
        })
    }

    /// Simulates a circuit on basis state `|basis⟩` entirely in DD form —
    /// the engine of \[25\].
    ///
    /// # Errors
    ///
    /// Returns [`DdLimitError`] if the node limit is exceeded.
    ///
    /// # Panics
    ///
    /// Panics if the circuit's qubit count differs from the package's.
    pub fn apply_to_basis(
        &mut self,
        circuit: &qcirc::Circuit,
        basis: u64,
    ) -> Result<VEdge, DdLimitError> {
        let v = self.basis_vedge(basis)?;
        self.apply_to_vedge(circuit, v)
    }

    /// Applies a circuit to an arbitrary vector DD — the general form of
    /// [`Package::apply_to_basis`], used when the initial state is itself
    /// the output of a preparation circuit (e.g. a stabilizer stimulus).
    ///
    /// The pass garbage-collects when the arena outgrows the threshold,
    /// which **invalidates every other edge the caller holds** — any edge
    /// that must survive the pass (the initial state for a second pass,
    /// the first pass's output) has to ride along as a keep root via
    /// [`Package::apply_to_vedge_keeping`].
    ///
    /// # Errors
    ///
    /// Returns [`DdLimitError`] if the node limit is exceeded.
    ///
    /// # Panics
    ///
    /// Panics if the circuit's qubit count differs from the package's.
    pub fn apply_to_vedge(
        &mut self,
        circuit: &qcirc::Circuit,
        initial: VEdge,
    ) -> Result<VEdge, DdLimitError> {
        self.apply_to_vedge_keeping(circuit, initial, &mut [])
    }

    /// [`Package::apply_to_vedge`], keeping the caller's extra edges alive
    /// across internal garbage collections: each edge in `keep` is passed
    /// as a GC root and remapped in place, so it stays valid after the
    /// pass. Without this, a mid-pass `compact` leaves caller-held edges
    /// pointing into the old arena — a stale [`NodeId`](crate::NodeId)
    /// that aliases an unrelated node or indexes out of bounds.
    ///
    /// # Errors
    ///
    /// Returns [`DdLimitError`] if the node limit is exceeded.
    ///
    /// # Panics
    ///
    /// Panics if the circuit's qubit count differs from the package's.
    pub fn apply_to_vedge_keeping(
        &mut self,
        circuit: &qcirc::Circuit,
        initial: VEdge,
        keep: &mut [VEdge],
    ) -> Result<VEdge, DdLimitError> {
        assert_eq!(
            circuit.n_qubits(),
            self.n_qubits,
            "circuit and package qubit counts differ"
        );
        let mut v = initial;
        for gate in circuit.gates() {
            let g = self.gate_medge(gate)?;
            v = self.mul_mv(g, v)?;
            if self.wants_gc() {
                let mut roots = Vec::with_capacity(keep.len() + 1);
                roots.push(v);
                roots.extend_from_slice(keep);
                let (_, vroots) = self.compact(&[], &roots);
                v = vroots[0];
                keep.copy_from_slice(&vroots[1..]);
            }
        }
        Ok(v)
    }

    /// The amplitude `⟨basis|v⟩` of a vector DD.
    ///
    /// # Panics
    ///
    /// Panics if `basis ≥ 2ⁿ`.
    #[must_use]
    pub fn amplitude(&self, v: VEdge, basis: u64) -> Complex {
        assert!(
            (basis >> self.n_qubits) == 0,
            "basis state {basis} out of range"
        );
        let mut w = self.ct.value(v.weight);
        let mut node = v.node;
        while !node.is_terminal() {
            let n = self.vnode(node);
            let level = n.var as usize;
            let child = n.children[((basis >> level) & 1) as usize];
            if child.is_zero() {
                return Complex::ZERO;
            }
            w *= self.ct.value(child.weight);
            node = child.node;
        }
        w
    }

    /// Expands a vector DD into a dense amplitude vector (tests and tiny
    /// instances only).
    ///
    /// # Panics
    ///
    /// Panics if the package has more than 20 qubits.
    #[must_use]
    pub fn to_statevector(&self, v: VEdge) -> Vec<Complex> {
        assert!(self.n_qubits <= 20, "dense expansion limited to 20 qubits");
        let dim = 1usize << self.n_qubits;
        (0..dim as u64).map(|i| self.amplitude(v, i)).collect()
    }

    /// The squared norm `⟨v|v⟩` of a vector DD (1 for simulation outputs).
    pub fn vector_norm_sqr(&mut self, v: VEdge) -> f64 {
        self.inner_product(v, v).re
    }

    /// Samples one full-register measurement outcome from a vector DD
    /// without expanding amplitudes — the DDSIM-style sampler: walk from
    /// the root, branching with probability proportional to each child
    /// subtree's squared norm.
    ///
    /// # Panics
    ///
    /// Panics if `v` is the zero vector.
    pub fn sample_vedge(&mut self, v: VEdge, rng: &mut rand::rngs::StdRng) -> u64 {
        use rand::Rng;
        assert!(!v.is_zero(), "cannot sample the zero vector");
        let mut outcome = 0u64;
        let mut node = v.node;
        while !node.is_terminal() {
            let n = *self.vnode(node);
            let weight = |p: &mut Self, e: VEdge| -> f64 {
                if e.is_zero() {
                    0.0
                } else {
                    let child_norm = if e.node.is_terminal() {
                        1.0
                    } else {
                        p.subtree_norm_sqr(e.node)
                    };
                    p.ct.value(e.weight).norm_sqr() * child_norm
                }
            };
            let p0 = weight(self, n.children[0]);
            let p1 = weight(self, n.children[1]);
            let total = p0 + p1;
            debug_assert!(total > 0.0, "dead branch in a nonzero vector DD");
            let take_one = rng.gen::<f64>() * total >= p0;
            if take_one {
                outcome |= 1 << n.var;
                node = n.children[1].node;
            } else {
                node = n.children[0].node;
            }
        }
        outcome
    }

    /// The squared norm of the sub-vector rooted at a node (weight-1 root),
    /// memoized via the inner-product cache.
    fn subtree_norm_sqr(&mut self, node: NodeId) -> f64 {
        let e = VEdge {
            node,
            weight: Cx::ONE,
        };
        self.inner_product(e, e).re
    }

    /// The inner product `⟨a|b⟩` of two vector DDs.
    pub fn inner_product(&mut self, a: VEdge, b: VEdge) -> Complex {
        if a.is_zero() || b.is_zero() {
            return Complex::ZERO;
        }
        let factor = self.ct.value(a.weight).conj() * self.ct.value(b.weight);
        if a.node.is_terminal() && b.node.is_terminal() {
            return factor;
        }
        debug_assert!(!a.node.is_terminal() && !b.node.is_terminal());
        if let Some(&cached) = self.ip_cache.get(&(a.node, b.node)) {
            return factor * cached;
        }
        let an = *self.vnode(a.node);
        let bn = *self.vnode(b.node);
        debug_assert_eq!(an.var, bn.var, "misaligned inner product");
        let mut sum = Complex::ZERO;
        for i in 0..2 {
            sum += self.inner_product(an.children[i], bn.children[i]);
        }
        self.ip_cache.insert((a.node, b.node), sum);
        factor * sum
    }

    // ---- equality -------------------------------------------------------------

    /// Exact (structural = semantic) equality of matrix DDs.
    #[must_use]
    pub fn medges_equal(&self, a: MEdge, b: MEdge) -> bool {
        a == b
    }

    /// The largest entry magnitude `max_{ij} |M_{ij}|` of a matrix DD,
    /// computed recursively (memoized per node).
    pub fn max_abs(&mut self, e: MEdge) -> f64 {
        if e.is_zero() {
            return 0.0;
        }
        self.ct.value(e.weight).abs() * self.node_max_abs(e.node)
    }

    fn node_max_abs(&mut self, node: NodeId) -> f64 {
        if node.is_terminal() {
            return 1.0;
        }
        if let Some(&cached) = self.maxabs_cache.get(&node) {
            return cached;
        }
        let children = self.mnode(node).children;
        let mut best = 0.0f64;
        for c in children {
            if c.is_zero() {
                continue;
            }
            let v = self.ct.value(c.weight).abs() * self.node_max_abs(c.node);
            if v > best {
                best = v;
            }
        }
        self.maxabs_cache.insert(node, best);
        best
    }

    /// Scales a matrix DD by a complex factor (adjusts the root weight).
    pub fn scale_medge(&mut self, e: MEdge, factor: Complex) -> MEdge {
        if e.is_zero() || factor.approx_zero() {
            return MEdge::ZERO;
        }
        let w = self.ct.value(e.weight) * factor;
        MEdge {
            node: e.node,
            weight: self.ct.intern(w),
        }
    }

    /// Entry-wise closeness of two matrix DDs: `max |A − B| ≤ tolerance`.
    ///
    /// This is the drift-tolerant comparison backing the equivalence
    /// checkers: canonical (pointer) equality can be defeated by
    /// accumulated interning rounding on very deep circuits, whereas the
    /// explicit difference bound cannot.
    ///
    /// # Errors
    ///
    /// Returns [`DdLimitError`] if building the difference DD exceeds the
    /// node limit.
    pub fn medges_close(
        &mut self,
        a: MEdge,
        b: MEdge,
        tolerance: f64,
    ) -> Result<bool, DdLimitError> {
        if a == b {
            return Ok(true);
        }
        let minus_b = self.scale_medge(b, Complex::real(-1.0));
        let diff = self.add_mm(a, minus_b)?;
        Ok(self.max_abs(diff) <= tolerance)
    }

    /// The first nonzero entry of column 0, as `(row, value)` — used to
    /// estimate a candidate global-phase ratio between two unitaries.
    #[must_use]
    pub fn first_entry_in_column0(&self, e: MEdge) -> Option<(u64, Complex)> {
        if e.is_zero() {
            return None;
        }
        let mut value = self.ct.value(e.weight);
        let mut node = e.node;
        let mut row = 0u64;
        while !node.is_terminal() {
            let n = self.mnode(node);
            // Column bit is 0 at every level; prefer the row-0 block.
            let (child, bit) = if !n.children[0].is_zero() {
                (n.children[0], 0u64)
            } else if !n.children[2].is_zero() {
                (n.children[2], 1u64)
            } else {
                return None; // column 0 is entirely zero
            };
            row |= bit << n.var;
            value *= self.ct.value(child.weight);
            node = child.node;
        }
        Some((row, value))
    }

    /// Equality of matrix DDs up to one global phase factor.
    #[must_use]
    pub fn medges_equal_up_to_phase(&self, a: MEdge, b: MEdge) -> bool {
        a.node == b.node
            && qnum::approx::approx_eq(self.ct.value(a.weight).abs(), self.ct.value(b.weight).abs())
    }

    /// Returns `true` if the matrix DD is exactly the identity.
    #[must_use]
    pub fn is_identity(&self, e: MEdge) -> bool {
        e == self.identity_medge()
    }

    /// Returns `true` if the matrix DD is the identity up to a global phase.
    #[must_use]
    pub fn is_identity_up_to_phase(&self, e: MEdge) -> bool {
        self.medges_equal_up_to_phase(e, self.identity_medge())
    }

    /// Exact equality of vector DDs.
    #[must_use]
    pub fn vedges_equal(&self, a: VEdge, b: VEdge) -> bool {
        a == b
    }

    /// Equality of vector DDs up to one global phase factor.
    #[must_use]
    pub fn vedges_equal_up_to_phase(&self, a: VEdge, b: VEdge) -> bool {
        a.node == b.node
            && qnum::approx::approx_eq(self.ct.value(a.weight).abs(), self.ct.value(b.weight).abs())
    }

    /// Expands a matrix DD into a dense matrix (tests and the Fig. 1
    /// reproduction only).
    ///
    /// # Panics
    ///
    /// Panics if the package has more than 10 qubits.
    #[must_use]
    pub fn to_matrix(&self, e: MEdge) -> qnum::MatrixN {
        assert!(self.n_qubits <= 10, "dense expansion limited to 10 qubits");
        let mut m = qnum::MatrixN::zero(self.n_qubits);
        let dim = 1usize << self.n_qubits;
        for row in 0..dim {
            for col in 0..dim {
                m.set(row, col, self.matrix_entry(e, row, col));
            }
        }
        m
    }

    /// A single matrix entry `⟨row|M|col⟩` of a matrix DD.
    #[must_use]
    fn matrix_entry(&self, e: MEdge, row: usize, col: usize) -> Complex {
        let mut w = self.ct.value(e.weight);
        if e.is_zero() {
            return Complex::ZERO;
        }
        let mut node = e.node;
        while !node.is_terminal() {
            let n = self.mnode(node);
            let level = n.var as usize;
            let r = (row >> level) & 1;
            let c = (col >> level) & 1;
            let child = n.children[r * 2 + c];
            if child.is_zero() {
                return Complex::ZERO;
            }
            w *= self.ct.value(child.weight);
            node = child.node;
        }
        w
    }
}

/// Index of the largest-magnitude weight (first among near-ties), used for
/// node normalization.
fn max_weight_index(ct: &ComplexTable, weights: impl Iterator<Item = Cx>) -> usize {
    let mut best: Option<usize> = None;
    let mut best_mag = 0.0f64;
    for (i, w) in weights.enumerate() {
        if w == Cx::ZERO {
            continue; // a zero weight can never normalize a nonzero node
        }
        let mag = ct.value(w).norm_sqr();
        // Keep the first index among near-ties (relative epsilon), so that
        // re-normalizing an already-normalized node is the identity — the
        // property GC compaction and canonicity depend on.
        match best {
            None => {
                best = Some(i);
                best_mag = mag;
            }
            Some(_) if mag > best_mag * (1.0 + 1e-9) => {
                best = Some(i);
                best_mag = mag;
            }
            Some(_) => {}
        }
    }
    best.expect("caller guarantees at least one nonzero weight")
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::{generators, Circuit};

    #[test]
    fn identity_dd_matches_dense() {
        let p = Package::new(3);
        let id = p.identity_medge();
        assert!(p.to_matrix(id).approx_eq(&qnum::MatrixN::identity(3)));
        assert!(p.is_identity(id));
    }

    #[test]
    fn single_gate_dds_match_dense() {
        for (n, gate) in [
            (1, Gate::single(GateKind::H, 0)),
            (2, Gate::single(GateKind::T, 1)),
            (2, Gate::controlled(GateKind::X, vec![0], 1)),
            (2, Gate::controlled(GateKind::X, vec![1], 0)),
            (3, Gate::controlled(GateKind::Z, vec![2], 0)),
            (3, Gate::controlled(GateKind::X, vec![0, 2], 1)),
            (3, Gate::swap(0, 2)),
            (3, Gate::controlled_swap(vec![1], 0, 2)),
            (4, Gate::controlled(GateKind::Phase(0.7), vec![1, 3], 0)),
        ] {
            let mut p = Package::new(n);
            let e = p.gate_medge(&gate).unwrap();
            let mut c = Circuit::new(n);
            c.push(gate.clone());
            let expect = qcirc::dense::unitary(&c);
            assert!(
                p.to_matrix(e).approx_eq(&expect),
                "gate {gate} on {n} qubits"
            );
        }
    }

    #[test]
    fn circuit_dd_matches_dense_on_random_circuits() {
        for seed in 0..4 {
            let c = generators::random_clifford_t(4, 40, seed);
            let mut p = Package::new(4);
            let u = p.circuit_medge(&c).unwrap();
            assert!(
                p.to_matrix(u).approx_eq(&qcirc::dense::unitary(&c)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn equal_circuits_share_one_canonical_edge() {
        let c = generators::qft(4, true);
        let mut p = Package::new(4);
        let u1 = p.circuit_medge(&c).unwrap();
        let u2 = p.circuit_medge(&c).unwrap();
        assert_eq!(u1, u2, "canonical DDs must be pointer-identical");
    }

    #[test]
    fn different_circuits_have_different_edges() {
        let mut p = Package::new(3);
        let a = p.circuit_medge(&generators::ghz(3)).unwrap();
        let mut buggy = generators::ghz(3);
        buggy.x(1);
        let b = p.circuit_medge(&buggy).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn adjoint_inverts_unitary_dds() {
        let c = generators::random_clifford_t(4, 30, 9);
        let mut p = Package::new(4);
        let u = p.circuit_medge(&c).unwrap();
        let udag = p.adjoint(u).unwrap();
        let prod = p.mul_mm(udag, u).unwrap();
        assert!(p.is_identity_up_to_phase(prod));
        assert!(p.is_identity(prod), "U†U must be exactly I");
    }

    #[test]
    fn add_and_scalar_structure() {
        let mut p = Package::new(2);
        let id = p.identity_medge();
        let sum = p.add_mm(id, id).unwrap();
        // I + I = 2I: same node, weight 2.
        assert_eq!(sum.node, id.node);
        assert!(p.weight_value(sum.weight).approx_eq(Complex::real(2.0)));
    }

    #[test]
    fn mul_against_dense_includes_phases() {
        let mut c = Circuit::new(3);
        c.h(0)
            .t(0)
            .cx(0, 2)
            .rz(0.9, 2)
            .ccx(0, 1, 2)
            .sdg(1)
            .swap(0, 1);
        let mut p = Package::new(3);
        let u = p.circuit_medge(&c).unwrap();
        assert!(p.to_matrix(u).approx_eq(&qcirc::dense::unitary(&c)));
    }

    #[test]
    fn basis_vector_amplitudes() {
        let mut p = Package::new(3);
        let v = p.basis_vedge(0b101).unwrap();
        assert!(p.amplitude(v, 0b101).approx_one());
        assert!(p.amplitude(v, 0b001).approx_zero());
        let dense = p.to_statevector(v);
        assert_eq!(dense.len(), 8);
        assert!(dense[5].approx_one());
    }

    #[test]
    fn dd_simulation_matches_statevector_simulation() {
        let sim = qsim::Simulator::new();
        for seed in 0..3 {
            let c = generators::random_clifford_t(5, 60, seed);
            let mut p = Package::new(5);
            for basis in [0u64, 9, 31] {
                let v = p.apply_to_basis(&c, basis).unwrap();
                let expect = sim.run_basis(&c, basis);
                let got = p.to_statevector(v);
                for (a, b) in got.iter().zip(expect.amplitudes()) {
                    assert!(a.approx_eq(*b), "seed {seed} basis {basis}");
                }
            }
        }
    }

    #[test]
    fn dd_simulation_of_ghz_is_compact() {
        let mut p = Package::new(10);
        let v = p.apply_to_basis(&generators::ghz(10), 0).unwrap();
        let h = qnum::FRAC_1_SQRT_2;
        assert!((p.amplitude(v, 0).abs() - h).abs() < 1e-10);
        assert!((p.amplitude(v, (1 << 10) - 1).abs() - h).abs() < 1e-10);
        // GHZ states are linear chains; even counting every intermediate
        // state of the simulation the node count stays far below 2¹⁰.
        assert!(
            p.stats().vector_nodes < 300,
            "got {}",
            p.stats().vector_nodes
        );
    }

    #[test]
    fn inner_product_matches_dense() {
        let sim = qsim::Simulator::new();
        let g = generators::qft(4, true);
        let mut buggy = g.clone();
        buggy.x(2);
        let mut p = Package::new(4);
        let va = p.apply_to_basis(&g, 3).unwrap();
        let vb = p.apply_to_basis(&buggy, 3).unwrap();
        let ip_dd = p.inner_product(va, vb);
        let sa = sim.run_basis(&g, 3);
        let sb = sim.run_basis(&buggy, 3);
        let ip_sv = sa.inner_product(&sb);
        assert!(ip_dd.approx_eq_with(ip_sv, 1e-8));
        // Self inner product is 1.
        assert!(p.inner_product(va, va).approx_one());
    }

    #[test]
    fn vector_phase_equality() {
        let mut p = Package::new(2);
        let mut a = Circuit::new(2);
        a.h(0).cx(0, 1);
        let mut b = a.clone();
        b.rz(2.0 * std::f64::consts::PI, 0); // −1 global phase on the support
        let va = p.apply_to_basis(&a, 0).unwrap();
        let vb = p.apply_to_basis(&b, 0).unwrap();
        assert!(!p.vedges_equal(va, vb));
        assert!(p.vedges_equal_up_to_phase(va, vb));
    }

    #[test]
    fn vedge_from_amplitudes_roundtrips() {
        let mut p = Package::new(3);
        let c = generators::qft(3, true);
        let sv = qsim::Simulator::new().run_basis(&c, 5);
        let v = p.vedge_from_amplitudes(sv.amplitudes()).unwrap();
        for (i, amp) in p.to_statevector(v).iter().enumerate() {
            assert!(amp.approx_eq(sv.amplitudes()[i]), "index {i}");
        }
        // Canonicity across construction paths: the DD built from dense
        // amplitudes equals the DD built by simulation.
        let direct = p.apply_to_basis(&c, 5).unwrap();
        assert_eq!(v, direct);
    }

    #[test]
    fn vedge_from_amplitudes_handles_sparsity() {
        let mut p = Package::new(4);
        let mut amps = vec![Complex::ZERO; 16];
        amps[9] = Complex::ONE;
        let v = p.vedge_from_amplitudes(&amps).unwrap();
        let basis = p.basis_vedge(9).unwrap();
        assert_eq!(v, basis);
    }

    #[test]
    fn dd_sampling_matches_the_distribution() {
        use rand::SeedableRng;
        // GHZ: outcomes must be all-zeros or all-ones, roughly balanced.
        let mut p = Package::new(6);
        let v = p.apply_to_basis(&generators::ghz(6), 0).unwrap();
        assert!((p.vector_norm_sqr(v) - 1.0).abs() < 1e-9);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut ones = 0;
        let trials = 400;
        for _ in 0..trials {
            let sample = p.sample_vedge(v, &mut rng);
            assert!(
                sample == 0 || sample == 0b111111,
                "impossible outcome {sample:b}"
            );
            if sample != 0 {
                ones += 1;
            }
        }
        assert!(
            ones > trials / 4 && ones < 3 * trials / 4,
            "imbalanced: {ones}/{trials}"
        );
    }

    #[test]
    fn dd_sampling_respects_biased_amplitudes() {
        use rand::SeedableRng;
        // Ry(θ)|0⟩ with sin²(θ/2) ≈ 0.1: outcome 1 should appear ~10%.
        let theta = 2.0f64 * (0.1f64).sqrt().asin();
        let mut c = qcirc::Circuit::new(1);
        c.ry(theta, 0);
        let mut p = Package::new(1);
        let v = p.apply_to_basis(&c, 0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let trials = 3000;
        let ones: usize = (0..trials)
            .map(|_| p.sample_vedge(v, &mut rng) as usize)
            .sum();
        let rate = ones as f64 / trials as f64;
        assert!((rate - 0.1).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn node_limit_is_enforced() {
        let mut p = Package::with_node_limit(12, 40);
        // A supremacy-style circuit blows past 40 nodes immediately.
        let c = generators::supremacy_2d(3, 4, 8, 1);
        let err = p.circuit_medge(&c).unwrap_err();
        assert_eq!(err.node_limit, 40);
        assert!(err.to_string().contains("node limit"));
    }

    #[test]
    fn clear_compute_tables_keeps_results_valid() {
        let mut p = Package::new(3);
        let u1 = p.circuit_medge(&generators::ghz(3)).unwrap();
        p.clear_compute_tables();
        let u2 = p.circuit_medge(&generators::ghz(3)).unwrap();
        assert_eq!(u1, u2);
    }

    #[test]
    fn compact_preserves_semantics_and_shrinks() {
        let c = generators::qft(6, true);
        let mut p = Package::new(6);
        let u = p.circuit_medge(&c).unwrap();
        let dense_before = p.to_matrix(u);
        let v = p.apply_to_basis(&c, 5).unwrap();
        let amps_before = p.to_statevector(v);
        let before = p.stats();
        let (mroots, vroots) = p.compact(&[u], &[v]);
        let after = p.stats();
        assert!(
            after.matrix_nodes + after.vector_nodes <= before.matrix_nodes + before.vector_nodes
        );
        assert!(p.to_matrix(mroots[0]).approx_eq(&dense_before));
        for (a, b) in p.to_statevector(vroots[0]).iter().zip(amps_before.iter()) {
            assert!(a.approx_eq(*b));
        }
        // Remapped edges stay canonical: rebuilding the circuit after the
        // collection yields the same edge again.
        let u2 = p.circuit_medge(&c).unwrap();
        assert_eq!(u2, mroots[0]);
    }

    #[test]
    fn automatic_gc_keeps_long_simulations_bounded() {
        // QFT 32 on a basis state stays a product state; with a tiny GC
        // threshold the arenas must stay far below gate count × height.
        let c = generators::qft(32, false);
        let mut p = Package::new(32);
        p.set_gc_threshold(20_000);
        let v = p.apply_to_basis(&c, 0xDEAD_BEEF).unwrap();
        assert!((p.amplitude(v, 0).abs() - 1.0 / f64::powi(2.0, 16)).abs() < 1e-9);
        let stats = p.stats();
        assert!(
            stats.matrix_nodes + stats.vector_nodes < 60_000,
            "GC failed to bound arenas: {stats:?}"
        );
    }

    #[test]
    fn gc_threshold_accessors() {
        let mut p = Package::new(2);
        p.set_gc_threshold(5000);
        assert_eq!(p.gc_threshold(), 5000);
        assert!(!p.wants_gc());
        p.set_gc_threshold(0); // clamped
        assert!(p.gc_threshold() >= 1024);
    }

    #[test]
    fn stats_grow_with_work() {
        let mut p = Package::new(4);
        let before = p.stats();
        let _ = p.circuit_medge(&generators::qft(4, false)).unwrap();
        let after = p.stats();
        assert!(after.matrix_nodes > before.matrix_nodes);
        assert!(after.complex_values > before.complex_values);
    }
}
