//! Cross-engine agreement: the dense reference, the statevector simulator
//! and the decision-diagram package must compute identical semantics.

use qcirc::{generators, Circuit};
use qsim::Simulator;

fn workloads() -> Vec<Circuit> {
    vec![
        generators::bell().widened(4),
        generators::ghz(4),
        generators::qft(4, true),
        generators::grover(4, 11, 2),
        generators::supremacy_2d(2, 2, 6, 3),
        generators::trotter_heisenberg(2, 2, 1, 0.2, 0.4),
        generators::cuccaro_adder(1),
        generators::random_clifford_t(4, 60, 8),
        generators::toffoli_network(4, 25, 2, 9),
    ]
}

#[test]
fn statevector_matches_dense_reference() {
    let sim = Simulator::new();
    for c in workloads() {
        let u = qcirc::dense::unitary(&c);
        for basis in 0..(1u64 << c.n_qubits().min(3)) {
            let out = sim.run_basis(&c, basis);
            for (row, amp) in out.amplitudes().iter().enumerate() {
                assert!(
                    amp.approx_eq(u.entry(row, basis as usize)),
                    "{}: basis {basis}",
                    c.name()
                );
            }
        }
    }
}

#[test]
fn dd_simulation_matches_statevector() {
    let sim = Simulator::new();
    for c in workloads() {
        let mut p = qdd::Package::new(c.n_qubits());
        for basis in [0u64, 1, 5] {
            let v = p.apply_to_basis(&c, basis).unwrap();
            let expect = sim.run_basis(&c, basis);
            for (i, amp) in p.to_statevector(v).iter().enumerate() {
                assert!(
                    amp.approx_eq(expect.amplitudes()[i]),
                    "{}: basis {basis} index {i}",
                    c.name()
                );
            }
        }
    }
}

#[test]
fn dd_matrix_matches_dense_reference() {
    for c in workloads() {
        let mut p = qdd::Package::new(c.n_qubits());
        let u = p.circuit_medge(&c).unwrap();
        assert!(
            p.to_matrix(u).approx_eq(&qcirc::dense::unitary(&c)),
            "{}",
            c.name()
        );
    }
}

#[test]
fn simulator_unitary_builder_matches_dense() {
    for c in workloads() {
        assert!(
            qsim::unitary(&c).approx_eq(&qcirc::dense::unitary(&c)),
            "{}",
            c.name()
        );
    }
}

#[test]
fn threaded_simulator_matches_sequential() {
    let c = generators::supremacy_2d(4, 5, 8, 2); // 20 qubits: 2²⁰ amplitudes
    let seq = Simulator::new().run_basis(&c, 77);
    let par = Simulator::with_threads(4).run_basis(&c, 77);
    assert!(seq.approx_eq(&par));
}

#[test]
fn both_flow_backends_reach_the_same_verdicts() {
    use qcec::{BackendKind, Config};
    let g = generators::grover(4, 7, 2);
    let mut buggy = g.clone();
    buggy.t(2);
    for backend in BackendKind::ALL {
        let config = Config::new().with_backend(backend);
        let eq = qcec::check_equivalence(&g, &g, &config).unwrap();
        assert!(eq.outcome.is_equivalent(), "{backend:?}");
        let ne = qcec::check_equivalence(&g, &buggy, &config).unwrap();
        assert!(ne.outcome.is_not_equivalent(), "{backend:?}");
    }
}

// ---------------------------------------------------------------------------
// Backend-agreement suite: the statevector and decision-diagram probe
// engines must return identical verdicts — and, on non-equivalence, the
// identical decisive run index and witnessing stimulus — on every escapee
// fixture and on generated circuit pairs, across 1/2/8 scheduler threads.
// The backends share the pre-drawn stimulus list and the sequential-replay
// judge, so any divergence here is an engine bug, not noise.
// ---------------------------------------------------------------------------

use proptest::prelude::*;
use qcec::{check_equivalence, BackendKind, Config, Outcome, Stimulus};

/// The verdict class plus (for simulation counterexamples) the decisive
/// run index and stimulus — everything that must match across engines.
/// Overlap values are deliberately excluded: sv and DD arithmetic agree to
/// ~1e-12, not bitwise.
#[derive(Debug, Clone, PartialEq)]
enum VerdictShape {
    Equivalent,
    NotEquivalentAt(usize, Stimulus),
    NotEquivalentByCompleteCheck,
    ProbablyEquivalent,
}

fn shape(outcome: &Outcome) -> VerdictShape {
    match outcome {
        Outcome::Equivalent | Outcome::EquivalentUpToGlobalPhase { .. } => VerdictShape::Equivalent,
        Outcome::NotEquivalent {
            counterexample: Some(ce),
        } => VerdictShape::NotEquivalentAt(ce.run, ce.stimulus.clone()),
        Outcome::NotEquivalent {
            counterexample: None,
        } => VerdictShape::NotEquivalentByCompleteCheck,
        Outcome::ProbablyEquivalent { .. } => VerdictShape::ProbablyEquivalent,
    }
}

/// Checks one pair on the given backends across 1/2/8 worker threads and
/// asserts every run produces the same verdict shape.
fn assert_backends_agree(
    name: &str,
    g: &Circuit,
    g_prime: &Circuit,
    base: &Config,
    backends: &[BackendKind],
) {
    let mut reference: Option<VerdictShape> = None;
    for threads in [1usize, 2, 8] {
        for &backend in backends {
            let config = base.clone().with_threads(threads).with_backend(backend);
            let result = check_equivalence(g, g_prime, &config)
                .unwrap_or_else(|e| panic!("{name}: flow failed ({e})"));
            let got = shape(&result.outcome);
            match &reference {
                None => reference = Some(got),
                Some(expected) => assert_eq!(
                    expected, &got,
                    "{name}: {backend:?} × {threads} threads diverged"
                ),
            }
        }
    }
}

/// Checks one pair across batch sizes 1/3/8 × 1/2/8 scheduler threads on
/// the given backend and asserts every combination produces the same
/// verdict shape — the batch contract (per-stimulus outcomes are
/// bit-identical at any batch size) observed end to end through the flow,
/// the scheduler's batched claim protocol included.
fn assert_batch_sizes_agree(
    name: &str,
    g: &Circuit,
    g_prime: &Circuit,
    base: &Config,
    backend: BackendKind,
) {
    let mut reference: Option<VerdictShape> = None;
    for batch in [1usize, 3, 8] {
        for threads in [1usize, 2, 8] {
            let config = base
                .clone()
                .with_backend(backend)
                .with_batch_size(batch)
                .with_threads(threads);
            let result = check_equivalence(g, g_prime, &config)
                .unwrap_or_else(|e| panic!("{name}: flow failed ({e})"));
            let got = shape(&result.outcome);
            match &reference {
                None => reference = Some(got),
                Some(expected) => assert_eq!(
                    expected, &got,
                    "{name}: {backend:?} batch {batch} × {threads} threads diverged"
                ),
            }
        }
    }
}

fn escapee_pairs() -> Vec<(String, Circuit, Circuit, u64)> {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/escapees");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("escapee fixture directory")
        .map(|e| e.unwrap().path())
        .filter(|p| p.to_string_lossy().ends_with(".golden.qasm"))
        .collect();
    entries.sort();
    entries
        .into_iter()
        .map(|golden_path| {
            let name = golden_path
                .file_name()
                .unwrap()
                .to_string_lossy()
                .trim_end_matches(".golden.qasm")
                .to_string();
            let faulty_src = std::fs::read_to_string(
                golden_path
                    .to_string_lossy()
                    .replace(".golden.qasm", ".faulty.qasm"),
            )
            .unwrap();
            let seed: u64 = faulty_src
                .lines()
                .find_map(|l| l.strip_prefix("// escapes-seeds: "))
                .and_then(|s| s.split(',').next())
                .and_then(|s| s.trim().parse().ok())
                .expect("escapes-seeds header");
            let golden = qcirc::qasm::parse(&std::fs::read_to_string(&golden_path).unwrap());
            (
                name,
                golden.unwrap(),
                qcirc::qasm::parse(&faulty_src).unwrap(),
                seed,
            )
        })
        .collect()
}

/// Escapee fixtures under their recorded escaping seeds: basis stimuli
/// miss on both engines (agreeing "probably equivalent" with the fallback
/// off), while stabilizer stimuli produce the *same* decisive run and
/// witness stimulus on both.
///
/// Every engine — the tensor-network one included — runs the basis arm:
/// on basis inputs the v-chain fixtures stay rank-compressed, so the MPS
/// evolution is exact and cheap at 9–13 qubits. The stabilizer arm is
/// restricted to the dense, DD and tableau engines: a random stabilizer
/// stimulus is a volume-law state that saturates every bond, and driving
/// hundreds of long-range gates through saturated χ costs minutes per
/// fixture — the regime the MPS engine is explicitly not built for.
/// MPS-vs-dense agreement *under stabilizer stimuli* is covered at small
/// widths by `backends_agree_on_clifford_pairs` below.
#[test]
fn backends_agree_on_every_escapee_fixture() {
    use qcec::{Fallback, StimulusStrategy};
    const STABILIZER_ARM: &[BackendKind] = &[
        BackendKind::Statevector,
        BackendKind::DecisionDiagram,
        BackendKind::Stab,
    ];
    for (name, golden, faulty, seed) in escapee_pairs() {
        let sim_only = Config::new()
            .with_simulations(10)
            .with_seed(seed)
            .with_fallback(Fallback::None);
        assert_backends_agree(&name, &golden, &faulty, &sim_only, &BackendKind::ALL);
        let stabilizer = sim_only.clone().with_stimuli(StimulusStrategy::Stabilizer);
        assert_backends_agree(
            &format!("{name} [stabilizer]"),
            &golden,
            &faulty,
            &stabilizer,
            STABILIZER_ARM,
        );
    }
}

/// The batch ablation on every escapee fixture: the verdict class — and,
/// on a conviction, the decisive run index and witness stimulus — must be
/// invariant under batch size at any scheduler width. The dense engine
/// runs the true batched kernels; the DD arm exercises the trait's
/// loop-the-single-path default implementation.
#[test]
fn batch_sizes_agree_on_every_escapee_fixture() {
    use qcec::{Fallback, StimulusStrategy};
    for (name, golden, faulty, seed) in escapee_pairs() {
        let stabilizer = Config::new()
            .with_simulations(10)
            .with_seed(seed)
            .with_fallback(Fallback::None)
            .with_stimuli(StimulusStrategy::Stabilizer);
        assert_batch_sizes_agree(
            &name,
            &golden,
            &faulty,
            &stabilizer,
            BackendKind::Statevector,
        );
        assert_batch_sizes_agree(
            &format!("{name} [dd]"),
            &golden,
            &faulty,
            &stabilizer,
            BackendKind::DecisionDiagram,
        );
    }
}

/// A trailing Z on an untouched qubit is a *phase-only* fault: every basis
/// stimulus comes back with `|⟨u|u′⟩| = 1` and only the sign varies with
/// the input bit. The stabilizer tableau certifies overlap magnitudes
/// alone, so on this all-Clifford pair its fast path can never convict —
/// under the default criterion the stab backend must let all simulations
/// pass and defer to the complete check, which still reaches
/// non-equivalence. Under [`Criterion::Strict`] the tableau path is
/// disabled entirely (it cannot observe the phase Strict cares about), so
/// the dense probes convict in simulation — same verdict class as sv,
/// reached through the sound path.
#[test]
fn stab_tableau_path_defers_phase_only_faults_to_the_complete_check() {
    use qcec::Criterion;
    let mut g = Circuit::new(3);
    g.h(1);
    g.cx(1, 2);
    let mut phased = g.clone();
    phased.z(0);

    // Default criterion: sv convicts by cross-run phase inconsistency; the
    // stab tableau path sees magnitude 1 on every run and must defer.
    let base = Config::new().with_simulations(10).with_seed(3);
    let sv = check_equivalence(
        &g,
        &phased,
        &base.clone().with_backend(BackendKind::Statevector),
    )
    .unwrap();
    assert!(
        matches!(
            &sv.outcome,
            Outcome::NotEquivalent {
                counterexample: Some(_)
            }
        ),
        "sv must catch the phase fault in simulation, got {}",
        sv.outcome
    );
    let stab =
        check_equivalence(&g, &phased, &base.clone().with_backend(BackendKind::Stab)).unwrap();
    assert_eq!(
        stab.outcome,
        Outcome::NotEquivalent {
            counterexample: None
        },
        "the tableau path cannot see phases: the complete check must convict"
    );
    // (`counterexample: None` already proves no simulation convicted; the
    // scheduler may cancel trailing sims once the complete check wins the
    // race, so the exact count is not pinned.)
    assert!(stab.stats.simulations_run > 0, "simulations must have run");

    // Strict: the tableau path is disabled, probes run densely, and the
    // −1 overlap is a first-class output mismatch.
    let strict = base.with_criterion(Criterion::Strict);
    let stab_strict =
        check_equivalence(&g, &phased, &strict.with_backend(BackendKind::Stab)).unwrap();
    assert!(
        matches!(
            &stab_strict.outcome,
            Outcome::NotEquivalent {
                counterexample: Some(_)
            }
        ),
        "under Strict the dense fallback must convict in simulation, got {}",
        stab_strict.outcome
    );
}

/// The MPS probe path past the dense wall: a 32-qubit pair no statevector
/// can hold. The GHZ ladder keeps the bond dimension at 2, so the default
/// χ runs exactly — an equivalent routing is proven (`truncation_error ==
/// 0` means the "all agreed" verdict carries full weight) and a stray T
/// gate on the entangled register is convicted in simulation.
#[test]
fn mps_flow_reaches_verdicts_past_the_dense_wall() {
    use qcec::Fallback;
    let n = 32;
    let g = generators::ghz(n);
    // An equivalent realization: the same ladder with a cancelled pair.
    let mut same = g.clone();
    same.x(7).x(7);
    let mut buggy = g.clone();
    buggy.t(n - 1);
    let config = Config::new()
        .with_simulations(6)
        .with_seed(11)
        .with_backend(BackendKind::Mps)
        .with_fallback(Fallback::None);
    let eq = check_equivalence(&g, &same, &config).unwrap();
    assert!(
        matches!(eq.outcome, Outcome::ProbablyEquivalent { .. }),
        "sim-only equivalent run: {}",
        eq.outcome
    );
    let ne = check_equivalence(&g, &buggy, &config).unwrap();
    assert!(
        matches!(
            ne.outcome,
            Outcome::NotEquivalent {
                counterexample: Some(_)
            }
        ),
        "T after the ladder phases only the |1…1⟩ branch: {}",
        ne.outcome
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Exact-regime cross-check of the tensor-network arithmetic itself:
    /// with an uncapped bond dimension the MPS evolution is exact, so the
    /// inner product of two evolved stimuli must match the dense
    /// statevector overlap to near machine precision — and report zero
    /// truncation error while doing it.
    #[test]
    fn mps_inner_products_match_dense_overlaps_exactly(
        n in 2usize..6,
        basis in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let c = generators::random_clifford_t(n, 40, seed);
        let optimized = qcirc::optimize::optimize(&c);
        let basis = basis % (1u64 << n);
        let chi = 1 << n; // ≥ any Schmidt rank at this width: exact
        let mut a = qmpo::Mps::basis_state(n, basis);
        let mut b = qmpo::Mps::basis_state(n, basis);
        for gate in c.gates() {
            a.apply_gate(gate, chi);
        }
        for gate in optimized.gates() {
            b.apply_gate(gate, chi);
        }
        prop_assert_eq!(a.truncation_error(), 0.0);
        prop_assert_eq!(b.truncation_error(), 0.0);
        let sim = Simulator::new();
        let u = sim.run_basis(&c, basis);
        let v = sim.run_basis(&optimized, basis);
        let dense: qnum::Complex = u
            .amplitudes()
            .iter()
            .zip(v.amplitudes())
            .map(|(x, y)| x.conj() * *y)
            .sum();
        let tn = a.inner_product(&b);
        prop_assert!(
            (tn - dense).norm_sqr() < 1e-18,
            "n={} basis={}: mps {} vs dense {}", n, basis, tn, dense
        );
    }

    /// Generated pairs — an equivalent optimization and a seeded injected
    /// fault — keep both engines in lockstep across scheduler widths.
    #[test]
    fn backends_agree_on_generated_pairs(n in 3usize..6, seed in any::<u64>()) {
        let c = generators::random_clifford_t(n, 50, seed);
        let optimized = qcirc::optimize::optimize(&c);
        let base = Config::new().with_seed(seed);
        assert_backends_agree("optimized pair", &c, &optimized, &base, &BackendKind::ALL);
        let mut buggy = c.clone();
        buggy.x((seed % n as u64) as usize);
        assert_backends_agree("injected fault", &c, &buggy, &base, &BackendKind::ALL);
    }

    /// Generated pairs stay verdict-invariant under the batch axis too:
    /// same decisive run and stimulus at batch sizes 1/3/8 across 1/2/8
    /// scheduler threads, equivalent and faulty pairs alike.
    #[test]
    fn batch_sizes_agree_on_generated_pairs(n in 3usize..6, seed in any::<u64>()) {
        let c = generators::random_clifford_t(n, 50, seed);
        let optimized = qcirc::optimize::optimize(&c);
        let base = Config::new().with_seed(seed);
        assert_batch_sizes_agree(
            "optimized pair", &c, &optimized, &base, BackendKind::Statevector,
        );
        let mut buggy = c.clone();
        buggy.x((seed % n as u64) as usize);
        assert_batch_sizes_agree(
            "injected fault", &c, &buggy, &base, BackendKind::Statevector,
        );
    }

    /// Pure-Clifford pairs: the stabilizer engine takes its O(n²) tableau
    /// path end to end (no dense fallback), and must reach the same
    /// verdict *class* as the engines that simulate amplitudes for real,
    /// across 1/2/8 scheduler threads. The comparison is by class, not by
    /// decisive run: the tableau path certifies overlap magnitudes, so a
    /// fault visible only as a stimulus-dependent *phase* is — by design,
    /// see the `StabBackend` docs — left to the complete check, which can
    /// shift the detection stage relative to sv without changing the
    /// verdict.
    #[test]
    fn backends_agree_on_clifford_pairs(n in 3usize..7, seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let c = qstab::random_stabilizer_circuit(n, &mut rng);
        let optimized = qcirc::optimize::optimize(&c);
        let mut buggy = c.clone();
        buggy.x((seed % n as u64) as usize);
        for (name, g, g_prime, want_equal) in [
            ("clifford optimized", &c, &optimized, true),
            ("clifford fault", &c, &buggy, false),
        ] {
            for threads in [1usize, 2, 8] {
                for backend in BackendKind::ALL {
                    let config = Config::new()
                        .with_seed(seed)
                        .with_threads(threads)
                        .with_backend(backend)
                        .with_stimuli(qcec::StimulusStrategy::Stabilizer);
                    let result = check_equivalence(g, g_prime, &config).unwrap();
                    prop_assert_eq!(
                        result.outcome.is_equivalent(),
                        want_equal,
                        "{}: {:?} x {} threads: {}",
                        name, backend, threads, result.outcome
                    );
                }
            }
        }
    }
}
