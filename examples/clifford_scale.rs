//! Clifford equivalence checking at scales no dense method can touch.
//!
//! For Clifford circuits, the paper's random-stimulus flow runs on
//! stabilizer tableaus: each simulation costs `O(m·n)` *bit* operations, so
//! the same idea that checks 16-qubit supremacy circuits checks
//! 200-qubit Clifford networks interactively.
//!
//! Run with `cargo run --release -p qcec-examples --bin clifford_scale`.

use std::time::Instant;

use qstab::{check_clifford_equivalence, CliffordVerdict};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for n in [50usize, 100, 200] {
        // A deep entangling Clifford circuit, mapped to a ring.
        let g = qcirc::generators::ghz(n);
        let mapped = qcirc::mapping::route(
            &g,
            &qcirc::mapping::CouplingMap::ring(n),
            Default::default(),
        )?;
        assert!(qstab::is_clifford(&mapped.circuit));

        let start = Instant::now();
        let verdict = check_clifford_equivalence(&g, &mapped.circuit, 10, 1)?;
        let elapsed = start.elapsed();
        println!(
            "n = {n:>3}: mapped GHZ ({} gates) vs original — {:?} in {elapsed:?}",
            mapped.circuit.len(),
            verdict
        );
        assert!(matches!(verdict, CliffordVerdict::AllAgreed { .. }));

        // Now a sign error deep inside: invisible to Z-basis statistics,
        // caught by the stabilizer witness.
        let mut buggy = mapped.circuit.clone();
        buggy.z(n / 2);
        let start = Instant::now();
        match check_clifford_equivalence(&g, &buggy, 10, 1)? {
            CliffordVerdict::NotEquivalent { run, witness, .. } => {
                println!(
                    "         Z error on qubit {}: caught in run {run} ({:?}); witness {}",
                    n / 2,
                    start.elapsed(),
                    witness
                );
            }
            other => return Err(format!("missed the error: {other:?}").into()),
        }
    }
    Ok(())
}
