//! OpenQASM 2.0 support: [`parse`] source into a [`Circuit`](crate::Circuit)
//! and [`write()`] circuits back out.
//!
//! The dialect supported is the `qelib1` subset used by the paper's
//! benchmark circuits; see [`parse`] for the exact feature list.

mod lexer;
mod parser;
mod writer;

pub use lexer::{LexError, Token, TokenKind};
pub use parser::{parse, parse_lenient, LenientParse, ParseQasmError};
pub use writer::write;

/// Reads and parses an OpenQASM 2.0 file.
///
/// # Errors
///
/// Returns an I/O error if the file cannot be read, or a boxed
/// [`ParseQasmError`] if the contents do not parse. A `&mut` reference to
/// any `Read`-free path type works via `AsRef<Path>`.
pub fn parse_file(
    path: impl AsRef<std::path::Path>,
) -> Result<crate::Circuit, Box<dyn std::error::Error + Send + Sync>> {
    let source = std::fs::read_to_string(path.as_ref())?;
    Ok(parse(&source)?)
}
