//! Multithreaded gate kernels for large state vectors.
//!
//! A single-qubit (possibly controlled) gate factorizes over blocks of
//! `2^{target+1}` consecutive amplitudes, so the amplitude array can be
//! split at block boundaries and processed by independent threads with no
//! synchronization beyond the final join. Scoped threads keep the API
//! allocation-free and `unsafe`-free.

use qnum::{Complex, Matrix2};

use crate::kernels;

/// Parallel version of [`kernels::apply_controlled_single`]: splits the
/// amplitude slice into per-thread chunks aligned to the gate's block size.
///
/// Falls back to the sequential kernel when the slice is too small to split
/// at block granularity.
///
/// # Panics
///
/// Panics if `threads == 0` (debug builds also check the mask/target
/// invariants, as in the sequential kernel).
pub fn apply_controlled_single_parallel(
    amps: &mut [Complex],
    control_mask: usize,
    target: usize,
    m: &Matrix2,
    threads: usize,
) {
    assert!(threads > 0, "need at least one thread");
    let block = 1usize << (target + 1);
    let n_blocks = amps.len() / block;
    if threads == 1 || n_blocks < 2 * threads {
        kernels::apply_controlled_single(amps, control_mask, target, m);
        return;
    }
    let blocks_per_thread = n_blocks.div_ceil(threads);
    let chunk_len = blocks_per_thread * block;
    std::thread::scope(|scope| {
        for (i, chunk) in amps.chunks_mut(chunk_len).enumerate() {
            // Chunks are block-aligned; pass the absolute offset so control
            // bits above the chunk size are tested correctly.
            let offset = i * chunk_len;
            scope.spawn(move || {
                kernels::apply_controlled_single_at(chunk, offset, control_mask, target, m);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential() {
        let n = 12;
        let dim = 1usize << n;
        let amps: Vec<Complex> = (0..dim)
            .map(|i| Complex::from_polar(1.0 / (dim as f64).sqrt(), i as f64 * 0.01))
            .collect();
        for target in [0usize, 3, n - 1] {
            // Include a high control bit to exercise absolute-index masking
            // across chunk boundaries.
            for mask in [0usize, 1 << ((target + 1) % n), 1 << (n - 1)] {
                let mask = if mask & (1 << target) != 0 { 0 } else { mask };
                let m = Matrix2::u3(0.3, -0.9, 1.4);
                let mut seq = amps.clone();
                kernels::apply_controlled_single(&mut seq, mask, target, &m);
                let mut par = amps.clone();
                apply_controlled_single_parallel(&mut par, mask, target, &m, 4);
                for (a, b) in seq.iter().zip(par.iter()) {
                    assert!(a.approx_eq(*b), "target={target} mask={mask}");
                }
            }
        }
    }

    #[test]
    fn tiny_slices_fall_back_to_sequential() {
        let mut amps = vec![Complex::ONE, Complex::ZERO];
        apply_controlled_single_parallel(&mut amps, 0, 0, &Matrix2::pauli_x(), 8);
        assert!(amps[1].approx_one());
    }
}
