//! The equivalence guard: label mutations that happen to be benign.
//!
//! A syntactic mutation is not always a semantic fault — exchanging the
//! operands of a CZ, dropping a gate that was a no-op, or perturbing an
//! angle by a multiple of `2π` leaves the unitary unchanged. Campaigns
//! that count detection rates must not score such instances as "missed
//! errors", so small instances are re-checked with the complete
//! decision-diagram equivalence check (`qdd`) and labelled.

use std::fmt;
use std::time::Duration;

use qcirc::Circuit;
use qdd::{check_equivalence_alternating, DdEquivalence, Package};

/// Budget for the guard's complete check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardOptions {
    /// Largest register the guard will check completely; bigger instances
    /// are [`GuardVerdict::Unchecked`]. The complete check is exponential
    /// in the worst case, so keep this small (default 14).
    pub max_qubits: usize,
    /// Wall-clock budget per check (default 5 s).
    pub deadline: Option<Duration>,
    /// Decision-diagram node budget per check.
    pub node_limit: usize,
}

impl Default for GuardOptions {
    fn default() -> Self {
        GuardOptions {
            max_qubits: 14,
            deadline: Some(Duration::from_secs(5)),
            node_limit: 1_000_000,
        }
    }
}

/// What the guard concluded about one mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum GuardVerdict {
    /// The mutation genuinely changed the functionality — a real fault.
    Fault,
    /// The mutation left the unitary unchanged (up to global phase when
    /// `phase` is `Some`): the instance must not count against any
    /// checker's detection rate.
    Benign {
        /// `Some(φ)` when the circuits differ by exactly the global phase
        /// `e^{iφ}`, `None` when they are identical.
        phase: Option<f64>,
    },
    /// The guard did not reach a verdict (register too large, or the
    /// complete check exhausted its budget).
    Unchecked {
        /// Why the guard abstained.
        reason: String,
    },
}

impl GuardVerdict {
    /// Returns `true` when the mutation is proven benign.
    #[must_use]
    pub fn is_benign(&self) -> bool {
        matches!(self, GuardVerdict::Benign { .. })
    }

    /// Returns `true` when the mutation is proven to be a real fault.
    #[must_use]
    pub fn is_fault(&self) -> bool {
        matches!(self, GuardVerdict::Fault)
    }
}

impl fmt::Display for GuardVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardVerdict::Fault => write!(f, "fault"),
            GuardVerdict::Benign { phase: None } => write!(f, "benign"),
            GuardVerdict::Benign { phase: Some(p) } => {
                write!(f, "benign (global phase {p:.4})")
            }
            GuardVerdict::Unchecked { reason } => write!(f, "unchecked ({reason})"),
        }
    }
}

/// Classifies a mutation by completely checking `mutated` against
/// `original` with the DD-based routine, within the [`GuardOptions`]
/// budget.
///
/// # Panics
///
/// Panics if the circuits act on different register sizes (mutators
/// always preserve the register).
#[must_use]
pub fn classify(original: &Circuit, mutated: &Circuit, opts: &GuardOptions) -> GuardVerdict {
    assert_eq!(
        original.n_qubits(),
        mutated.n_qubits(),
        "guard inputs must share a register"
    );
    let n = original.n_qubits();
    if n > opts.max_qubits {
        return GuardVerdict::Unchecked {
            reason: format!("{n} qubits exceed the guard limit of {}", opts.max_qubits),
        };
    }
    let mut package = Package::with_node_limit(n, opts.node_limit);
    match check_equivalence_alternating(&mut package, original, mutated, opts.deadline) {
        Ok(DdEquivalence::NotEquivalent) => GuardVerdict::Fault,
        Ok(DdEquivalence::Equivalent) => GuardVerdict::Benign { phase: None },
        Ok(DdEquivalence::EquivalentUpToGlobalPhase { phase }) => {
            GuardVerdict::Benign { phase: Some(phase) }
        }
        Err(abort) => GuardVerdict::Unchecked {
            reason: abort.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::generators;

    #[test]
    fn real_faults_are_flagged() {
        let c = generators::ghz(4);
        let mut buggy = c.clone();
        buggy.x(2);
        assert_eq!(
            classify(&c, &buggy, &GuardOptions::default()),
            GuardVerdict::Fault
        );
    }

    #[test]
    fn identical_circuits_are_benign() {
        let c = generators::qft(4, true);
        let v = classify(&c, &c.clone(), &GuardOptions::default());
        assert!(v.is_benign());
        assert!(!v.is_fault());
    }

    #[test]
    fn symmetric_operand_swap_is_benign() {
        // CZ is symmetric: exchanging control and target is a syntactic
        // change with no semantic effect — exactly what the guard catches.
        let mut a = qcirc::Circuit::new(2);
        a.h(0).cz(0, 1);
        let mut b = qcirc::Circuit::new(2);
        b.h(0).cz(1, 0);
        assert!(classify(&a, &b, &GuardOptions::default()).is_benign());
    }

    #[test]
    fn oversized_registers_are_unchecked() {
        let c = generators::ghz(6);
        let opts = GuardOptions {
            max_qubits: 4,
            ..GuardOptions::default()
        };
        match classify(&c, &c.clone(), &opts) {
            GuardVerdict::Unchecked { reason } => assert!(reason.contains("guard limit")),
            other => panic!("expected unchecked, got {other:?}"),
        }
    }

    #[test]
    fn verdicts_display() {
        assert_eq!(GuardVerdict::Fault.to_string(), "fault");
        assert_eq!(GuardVerdict::Benign { phase: None }.to_string(), "benign");
        assert!(GuardVerdict::Benign { phase: Some(0.5) }
            .to_string()
            .contains("global phase"));
    }
}
