//! The long-running equivalence-checking service layer.
//!
//! The paper's flow is one-shot: parse `G` and `G′`, run the
//! simulation/complete-check pipeline, print a verdict. A checker serving
//! a CI fleet sees the *same* circuits over and over — most pairs of a
//! regression suite don't change between runs — so this layer makes the
//! flow persistent:
//!
//! - [`fingerprint`] gives every circuit a content-addressed identity
//!   ([`CircuitId`]) and every `(G, G′, Config)` job a cache key
//!   ([`JobKey`]);
//! - [`cache`] is the sharded, bounded, thread-safe verdict store
//!   ([`VerdictCache`]) answering repeat submissions without simulating;
//! - [`queue`] batches submissions, dedupes in-flight keys, and fans
//!   unique jobs across the shared ordered worker pool with results
//!   merged in submission order (byte-identical at any worker count);
//! - [`manager`] is the `EquivalenceCheckingManager`-shaped facade tying
//!   them together, with an append-only, replayable JSONL report stream.
//!
//! ```
//! use qcec::{Config, EquivalenceCheckingManager};
//!
//! let g = qcirc::generators::qft(4, true);
//! let mut buggy = g.clone();
//! buggy.x(2);
//! let mut manager = EquivalenceCheckingManager::new(Config::default());
//! manager.submit("qft4/buggy", g, buggy);
//! manager.run().unwrap();
//! assert!(manager.results()[0].verdict.outcome.is_not_equivalent());
//! ```

pub mod cache;
pub mod fingerprint;
pub mod manager;
pub mod queue;

pub use cache::{CacheStats, CachedVerdict, EvictionPolicy, VerdictCache};
pub use fingerprint::{derive_seed, CircuitId, ConfigDigest, JobKey};
pub use manager::{EquivalenceCheckingManager, ServiceError};
pub use queue::{run_batch, Job, JobResult, Provenance};
