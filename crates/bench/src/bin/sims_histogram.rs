//! Regenerates the "#sims until counterexample" evidence (experiment TH2):
//! the paper observes that for realistic design-flow errors, a *single*
//! simulation almost always suffices.
//!
//! Injects every error class many times (fresh seeds) into a mid-size
//! elementary circuit and histograms how many random simulations the flow
//! needed before the counterexample appeared.
//!
//! Environment: `QCEC_BENCH_SCALE` (0 → 40 trials/class, else 200).

use bench::scale_from_env;
use qcec::{Config, Fallback, Outcome};
use qcirc::errors::ErrorKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let trials = if scale_from_env() == 0 { 40 } else { 200 };
    let max_r = 16;
    // A decomposed+mapped chemistry circuit: the paper's "realistic
    // design-flow output" shape (rotations + CX on a grid).
    let g = {
        let raw = qcirc::generators::trotter_heisenberg(2, 4, 2, 0.1, 0.5);
        let routed = qcirc::mapping::route_or_panic(&raw, &qcirc::mapping::CouplingMap::grid(2, 4));
        routed.circuit
    };
    println!(
        "#sims histogram — {} trials per error class on '{}' ({} qubits, {} gates, r ≤ {max_r})",
        trials,
        g.name(),
        g.n_qubits(),
        g.len()
    );
    println!(
        "{:<22} {:>7} {:>7} {:>7} {:>8} {:>10}",
        "error class", "1 sim", "2 sims", "3+", "missed", "mean#sims"
    );

    let classes = [
        ErrorKind::RemoveGate,
        ErrorKind::MisplaceCx,
        ErrorKind::FlipCxDirection,
        ErrorKind::PerturbRotation(0.1),
        ErrorKind::ReplaceSingleQubitGate,
        ErrorKind::InsertSingleQubitGate,
    ];
    for kind in classes {
        let mut one = 0usize;
        let mut two = 0usize;
        let mut more = 0usize;
        let mut missed = 0usize;
        let mut total_runs = 0usize;
        let mut detected = 0usize;
        let mut effective_trials = 0usize;
        for seed in 0..trials as u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let Ok((buggy, _)) = qcirc::errors::inject(&g, kind, &mut rng) else {
                continue;
            };
            effective_trials += 1;
            let config = Config::new()
                .with_simulations(max_r)
                .with_fallback(Fallback::None)
                .with_seed(seed.wrapping_mul(0x9E3779B97F4A7C15));
            let result =
                qcec::check_equivalence(&g, &buggy, &config).expect("statevector flow cannot fail");
            match result.outcome {
                Outcome::NotEquivalent {
                    counterexample: Some(ce),
                } => {
                    detected += 1;
                    total_runs += ce.run;
                    match ce.run {
                        1 => one += 1,
                        2 => two += 1,
                        _ => more += 1,
                    }
                }
                _ => {
                    // Either the injection produced an (unlikely) equivalent
                    // circuit, or r runs missed the difference.
                    missed += 1;
                }
            }
        }
        let mean = if detected > 0 {
            format!("{:.2}", total_runs as f64 / detected as f64)
        } else {
            "-".into()
        };
        println!(
            "{:<22} {:>6}% {:>6}% {:>6}% {:>7}% {:>10}",
            kind.to_string(),
            percent(one, effective_trials),
            percent(two, effective_trials),
            percent(more, effective_trials),
            percent(missed, effective_trials),
            mean
        );
    }
    println!();
    println!("Paper's Table Ia: #sims = 1 for every row except one QFT row (#sims = 2).");
}

fn percent(part: usize, whole: usize) -> String {
    if whole == 0 {
        "-".into()
    } else {
        format!("{:.0}", 100.0 * part as f64 / whole as f64)
    }
}
