//! Cross-engine agreement: the dense reference, the statevector simulator
//! and the decision-diagram package must compute identical semantics.

use qcirc::{generators, Circuit};
use qsim::Simulator;

fn workloads() -> Vec<Circuit> {
    vec![
        generators::bell().widened(4),
        generators::ghz(4),
        generators::qft(4, true),
        generators::grover(4, 11, 2),
        generators::supremacy_2d(2, 2, 6, 3),
        generators::trotter_heisenberg(2, 2, 1, 0.2, 0.4),
        generators::cuccaro_adder(1),
        generators::random_clifford_t(4, 60, 8),
        generators::toffoli_network(4, 25, 2, 9),
    ]
}

#[test]
fn statevector_matches_dense_reference() {
    let sim = Simulator::new();
    for c in workloads() {
        let u = qcirc::dense::unitary(&c);
        for basis in 0..(1u64 << c.n_qubits().min(3)) {
            let out = sim.run_basis(&c, basis);
            for (row, amp) in out.amplitudes().iter().enumerate() {
                assert!(
                    amp.approx_eq(u.entry(row, basis as usize)),
                    "{}: basis {basis}",
                    c.name()
                );
            }
        }
    }
}

#[test]
fn dd_simulation_matches_statevector() {
    let sim = Simulator::new();
    for c in workloads() {
        let mut p = qdd::Package::new(c.n_qubits());
        for basis in [0u64, 1, 5] {
            let v = p.apply_to_basis(&c, basis).unwrap();
            let expect = sim.run_basis(&c, basis);
            for (i, amp) in p.to_statevector(v).iter().enumerate() {
                assert!(
                    amp.approx_eq(expect.amplitudes()[i]),
                    "{}: basis {basis} index {i}",
                    c.name()
                );
            }
        }
    }
}

#[test]
fn dd_matrix_matches_dense_reference() {
    for c in workloads() {
        let mut p = qdd::Package::new(c.n_qubits());
        let u = p.circuit_medge(&c).unwrap();
        assert!(
            p.to_matrix(u).approx_eq(&qcirc::dense::unitary(&c)),
            "{}",
            c.name()
        );
    }
}

#[test]
fn simulator_unitary_builder_matches_dense() {
    for c in workloads() {
        assert!(
            qsim::unitary(&c).approx_eq(&qcirc::dense::unitary(&c)),
            "{}",
            c.name()
        );
    }
}

#[test]
fn threaded_simulator_matches_sequential() {
    let c = generators::supremacy_2d(4, 5, 8, 2); // 20 qubits: 2²⁰ amplitudes
    let seq = Simulator::new().run_basis(&c, 77);
    let par = Simulator::with_threads(4).run_basis(&c, 77);
    assert!(seq.approx_eq(&par));
}

#[test]
fn both_flow_backends_reach_the_same_verdicts() {
    use qcec::{Config, SimBackend};
    let g = generators::grover(4, 7, 2);
    let mut buggy = g.clone();
    buggy.t(2);
    for backend in [SimBackend::Statevector, SimBackend::DecisionDiagram] {
        let config = Config::new().with_backend(backend);
        let eq = qcec::check_equivalence(&g, &g, &config).unwrap();
        assert!(eq.outcome.is_equivalent(), "{backend:?}");
        let ne = qcec::check_equivalence(&g, &buggy, &config).unwrap();
        assert!(ne.outcome.is_not_equivalent(), "{backend:?}");
    }
}
