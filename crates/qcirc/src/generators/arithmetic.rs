//! Reversible arithmetic circuits.

use crate::circuit::Circuit;

/// Builds the Cuccaro ripple-carry adder on `2n + 2` qubits computing
/// `|c_in, a, b⟩ → |c_in, a, (a + b + c_in) mod 2ⁿ⟩` with the carry-out on
/// the last qubit.
///
/// Qubit layout (little-endian within each register):
///
/// * qubit `0` — carry-in,
/// * qubits `1 ..= n` — register `b` (overwritten with the sum),
/// * qubits `n+1 ..= 2n` — register `a` (restored),
/// * qubit `2n + 1` — carry-out.
///
/// The construction uses only CX and Toffoli gates (MAJ/UMA blocks), which
/// makes it a structured RevLib-class workload whose correctness is easy to
/// verify on computational basis states.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// let adder = qcirc::generators::cuccaro_adder(4);
/// assert_eq!(adder.n_qubits(), 10);
/// ```
#[must_use]
pub fn cuccaro_adder(n: usize) -> Circuit {
    assert!(n > 0, "adder width must be positive");
    let mut c = Circuit::with_name(2 * n + 2, format!("cuccaro_add_{n}"));
    let b = |i: usize| 1 + i;
    let a = |i: usize| 1 + n + i;
    let cin = 0;
    let cout = 2 * n + 1;

    // MAJ(x, y, z): CX z→y, CX z→x, CCX(x, y → z).
    let maj = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.cx(z, y).cx(z, x).ccx(x, y, z);
    };
    // UMA(x, y, z): CCX(x, y → z), CX z→x, CX x→y.
    let uma = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.ccx(x, y, z).cx(z, x).cx(x, y);
    };

    maj(&mut c, cin, b(0), a(0));
    for i in 1..n {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    c.cx(a(n - 1), cout);
    for i in (1..n).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, cin, b(0), a(0));
    c
}

/// Builds the Clifford surrogate of the Cuccaro ripple-carry adder on
/// `2n + 2` qubits: the identical CX skeleton and MAJ/UMA scheduling, with
/// every Toffoli replaced by the fixed Clifford motif `H·CZ·S·CZ·H` on the
/// same three qubits.
///
/// The result is *not* an arithmetic adder — a Toffoli has no Clifford
/// equivalent — but it preserves the adder's ripple connectivity, depth
/// profile and two-qubit-gate density while staying stabilizer-simulable,
/// which makes it the canonical Clifford-dominated workload for the stab
/// probe engine: tableau probes cost `O(n²)` where dense simulation pays
/// `O(2ⁿ)`, so register widths like `n = 32` become reachable.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// let adder = qcirc::generators::clifford_adder(15);
/// assert_eq!(adder.n_qubits(), 32);
/// assert!(adder.gates().iter().all(qcirc::Gate::is_clifford));
/// ```
#[must_use]
pub fn clifford_adder(n: usize) -> Circuit {
    assert!(n > 0, "adder width must be positive");
    let mut c = Circuit::with_name(2 * n + 2, format!("clifford_add_{n}"));
    let b = |i: usize| 1 + i;
    let a = |i: usize| 1 + n + i;
    let cin = 0;
    let cout = 2 * n + 1;

    // The Toffoli stand-in: an entangling, phase-mixing Clifford block on
    // (x, y, z). The H/S mixing keeps intermediate states away from the
    // basis-permutation regime where decision diagrams stay trivially small.
    let motif = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.h(z).cz(x, z).s(z).cz(y, z).h(z);
    };
    let maj = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.cx(z, y).cx(z, x);
        motif(c, x, y, z);
    };
    let uma = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        motif(c, x, y, z);
        c.cx(z, x).cx(x, y);
    };

    maj(&mut c, cin, b(0), a(0));
    for i in 1..n {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    c.cx(a(n - 1), cout);
    for i in (1..n).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, cin, b(0), a(0));
    c
}

/// Builds a shift-and-add multiplier computing
/// `|a, b, 0⟩ → |a, b, a·b mod 2^{2n}⟩` from `n` controlled Cuccaro
/// additions.
///
/// Qubit layout:
///
/// * qubits `0 ..= n−1` — register `a`,
/// * qubits `n ..= 2n−1` — register `b`,
/// * qubits `2n ..= 4n−1` — the product register `p` (must start `|0⟩`),
/// * qubit `4n` — a carry ancilla (restored to `|0⟩`).
///
/// For each bit `a_i`, `b` is added into `p[i .. i+n]` controlled on `a_i`
/// (the final carry of each addition lands in `p[i+n]`, except for the top
/// bit where it is dropped — arithmetic is modulo `2^{2n}`).
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// let c = qcirc::generators::multiplier(2);
/// assert_eq!(c.n_qubits(), 9);
/// ```
#[must_use]
pub fn multiplier(n: usize) -> Circuit {
    assert!(n > 0, "multiplier width must be positive");
    let total = 4 * n + 1;
    let mut c = Circuit::with_name(total, format!("multiplier_{n}"));
    let a = |i: usize| i;
    let b = |i: usize| n + i;
    let p = |i: usize| 2 * n + i;
    let carry_anc = 4 * n;

    // The shifted addend always fits: for bit i ≤ n−1 the n-bit addition
    // into p[i..i+n] with carry-out at p[i+n] stays within the 2n-bit
    // product register.
    let adder = cuccaro_adder(n);
    for i in 0..n {
        // Cuccaro layout is [cin, sum-register, addend-register, cout];
        // remap it so the sum register is the product slice p[i..i+n] and
        // the addend register is b, then control everything on a_i.
        let remap = |q: usize| -> usize {
            if q == 0 {
                carry_anc
            } else if q <= n {
                p(i + (q - 1))
            } else if q <= 2 * n {
                b(q - n - 1)
            } else {
                p(i + n)
            }
        };
        let placed = adder.widened(total).remap(remap);
        c.append(&placed.controlled_by(a(i)));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_and_gate_count() {
        let c = cuccaro_adder(4);
        assert_eq!(c.n_qubits(), 10);
        // n MAJ blocks + n UMA blocks (3 gates each) + 1 carry CX.
        assert_eq!(c.len(), 3 * 4 + 1 + 3 * 4);
    }

    #[test]
    fn only_cx_and_toffoli() {
        let c = cuccaro_adder(3);
        for g in c.gates() {
            assert_eq!(g.kind().mnemonic(), "x");
            assert!(!g.controls().is_empty());
            assert!(g.controls().len() <= 2);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        let _ = cuccaro_adder(0);
    }

    #[test]
    fn clifford_adder_mirrors_the_cuccaro_shape() {
        let n = 4;
        let c = clifford_adder(n);
        assert_eq!(c.n_qubits(), 2 * n + 2);
        // Each Toffoli became a 5-gate motif; everything else is unchanged.
        assert_eq!(c.len(), cuccaro_adder(n).len() + 4 * 2 * n);
        assert!(c.gates().iter().all(crate::Gate::is_clifford));
    }

    #[test]
    fn multiplier_shape() {
        let c = multiplier(2);
        assert_eq!(c.n_qubits(), 9);
        // Every gate gained the a_i control: max controls = 1 (ccx) + 1.
        assert_eq!(c.max_controls(), 3);
        assert_eq!(c.len(), 2 * cuccaro_adder(2).len());
    }

    #[test]
    fn multiplier_multiplies_on_basis_states() {
        // Verified against the dense reference (n = 1 keeps it at 5 qubits;
        // richer cases are covered by the simulator's integration tests).
        let n = 1;
        let c = multiplier(n);
        for a_val in 0..2u64 {
            for b_val in 0..2u64 {
                let input = (a_val) | (b_val << n);
                let col = crate::dense::column(&c, input as usize);
                let product = (a_val * b_val) & ((1 << (2 * n)) - 1);
                let expected = input | (product << (2 * n));
                assert!(
                    col[expected as usize].norm_sqr() > 1.0 - 1e-9,
                    "{a_val}·{b_val}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_multiplier_rejected() {
        let _ = multiplier(0);
    }
}
