//! The simulation worker: claims stimuli in index order and probes them.
//!
//! Workers share an atomic claim counter, so every stimulus index is
//! processed by exactly one worker and claiming follows stimulus order.
//! Combined with the [`CancelToken`](super::cancel::CancelToken)'s
//! watermark rule — a run is only abandoned for indices *above* the lowest
//! known failure — this guarantees that every stimulus up to and including
//! the decisive one completes, which is what lets the orchestrator replay
//! the overlaps in order and reproduce the sequential verdict exactly.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use qcirc::Circuit;
use qnum::Complex;
use qsim::{ProbeWorkspace, Simulator};
use qstim::Stimulus;

use crate::config::{Config, Criterion, SimBackend};
use crate::scheduler::cancel::CancelToken;
use crate::scheduler::events::{EventSink, RunEvent};

/// Everything a worker needs, shared by reference across the pool.
pub(super) struct PoolContext<'a> {
    /// The left circuit `G`.
    pub g: &'a Circuit,
    /// The right circuit `G'`.
    pub g_prime: &'a Circuit,
    /// The flow configuration.
    pub config: &'a Config,
    /// The pre-drawn stimuli, in judging order.
    pub stimuli: &'a [Stimulus],
    /// Shared cancellation state.
    pub token: &'a CancelToken,
    /// Next stimulus index to claim.
    pub next: AtomicUsize,
    /// Overlap per stimulus index; `None` = not (fully) simulated.
    pub results: Mutex<Vec<Option<Complex>>>,
    /// Event sink.
    pub sink: &'a dyn EventSink,
}

impl<'a> PoolContext<'a> {
    pub(super) fn new(
        g: &'a Circuit,
        g_prime: &'a Circuit,
        config: &'a Config,
        stimuli: &'a [Stimulus],
        token: &'a CancelToken,
        sink: &'a dyn EventSink,
    ) -> Self {
        PoolContext {
            g,
            g_prime,
            config,
            stimuli,
            token,
            next: AtomicUsize::new(0),
            results: Mutex::new(vec![None; stimuli.len()]),
            sink,
        }
    }
}

/// One worker's claim loop. Returns early only on a decision-diagram
/// node-limit overflow (statevector workers cannot fail).
pub(super) fn run_worker(ctx: &PoolContext<'_>) -> Result<(), qdd::DdLimitError> {
    let mut engine = Engine::new(ctx.config, ctx.g.n_qubits());
    loop {
        let index = ctx.next.fetch_add(1, Ordering::Relaxed);
        if index >= ctx.stimuli.len() {
            return Ok(());
        }
        let stimulus = &ctx.stimuli[index];
        if ctx.token.superseded(index) {
            ctx.sink.record(RunEvent::SimulationAborted { index });
            continue;
        }
        let start = Instant::now();
        match engine.probe(ctx, index, stimulus)? {
            None => ctx.sink.record(RunEvent::SimulationAborted { index }),
            Some(overlap) => {
                // A per-run output mismatch is decisive on its own;
                // publish it before the event so observers of the sink
                // never see a finished failing run without a watermark.
                if output_mismatch(overlap, ctx.config) {
                    ctx.token.record_sim_failure(index);
                }
                ctx.results.lock().unwrap()[index] = Some(overlap);
                ctx.sink.record(RunEvent::SimulationFinished {
                    index,
                    wall_time: start.elapsed(),
                    fidelity: overlap.norm_sqr(),
                });
            }
        }
    }
}

/// The per-run failure predicate a worker can decide alone: the overlap
/// magnitude (or value, under [`Criterion::Strict`]) is off. Cross-run
/// phase inconsistencies need the whole prefix and are left to the
/// orchestrator's ordered replay.
fn output_mismatch(overlap: Complex, config: &Config) -> bool {
    match config.criterion {
        Criterion::Strict => (overlap - Complex::ONE).norm_sqr() > config.fidelity_tolerance,
        Criterion::UpToGlobalPhase => (overlap.norm_sqr() - 1.0).abs() > config.fidelity_tolerance,
    }
}

/// A worker's private simulation engine.
enum Engine {
    /// Sequential statevector simulator plus reused state buffers — the
    /// pool parallelises *across* stimuli, so per-worker kernels stay
    /// single-threaded to keep total threads = worker count.
    Statevector {
        sim: Simulator,
        workspace: ProbeWorkspace,
    },
    /// Decision-diagram simulation. Each run gets a *fresh* package:
    /// reusing one across runs would make interned edge weights (and thus
    /// bitwise overlaps) depend on which stimuli this worker happened to
    /// claim — scheduling-dependent numerics the determinism guarantee
    /// cannot afford.
    DecisionDiagram,
}

impl Engine {
    fn new(config: &Config, n_qubits: usize) -> Self {
        match config.backend {
            SimBackend::Statevector => Engine::Statevector {
                sim: Simulator::for_worker(),
                workspace: ProbeWorkspace::new(n_qubits),
            },
            SimBackend::DecisionDiagram => Engine::DecisionDiagram,
        }
    }

    /// Probes one stimulus; `None` means the run was abandoned because it
    /// became superseded mid-flight.
    fn probe(
        &mut self,
        ctx: &PoolContext<'_>,
        index: usize,
        stimulus: &Stimulus,
    ) -> Result<Option<Complex>, qdd::DdLimitError> {
        match self {
            Engine::Statevector { sim, workspace } => {
                let prefix = stimulus.prefix_circuit();
                Ok(sim.probe_stimulus_while(
                    ctx.g,
                    ctx.g_prime,
                    prefix.as_ref(),
                    stimulus.basis_state(),
                    workspace,
                    &|| !ctx.token.superseded(index),
                ))
            }
            Engine::DecisionDiagram => {
                let n = ctx.g.n_qubits();
                let mut package = qdd::Package::with_node_limit(n, ctx.config.dd_node_limit);
                let input = crate::sim_check::prepare_dd_input(&mut package, stimulus)?;
                let a = package.apply_to_vedge(ctx.g, input)?;
                // DD simulation is not gate-granular cancellable; poll
                // between the two halves of the probe instead.
                if ctx.token.superseded(index) {
                    return Ok(None);
                }
                let b = package.apply_to_vedge(ctx.g_prime, input)?;
                let overlap = if package.vedges_equal(a, b) {
                    Complex::ONE
                } else {
                    package.inner_product(a, b)
                };
                Ok(Some(overlap))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::events::NullSink;

    #[test]
    fn single_worker_fills_all_slots_in_order() {
        let g = qcirc::generators::ghz(3);
        let opt = qcirc::optimize::optimize(&g);
        let config = Config::default();
        let stimuli: Vec<Stimulus> = [0u64, 3, 5, 7].map(Stimulus::Basis).to_vec();
        let token = CancelToken::new();
        let ctx = PoolContext::new(&g, &opt, &config, &stimuli, &token, &NullSink);
        run_worker(&ctx).unwrap();
        let results = ctx.results.lock().unwrap();
        assert!(results.iter().all(Option::is_some));
        // Equivalent circuits: every overlap has unit fidelity.
        for overlap in results.iter().flatten() {
            assert!((overlap.norm_sqr() - 1.0).abs() < 1e-9);
        }
        assert_eq!(token.lowest_failure(), None);
    }

    #[test]
    fn worker_records_failure_watermark() {
        let g = qcirc::generators::ghz(3);
        let mut buggy = g.clone();
        buggy.x(0);
        let config = Config::default();
        let stimuli: Vec<Stimulus> = (0u64..8).map(Stimulus::Basis).collect();
        let token = CancelToken::new();
        let ctx = PoolContext::new(&g, &buggy, &config, &stimuli, &token, &NullSink);
        run_worker(&ctx).unwrap();
        // An X on a GHZ input corrupts every column: index 0 fails.
        assert_eq!(token.lowest_failure(), Some(0));
        // All later indices were superseded and skipped.
        let results = ctx.results.lock().unwrap();
        assert!(results[0].is_some());
        assert!(results[1..].iter().all(Option::is_none));
    }

    #[test]
    fn dd_engine_agrees_with_statevector_engine() {
        let g = qcirc::generators::qft(4, true);
        let opt = qcirc::optimize::optimize(&g);
        let sv_config = Config::default();
        let dd_config = Config::default().with_backend(SimBackend::DecisionDiagram);
        let stimuli: Vec<Stimulus> = [0u64, 5, 9, 15].map(Stimulus::Basis).to_vec();
        for config in [&sv_config, &dd_config] {
            let token = CancelToken::new();
            let ctx = PoolContext::new(&g, &opt, config, &stimuli, &token, &NullSink);
            run_worker(&ctx).unwrap();
            let results = ctx.results.lock().unwrap();
            for overlap in results.iter().flatten() {
                assert!(
                    (overlap.norm_sqr() - 1.0).abs() < 1e-9,
                    "backend {:?}",
                    config.backend
                );
            }
        }
    }
}
