//! The complete (functional) check stage — wraps the DD routines of `qdd`
//! (and, under [`BackendKind::Mps`], the MPO routines of `qmpo`).

use qcirc::Circuit;
use qdd::{DdCheckAbort, DdEquivalence, Package};
use qmpo::{MpoCheckAbort, MpoEquivalence, MpoVerdict};

use crate::config::{BackendKind, Config, Criterion, Fallback};
use crate::outcome::AbortReason;

/// Result of the functional stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FunctionalVerdict {
    /// Matrices identical.
    Equivalent,
    /// Matrices identical up to one global phase.
    EquivalentUpToGlobalPhase {
        /// The phase `φ`.
        phase: f64,
    },
    /// Matrices differ.
    NotEquivalent,
    /// The check could not finish.
    Aborted(AbortKind),
}

/// Why the functional stage stopped (plain-copy mirror of
/// [`AbortReason`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AbortKind {
    /// Deadline elapsed.
    Timeout,
    /// Node limit exceeded.
    NodeLimit,
    /// Disabled by configuration.
    Disabled,
    /// The MPO check truncated bond dimensions and found no difference —
    /// evidence of equivalence, not proof.
    Truncated {
        /// The accumulated truncation error.
        error: f64,
    },
}

impl From<AbortKind> for AbortReason {
    fn from(k: AbortKind) -> Self {
        match k {
            AbortKind::Timeout => AbortReason::Timeout,
            AbortKind::NodeLimit => AbortReason::NodeLimit,
            AbortKind::Disabled => AbortReason::FallbackDisabled,
            AbortKind::Truncated { error } => AbortReason::Truncation { error },
        }
    }
}

/// Runs the configured complete equivalence check.
///
/// With [`Criterion::Strict`], matrices that agree only up to a global
/// phase are classified as [`FunctionalVerdict::NotEquivalent`]; with the
/// default physical criterion they are reported as the phase variant.
///
/// # Panics
///
/// Panics if the circuits' qubit counts differ.
#[must_use]
pub fn run_functional_check(g: &Circuit, g_prime: &Circuit, config: &Config) -> FunctionalVerdict {
    if config.backend == BackendKind::Mps {
        let result = match config.fallback {
            Fallback::None => return FunctionalVerdict::Aborted(AbortKind::Disabled),
            Fallback::Alternating => qmpo::check_equivalence_alternating(
                g,
                g_prime,
                config.chi_max,
                config.deadline,
                config.scheme,
            ),
            Fallback::ConstructAndCompare => {
                qmpo::check_equivalence_construct(g, g_prime, config.chi_max, config.deadline)
            }
        };
        return classify_mpo(result, config)
            .expect("a check without a cancel flag cannot be cancelled");
    }
    let mut package = Package::with_node_limit(g.n_qubits(), config.dd_node_limit);
    let result = match config.fallback {
        Fallback::None => return FunctionalVerdict::Aborted(AbortKind::Disabled),
        Fallback::Alternating => qdd::check_equivalence_alternating_scheme(
            &mut package,
            g,
            g_prime,
            config.deadline,
            config.scheme,
        ),
        Fallback::ConstructAndCompare => {
            qdd::check_equivalence_construct(&mut package, g, g_prime, config.deadline)
        }
    };
    classify(result, config).expect("a check without a cancel flag cannot be cancelled")
}

/// [`run_functional_check`] with an external cancellation flag, polled
/// between DD operations. Returns `None` if the flag was raised before the
/// check finished — the scheduler's way of stopping a racer whose answer a
/// simulation counterexample has already made moot.
///
/// # Panics
///
/// Panics if the circuits' qubit counts differ.
pub fn run_functional_check_cancellable(
    g: &Circuit,
    g_prime: &Circuit,
    config: &Config,
    cancel: &std::sync::atomic::AtomicBool,
) -> Option<FunctionalVerdict> {
    if config.backend == BackendKind::Mps {
        let result = match config.fallback {
            Fallback::None => return Some(FunctionalVerdict::Aborted(AbortKind::Disabled)),
            Fallback::Alternating => qmpo::check_equivalence_alternating_cancellable(
                g,
                g_prime,
                config.chi_max,
                config.deadline,
                cancel,
                config.scheme,
            ),
            Fallback::ConstructAndCompare => qmpo::check_equivalence_construct_cancellable(
                g,
                g_prime,
                config.chi_max,
                config.deadline,
                cancel,
            ),
        };
        return classify_mpo(result, config);
    }
    let mut package = Package::with_node_limit(g.n_qubits(), config.dd_node_limit);
    let result = match config.fallback {
        Fallback::None => return Some(FunctionalVerdict::Aborted(AbortKind::Disabled)),
        Fallback::Alternating => qdd::check_equivalence_alternating_scheme_cancellable(
            &mut package,
            g,
            g_prime,
            config.deadline,
            cancel,
            config.scheme,
        ),
        Fallback::ConstructAndCompare => qdd::check_equivalence_construct_cancellable(
            &mut package,
            g,
            g_prime,
            config.deadline,
            cancel,
        ),
    };
    classify(result, config)
}

/// Maps a DD-check result onto the flow's verdict; `None` only for
/// [`DdCheckAbort::Cancelled`].
fn classify(
    result: Result<DdEquivalence, DdCheckAbort>,
    config: &Config,
) -> Option<FunctionalVerdict> {
    Some(match result {
        Ok(DdEquivalence::Equivalent) => FunctionalVerdict::Equivalent,
        Ok(DdEquivalence::EquivalentUpToGlobalPhase { phase }) => {
            if config.criterion == Criterion::Strict {
                // Under the strict notion a global phase is a difference.
                FunctionalVerdict::NotEquivalent
            } else {
                FunctionalVerdict::EquivalentUpToGlobalPhase { phase }
            }
        }
        Ok(DdEquivalence::NotEquivalent) => FunctionalVerdict::NotEquivalent,
        Err(DdCheckAbort::Timeout { .. }) => FunctionalVerdict::Aborted(AbortKind::Timeout),
        Err(DdCheckAbort::NodeLimit(_)) => FunctionalVerdict::Aborted(AbortKind::NodeLimit),
        Err(DdCheckAbort::Cancelled) => return None,
    })
}

/// Maps an MPO-check result onto the flow's verdict; `None` only for
/// [`MpoCheckAbort::Cancelled`].
///
/// A verdict from an *exact* run (`truncation_error == 0.0`, the engine's
/// exactness certificate) keeps its class. A truncated run can still
/// *disprove* equivalence — the engine's decision window already absorbs
/// the accumulated error — but its "no difference found" is only evidence,
/// so equivalent-looking truncated verdicts demote to
/// [`AbortKind::Truncated`].
fn classify_mpo(
    result: Result<MpoVerdict, MpoCheckAbort>,
    config: &Config,
) -> Option<FunctionalVerdict> {
    Some(match result {
        Ok(v) => match v.equivalence {
            MpoEquivalence::NotEquivalent => FunctionalVerdict::NotEquivalent,
            _ if !v.is_exact() => FunctionalVerdict::Aborted(AbortKind::Truncated {
                error: v.truncation_error,
            }),
            MpoEquivalence::Equivalent => FunctionalVerdict::Equivalent,
            MpoEquivalence::EquivalentUpToGlobalPhase { phase } => {
                if config.criterion == Criterion::Strict {
                    FunctionalVerdict::NotEquivalent
                } else {
                    FunctionalVerdict::EquivalentUpToGlobalPhase { phase }
                }
            }
        },
        Err(MpoCheckAbort::Timeout { .. }) => FunctionalVerdict::Aborted(AbortKind::Timeout),
        Err(MpoCheckAbort::Cancelled) => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::generators;
    use std::time::Duration;

    #[test]
    fn equivalent_mapped_circuit() {
        let g = generators::qft(4, true);
        let routed = qcirc::mapping::route_or_panic(&g, &qcirc::mapping::CouplingMap::linear(4));
        let v = run_functional_check(&g, &routed.circuit, &Config::default());
        assert_eq!(v, FunctionalVerdict::Equivalent);
    }

    #[test]
    fn strict_criterion_rejects_global_phase() {
        let mut a = qcirc::Circuit::new(2);
        a.h(0);
        let mut b = a.clone();
        b.rz(2.0 * std::f64::consts::PI, 0);
        let strict = Config::default().with_criterion(Criterion::Strict);
        assert_eq!(
            run_functional_check(&a, &b, &strict),
            FunctionalVerdict::NotEquivalent
        );
        let relaxed = Config::default();
        assert!(matches!(
            run_functional_check(&a, &b, &relaxed),
            FunctionalVerdict::EquivalentUpToGlobalPhase { .. }
        ));
    }

    #[test]
    fn disabled_fallback_aborts() {
        let g = generators::ghz(2);
        let config = Config::default().with_fallback(Fallback::None);
        assert_eq!(
            run_functional_check(&g, &g, &config),
            FunctionalVerdict::Aborted(AbortKind::Disabled)
        );
    }

    #[test]
    fn timeout_aborts() {
        let g = generators::supremacy_2d(3, 3, 12, 2);
        let config = Config::default().with_deadline(Some(Duration::ZERO));
        assert_eq!(
            run_functional_check(&g, &g, &config),
            FunctionalVerdict::Aborted(AbortKind::Timeout)
        );
    }

    #[test]
    fn node_limit_aborts() {
        let g = generators::supremacy_2d(3, 4, 10, 3);
        let config = Config::default()
            .with_dd_node_limit(100)
            .with_fallback(Fallback::ConstructAndCompare);
        assert_eq!(
            run_functional_check(&g, &g, &config),
            FunctionalVerdict::Aborted(AbortKind::NodeLimit)
        );
    }

    #[test]
    fn cancellable_check_matches_uncancelled_and_stops_when_raised() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let g = generators::qft(4, true);
        let routed = qcirc::mapping::route_or_panic(&g, &qcirc::mapping::CouplingMap::linear(4));
        let config = Config::default();
        let flag = AtomicBool::new(false);
        assert_eq!(
            run_functional_check_cancellable(&g, &routed.circuit, &config, &flag),
            Some(run_functional_check(&g, &routed.circuit, &config))
        );
        flag.store(true, Ordering::Relaxed);
        assert_eq!(
            run_functional_check_cancellable(&g, &routed.circuit, &config, &flag),
            None,
            "a pre-raised flag cancels before any work"
        );
        // A disabled fallback is never cancelled: the answer is immediate.
        let disabled = Config::default().with_fallback(Fallback::None);
        assert_eq!(
            run_functional_check_cancellable(&g, &routed.circuit, &disabled, &flag),
            Some(FunctionalVerdict::Aborted(AbortKind::Disabled))
        );
    }

    #[test]
    fn both_fallbacks_detect_errors() {
        let g = generators::qft(4, true);
        let mut buggy = g.clone();
        buggy.t(2);
        for fb in [Fallback::Alternating, Fallback::ConstructAndCompare] {
            let config = Config::default().with_fallback(fb);
            assert_eq!(
                run_functional_check(&g, &buggy, &config),
                FunctionalVerdict::NotEquivalent,
                "{fb:?}"
            );
        }
    }

    #[test]
    fn mps_backend_proves_and_refutes_exactly() {
        // n = 4 caps the MPO bond dimension at 4² = 16 < chi_max, so the
        // run is exact and the verdict keeps its class.
        let g = generators::qft(4, true);
        let routed = qcirc::mapping::route_or_panic(&g, &qcirc::mapping::CouplingMap::linear(4));
        let mut buggy = g.clone();
        buggy.t(2);
        for fb in [Fallback::Alternating, Fallback::ConstructAndCompare] {
            let config = Config::default()
                .with_backend(BackendKind::Mps)
                .with_fallback(fb);
            assert_eq!(
                run_functional_check(&g, &routed.circuit, &config),
                FunctionalVerdict::Equivalent,
                "{fb:?}"
            );
            assert_eq!(
                run_functional_check(&g, &buggy, &config),
                FunctionalVerdict::NotEquivalent,
                "{fb:?}"
            );
        }
    }

    #[test]
    fn mps_truncated_runs_never_claim_equivalence() {
        let g = generators::qft(4, true);
        let routed = qcirc::mapping::route_or_panic(&g, &qcirc::mapping::CouplingMap::linear(4));
        let config = Config::default()
            .with_backend(BackendKind::Mps)
            .with_chi_max(1);
        let v = run_functional_check(&g, &routed.circuit, &config);
        assert!(
            matches!(
                v,
                FunctionalVerdict::NotEquivalent
                    | FunctionalVerdict::Aborted(AbortKind::Truncated { .. })
            ),
            "χ = 1 forces truncation, so the verdict must not be a proof: {v:?}"
        );
    }

    #[test]
    fn mps_timeout_and_cancellation() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let g = generators::supremacy_2d(3, 3, 12, 2);
        let config = Config::default()
            .with_backend(BackendKind::Mps)
            .with_deadline(Some(Duration::ZERO));
        assert_eq!(
            run_functional_check(&g, &g, &config),
            FunctionalVerdict::Aborted(AbortKind::Timeout)
        );
        let flag = AtomicBool::new(true);
        flag.store(true, Ordering::Relaxed);
        for fb in [Fallback::Alternating, Fallback::ConstructAndCompare] {
            let config = Config::default()
                .with_backend(BackendKind::Mps)
                .with_fallback(fb);
            assert_eq!(
                run_functional_check_cancellable(&g, &g, &config, &flag),
                None,
                "a pre-raised flag cancels the MPO check ({fb:?})"
            );
        }
    }
}
