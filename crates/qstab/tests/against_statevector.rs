//! Cross-validation of the stabilizer simulator against the dense
//! statevector simulator on random Clifford circuits.

use proptest::prelude::*;
use qcirc::{Circuit, Gate, GateKind};
use qsim::Simulator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random Clifford circuit (tableau-supported gates only).
fn random_clifford(n: usize, m: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::with_name(n, format!("clifford_{n}_{m}"));
    for _ in 0..m {
        match rng.gen_range(0..10) {
            0 => c.h(rng.gen_range(0..n)),
            1 => c.s(rng.gen_range(0..n)),
            2 => c.sdg(rng.gen_range(0..n)),
            3 => c.x(rng.gen_range(0..n)),
            4 => c.y(rng.gen_range(0..n)),
            5 => c.z(rng.gen_range(0..n)),
            6 => c.sx(rng.gen_range(0..n)),
            7 => c.sy(rng.gen_range(0..n)),
            _ => {
                let a = rng.gen_range(0..n);
                let b = (a + rng.gen_range(1..n)) % n;
                if rng.gen_bool(0.5) {
                    c.cx(a, b)
                } else {
                    c.cz(a, b)
                }
            }
        };
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Per-qubit measurement probabilities agree exactly (they are always
    /// 0, ½ or 1 for stabilizer states).
    #[test]
    fn marginals_match_statevector(seed in any::<u64>(), basis_sel in any::<u64>()) {
        let n = 5;
        let c = random_clifford(n, 60, seed);
        let basis = basis_sel % (1 << n);
        let tableau = qstab::run(&c, basis).unwrap();
        let state = Simulator::new().run_basis(&c, basis);
        for q in 0..n {
            let expected = qsim::measure::probability_of_one(&state, q);
            let got = tableau.measure_probability_of_one(q).unwrap();
            prop_assert!(
                (expected - got).abs() < 1e-9,
                "qubit {q}: statevector {expected}, tableau {got}"
            );
        }
    }

    /// Tableau state equality coincides with statevector equality up to
    /// global phase.
    #[test]
    fn same_state_matches_statevector(seed in any::<u64>()) {
        let n = 4;
        let a = random_clifford(n, 40, seed);
        let b = random_clifford(n, 40, seed.wrapping_add(1));
        let sim = Simulator::new();
        for basis in [0u64, 7] {
            let ta = qstab::run(&a, basis).unwrap();
            let tb = qstab::run(&b, basis).unwrap();
            let sa = sim.run_basis(&a, basis);
            let sb = sim.run_basis(&b, basis);
            prop_assert_eq!(
                ta.same_state(&tb),
                sa.approx_eq_up_to_phase(&sb),
                "basis {}", basis
            );
        }
    }

    /// Stabilizer expectation: every canonical stabilizer generator of the
    /// tableau has expectation +1 in the statevector.
    #[test]
    fn stabilizers_have_unit_expectation(seed in any::<u64>()) {
        let n = 4;
        let c = random_clifford(n, 50, seed);
        let tableau = qstab::run(&c, 0).unwrap();
        let state = Simulator::new().run_basis(&c, 0);
        for row in tableau.canonical_stabilizers() {
            // Convert the signed Pauli row to a qsim PauliString + sign.
            let label: String = (0..n)
                .rev()
                .map(|q| match (row.x[q], row.z[q]) {
                    (false, false) => 'I',
                    (true, false) => 'X',
                    (false, true) => 'Z',
                    (true, true) => 'Y',
                })
                .collect();
            let p: qsim::expectation::PauliString = label.parse().unwrap();
            let expectation = p.expectation(&state) * if row.sign { -1.0 } else { 1.0 };
            prop_assert!(
                (expectation - 1.0).abs() < 1e-9,
                "{row} has expectation {expectation}"
            );
        }
    }

    /// Collapsing measurements agree with statevector collapse in
    /// distribution: measuring all qubits of the tableau yields an outcome
    /// whose statevector probability is nonzero.
    #[test]
    fn sampled_outcomes_are_supported(seed in any::<u64>()) {
        let n = 4;
        let c = random_clifford(n, 40, seed);
        let state = Simulator::new().run_basis(&c, 0);
        let mut tableau = qstab::run(&c, 0).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let mut outcome = 0u64;
        for q in 0..n {
            if tableau.measure(q, &mut rng) {
                outcome |= 1 << q;
            }
        }
        prop_assert!(
            state.probability(outcome) > 1e-12,
            "sampled |{outcome:b}⟩ has zero statevector probability"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tableau inner-product magnitude equals the dense statevector
    /// inner-product magnitude: always exactly 0 or 2^{−k/2}, and 1 iff
    /// the states agree up to global phase.
    #[test]
    fn inner_product_magnitude_matches_statevector(seed in any::<u64>()) {
        let n = 4;
        let a = random_clifford(n, 40, seed);
        let b = random_clifford(n, 40, seed.wrapping_add(1));
        let sim = Simulator::new();
        for basis in [0u64, 11] {
            let ta = qstab::run(&a, basis).unwrap();
            let tb = qstab::run(&b, basis).unwrap();
            let sa = sim.run_basis(&a, basis);
            let sb = sim.run_basis(&b, basis);
            let dense: f64 = {
                let mut acc = qnum::Complex::ZERO;
                for (x, y) in sa.amplitudes().iter().zip(sb.amplitudes()) {
                    acc += x.conj() * *y;
                }
                acc.abs()
            };
            let tableau = qstab::inner_product_magnitude(&ta, &tb);
            prop_assert!(
                (dense - tableau).abs() < 1e-9,
                "basis {}: statevector {}, tableau {}", basis, dense, tableau
            );
        }
    }
}

/// Phase-convention round trip at n = 8: rows drawn by the uniform
/// stabilizer sampler, lowered to a preparation circuit by
/// `synthesize_state`, and replayed through the CHP gate path must land on
/// a state stabilized by exactly the drawn rows — *including their signs*.
/// The canonical form is pinned so a convention change in any of the three
/// components (sampler sign bookkeeping, synthesis gate choices, CHP
/// conjugation rules) fails loudly rather than silently re-normalizing.
#[test]
fn synthesized_circuit_round_trips_the_sampled_rows_at_n8() {
    let n = 8;
    let mut rng = StdRng::seed_from_u64(0xC11F);
    let rows = qstab::random_stabilizer_rows(n, &mut rng);
    let circuit = qstab::synthesize_state(&rows);
    let tableau = qstab::run(&circuit, 0).unwrap();
    for row in &rows {
        assert!(
            tableau.stabilizes(row),
            "CHP replay does not stabilize drawn row {row}"
        );
    }
    // The same state must come back from `random_stabilizer_circuit`
    // under the same seed (it is the composition of the two steps above).
    let again = qstab::run(
        &qstab::random_stabilizer_circuit(n, &mut StdRng::seed_from_u64(0xC11F)),
        0,
    )
    .unwrap();
    assert!(tableau.same_state(&again));
    let canonical: Vec<String> = tableau
        .canonical_stabilizers()
        .iter()
        .map(ToString::to_string)
        .collect();
    let golden = vec![
        "+ZIZZIIIX".to_string(),
        "+IZIZZIYI".to_string(),
        "-IZIZZXII".to_string(),
        "-ZZZZXZZI".to_string(),
        "+ZZIYZZZZ".to_string(),
        "+ZIYIZIIZ".to_string(),
        "+ZXIZZZZI".to_string(),
        "+XZZZZIIZ".to_string(),
    ];
    assert_eq!(canonical, golden, "canonical form drifted");
}

/// Pauli-row products used by canonicalization match matrix algebra on a
/// couple of hand cases (X·X = I already covered in unit tests; here the
/// anticommuting bookkeeping via an entangled state).
#[test]
fn witness_paulis_separate_states() {
    let n = 6;
    let g = random_clifford(n, 80, 42);
    let mut buggy = g.clone();
    buggy.push(Gate::single(GateKind::Z, 3));
    let verdict = qstab::check_clifford_equivalence(&g, &buggy, 8, 9).unwrap();
    match verdict {
        qstab::CliffordVerdict::NotEquivalent { basis, witness, .. } => {
            // The witness stabilizes G's output but not the buggy one.
            let ta = qstab::run(&g, basis).unwrap();
            let tb = qstab::run(&buggy, basis).unwrap();
            assert!(ta.stabilizes(&witness));
            assert!(!tb.stabilizes(&witness));
        }
        other => panic!("expected detection, got {other:?}"),
    }
}
