//! Counterexample diagnosis: turning "the circuits differ on `|i⟩`" into
//! an actionable report of *where* the outputs diverge.
//!
//! A verification engineer who receives a counterexample wants to see the
//! basis states whose amplitudes disagree — they usually point straight at
//! the corrupted qubits (e.g. a misplaced CX shows up as probability mass on
//! outputs with the wrong bit flipped).

use qcirc::Circuit;
use qnum::Complex;

use crate::backend::{dd_for_flow, SimBackend, StabBackend, StatevectorBackend};
use crate::config::{BackendKind, Config};
use crate::outcome::Counterexample;

/// One disagreeing output amplitude.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmplitudeDiff {
    /// The output basis state.
    pub basis: u64,
    /// Amplitude under `G`.
    pub in_g: Complex,
    /// Amplitude under `G'`.
    pub in_g_prime: Complex,
    /// `|in_g − in_g_prime|²`.
    pub magnitude: f64,
}

/// A diagnosis of a simulation counterexample.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnosis {
    /// The counterexample being explained.
    pub counterexample: Counterexample,
    /// The disagreeing output amplitudes, largest difference first
    /// (at most the requested `top` entries).
    pub top_diffs: Vec<AmplitudeDiff>,
    /// The qubits whose marginal probabilities differ noticeably — the
    /// prime suspects for the faulty gate's location.
    pub suspicious_qubits: Vec<usize>,
}

impl std::fmt::Display for Diagnosis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "counterexample: {}", self.counterexample)?;
        writeln!(f, "largest output differences:")?;
        for d in &self.top_diffs {
            writeln!(
                f,
                "  |{:b}⟩: {} vs {} (|Δ|² = {:.4})",
                d.basis, d.in_g, d.in_g_prime, d.magnitude
            )?;
        }
        write!(f, "suspicious qubits: {:?}", self.suspicious_qubits)
    }
}

/// Re-simulates both circuits on the counterexample's stimulus (preparing
/// its prefix circuit first for product/stabilizer witnesses) and reports
/// the `top` largest amplitude differences plus per-qubit marginal
/// discrepancies.
///
/// Uses the statevector simulator, so it is limited to registers that fit
/// in memory (the counterexample itself may have come from either backend).
///
/// # Panics
///
/// Panics if the circuits' qubit counts differ or exceed the statevector
/// limit.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), qcec::FlowError> {
/// use qcec::Outcome;
///
/// let g = qcirc::generators::w_state(3);
/// let mut buggy = g.clone();
/// buggy.x(1);
/// let result = qcec::check_equivalence_default(&g, &buggy)?;
/// if let Outcome::NotEquivalent { counterexample: Some(ce) } = result.outcome {
///     let diagnosis = qcec::diagnose::explain(&g, &buggy, ce, 4);
///     assert!(diagnosis.suspicious_qubits.contains(&1));
/// }
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn explain(g: &Circuit, g_prime: &Circuit, ce: Counterexample, top: usize) -> Diagnosis {
    let backend = StatevectorBackend::new();
    explain_on(&backend, g, g_prime, ce, top).expect("statevector replay cannot fail")
}

/// Like [`explain`], but replays the counterexample on the backend the
/// flow's `config` selects — so a verdict reached by the decision-diagram
/// engine is diagnosed by the same engine that produced it.
///
/// # Errors
///
/// Returns [`qdd::DdLimitError`] if the DD engine exhausts its node budget
/// during the replay.
///
/// # Panics
///
/// Panics if the circuits' qubit counts differ or exceed the dense-output
/// limit (the diagnosis itself is `O(2ⁿ)` on any engine).
pub fn explain_for(
    g: &Circuit,
    g_prime: &Circuit,
    ce: Counterexample,
    top: usize,
    config: &Config,
) -> Result<Diagnosis, qdd::DdLimitError> {
    match config.backend {
        BackendKind::Statevector => explain_on(&StatevectorBackend::new(), g, g_prime, ce, top),
        BackendKind::DecisionDiagram => explain_on(&dd_for_flow(config), g, g_prime, ce, top),
        // The stab engine replays densely anyway; use its fallback directly.
        BackendKind::Stab => explain_on(&StabBackend::new(), g, g_prime, ce, top),
        BackendKind::Mps => explain_on(
            &crate::backend::MpsBackend::for_flow(config),
            g,
            g_prime,
            ce,
            top,
        ),
        BackendKind::Auto => {
            let resolved = crate::backend::auto_backend(g, g_prime);
            explain_for(g, g_prime, ce, top, &config.clone().with_backend(resolved))
        }
    }
}

/// Replays the counterexample's stimulus through both circuits on the given
/// backend and diagnoses the dense output vectors it returns.
///
/// # Errors
///
/// Returns [`qdd::DdLimitError`] if the engine exhausts its node budget.
///
/// # Panics
///
/// Panics if the circuits' qubit counts differ.
pub fn explain_on<B: SimBackend>(
    backend: &B,
    g: &Circuit,
    g_prime: &Circuit,
    ce: Counterexample,
    top: usize,
) -> Result<Diagnosis, qdd::DdLimitError> {
    assert_eq!(
        g.n_qubits(),
        g_prime.n_qubits(),
        "circuits must have equal qubit counts"
    );
    let mut workspace = backend.workspace(g.n_qubits());
    let (a, b) = backend.replay(g, g_prime, &ce.stimulus, &mut workspace)?;
    Ok(diagnose_outputs(g.n_qubits(), &a, &b, ce, top))
}

/// The engine-agnostic core: ranks amplitude differences and flags qubits
/// whose marginals disagree, given the two dense output vectors.
fn diagnose_outputs(
    n_qubits: usize,
    a: &[Complex],
    b: &[Complex],
    ce: Counterexample,
    top: usize,
) -> Diagnosis {
    let mut diffs: Vec<AmplitudeDiff> = a
        .iter()
        .zip(b.iter())
        .enumerate()
        .filter_map(|(i, (&x, &y))| {
            let magnitude = (x - y).norm_sqr();
            if magnitude > 1e-12 {
                Some(AmplitudeDiff {
                    basis: i as u64,
                    in_g: x,
                    in_g_prime: y,
                    magnitude,
                })
            } else {
                None
            }
        })
        .collect();
    diffs.sort_by(|l, r| r.magnitude.total_cmp(&l.magnitude));
    diffs.truncate(top);

    let a = qsim::StateVector::from_amplitudes(a.to_vec()).expect("replay output is a valid state");
    let b = qsim::StateVector::from_amplitudes(b.to_vec()).expect("replay output is a valid state");
    let suspicious_qubits = (0..n_qubits)
        .filter(|&q| {
            let pa = qsim::measure::probability_of_one(&a, q);
            let pb = qsim::measure::probability_of_one(&b, q);
            (pa - pb).abs() > 1e-6
        })
        .collect();

    Diagnosis {
        counterexample: ce,
        top_diffs: diffs,
        suspicious_qubits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_equivalence_default, Outcome};
    use qcirc::generators;

    fn counterexample_for(g: &Circuit, buggy: &Circuit) -> Counterexample {
        match check_equivalence_default(g, buggy).unwrap().outcome {
            Outcome::NotEquivalent {
                counterexample: Some(ce),
            } => ce,
            other => panic!("expected counterexample, got {other}"),
        }
    }

    #[test]
    fn stray_x_is_localized() {
        // A W state's marginals are 1/n per qubit; an X on qubit 2 pushes
        // that qubit's marginal to (n−1)/n — clearly suspicious. (GHZ would
        // *not* work here: its marginals are invariant under single flips.)
        let g = generators::w_state(4);
        let mut buggy = g.clone();
        buggy.x(2);
        let ce = counterexample_for(&g, &buggy);
        let d = explain(&g, &buggy, ce, 4);
        assert_eq!(d.suspicious_qubits, vec![2]);
        assert!(!d.top_diffs.is_empty());
        assert!(d.top_diffs[0].magnitude > 0.1);
        // Sorted descending.
        for w in d.top_diffs.windows(2) {
            assert!(w[0].magnitude >= w[1].magnitude);
        }
    }

    #[test]
    fn phase_error_shows_amplitude_diffs_without_marginals() {
        // A Z error changes phases, not marginals: suspicious qubits stays
        // empty, but amplitude diffs appear.
        let mut g = qcirc::Circuit::new(2);
        g.h(0).cx(0, 1);
        let mut buggy = g.clone();
        buggy.z(1);
        let ce = counterexample_for(&g, &buggy);
        let d = explain(&g, &buggy, ce, 4);
        assert!(d.suspicious_qubits.is_empty());
        assert!(!d.top_diffs.is_empty());
    }

    #[test]
    fn both_backends_produce_the_same_diagnosis() {
        let g = generators::w_state(4);
        let mut buggy = g.clone();
        buggy.x(2);
        let ce = counterexample_for(&g, &buggy);
        let sv = explain_for(&g, &buggy, ce.clone(), 4, &Config::default()).unwrap();
        let dd = explain_for(
            &g,
            &buggy,
            ce,
            4,
            &Config::default().with_backend(BackendKind::DecisionDiagram),
        )
        .unwrap();
        assert_eq!(sv.suspicious_qubits, dd.suspicious_qubits);
        assert_eq!(sv.top_diffs.len(), dd.top_diffs.len());
        for (a, b) in sv.top_diffs.iter().zip(&dd.top_diffs) {
            assert_eq!(a.basis, b.basis);
            assert!((a.magnitude - b.magnitude).abs() < 1e-9);
        }
    }

    #[test]
    fn top_truncation() {
        let g = generators::qft(4, true);
        let mut buggy = g.clone();
        buggy.x(0);
        let ce = counterexample_for(&g, &buggy);
        let d = explain(&g, &buggy, ce, 3);
        assert!(d.top_diffs.len() <= 3);
        let text = d.to_string();
        assert!(text.contains("largest output differences"));
    }
}
