//! Quantum circuit infrastructure: IR, parsers, generators and the design
//! flow steps whose correctness the equivalence checker verifies.
//!
//! This crate models the *inputs* of the DAC'20 paper "The Power of
//! Simulation for Equivalence Checking in Quantum Computing":
//!
//! * [`Circuit`] / [`Gate`] / [`GateKind`] — the gate-level IR (qubit 0 is
//!   the least significant basis-index bit),
//! * [`qasm`] — OpenQASM 2.0 parsing and writing,
//! * [`real`] — RevLib `.real` parsing (the paper's \[27\] benchmark format),
//! * [`generators`] — the benchmark families of the paper's Table I,
//! * [`decompose`] — lowering to the device basis `{1q, CX}` (\[2\]–\[5\]),
//! * [`mapping`] — coupling maps and SWAP-insertion routing (\[6\]–\[10\]),
//! * [`optimize`] — exact, unitary-preserving optimization passes
//!   (\[11\], \[12\]),
//! * [`errors`] — the paper's fault model for producing non-equivalent
//!   instances,
//! * [`dense`] — reference dense unitaries for ground-truth checks,
//! * [`dag`] — dependency/layer views of circuits.
//!
//! # Examples
//!
//! Build, decompose, map and optimize a circuit — the full design flow the
//! paper checks:
//!
//! ```
//! use qcirc::mapping::{route, CouplingMap, RouterOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let original = qcirc::generators::qft(4, true);
//! let lowered = qcirc::decompose::decompose_to_cx_and_single_qubit(&original);
//! let routed = route(&lowered, &CouplingMap::linear(4), RouterOptions::default())?;
//! let optimized = qcirc::optimize::optimize(&routed.circuit);
//! assert!(optimized.len() <= routed.circuit.len());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod canon;
mod circuit;
pub mod dag;
pub mod decompose;
pub mod dense;
pub mod errors;
mod gate;
pub mod generators;
pub mod mapping;
pub mod optimize;
pub mod qasm;
pub mod real;
pub mod stats;

pub use circuit::{Circuit, GateFitError};
pub use gate::{Gate, GateKind};
