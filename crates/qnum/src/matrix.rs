//! Small dense complex matrices.
//!
//! [`Matrix2`] and [`Matrix4`] are the stack-allocated gate matrices used by
//! the circuit IR and the simulator kernels. [`MatrixN`] is a heap-allocated
//! dense 2ⁿ×2ⁿ matrix used as the *reference semantics* of a circuit: tests
//! compare simulator and decision-diagram results against full unitaries
//! built with it, and the Fig. 1 reproduction prints them.

use std::fmt;

use crate::approx;
use crate::Complex;

/// A 2×2 complex matrix in row-major order — the shape of every single-qubit
/// gate.
///
/// # Examples
///
/// ```
/// use qnum::Matrix2;
///
/// let x = Matrix2::pauli_x();
/// assert!(x.mul(&x).approx_eq(&Matrix2::identity()));
/// assert!(x.is_unitary());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Matrix2 {
    entries: [Complex; 4],
}

impl Matrix2 {
    /// Creates a matrix from rows `[[a, b], [c, d]]`.
    #[must_use]
    pub const fn new(a: Complex, b: Complex, c: Complex, d: Complex) -> Self {
        Matrix2 {
            entries: [a, b, c, d],
        }
    }

    /// The 2×2 identity matrix.
    #[must_use]
    pub const fn identity() -> Self {
        Matrix2::new(Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::ONE)
    }

    /// The Pauli-X (NOT) matrix.
    #[must_use]
    pub const fn pauli_x() -> Self {
        Matrix2::new(Complex::ZERO, Complex::ONE, Complex::ONE, Complex::ZERO)
    }

    /// The Pauli-Y matrix.
    #[must_use]
    pub const fn pauli_y() -> Self {
        Matrix2::new(
            Complex::ZERO,
            Complex::new(0.0, -1.0),
            Complex::I,
            Complex::ZERO,
        )
    }

    /// The Pauli-Z matrix.
    #[must_use]
    pub const fn pauli_z() -> Self {
        Matrix2::new(
            Complex::ONE,
            Complex::ZERO,
            Complex::ZERO,
            Complex::new(-1.0, 0.0),
        )
    }

    /// The Hadamard matrix `H = 1/√2 [[1, 1], [1, -1]]`.
    #[must_use]
    pub fn hadamard() -> Self {
        let h = crate::FRAC_1_SQRT_2;
        Matrix2::new(
            Complex::real(h),
            Complex::real(h),
            Complex::real(h),
            Complex::real(-h),
        )
    }

    /// The phase matrix `P(λ) = diag(1, e^{iλ})`.
    #[must_use]
    pub fn phase(lambda: f64) -> Self {
        Matrix2::new(
            Complex::ONE,
            Complex::ZERO,
            Complex::ZERO,
            Complex::cis(lambda),
        )
    }

    /// The X-rotation `Rx(θ) = e^{-iθX/2}`.
    #[must_use]
    pub fn rx(theta: f64) -> Self {
        let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
        Matrix2::new(
            Complex::real(c),
            Complex::new(0.0, -s),
            Complex::new(0.0, -s),
            Complex::real(c),
        )
    }

    /// The Y-rotation `Ry(θ) = e^{-iθY/2}`.
    #[must_use]
    pub fn ry(theta: f64) -> Self {
        let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
        Matrix2::new(
            Complex::real(c),
            Complex::real(-s),
            Complex::real(s),
            Complex::real(c),
        )
    }

    /// The Z-rotation `Rz(θ) = e^{-iθZ/2} = diag(e^{-iθ/2}, e^{iθ/2})`.
    #[must_use]
    pub fn rz(theta: f64) -> Self {
        Matrix2::new(
            Complex::cis(-theta / 2.0),
            Complex::ZERO,
            Complex::ZERO,
            Complex::cis(theta / 2.0),
        )
    }

    /// The generic single-qubit gate
    /// `U3(θ, φ, λ)` in the OpenQASM/IBM convention.
    #[must_use]
    pub fn u3(theta: f64, phi: f64, lambda: f64) -> Self {
        let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
        Matrix2::new(
            Complex::real(c),
            -Complex::cis(lambda) * s,
            Complex::cis(phi) * s,
            Complex::cis(phi + lambda) * c,
        )
    }

    /// Returns the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is not 0 or 1.
    #[inline]
    #[must_use]
    pub fn entry(&self, row: usize, col: usize) -> Complex {
        assert!(row < 2 && col < 2, "Matrix2 index out of bounds");
        self.entries[row * 2 + col]
    }

    /// Returns the entries as a flat row-major array `[a, b, c, d]`.
    #[inline]
    #[must_use]
    pub fn as_array(&self) -> &[Complex; 4] {
        &self.entries
    }

    /// Matrix product `self · rhs`.
    #[must_use]
    pub fn mul(&self, rhs: &Matrix2) -> Matrix2 {
        let a = &self.entries;
        let b = &rhs.entries;
        Matrix2::new(
            a[0] * b[0] + a[1] * b[2],
            a[0] * b[1] + a[1] * b[3],
            a[2] * b[0] + a[3] * b[2],
            a[2] * b[1] + a[3] * b[3],
        )
    }

    /// Conjugate transpose (adjoint) `U†`.
    #[must_use]
    pub fn adjoint(&self) -> Matrix2 {
        let a = &self.entries;
        Matrix2::new(a[0].conj(), a[2].conj(), a[1].conj(), a[3].conj())
    }

    /// Multiplies every entry by a scalar.
    #[must_use]
    pub fn scale(&self, s: Complex) -> Matrix2 {
        let a = &self.entries;
        Matrix2::new(a[0] * s, a[1] * s, a[2] * s, a[3] * s)
    }

    /// Returns `true` if `U·U† ≈ I` within the workspace tolerance.
    #[must_use]
    pub fn is_unitary(&self) -> bool {
        self.mul(&self.adjoint()).approx_eq(&Matrix2::identity())
    }

    /// Returns `true` if both off-diagonal entries are (numerically) zero.
    #[must_use]
    pub fn is_diagonal(&self) -> bool {
        self.entries[1].approx_zero() && self.entries[2].approx_zero()
    }

    /// Entry-wise tolerance comparison.
    #[must_use]
    pub fn approx_eq(&self, other: &Matrix2) -> bool {
        self.entries
            .iter()
            .zip(other.entries.iter())
            .all(|(a, b)| a.approx_eq(*b))
    }

    /// Entry-wise comparison up to a single global phase factor.
    ///
    /// Two gate matrices that differ only by `e^{iφ}` implement the same
    /// physical operation.
    #[must_use]
    pub fn approx_eq_up_to_phase(&self, other: &Matrix2) -> bool {
        // Find the first entry of `other` with non-negligible magnitude and
        // derive the candidate phase from it.
        for k in 0..4 {
            if !other.entries[k].approx_zero() {
                if self.entries[k].approx_zero() {
                    return false;
                }
                let phase = self.entries[k] / other.entries[k];
                if !approx::approx_eq(phase.abs(), 1.0) {
                    return false;
                }
                return self.approx_eq(&other.scale(phase));
            }
        }
        // `other` is the zero matrix — matrices are equal iff self is too.
        self.entries.iter().all(|e| e.approx_zero())
    }
}

impl fmt::Display for Matrix2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{} {}]", self.entries[0], self.entries[1])?;
        write!(f, "[{} {}]", self.entries[2], self.entries[3])
    }
}

/// A 4×4 complex matrix in row-major order — the shape of two-qubit gates
/// such as CX, CZ and SWAP.
///
/// # Examples
///
/// ```
/// use qnum::Matrix4;
///
/// let swap = Matrix4::swap();
/// assert!(swap.mul(&swap).approx_eq(&Matrix4::identity()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Matrix4 {
    entries: [Complex; 16],
}

impl Matrix4 {
    /// Creates a matrix from a flat row-major array.
    #[must_use]
    pub const fn from_rows(entries: [Complex; 16]) -> Self {
        Matrix4 { entries }
    }

    /// The 4×4 identity matrix.
    #[must_use]
    pub fn identity() -> Self {
        let mut m = [Complex::ZERO; 16];
        for i in 0..4 {
            m[i * 4 + i] = Complex::ONE;
        }
        Matrix4::from_rows(m)
    }

    /// The controlled-NOT with the control on the *high* (most significant)
    /// qubit of the 2-qubit index: `CX = [[I, 0], [0, X]]` in block form,
    /// exactly the matrix shown in the paper's Fig. 1a.
    #[must_use]
    pub fn cx() -> Self {
        let mut m = [Complex::ZERO; 16];
        m[0] = Complex::ONE; // |00> -> |00>
        m[5] = Complex::ONE; // |01> -> |01>
        m[11] = Complex::ONE; // |10> -> |11>
        m[14] = Complex::ONE; // |11> -> |10>
        Matrix4::from_rows(m)
    }

    /// The controlled-Z matrix `diag(1, 1, 1, -1)`.
    #[must_use]
    pub fn cz() -> Self {
        let mut m = [Complex::ZERO; 16];
        m[0] = Complex::ONE;
        m[5] = Complex::ONE;
        m[10] = Complex::ONE;
        m[15] = -Complex::ONE;
        Matrix4::from_rows(m)
    }

    /// The SWAP matrix (paper Fig. 1a).
    #[must_use]
    pub fn swap() -> Self {
        let mut m = [Complex::ZERO; 16];
        m[0] = Complex::ONE; // |00> -> |00>
        m[6] = Complex::ONE; // |01> -> |10>
        m[9] = Complex::ONE; // |10> -> |01>
        m[15] = Complex::ONE; // |11> -> |11>
        Matrix4::from_rows(m)
    }

    /// Returns the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` exceeds 3.
    #[inline]
    #[must_use]
    pub fn entry(&self, row: usize, col: usize) -> Complex {
        assert!(row < 4 && col < 4, "Matrix4 index out of bounds");
        self.entries[row * 4 + col]
    }

    /// Returns the entries as a flat row-major array.
    #[inline]
    #[must_use]
    pub fn as_array(&self) -> &[Complex; 16] {
        &self.entries
    }

    /// Matrix product `self · rhs`.
    #[must_use]
    pub fn mul(&self, rhs: &Matrix4) -> Matrix4 {
        let mut out = [Complex::ZERO; 16];
        for i in 0..4 {
            for k in 0..4 {
                let aik = self.entries[i * 4 + k];
                if aik.approx_zero() {
                    continue;
                }
                for j in 0..4 {
                    out[i * 4 + j] += aik * rhs.entries[k * 4 + j];
                }
            }
        }
        Matrix4::from_rows(out)
    }

    /// Conjugate transpose (adjoint) `U†`.
    #[must_use]
    pub fn adjoint(&self) -> Matrix4 {
        let mut out = [Complex::ZERO; 16];
        for i in 0..4 {
            for j in 0..4 {
                out[j * 4 + i] = self.entries[i * 4 + j].conj();
            }
        }
        Matrix4::from_rows(out)
    }

    /// Kronecker product of two 2×2 matrices, `a ⊗ b`.
    #[must_use]
    pub fn kron(a: &Matrix2, b: &Matrix2) -> Matrix4 {
        let mut out = [Complex::ZERO; 16];
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    for l in 0..2 {
                        out[(i * 2 + k) * 4 + (j * 2 + l)] = a.entry(i, j) * b.entry(k, l);
                    }
                }
            }
        }
        Matrix4::from_rows(out)
    }

    /// Returns `true` if `U·U† ≈ I` within the workspace tolerance.
    #[must_use]
    pub fn is_unitary(&self) -> bool {
        self.mul(&self.adjoint()).approx_eq(&Matrix4::identity())
    }

    /// Entry-wise tolerance comparison.
    #[must_use]
    pub fn approx_eq(&self, other: &Matrix4) -> bool {
        self.entries
            .iter()
            .zip(other.entries.iter())
            .all(|(a, b)| a.approx_eq(*b))
    }
}

impl fmt::Display for Matrix4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..4 {
            if r > 0 {
                writeln!(f)?;
            }
            write!(f, "[")?;
            for c in 0..4 {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{}", self.entries[r * 4 + c])?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// A heap-allocated dense square complex matrix of dimension `2ⁿ`.
///
/// This is the *reference* representation of a circuit's functionality: it is
/// exponential in the number of qubits, which is exactly the complexity the
/// paper's flow avoids — but it is invaluable for testing the simulator and
/// the DD package against ground truth on small `n`, and for reproducing the
/// matrices of Fig. 1.
///
/// # Examples
///
/// ```
/// use qnum::{Matrix2, MatrixN};
///
/// let h = MatrixN::from_matrix2(&Matrix2::hadamard());
/// let hh = h.mul(&h);
/// assert!(hh.approx_eq(&MatrixN::identity(1)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixN {
    n_qubits: usize,
    dim: usize,
    entries: Vec<Complex>,
}

impl MatrixN {
    /// Creates a zero matrix for `n_qubits` qubits (dimension `2ⁿ`).
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits > 16` — a dense 2¹⁶-dimensional matrix already
    /// occupies 64 GiB; anything larger is certainly a bug in the caller.
    #[must_use]
    pub fn zero(n_qubits: usize) -> Self {
        assert!(
            n_qubits <= 16,
            "dense matrices for more than 16 qubits are not supported"
        );
        let dim = 1usize << n_qubits;
        MatrixN {
            n_qubits,
            dim,
            entries: vec![Complex::ZERO; dim * dim],
        }
    }

    /// Creates the identity matrix for `n_qubits` qubits.
    #[must_use]
    pub fn identity(n_qubits: usize) -> Self {
        let mut m = MatrixN::zero(n_qubits);
        for i in 0..m.dim {
            m.set(i, i, Complex::ONE);
        }
        m
    }

    /// Embeds a 2×2 matrix as a 1-qubit [`MatrixN`].
    #[must_use]
    pub fn from_matrix2(m: &Matrix2) -> Self {
        let mut out = MatrixN::zero(1);
        for r in 0..2 {
            for c in 0..2 {
                out.set(r, c, m.entry(r, c));
            }
        }
        out
    }

    /// Embeds a 4×4 matrix as a 2-qubit [`MatrixN`].
    #[must_use]
    pub fn from_matrix4(m: &Matrix4) -> Self {
        let mut out = MatrixN::zero(2);
        for r in 0..4 {
            for c in 0..4 {
                out.set(r, c, m.entry(r, c));
            }
        }
        out
    }

    /// The number of qubits this matrix acts on.
    #[inline]
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The dimension `2ⁿ` of the matrix.
    #[inline]
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    #[inline]
    #[must_use]
    pub fn entry(&self, row: usize, col: usize) -> Complex {
        assert!(
            row < self.dim && col < self.dim,
            "MatrixN index out of bounds"
        );
        self.entries[row * self.dim + col]
    }

    /// Sets the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: Complex) {
        assert!(
            row < self.dim && col < self.dim,
            "MatrixN index out of bounds"
        );
        self.entries[row * self.dim + col] = value;
    }

    /// Returns column `col` as a vector of amplitudes.
    ///
    /// The `i`-th column of a circuit's unitary is exactly the output state of
    /// simulating the circuit on basis state `|i⟩` — the observation at the
    /// heart of the paper.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of bounds.
    #[must_use]
    pub fn column(&self, col: usize) -> Vec<Complex> {
        assert!(col < self.dim, "column index out of bounds");
        (0..self.dim).map(|r| self.entry(r, col)).collect()
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[must_use]
    pub fn mul(&self, rhs: &MatrixN) -> MatrixN {
        assert_eq!(self.dim, rhs.dim, "dimension mismatch in MatrixN::mul");
        let mut out = MatrixN::zero(self.n_qubits);
        for i in 0..self.dim {
            for k in 0..self.dim {
                let aik = self.entry(i, k);
                if aik.approx_zero() {
                    continue;
                }
                for j in 0..self.dim {
                    let v = out.entry(i, j) + aik * rhs.entry(k, j);
                    out.set(i, j, v);
                }
            }
        }
        out
    }

    /// Matrix-vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len()` differs from the matrix dimension.
    #[must_use]
    pub fn mul_vec(&self, v: &[Complex]) -> Vec<Complex> {
        assert_eq!(v.len(), self.dim, "dimension mismatch in MatrixN::mul_vec");
        (0..self.dim)
            .map(|r| {
                (0..self.dim)
                    .map(|c| self.entry(r, c) * v[c])
                    .sum::<Complex>()
            })
            .collect()
    }

    /// Conjugate transpose (adjoint) `U†`.
    #[must_use]
    pub fn adjoint(&self) -> MatrixN {
        let mut out = MatrixN::zero(self.n_qubits);
        for r in 0..self.dim {
            for c in 0..self.dim {
                out.set(c, r, self.entry(r, c).conj());
            }
        }
        out
    }

    /// Kronecker product `self ⊗ rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the combined qubit count exceeds the dense limit (16).
    #[must_use]
    pub fn kron(&self, rhs: &MatrixN) -> MatrixN {
        let mut out = MatrixN::zero(self.n_qubits + rhs.n_qubits);
        for i in 0..self.dim {
            for j in 0..self.dim {
                let a = self.entry(i, j);
                if a.approx_zero() {
                    continue;
                }
                for k in 0..rhs.dim {
                    for l in 0..rhs.dim {
                        out.set(i * rhs.dim + k, j * rhs.dim + l, a * rhs.entry(k, l));
                    }
                }
            }
        }
        out
    }

    /// Returns `true` if `U·U† ≈ I` within the workspace tolerance.
    #[must_use]
    pub fn is_unitary(&self) -> bool {
        self.mul(&self.adjoint())
            .approx_eq(&MatrixN::identity(self.n_qubits))
    }

    /// Entry-wise tolerance comparison.
    #[must_use]
    pub fn approx_eq(&self, other: &MatrixN) -> bool {
        self.dim == other.dim
            && self
                .entries
                .iter()
                .zip(other.entries.iter())
                .all(|(a, b)| a.approx_eq(*b))
    }

    /// Comparison up to a single global phase factor.
    #[must_use]
    pub fn approx_eq_up_to_phase(&self, other: &MatrixN) -> bool {
        if self.dim != other.dim {
            return false;
        }
        for k in 0..self.entries.len() {
            if !other.entries[k].approx_zero() {
                if self.entries[k].approx_zero() {
                    return false;
                }
                let phase = self.entries[k] / other.entries[k];
                if !approx::approx_eq(phase.abs(), 1.0) {
                    return false;
                }
                return self
                    .entries
                    .iter()
                    .zip(other.entries.iter())
                    .all(|(a, b)| a.approx_eq(*b * phase));
            }
        }
        self.entries.iter().all(|e| e.approx_zero())
    }

    /// Counts the columns in which `self` and `other` differ.
    ///
    /// This is the quantity the paper's theory section reasons about: a
    /// difference gate with `c` controls makes `2^{n-c}` columns differ, so a
    /// random basis-state simulation detects it with probability `2^{-c}`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[must_use]
    pub fn differing_columns(&self, other: &MatrixN) -> usize {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        (0..self.dim)
            .filter(|&c| (0..self.dim).any(|r| !self.entry(r, c).approx_eq(other.entry(r, c))))
            .count()
    }
}

impl fmt::Display for MatrixN {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.dim {
            if r > 0 {
                writeln!(f)?;
            }
            write!(f, "[")?;
            for c in 0..self.dim {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{}", self.entry(r, c))?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn paulis_are_unitary_and_self_inverse() {
        for m in [Matrix2::pauli_x(), Matrix2::pauli_y(), Matrix2::pauli_z()] {
            assert!(m.is_unitary());
            assert!(m.mul(&m).approx_eq(&Matrix2::identity()));
        }
    }

    #[test]
    fn hadamard_properties() {
        let h = Matrix2::hadamard();
        assert!(h.is_unitary());
        assert!(h.mul(&h).approx_eq(&Matrix2::identity()));
        // HXH = Z
        let hxh = h.mul(&Matrix2::pauli_x()).mul(&h);
        assert!(hxh.approx_eq(&Matrix2::pauli_z()));
    }

    #[test]
    fn rotations_compose_additively() {
        let a = Matrix2::rz(0.3);
        let b = Matrix2::rz(0.4);
        assert!(a.mul(&b).approx_eq(&Matrix2::rz(0.7)));
        let a = Matrix2::rx(0.3);
        let b = Matrix2::rx(0.4);
        assert!(a.mul(&b).approx_eq(&Matrix2::rx(0.7)));
        let a = Matrix2::ry(0.3);
        let b = Matrix2::ry(0.4);
        assert!(a.mul(&b).approx_eq(&Matrix2::ry(0.7)));
    }

    #[test]
    fn rz_pi_is_z_up_to_phase() {
        assert!(Matrix2::rz(PI).approx_eq_up_to_phase(&Matrix2::pauli_z()));
        assert!(!Matrix2::rz(PI).approx_eq(&Matrix2::pauli_z()));
    }

    #[test]
    fn rx_pi_is_x_up_to_phase() {
        assert!(Matrix2::rx(PI).approx_eq_up_to_phase(&Matrix2::pauli_x()));
    }

    #[test]
    fn phase_gate_special_cases() {
        // P(π) = Z, P(π/2) = S, P(π/4) = T.
        assert!(Matrix2::phase(PI).approx_eq(&Matrix2::pauli_z()));
        let s = Matrix2::phase(PI / 2.0);
        assert!(s.mul(&s).approx_eq(&Matrix2::pauli_z()));
        let t = Matrix2::phase(PI / 4.0);
        assert!(t.mul(&t).approx_eq(&s));
    }

    #[test]
    fn u3_reduces_to_known_gates() {
        // U3(π, 0, π) = X.
        assert!(Matrix2::u3(PI, 0.0, PI).approx_eq(&Matrix2::pauli_x()));
        // U3(π/2, 0, π) = H.
        assert!(Matrix2::u3(PI / 2.0, 0.0, PI).approx_eq(&Matrix2::hadamard()));
        // U3(0, 0, λ) = P(λ).
        assert!(Matrix2::u3(0.0, 0.0, 0.7).approx_eq(&Matrix2::phase(0.7)));
    }

    #[test]
    fn u3_is_always_unitary() {
        for &(t, p, l) in &[(0.1, 0.2, 0.3), (1.0, -2.0, 3.0), (PI, PI / 3.0, -PI / 5.0)] {
            assert!(Matrix2::u3(t, p, l).is_unitary(), "U3({t},{p},{l})");
        }
    }

    #[test]
    fn diagonal_detection() {
        assert!(Matrix2::pauli_z().is_diagonal());
        assert!(Matrix2::rz(0.5).is_diagonal());
        assert!(!Matrix2::pauli_x().is_diagonal());
        assert!(!Matrix2::hadamard().is_diagonal());
    }

    #[test]
    fn matrix4_gates_are_unitary() {
        for m in [Matrix4::cx(), Matrix4::cz(), Matrix4::swap()] {
            assert!(m.is_unitary());
        }
    }

    #[test]
    fn cx_matches_paper_figure_1a() {
        // Fig. 1a: CX = [[1,0,0,0],[0,1,0,0],[0,0,0,1],[0,0,1,0]].
        let cx = Matrix4::cx();
        let expect = [
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
            [0.0, 0.0, 1.0, 0.0],
        ];
        for (r, row) in expect.iter().enumerate() {
            for (c, &want) in row.iter().enumerate() {
                assert!(cx.entry(r, c).approx_eq(Complex::real(want)));
            }
        }
    }

    #[test]
    fn swap_matches_paper_figure_1a() {
        let swap = Matrix4::swap();
        let expect = [
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ];
        for (r, row) in expect.iter().enumerate() {
            for (c, &want) in row.iter().enumerate() {
                assert!(swap.entry(r, c).approx_eq(Complex::real(want)));
            }
        }
    }

    #[test]
    fn swap_is_three_cnots() {
        // SWAP = CX(a→b) · CX(b→a) · CX(a→b); with CX and its qubit-reversed
        // variant expressed via kron-conjugation with SWAP.
        let cx = Matrix4::cx();
        let swap = Matrix4::swap();
        let cx_rev = swap.mul(&cx).mul(&swap);
        let three = cx.mul(&cx_rev).mul(&cx);
        assert!(three.approx_eq(&swap));
    }

    #[test]
    fn kron_of_identities_is_identity() {
        let i4 = Matrix4::kron(&Matrix2::identity(), &Matrix2::identity());
        assert!(i4.approx_eq(&Matrix4::identity()));
    }

    #[test]
    fn kron_structure_matches_definition() {
        let hx = Matrix4::kron(&Matrix2::hadamard(), &Matrix2::pauli_x());
        let h = Matrix2::hadamard();
        let x = Matrix2::pauli_x();
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    for l in 0..2 {
                        assert!(hx
                            .entry(i * 2 + k, j * 2 + l)
                            .approx_eq(h.entry(i, j) * x.entry(k, l)));
                    }
                }
            }
        }
    }

    #[test]
    fn matrixn_identity_and_mul() {
        let i = MatrixN::identity(3);
        assert!(i.is_unitary());
        assert!(i.mul(&i).approx_eq(&i));
        assert_eq!(i.dim(), 8);
        assert_eq!(i.n_qubits(), 3);
    }

    #[test]
    fn matrixn_kron_matches_matrix4_kron() {
        let a = MatrixN::from_matrix2(&Matrix2::hadamard());
        let b = MatrixN::from_matrix2(&Matrix2::pauli_y());
        let big = a.kron(&b);
        let small = Matrix4::kron(&Matrix2::hadamard(), &Matrix2::pauli_y());
        assert!(big.approx_eq(&MatrixN::from_matrix4(&small)));
    }

    #[test]
    fn matrixn_mul_vec_matches_column_extraction() {
        let m = MatrixN::from_matrix4(&Matrix4::cx());
        for col in 0..4 {
            let mut basis = vec![Complex::ZERO; 4];
            basis[col] = Complex::ONE;
            assert_eq!(m.mul_vec(&basis), m.column(col));
        }
    }

    #[test]
    fn matrixn_adjoint_inverts_unitary() {
        let m = MatrixN::from_matrix4(&Matrix4::cx());
        assert!(m.mul(&m.adjoint()).approx_eq(&MatrixN::identity(2)));
    }

    #[test]
    fn differing_columns_identity_vs_x() {
        // X differs from I in both columns.
        let i = MatrixN::identity(1);
        let x = MatrixN::from_matrix2(&Matrix2::pauli_x());
        assert_eq!(i.differing_columns(&x), 2);
        assert_eq!(i.differing_columns(&i), 0);
    }

    #[test]
    fn differing_columns_controlled_gate() {
        // CX differs from I only in the two columns where the control is 1 —
        // exactly the paper's Example 8 worst case.
        let i = MatrixN::identity(2);
        let cx = MatrixN::from_matrix4(&Matrix4::cx());
        assert_eq!(i.differing_columns(&cx), 2);
    }

    #[test]
    fn global_phase_comparison_matrixn() {
        let m = MatrixN::from_matrix2(&Matrix2::rz(PI));
        let z = MatrixN::from_matrix2(&Matrix2::pauli_z());
        assert!(m.approx_eq_up_to_phase(&z));
        assert!(!m.approx_eq(&z));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn matrixn_bounds_checked() {
        let m = MatrixN::identity(1);
        let _ = m.entry(2, 0);
    }
}
