//! A QMDD-style decision diagram package for quantum functionality.
//!
//! This crate reimplements, from the published algorithms, the two JKU
//! engines the paper builds on:
//!
//! * the DD *simulator* of reference \[25\] — [`Package::apply_to_basis`]
//!   simulates a circuit on a basis state entirely in decision-diagram
//!   form;
//! * the DD *equivalence checker* of references \[21\], \[22\], \[26\] —
//!   [`check_equivalence_construct`] builds and compares both complete
//!   system matrices, and [`check_equivalence_alternating`] keeps a single
//!   difference DD near the identity (`G → 𝕀 ← G'`).
//!
//! Canonicity (normalized, hash-consed nodes with tolerance-interned edge
//! weights via [`ComplexTable`]) makes semantic equality a pointer
//! comparison, which is what makes the complete check possible at all — and
//! its exponential blow-up on unstructured circuits (node limits, timeouts)
//! is exactly the weakness the paper's simulation-first flow exploits.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), qdd::DdCheckAbort> {
//! use qdd::{check_equivalence_construct, DdEquivalence, Package};
//!
//! let g = qcirc::generators::ghz(3);
//! let optimized = qcirc::optimize::optimize(&g);
//! let mut package = Package::new(3);
//! let verdict = check_equivalence_construct(&mut package, &g, &optimized, None)?;
//! assert!(verdict.is_equivalent());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alternating;
mod cached;
mod check;
mod complex_table;
pub mod dot;
mod edge;
mod package;
mod probe;

pub use alternating::{
    check_equivalence_alternating, check_equivalence_alternating_cancellable,
    check_equivalence_alternating_scheme, check_equivalence_alternating_scheme_cancellable,
    ApplicationScheme, SchemeCursor,
};
pub use cached::{CachedDd, SharedDd};
pub use check::{
    check_equivalence_construct, check_equivalence_construct_cancellable, DdCheckAbort,
    DdEquivalence,
};
pub use complex_table::{ComplexTable, Cx};
pub use edge::{MEdge, MNode, NodeId, VEdge, VNode};
pub use package::{DdLimitError, Package, PackageStats};
pub use probe::{DdBackend, DdProbeRun};
