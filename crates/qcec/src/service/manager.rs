//! The long-running service facade.
//!
//! [`EquivalenceCheckingManager`] is the `mqt-qcec`-shaped entry point
//! (*Advanced Equivalence Checking for Quantum Circuits*, arXiv
//! 2004.08420): construct, `configure`, `submit`/`submit_batch`, `run`,
//! then query `results`. Unlike the one-shot [`crate::check_equivalence`],
//! the manager persists across submissions: verdicts land in a shared
//! [`VerdictCache`] keyed by content, so resubmitting a pair — the common
//! CI pattern, where most circuits of a regression suite don't change —
//! is answered without simulating anything.
//!
//! Every completed job appends one line to a JSONL report stream. The
//! default line is **timings-free and provenance-free**: a cache hit
//! replays byte-identical lines to the miss that populated it, which is
//! what makes the stream replayable and diffable across runs. Wall-clock
//! data and provenance are opt-in via [`with_timings`]
//! (EquivalenceCheckingManager::with_timings).

use std::fs::OpenOptions;
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use qcirc::Circuit;

use crate::flow::FlowError;
use crate::report::json::Obj;
use crate::report::StageTimings;
use crate::Config;

use super::cache::{CacheStats, EvictionPolicy, VerdictCache};
use super::fingerprint::{derive_seed, CircuitId, ConfigDigest, JobKey};
use super::queue::{run_batch, Job, JobResult};

/// Failure modes of the service layer: a structural flow error from a
/// malformed submission, or an I/O error from the persisted stream.
#[derive(Debug)]
pub enum ServiceError {
    /// The underlying equivalence check rejected a job.
    Flow(FlowError),
    /// The JSONL stream file could not be written.
    Io(io::Error),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Flow(e) => write!(f, "{e}"),
            ServiceError::Io(e) => write!(f, "report stream: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<FlowError> for ServiceError {
    fn from(e: FlowError) -> Self {
        ServiceError::Flow(e)
    }
}

impl From<io::Error> for ServiceError {
    fn from(e: io::Error) -> Self {
        ServiceError::Io(e)
    }
}

/// The service facade: a persistent equivalence-checking engine with a
/// content-addressed verdict cache and a batched, deduplicating job queue.
///
/// # Examples
///
/// ```
/// use qcec::{Config, EquivalenceCheckingManager};
///
/// let g = qcirc::generators::ghz(4);
/// let opt = qcirc::optimize::optimize(&g);
/// let mut manager = EquivalenceCheckingManager::new(Config::default());
/// manager.submit("ghz4", g.clone(), opt.clone());
/// manager.submit("ghz4 again", g, opt); // same content: deduped
/// manager.run().unwrap();
/// assert_eq!(manager.results().len(), 2);
/// assert!(manager.results()[1].provenance.is_cached());
/// ```
#[derive(Debug)]
pub struct EquivalenceCheckingManager {
    config: Config,
    cache: Arc<VerdictCache>,
    workers: usize,
    with_timings: bool,
    stream_path: Option<PathBuf>,
    pending: Vec<Job>,
    results: Vec<JobResult>,
    lines: Vec<String>,
    timings: StageTimings,
}

impl EquivalenceCheckingManager {
    /// Default bound on resident cache entries.
    pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

    /// Creates a manager with a fresh cache of the default capacity and a
    /// single queue worker.
    #[must_use]
    pub fn new(config: Config) -> Self {
        Self::with_cache(
            config,
            Arc::new(VerdictCache::new(Self::DEFAULT_CACHE_CAPACITY)),
        )
    }

    /// Creates a manager with a fresh default-capacity cache under the
    /// given eviction policy. [`EvictionPolicy::CostWeighted`] makes the
    /// cache prefer keeping verdicts that were expensive to compute —
    /// the right choice when a long-lived service mixes large, slow pairs
    /// with high-churn small ones.
    #[must_use]
    pub fn with_eviction_policy(config: Config, policy: EvictionPolicy) -> Self {
        Self::with_cache(
            config,
            Arc::new(VerdictCache::with_policy(
                Self::DEFAULT_CACHE_CAPACITY,
                policy,
            )),
        )
    }

    /// Creates a manager sharing an existing cache (several managers — or
    /// several runs of one driver — can pool their verdicts).
    #[must_use]
    pub fn with_cache(config: Config, cache: Arc<VerdictCache>) -> Self {
        EquivalenceCheckingManager {
            config,
            cache,
            workers: 1,
            with_timings: false,
            stream_path: None,
            pending: Vec::new(),
            results: Vec::new(),
            lines: Vec::new(),
            timings: StageTimings::default(),
        }
    }

    /// Sets the queue worker count. Batch output is byte-identical at any
    /// value; this only changes wall-clock time.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Opts the report stream into wall-clock and provenance fields
    /// (`source`, `t_s`). Timed streams are *not* byte-reproducible —
    /// that's the point of the default.
    #[must_use]
    pub fn with_timings(mut self, with_timings: bool) -> Self {
        self.with_timings = with_timings;
        self
    }

    /// Persists the report stream to a JSONL file (append-only; one line
    /// per completed job, written as each [`run`]
    /// (EquivalenceCheckingManager::run) completes).
    #[must_use]
    pub fn with_stream_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.stream_path = Some(path.into());
        self
    }

    /// Replaces the base configuration for *subsequent* submissions
    /// (already-queued jobs keep the configuration they were submitted
    /// under — that configuration is part of their identity).
    pub fn configure(&mut self, config: Config) {
        self.config = config;
    }

    /// The current base configuration.
    #[must_use]
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Queues one `(G, G′)` pair under the current configuration and
    /// returns its content-addressed key.
    ///
    /// The job's RNG seed is derived from the base seed and the two
    /// circuit fingerprints, so identical pairs share identical stimulus
    /// streams (and therefore identical keys), while distinct pairs in
    /// one batch draw decorrelated stimuli.
    pub fn submit(&mut self, name: impl Into<String>, g: Circuit, g_prime: Circuit) -> JobKey {
        let g_id = CircuitId::of(&g);
        let g_prime_id = CircuitId::of(&g_prime);
        let config =
            self.config
                .clone()
                .with_seed(derive_seed(self.config.seed, &g_id, &g_prime_id));
        let key = JobKey {
            g: g_id,
            g_prime: g_prime_id,
            config: ConfigDigest::of(&config),
        };
        self.pending.push(Job {
            name: name.into(),
            g,
            g_prime,
            config,
            key,
        });
        key
    }

    /// Queues many pairs; returns their keys in submission order.
    pub fn submit_batch<I>(&mut self, pairs: I) -> Vec<JobKey>
    where
        I: IntoIterator<Item = (String, Circuit, Circuit)>,
    {
        pairs
            .into_iter()
            .map(|(name, g, g_prime)| self.submit(name, g, g_prime))
            .collect()
    }

    /// Number of jobs queued but not yet run.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Runs every pending job through the cache and the worker pool,
    /// appends their report lines to the stream (and the stream file, if
    /// configured), and returns the newly completed results in submission
    /// order.
    ///
    /// # Errors
    ///
    /// Propagates the first structural [`FlowError`] (the batch's pending
    /// jobs are consumed either way) and I/O errors from the stream file.
    pub fn run(&mut self) -> Result<&[JobResult], ServiceError> {
        let batch: Vec<Job> = std::mem::take(&mut self.pending);
        let start = Instant::now();
        let completed = run_batch(&batch, &self.cache, self.workers)?;
        let wall = start.elapsed();
        let mut new_lines = Vec::with_capacity(completed.len());
        for result in &completed {
            self.timings = self.timings.merged(result.timings);
            if result.provenance.is_cached() {
                self.timings.cache_hits += 1;
            } else {
                self.timings.cache_misses += 1;
            }
            new_lines.push(render_line(result, self.with_timings, wall));
        }
        if let Some(path) = &self.stream_path {
            append_lines(path, &new_lines)?;
        }
        let first_new = self.results.len();
        self.lines.extend(new_lines);
        self.results.extend(completed);
        Ok(&self.results[first_new..])
    }

    /// Every completed result, in completion (= submission) order.
    #[must_use]
    pub fn results(&self) -> &[JobResult] {
        &self.results
    }

    /// The report stream accumulated so far, one JSON object per line.
    #[must_use]
    pub fn report_lines(&self) -> &[String] {
        &self.lines
    }

    /// The shared verdict cache.
    #[must_use]
    pub fn cache(&self) -> &VerdictCache {
        &self.cache
    }

    /// Counter snapshot of the shared cache.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Aggregated scheduler-event summary across every computed job, with
    /// [`StageTimings::cache_hits`]/[`StageTimings::cache_misses`]
    /// counting served-without-running vs computed jobs.
    #[must_use]
    pub fn stage_timings(&self) -> StageTimings {
        self.timings
    }

    /// Reads a persisted report stream back as lines — the replay half of
    /// the append-only contract. Two streams of the same submissions are
    /// byte-identical (modulo opt-in timing fields), so replaying and
    /// diffing is the intended cheap audit.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn read_stream(path: impl AsRef<Path>) -> io::Result<Vec<String>> {
        let file = std::fs::File::open(path)?;
        BufReader::new(file).lines().collect()
    }
}

/// Renders one job's report line. The default form holds only
/// deterministic fields; `with_timings` appends provenance and the batch
/// wall time (shared across the batch's lines — per-job wall time is not
/// individually tracked to keep the hit path allocation-free).
fn render_line(result: &JobResult, with_timings: bool, wall: std::time::Duration) -> String {
    let mut o = Obj::new();
    o.str("name", &result.name)
        .str("key", &result.key.to_string())
        .int("n", result.n_qubits as u64)
        .int("gates_g", result.g_len as u64)
        .int("gates_g_prime", result.g_prime_len as u64);
    let prefix = o.render();
    // Splice the verdict fragment rendered at miss time: hits replay the
    // exact bytes the original computation produced.
    let mut line = format!(
        "{},{}",
        &prefix[..prefix.len() - 1],
        &result.verdict.json[1..]
    );
    if with_timings {
        let mut t = Obj::new();
        t.str("source", result.provenance.slug())
            .num("t_batch_s", wall.as_secs_f64());
        let rendered = t.render();
        line.truncate(line.len() - 1);
        line.push(',');
        line.push_str(&rendered[1..]);
    }
    line
}

fn append_lines(path: &Path, lines: &[String]) -> io::Result<()> {
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    for line in lines {
        writeln!(file, "{line}")?;
    }
    Ok(())
}
