//! Numeric foundations for the quantum-circuit EDA workspace.
//!
//! This crate provides the small, dependency-free numeric kernel shared by the
//! circuit IR (`qcirc`), the statevector simulator (`qsim`), the decision
//! diagram package (`qdd`) and the equivalence-checking flow (`qcec`):
//!
//! * [`Complex`] — a `f64`-based complex number with the full set of arithmetic
//!   operators, polar/exponential helpers and tolerance-aware comparison.
//! * [`Matrix2`] / [`Matrix4`] — stack-allocated 2×2 and 4×4 complex matrices
//!   used for gate definitions.
//! * [`MatrixN`] — a heap-allocated dense 2ⁿ×2ⁿ matrix used to build full
//!   system unitaries for small circuits (reference semantics for tests and
//!   the Fig. 1 reproduction).
//! * [`approx`] — the global tolerance used throughout the workspace, matching
//!   the tolerance-based complex interning of QMDD packages.
//! * [`angle`] — canonicalization of rotation angles modulo 2π/4π.
//!
//! # Examples
//!
//! ```
//! use qnum::{Complex, Matrix2};
//!
//! let h = Matrix2::hadamard();
//! // H · H = I
//! assert!(h.mul(&h).approx_eq(&Matrix2::identity()));
//! let c = Complex::new(0.0, 1.0);
//! assert!((c * c).approx_eq(Complex::new(-1.0, 0.0)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod angle;
pub mod approx;
mod complex;
mod matrix;

pub use complex::Complex;
pub use matrix::{Matrix2, Matrix4, MatrixN};

/// The square root of one half (`1/√2`), the amplitude produced by a Hadamard.
pub const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;
