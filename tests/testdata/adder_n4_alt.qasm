// The same adder, with canceling gate pairs and a commuting reorder
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
cx q[2], q[1];
h q[3];
h q[3];
cx q[2], q[0];
ccx q[0], q[1], q[2];
cx q[2], q[3];
ccx q[0], q[1], q[2];
cx q[2], q[0];
s q[0];
sdg q[0];
cx q[0], q[1];
