//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: a seedable,
//! deterministic [`rngs::StdRng`], the [`Rng`] extension methods
//! (`gen`, `gen_range`, `gen_bool`) and the [`seq::SliceRandom`]
//! helpers (`choose`, `shuffle`).
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — statistically
//! strong and stable across platforms, though its stream differs from
//! upstream `rand`'s ChaCha12. All workspace code treats seeds as opaque
//! reproducibility handles, so only determinism matters, not the exact
//! stream.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self {
        // Expand the word into a full seed with SplitMix64, like upstream.
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

/// Types producible by [`Rng::gen`] (the subset of upstream's `Standard`
/// distribution the workspace uses).
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (uniform_u64_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start + (uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Two's-complement wrapping makes the span computation exact.
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                let Some(span) = span.checked_add(1) else {
                    return rng.next_u64() as $t; // full i64 domain
                };
                start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Uniform draw from `0..bound` by rejection sampling (unbiased).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Reject the tail of the u64 domain that would bias the modulus.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 reachable");
        for _ in 0..1000 {
            let v = rng.gen_range(5u64..=6);
            assert!((5..=6).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_and_choose_are_deterministic_per_seed() {
        let mut a: Vec<usize> = (0..20).collect();
        let mut b = a.clone();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        let mut rng = StdRng::seed_from_u64(2);
        assert!(a.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
