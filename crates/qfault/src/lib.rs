//! Deterministic fault injection over the `qcirc` IR.
//!
//! The evaluation of Burgholzer & Wille, *The Power of Simulation for
//! Equivalence Checking in Quantum Computing* (DAC 2020), rests on
//! injecting realistic design-flow errors into compiled circuits and
//! counting how few random-basis simulations expose them. This crate
//! provides that fault model as a library of seeded, reproducible circuit
//! *mutators* — the error classes catalogued by "Verifying Results of the
//! IBM Qiskit Quantum Circuit Compilation Flow" (removed gates,
//! wrong/missing controls, perturbed rotation angles, swapped operands,
//! relabelled qubits, reordered gates):
//!
//! | [`MutationKind`]                    | defect it models                                |
//! |-------------------------------------|-------------------------------------------------|
//! | [`RemoveGate`]                      | a gate dropped by a buggy pass                  |
//! | [`AddGate`]                         | a spurious gate inserted by a buggy pass        |
//! | [`RemoveControl`]                   | a control line lost in translation              |
//! | [`AddControl`]                      | a spurious control line                         |
//! | [`SwapTargets`]                     | control/target operands exchanged               |
//! | [`PerturbAngle`]                    | an offset rotation angle (calibration drift)    |
//! | [`SwapAdjacentGates`]               | two non-commuting gates reordered               |
//! | [`RelabelQubits`]                   | a wrong qubit assignment from some point on     |
//!
//! Every mutator implements the common [`Mutator`] trait and returns a
//! structured [`Mutation`] record (site, kind, parameters) so each injected
//! fault is reportable and exactly reproducible from `(seed, index)`: the
//! same circuit, mutator and seed always yield the same mutated circuit.
//!
//! Some syntactic mutations happen to be semantically benign — exchanging
//! the operands of a CZ, or reordering gates that commute after all on the
//! relevant subspace. The [`guard`] module re-checks small instances with
//! the complete decision-diagram equivalence check (`qdd`) so campaigns
//! can label such mutations instead of mis-counting them as missed errors.
//!
//! # Examples
//!
//! ```
//! use qfault::{registry, GuardOptions, GuardVerdict};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let circuit = qcirc::generators::ghz(4);
//! for mutator in registry(0.1) {
//!     let mut rng = StdRng::seed_from_u64(7);
//!     if let Ok((mutated, mutation)) = mutator.apply(&circuit, &mut rng) {
//!         assert_eq!(mutated.n_qubits(), circuit.n_qubits());
//!         // The guard labels mutations that happen to be benign.
//!         let verdict = qfault::guard::classify(&circuit, &mutated, &GuardOptions::default());
//!         println!("{mutation}: {verdict}");
//!     }
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod guard;
mod mutation;
mod mutators;

pub use guard::{GuardCache, GuardOptions, GuardVerdict};
pub use mutation::{MutateError, Mutation, MutationKind};
pub use mutators::{
    mutator_for, registry, AddControl, AddGate, Mutator, PerturbAngle, RelabelQubits,
    RemoveControl, RemoveGate, SwapAdjacentGates, SwapTargets,
};
