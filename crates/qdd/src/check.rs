//! DD-based equivalence checking — the "state-of-the-art routine" the
//! paper's flow falls back to after its simulation runs (\[18\]–\[22\], \[26\]).

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use qcirc::Circuit;
use qnum::Complex;

use crate::package::{DdLimitError, Package};

/// The verdict of a complete (DD-based) equivalence check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DdEquivalence {
    /// The system matrices are identical.
    Equivalent,
    /// The system matrices differ by exactly one global phase factor.
    EquivalentUpToGlobalPhase {
        /// The phase `φ` with `U' = e^{iφ} U`.
        phase: f64,
    },
    /// The system matrices differ.
    NotEquivalent,
}

impl DdEquivalence {
    /// Returns `true` for both flavours of equivalence.
    #[must_use]
    pub fn is_equivalent(&self) -> bool {
        !matches!(self, DdEquivalence::NotEquivalent)
    }
}

impl fmt::Display for DdEquivalence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdEquivalence::Equivalent => write!(f, "equivalent"),
            DdEquivalence::EquivalentUpToGlobalPhase { phase } => {
                write!(f, "equivalent up to global phase {phase}")
            }
            DdEquivalence::NotEquivalent => write!(f, "not equivalent"),
        }
    }
}

/// Why a complete check could not reach a verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DdCheckAbort {
    /// The wall-clock deadline elapsed (the paper's `> 3600 s` rows).
    Timeout {
        /// The configured deadline.
        deadline: Duration,
    },
    /// The DD node limit was exceeded (memory analogue of a timeout).
    NodeLimit(DdLimitError),
    /// A concurrent orchestrator (e.g. `qcec`'s scheduler) raised the
    /// cancellation flag — another checker reached a verdict first.
    Cancelled,
}

impl fmt::Display for DdCheckAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdCheckAbort::Timeout { deadline } => {
                write!(f, "equivalence check timed out after {deadline:?}")
            }
            DdCheckAbort::NodeLimit(e) => write!(f, "{e}"),
            DdCheckAbort::Cancelled => {
                write!(f, "equivalence check cancelled by a concurrent checker")
            }
        }
    }
}

impl std::error::Error for DdCheckAbort {}

impl From<DdLimitError> for DdCheckAbort {
    fn from(e: DdLimitError) -> Self {
        DdCheckAbort::NodeLimit(e)
    }
}

/// A cooperative abort budget checked between gate applications: an
/// optional wall-clock deadline plus an optional external cancellation
/// flag (raised by a concurrent checker that reached a verdict first).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Deadline<'a> {
    start: Instant,
    limit: Option<Duration>,
    cancel: Option<&'a AtomicBool>,
}

impl<'a> Deadline<'a> {
    pub(crate) fn new(limit: Option<Duration>) -> Self {
        Deadline {
            start: Instant::now(),
            limit,
            cancel: None,
        }
    }

    pub(crate) fn cancellable(limit: Option<Duration>, cancel: &'a AtomicBool) -> Self {
        Deadline {
            start: Instant::now(),
            limit,
            cancel: Some(cancel),
        }
    }

    pub(crate) fn check(&self) -> Result<(), DdCheckAbort> {
        if let Some(cancel) = self.cancel {
            if cancel.load(Ordering::Relaxed) {
                return Err(DdCheckAbort::Cancelled);
            }
        }
        if let Some(limit) = self.limit {
            if self.start.elapsed() > limit {
                return Err(DdCheckAbort::Timeout { deadline: limit });
            }
        }
        Ok(())
    }
}

/// Checks equivalence by constructing and comparing both complete system
/// matrices as DDs — the classic approach the paper contrasts its flow
/// against.
///
/// The deadline is checked between gate applications; DD growth is bounded
/// by the package's node limit.
///
/// # Errors
///
/// Returns [`DdCheckAbort`] on timeout or node-limit exhaustion — the cases
/// the paper reports as `> 3600 s`.
///
/// # Panics
///
/// Panics if the circuits' qubit counts differ from the package's.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), qdd::DdCheckAbort> {
/// use qdd::{check_equivalence_construct, DdEquivalence, Package};
///
/// let g = qcirc::generators::ghz(3);
/// let mut p = Package::new(3);
/// let verdict = check_equivalence_construct(&mut p, &g, &g, None)?;
/// assert_eq!(verdict, DdEquivalence::Equivalent);
/// # Ok(())
/// # }
/// ```
pub fn check_equivalence_construct(
    package: &mut Package,
    g: &Circuit,
    g_prime: &Circuit,
    deadline: Option<Duration>,
) -> Result<DdEquivalence, DdCheckAbort> {
    construct_with_budget(package, g, g_prime, Deadline::new(deadline))
}

/// [`check_equivalence_construct`] with an external cancellation flag,
/// polled between gate applications alongside the deadline. Raising the
/// flag makes the check return [`DdCheckAbort::Cancelled`] promptly —
/// this is how a concurrent checker portfolio stops a losing racer.
///
/// # Errors
///
/// Returns [`DdCheckAbort`] on timeout, node-limit exhaustion, or
/// cancellation.
///
/// # Panics
///
/// Panics if the circuits' qubit counts differ from the package's.
pub fn check_equivalence_construct_cancellable(
    package: &mut Package,
    g: &Circuit,
    g_prime: &Circuit,
    deadline: Option<Duration>,
    cancel: &AtomicBool,
) -> Result<DdEquivalence, DdCheckAbort> {
    construct_with_budget(package, g, g_prime, Deadline::cancellable(deadline, cancel))
}

fn construct_with_budget(
    package: &mut Package,
    g: &Circuit,
    g_prime: &Circuit,
    deadline: Deadline<'_>,
) -> Result<DdEquivalence, DdCheckAbort> {
    assert_eq!(
        g.n_qubits(),
        g_prime.n_qubits(),
        "circuits must have equal qubit counts"
    );
    let mut u = circuit_medge_with_deadline(package, g, &deadline, None)?;
    let u_prime = circuit_medge_with_deadline(package, g_prime, &deadline, Some(&mut u))?;
    Ok(compare_roots(package, u, u_prime))
}

/// Builds a circuit DD under a deadline, garbage-collecting as it goes.
/// `keep` is an extra root that must survive GC; it is remapped in place so
/// it stays valid even when the build aborts mid-circuit (a caller like
/// `qdd::CachedDd` relies on that to keep its golden root usable after a
/// timed-out check).
pub(crate) fn circuit_medge_with_deadline(
    package: &mut Package,
    circuit: &Circuit,
    deadline: &Deadline<'_>,
    mut keep: Option<&mut crate::edge::MEdge>,
) -> Result<crate::edge::MEdge, DdCheckAbort> {
    let mut u = package.identity_medge();
    for gate in circuit.gates() {
        deadline.check()?;
        let g = package.gate_medge(gate)?;
        u = package.mul_mm(g, u)?;
        if package.wants_gc() {
            let mut roots = vec![u];
            if let Some(k) = keep.as_deref() {
                roots.push(*k);
            }
            let (remapped, _) = package.compact(&roots, &[]);
            u = remapped[0];
            if let Some(k) = keep.as_deref_mut() {
                *k = remapped[1];
            }
        }
    }
    Ok(u)
}

/// Tolerance for the drift-robust entry-wise comparison (well above the
/// interning tolerance, well below any real gate difference).
const CLOSENESS_TOLERANCE: f64 = 1e-9;

pub(crate) fn compare_roots(
    package: &mut Package,
    u: crate::edge::MEdge,
    u_prime: crate::edge::MEdge,
) -> DdEquivalence {
    // Fast path: canonical (pointer) equality.
    if package.medges_equal(u, u_prime) {
        return DdEquivalence::Equivalent;
    }
    if package.medges_equal_up_to_phase(u, u_prime) {
        let wu = package.weight_value(u.weight);
        let wp = package.weight_value(u_prime.weight);
        let ratio: Complex = wp / wu;
        // A "phase" within tolerance of 1 is plain (drift-level) equality.
        if ratio.approx_one() {
            return DdEquivalence::Equivalent;
        }
        return DdEquivalence::EquivalentUpToGlobalPhase { phase: ratio.arg() };
    }
    // Drift-robust path: accumulated interning rounding on very deep
    // circuits can defeat pointer equality; bound the actual entry-wise
    // difference instead. A node-limit abort here simply yields the
    // (conservative) NotEquivalent of the fast path.
    if let Ok(true) = package.medges_close(u, u_prime, CLOSENESS_TOLERANCE) {
        return DdEquivalence::Equivalent;
    }
    // Up-to-phase: estimate the phase from the first column-0 entries.
    if let (Some((ra, va)), Some((rb, vb))) = (
        package.first_entry_in_column0(u),
        package.first_entry_in_column0(u_prime),
    ) {
        if ra == rb && !va.approx_zero() && !vb.approx_zero() {
            let ratio = vb / va;
            if (ratio.abs() - 1.0).abs() < CLOSENESS_TOLERANCE {
                let scaled = package.scale_medge(u, ratio);
                if let Ok(true) = package.medges_close(scaled, u_prime, CLOSENESS_TOLERANCE) {
                    return DdEquivalence::EquivalentUpToGlobalPhase { phase: ratio.arg() };
                }
            }
        }
    }
    DdEquivalence::NotEquivalent
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::generators;
    use qcirc::mapping::{route, CouplingMap, RouterOptions};

    #[test]
    fn identical_circuits_are_equivalent() {
        let g = generators::qft(4, true);
        let mut p = Package::new(4);
        let v = check_equivalence_construct(&mut p, &g, &g, None).unwrap();
        assert_eq!(v, DdEquivalence::Equivalent);
        assert!(v.is_equivalent());
    }

    #[test]
    fn mapped_circuit_is_equivalent_to_original() {
        let g = generators::qft(5, true);
        let routed = route(&g, &CouplingMap::linear(5), RouterOptions::default()).unwrap();
        let mut p = Package::new(5);
        let v = check_equivalence_construct(&mut p, &g, &routed.circuit, None).unwrap();
        assert_eq!(v, DdEquivalence::Equivalent);
    }

    #[test]
    fn decomposed_circuit_is_equivalent_possibly_up_to_phase() {
        let g = generators::grover(4, 0b0110, 2);
        let lowered = qcirc::decompose::decompose_to_cx_and_single_qubit(&g);
        let mut p = Package::new(4);
        let v = check_equivalence_construct(&mut p, &g, &lowered, None).unwrap();
        assert!(v.is_equivalent(), "got {v}");
    }

    #[test]
    fn misplaced_cx_is_detected() {
        let g = generators::ghz(4);
        let mut buggy = g.clone();
        let old = buggy.replace(2, qcirc::Gate::controlled(qcirc::GateKind::X, vec![0], 2));
        assert_eq!(old.to_string(), "cx q[1], q[2]");
        let mut p = Package::new(4);
        let v = check_equivalence_construct(&mut p, &g, &buggy, None).unwrap();
        assert_eq!(v, DdEquivalence::NotEquivalent);
    }

    #[test]
    fn global_phase_is_classified() {
        let mut a = qcirc::Circuit::new(2);
        a.h(0).cx(0, 1);
        let mut b = a.clone();
        // Rz(2π) = −I contributes a global phase of π.
        b.rz(2.0 * std::f64::consts::PI, 0);
        let mut p = Package::new(2);
        let v = check_equivalence_construct(&mut p, &a, &b, None).unwrap();
        match v {
            DdEquivalence::EquivalentUpToGlobalPhase { phase } => {
                assert!((phase.abs() - std::f64::consts::PI).abs() < 1e-9);
            }
            other => panic!("expected phase equivalence, got {other}"),
        }
    }

    #[test]
    fn drift_robust_comparison_absorbs_tiny_perturbations() {
        // A root weight perturbed above the interning tolerance (1e−13) but
        // below the closeness tolerance (1e−9) defeats pointer equality but
        // must still classify as equivalent.
        let g = generators::qft(5, true);
        let mut p = Package::new(5);
        let u = p.circuit_medge(&g).unwrap();
        let drifted = p.scale_medge(u, qnum::Complex::real(1.0 + 1e-11));
        assert!(!p.medges_equal(u, drifted));
        assert!(p.medges_close(u, drifted, 1e-9).unwrap());
        let verdict = compare_roots(&mut p, u, drifted);
        assert_eq!(verdict, DdEquivalence::Equivalent);
        // A genuinely phased copy classifies as phase-equivalent.
        let phased = p.scale_medge(u, qnum::Complex::cis(0.7));
        match compare_roots(&mut p, u, phased) {
            DdEquivalence::EquivalentUpToGlobalPhase { phase } => {
                assert!((phase - 0.7).abs() < 1e-6);
            }
            other => panic!("expected phase equivalence, got {other}"),
        }
        // And a real difference stays a difference.
        let mut buggy = g.clone();
        buggy.x(2);
        let ub = p.circuit_medge(&buggy).unwrap();
        assert_eq!(compare_roots(&mut p, u, ub), DdEquivalence::NotEquivalent);
    }

    #[test]
    fn max_abs_of_unitaries() {
        let mut p = Package::new(3);
        let id = p.identity_medge();
        assert!((p.max_abs(id) - 1.0).abs() < 1e-12);
        let u = p.circuit_medge(&generators::ghz(3)).unwrap();
        // Largest amplitude of the GHZ unitary is 1/√2.
        assert!((p.max_abs(u) - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
        let sum = p.add_mm(id, id).unwrap();
        assert!((p.max_abs(sum) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn first_column_entry_walks_correctly() {
        let mut p = Package::new(2);
        // X on qubit 1: column 0 has its 1 at row 2.
        let mut c = qcirc::Circuit::new(2);
        c.x(1);
        let u = p.circuit_medge(&c).unwrap();
        let (row, value) = p.first_entry_in_column0(u).unwrap();
        assert_eq!(row, 2);
        assert!(value.approx_one());
    }

    #[test]
    fn zero_deadline_times_out() {
        let g = generators::supremacy_2d(3, 3, 10, 1);
        let mut p = Package::new(9);
        let e = check_equivalence_construct(&mut p, &g, &g, Some(Duration::ZERO)).unwrap_err();
        assert!(matches!(e, DdCheckAbort::Timeout { .. }));
        assert!(e.to_string().contains("timed out"));
    }

    #[test]
    fn raised_cancel_flag_aborts_promptly() {
        let g = generators::qft(5, true);
        let cancel = AtomicBool::new(true);
        let mut p = Package::new(5);
        let e = check_equivalence_construct_cancellable(&mut p, &g, &g, None, &cancel).unwrap_err();
        assert!(matches!(e, DdCheckAbort::Cancelled));
        assert!(e.to_string().contains("cancelled"));
        let mut p = Package::new(5);
        let e = crate::check_equivalence_alternating_cancellable(&mut p, &g, &g, None, &cancel)
            .unwrap_err();
        assert!(matches!(e, DdCheckAbort::Cancelled));
    }

    #[test]
    fn unraised_cancel_flag_changes_nothing() {
        let g = generators::qft(4, true);
        let opt = qcirc::optimize::optimize(&g);
        let cancel = AtomicBool::new(false);
        let mut p = Package::new(4);
        let with_flag =
            check_equivalence_construct_cancellable(&mut p, &g, &opt, None, &cancel).unwrap();
        let mut p = Package::new(4);
        let without = check_equivalence_construct(&mut p, &g, &opt, None).unwrap();
        assert_eq!(with_flag, without);
        let mut p = Package::new(4);
        let alt = crate::check_equivalence_alternating_cancellable(&mut p, &g, &opt, None, &cancel)
            .unwrap();
        assert!(alt.is_equivalent());
    }

    #[test]
    fn node_limit_aborts_check() {
        let g = generators::supremacy_2d(3, 4, 10, 2);
        let mut p = Package::with_node_limit(12, 200);
        let e = check_equivalence_construct(&mut p, &g, &g, None).unwrap_err();
        assert!(matches!(e, DdCheckAbort::NodeLimit(_)));
    }
}
