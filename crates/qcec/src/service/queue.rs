//! The batch job queue: dedupe, fan out, merge in submission order.
//!
//! A batch is a list of `(G, G′, Config)` jobs. The queue:
//!
//! 1. computes every job's [`JobKey`] (done at submit time by the
//!    [`manager`](super::manager), which also derives the per-job seed);
//! 2. **dedupes in-flight keys** — jobs sharing a key run once, every
//!    other occurrence is served from the first run's verdict;
//! 3. fans the unique jobs across the shared ordered worker pool
//!    ([`crate::pool`]) — deterministic per-job seeds mean the fan-out
//!    needs no coordination beyond index claiming;
//! 4. merges results back **in submission order**, so batch output is
//!    byte-identical at any worker count.

use qcirc::Circuit;

use crate::flow::FlowError;
use crate::report::StageTimings;
use crate::scheduler::CollectingSink;
use crate::Config;

use super::cache::{CachedVerdict, VerdictCache};
use super::fingerprint::JobKey;

/// One queued equivalence-checking job.
#[derive(Debug, Clone)]
pub struct Job {
    /// Caller-supplied label, carried into the report stream.
    pub name: String,
    /// The left circuit `G`.
    pub g: Circuit,
    /// The right circuit `G′`.
    pub g_prime: Circuit,
    /// The job's full configuration (seed already derived per pair).
    pub config: Config,
    /// The content-addressed key (precomputed at submit time).
    pub key: JobKey,
}

/// How a job's verdict was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// The flow ran for this job.
    Computed,
    /// Answered from the verdict cache (a previous batch or process).
    CacheHit,
    /// Another job earlier in this batch shared the key; its verdict was
    /// reused without a cache round-trip.
    Deduped,
}

impl Provenance {
    /// Stable lowercase identifier.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            Provenance::Computed => "computed",
            Provenance::CacheHit => "cache_hit",
            Provenance::Deduped => "deduped",
        }
    }

    /// Whether the verdict was served without running the flow.
    #[must_use]
    pub fn is_cached(self) -> bool {
        !matches!(self, Provenance::Computed)
    }
}

/// The completed form of one job, in submission order.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's label.
    pub name: String,
    /// The job's key.
    pub key: JobKey,
    /// Register size of the pair.
    pub n_qubits: usize,
    /// `|G|`.
    pub g_len: usize,
    /// `|G′|`.
    pub g_prime_len: usize,
    /// The verdict (typed outcome + pre-rendered fragment).
    pub verdict: CachedVerdict,
    /// Where the verdict came from.
    pub provenance: Provenance,
    /// Scheduler-event summary for this job (zero when the verdict was
    /// served without running, or when the flow ran unscheduled).
    pub timings: StageTimings,
}

/// Runs a batch through the cache and the worker pool.
///
/// Results come back in submission order regardless of `workers`. The
/// cache is consulted once per *unique* key; unique misses run
/// [`crate::check_equivalence`] and populate the cache.
///
/// # Errors
///
/// Propagates the first (in submission order) structural [`FlowError`] —
/// mismatched register sizes or an oversized register. Such jobs are
/// malformed submissions, not verdicts, so they abort the batch rather
/// than poison the cache.
pub fn run_batch(
    jobs: &[Job],
    cache: &VerdictCache,
    workers: usize,
) -> Result<Vec<JobResult>, FlowError> {
    // Dedupe: the first occurrence of each key runs; later occurrences
    // alias it. `first_of[u]` is the job index that runs unique job `u`;
    // `alias[j]` is job `j`'s unique index.
    let mut first_of: Vec<usize> = Vec::new();
    let mut alias: Vec<usize> = Vec::with_capacity(jobs.len());
    for (job_idx, job) in jobs.iter().enumerate() {
        match first_of.iter().position(|&f| jobs[f].key == job.key) {
            Some(u) => alias.push(u),
            None => {
                alias.push(first_of.len());
                first_of.push(job_idx);
            }
        }
    }

    // Run every unique job (cache lookup inside the worker so hits cost
    // no pool slot time beyond the probe itself).
    let outcomes: Vec<Result<(CachedVerdict, Provenance, StageTimings), FlowError>> =
        crate::pool::run_ordered(first_of.len(), workers, |u| {
            let job = &jobs[first_of[u]];
            if let Some(verdict) = cache.get(&job.key) {
                return Ok((verdict, Provenance::CacheHit, StageTimings::default()));
            }
            let sink = std::sync::Arc::new(CollectingSink::new());
            let config = job.config.clone().with_event_sink(sink.clone());
            let start = std::time::Instant::now();
            let result = crate::check_equivalence(&job.g, &job.g_prime, &config)?;
            let verdict = CachedVerdict::from_result(&result);
            // The job's wall time becomes its eviction weight: under a
            // cost-weighted cache, slow verdicts outlive cheap churn. The
            // cached bytes themselves stay timings-free.
            cache.insert_with_cost(job.key, verdict.clone(), start.elapsed());
            let timings = StageTimings::from_events(&sink.events());
            Ok((verdict, Provenance::Computed, timings))
        });

    let mut unique_results: Vec<(CachedVerdict, Provenance, StageTimings)> =
        Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        unique_results.push(outcome?);
    }

    Ok(jobs
        .iter()
        .enumerate()
        .map(|(job_idx, job)| {
            let u = alias[job_idx];
            let (verdict, provenance, timings) = &unique_results[u];
            let is_first = first_of[u] == job_idx;
            JobResult {
                name: job.name.clone(),
                key: job.key,
                n_qubits: job.g.n_qubits().max(job.g_prime.n_qubits()),
                g_len: job.g.len(),
                g_prime_len: job.g_prime.len(),
                verdict: verdict.clone(),
                provenance: if is_first {
                    *provenance
                } else {
                    Provenance::Deduped
                },
                timings: if is_first {
                    *timings
                } else {
                    StageTimings::default()
                },
            }
        })
        .collect())
}
