//! The gate model: every operation a circuit can contain.
//!
//! A [`Gate`] is a *base operation* ([`GateKind`]) applied to one or two
//! target qubits, optionally guarded by any number of control qubits. This
//! uniform "controlled-U" shape mirrors the paper's Section II and covers the
//! whole design flow: multi-controlled Toffolis at the algorithmic level,
//! `{single-qubit, CX}` at the device level, and SWAPs inserted by mapping.
//!
//! # Qubit-index convention
//!
//! Qubit `0` is the *least significant* bit of a computational basis index:
//! basis state `|i⟩` assigns qubit `q` the bit `(i >> q) & 1`. This matches
//! OpenQASM/Qiskit and is used consistently by `qsim` and `qdd`.

use std::fmt;

use qnum::{angle, Complex, Matrix2};

/// The base operation of a [`Gate`], before controls are applied.
///
/// Single-target kinds have a 2×2 base matrix ([`GateKind::base_matrix`]);
/// [`GateKind::Swap`] is the only two-target kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GateKind {
    /// Identity (useful as an explicit no-op in generated circuits).
    I,
    /// Pauli-X (NOT).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S = P(π/2).
    S,
    /// Inverse phase gate S† = P(−π/2).
    Sdg,
    /// T gate = P(π/4).
    T,
    /// Inverse T gate = P(−π/4).
    Tdg,
    /// Square root of X.
    Sx,
    /// Inverse square root of X.
    Sxdg,
    /// Square root of Y (used by supremacy-style circuits).
    Sy,
    /// Inverse square root of Y.
    Sydg,
    /// Rotation about X: `Rx(θ)`.
    Rx(f64),
    /// Rotation about Y: `Ry(θ)`.
    Ry(f64),
    /// Rotation about Z: `Rz(θ)`.
    Rz(f64),
    /// Phase gate `P(λ) = diag(1, e^{iλ})`.
    Phase(f64),
    /// The generic single-qubit gate `U3(θ, φ, λ)` (IBM convention).
    U3(f64, f64, f64),
    /// The two-qubit SWAP.
    Swap,
}

impl GateKind {
    /// The number of target qubits this kind acts on (1, or 2 for SWAP).
    #[must_use]
    pub fn target_count(&self) -> usize {
        match self {
            GateKind::Swap => 2,
            _ => 1,
        }
    }

    /// The 2×2 base matrix of a single-target kind, or `None` for SWAP.
    #[must_use]
    pub fn base_matrix(&self) -> Option<Matrix2> {
        use std::f64::consts::FRAC_PI_2;
        use std::f64::consts::FRAC_PI_4;
        Some(match *self {
            GateKind::I => Matrix2::identity(),
            GateKind::X => Matrix2::pauli_x(),
            GateKind::Y => Matrix2::pauli_y(),
            GateKind::Z => Matrix2::pauli_z(),
            GateKind::H => Matrix2::hadamard(),
            GateKind::S => Matrix2::phase(FRAC_PI_2),
            GateKind::Sdg => Matrix2::phase(-FRAC_PI_2),
            GateKind::T => Matrix2::phase(FRAC_PI_4),
            GateKind::Tdg => Matrix2::phase(-FRAC_PI_4),
            GateKind::Sx => sqrt_x(),
            GateKind::Sxdg => sqrt_x().adjoint(),
            GateKind::Sy => sqrt_y(),
            GateKind::Sydg => sqrt_y().adjoint(),
            GateKind::Rx(t) => Matrix2::rx(t),
            GateKind::Ry(t) => Matrix2::ry(t),
            GateKind::Rz(t) => Matrix2::rz(t),
            GateKind::Phase(l) => Matrix2::phase(l),
            GateKind::U3(t, p, l) => Matrix2::u3(t, p, l),
            GateKind::Swap => return None,
        })
    }

    /// The inverse kind, such that `k.inverse()`'s matrix is the adjoint of
    /// `k`'s matrix.
    #[must_use]
    pub fn inverse(&self) -> GateKind {
        match *self {
            GateKind::S => GateKind::Sdg,
            GateKind::Sdg => GateKind::S,
            GateKind::T => GateKind::Tdg,
            GateKind::Tdg => GateKind::T,
            GateKind::Sx => GateKind::Sxdg,
            GateKind::Sxdg => GateKind::Sx,
            GateKind::Sy => GateKind::Sydg,
            GateKind::Sydg => GateKind::Sy,
            GateKind::Rx(t) => GateKind::Rx(-t),
            GateKind::Ry(t) => GateKind::Ry(-t),
            GateKind::Rz(t) => GateKind::Rz(-t),
            GateKind::Phase(l) => GateKind::Phase(-l),
            GateKind::U3(t, p, l) => GateKind::U3(-t, -l, -p),
            k => k, // self-inverse: I, X, Y, Z, H, Swap
        }
    }

    /// Returns `true` if the base matrix is diagonal — such gates commute
    /// with each other and with controls, which both the optimizer and the
    /// DD package exploit.
    #[must_use]
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            GateKind::I
                | GateKind::Z
                | GateKind::S
                | GateKind::Sdg
                | GateKind::T
                | GateKind::Tdg
                | GateKind::Rz(_)
                | GateKind::Phase(_)
        )
    }

    /// Returns `true` if this kind carries rotation parameters.
    #[must_use]
    pub fn is_parameterized(&self) -> bool {
        matches!(
            self,
            GateKind::Rx(_)
                | GateKind::Ry(_)
                | GateKind::Rz(_)
                | GateKind::Phase(_)
                | GateKind::U3(..)
        )
    }

    /// Returns `true` if this kind is (numerically) the identity operation —
    /// e.g. `Rz(0)` or `Phase(2π)` up to global phase is *not* counted; only
    /// exact identity up to the workspace tolerance is.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        match *self {
            GateKind::I => true,
            GateKind::Phase(l) => angle::approx_zero_mod_2pi(l),
            _ => false,
        }
    }

    /// The lowercase mnemonic used by the OpenQASM writer and `Display`.
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            GateKind::I => "id",
            GateKind::X => "x",
            GateKind::Y => "y",
            GateKind::Z => "z",
            GateKind::H => "h",
            GateKind::S => "s",
            GateKind::Sdg => "sdg",
            GateKind::T => "t",
            GateKind::Tdg => "tdg",
            GateKind::Sx => "sx",
            GateKind::Sxdg => "sxdg",
            GateKind::Sy => "sy",
            GateKind::Sydg => "sydg",
            GateKind::Rx(_) => "rx",
            GateKind::Ry(_) => "ry",
            GateKind::Rz(_) => "rz",
            GateKind::Phase(_) => "p",
            GateKind::U3(..) => "u3",
            GateKind::Swap => "swap",
        }
    }

    /// The rotation parameters carried by this kind, in declaration order.
    #[must_use]
    pub fn params(&self) -> Vec<f64> {
        match *self {
            GateKind::Rx(t) | GateKind::Ry(t) | GateKind::Rz(t) | GateKind::Phase(t) => vec![t],
            GateKind::U3(t, p, l) => vec![t, p, l],
            _ => Vec::new(),
        }
    }

    /// Tolerance-aware comparison: kinds are equal if their mnemonics match
    /// and their parameters are congruent within the workspace tolerance.
    #[must_use]
    pub fn approx_eq(&self, other: &GateKind) -> bool {
        if std::mem::discriminant(self) != std::mem::discriminant(other) {
            return false;
        }
        self.params()
            .iter()
            .zip(other.params().iter())
            .all(|(a, b)| qnum::approx::approx_eq(*a, *b))
    }
}

fn sqrt_x() -> Matrix2 {
    // √X = 1/2 [[1+i, 1-i], [1-i, 1+i]]
    let p = Complex::new(0.5, 0.5);
    let m = Complex::new(0.5, -0.5);
    Matrix2::new(p, m, m, p)
}

fn sqrt_y() -> Matrix2 {
    // √Y = 1/2 [[1+i, -1-i], [1+i, 1+i]]
    let p = Complex::new(0.5, 0.5);
    Matrix2::new(p, -p, p, p)
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params = self.params();
        if params.is_empty() {
            write!(f, "{}", self.mnemonic())
        } else {
            let rendered: Vec<String> = params.iter().map(|p| format!("{p}")).collect();
            write!(f, "{}({})", self.mnemonic(), rendered.join(","))
        }
    }
}

/// One operation of a circuit: a base [`GateKind`] on `targets`, guarded by
/// zero or more `controls`.
///
/// # Examples
///
/// ```
/// use qcirc::{Gate, GateKind};
///
/// let cx = Gate::controlled(GateKind::X, vec![0], 1);
/// assert_eq!(cx.controls(), &[0]);
/// assert_eq!(cx.targets(), &[1]);
/// assert_eq!(cx.to_string(), "cx q[0], q[1]");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    kind: GateKind,
    controls: Vec<usize>,
    targets: Vec<usize>,
}

impl Gate {
    /// Creates an uncontrolled single-target gate.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`GateKind::Swap`] (use [`Gate::swap`]).
    #[must_use]
    pub fn single(kind: GateKind, target: usize) -> Self {
        assert!(
            kind.target_count() == 1,
            "GateKind::{kind:?} needs {} targets",
            kind.target_count()
        );
        Gate {
            kind,
            controls: Vec::new(),
            targets: vec![target],
        }
    }

    /// Creates a controlled single-target gate with the given control qubits.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is a two-target kind, if any control equals the
    /// target, or if controls repeat.
    #[must_use]
    pub fn controlled(kind: GateKind, controls: Vec<usize>, target: usize) -> Self {
        assert!(
            kind.target_count() == 1,
            "controlled() requires a 1-target kind"
        );
        let g = Gate {
            kind,
            controls,
            targets: vec![target],
        };
        g.assert_disjoint();
        g
    }

    /// Creates a SWAP gate on two qubits.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    #[must_use]
    pub fn swap(a: usize, b: usize) -> Self {
        let g = Gate {
            kind: GateKind::Swap,
            controls: Vec::new(),
            targets: vec![a, b],
        };
        g.assert_disjoint();
        g
    }

    /// Creates a controlled SWAP (Fredkin) gate.
    ///
    /// # Panics
    ///
    /// Panics if qubits overlap.
    #[must_use]
    pub fn controlled_swap(controls: Vec<usize>, a: usize, b: usize) -> Self {
        let g = Gate {
            kind: GateKind::Swap,
            controls,
            targets: vec![a, b],
        };
        g.assert_disjoint();
        g
    }

    fn assert_disjoint(&self) {
        let mut qs: Vec<usize> = self.qubits().collect();
        qs.sort_unstable();
        let len = qs.len();
        qs.dedup();
        assert!(qs.len() == len, "gate qubits must be distinct: {:?}", self);
        assert!(
            self.targets.len() == self.kind.target_count(),
            "GateKind::{:?} needs {} targets, got {}",
            self.kind,
            self.kind.target_count(),
            self.targets.len()
        );
    }

    /// The base operation.
    #[inline]
    #[must_use]
    pub fn kind(&self) -> &GateKind {
        &self.kind
    }

    /// The control qubits (possibly empty).
    #[inline]
    #[must_use]
    pub fn controls(&self) -> &[usize] {
        &self.controls
    }

    /// The target qubit(s): one for single-target kinds, two for SWAP.
    #[inline]
    #[must_use]
    pub fn targets(&self) -> &[usize] {
        &self.targets
    }

    /// The single target of a 1-target gate.
    ///
    /// # Panics
    ///
    /// Panics for SWAP gates.
    #[inline]
    #[must_use]
    pub fn target(&self) -> usize {
        assert!(self.targets.len() == 1, "target() called on a SWAP gate");
        self.targets[0]
    }

    /// Iterates over every qubit the gate touches (controls then targets).
    pub fn qubits(&self) -> impl Iterator<Item = usize> + '_ {
        self.controls.iter().chain(self.targets.iter()).copied()
    }

    /// The largest qubit index the gate touches.
    #[must_use]
    pub fn max_qubit(&self) -> usize {
        self.qubits()
            .max()
            .expect("a gate always has at least one qubit")
    }

    /// The inverse gate, with the same controls/targets and inverted kind.
    #[must_use]
    pub fn inverse(&self) -> Gate {
        Gate {
            kind: self.kind.inverse(),
            controls: self.controls.clone(),
            targets: self.targets.clone(),
        }
    }

    /// Returns `true` if `other` is the exact inverse of `self` (same qubits,
    /// inverse kind within tolerance). Used by the cancellation pass.
    #[must_use]
    pub fn is_inverse_of(&self, other: &Gate) -> bool {
        self.controls == other.controls
            && self.targets == other.targets
            && self.kind.approx_eq(&other.kind.inverse())
    }

    /// Returns `true` if the two gates act on disjoint qubit sets (and hence
    /// trivially commute).
    #[must_use]
    pub fn is_disjoint_from(&self, other: &Gate) -> bool {
        self.qubits().all(|q| other.qubits().all(|p| p != q))
    }

    /// Replaces every qubit index through `map` (used by mapping/layout).
    ///
    /// # Panics
    ///
    /// Panics if the remapping makes qubits collide.
    #[must_use]
    pub fn remap(&self, map: impl Fn(usize) -> usize) -> Gate {
        let g = Gate {
            kind: self.kind,
            controls: self.controls.iter().map(|&q| map(q)).collect(),
            targets: self.targets.iter().map(|&q| map(q)).collect(),
        };
        g.assert_disjoint();
        g
    }

    /// Total number of distinct qubits involved.
    #[must_use]
    pub fn width(&self) -> usize {
        self.controls.len() + self.targets.len()
    }

    /// Tolerance-aware structural equality.
    #[must_use]
    pub fn approx_eq(&self, other: &Gate) -> bool {
        self.controls == other.controls
            && self.targets == other.targets
            && self.kind.approx_eq(&other.kind)
    }

    /// Returns `true` if this gate is a Clifford operation — it maps Pauli
    /// operators to Pauli operators under conjugation and is therefore
    /// stabilizer-simulable in polynomial time.
    ///
    /// The classification is up to global phase (stabilizer states carry
    /// none) and folds rotations onto the discrete Clifford gates when the
    /// angle is a multiple of `π/2` within the workspace tolerance:
    ///
    /// * uncontrolled `I, X, Y, Z, H, S, S†, √X, √X†, √Y, √Y†` and SWAP,
    /// * uncontrolled `Rx/Ry/Rz/P` at quarter turns,
    /// * singly-controlled `X` (CX), `Z` (CZ) and `P(π)` (= CZ).
    ///
    /// Everything else — `T`, `U3`, generic rotations, multi-controlled
    /// gates — is non-Clifford. This is the per-gate predicate the stab
    /// probe engine and the Clifford peeling pass dispatch on; the
    /// stabilizer executor (`qstab`) applies the identical folding, so a
    /// gate accepted here is guaranteed to run on a tableau.
    #[must_use]
    pub fn is_clifford(&self) -> bool {
        match (self.kind, self.controls.len()) {
            (GateKind::Swap, 0) => true,
            (GateKind::Swap, _) => false,
            (kind, 0) => match kind {
                GateKind::I
                | GateKind::X
                | GateKind::Y
                | GateKind::Z
                | GateKind::H
                | GateKind::S
                | GateKind::Sdg
                | GateKind::Sx
                | GateKind::Sxdg
                | GateKind::Sy
                | GateKind::Sydg => true,
                GateKind::Rx(theta)
                | GateKind::Ry(theta)
                | GateKind::Rz(theta)
                | GateKind::Phase(theta) => quarter_turns(theta).is_some(),
                _ => false,
            },
            (GateKind::X | GateKind::Z, 1) => true,
            // CP(π) = CZ is the only Clifford controlled phase (besides I).
            (GateKind::Phase(theta), 1) => matches!(quarter_turns(theta), Some(0 | 2)),
            _ => false,
        }
    }
}

/// Maps `theta` to its multiple of π/2 in `0..4`, or `None` if it is not a
/// quarter turn (within the workspace tolerance).
#[must_use]
pub(crate) fn quarter_turns(theta: f64) -> Option<u8> {
    let normalized = angle::normalize(theta);
    let quarters = normalized / std::f64::consts::FRAC_PI_2;
    let rounded = quarters.round();
    if (quarters - rounded).abs() < 1e-9 {
        Some((rounded as i64).rem_euclid(4) as u8)
    } else {
        None
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render like OpenQASM: controls as `c` prefixes.
        let prefix = "c".repeat(self.controls.len());
        let params = self.kind.params();
        write!(f, "{prefix}{}", self.kind.mnemonic())?;
        if !params.is_empty() {
            let rendered: Vec<String> = params.iter().map(|p| format!("{p}")).collect();
            write!(f, "({})", rendered.join(","))?;
        }
        let qubits: Vec<String> = self.qubits().map(|q| format!("q[{q}]")).collect();
        write!(f, " {}", qubits.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnum::Matrix2;
    use std::f64::consts::PI;

    #[test]
    fn base_matrices_are_unitary() {
        let kinds = [
            GateKind::I,
            GateKind::X,
            GateKind::Y,
            GateKind::Z,
            GateKind::H,
            GateKind::S,
            GateKind::Sdg,
            GateKind::T,
            GateKind::Tdg,
            GateKind::Sx,
            GateKind::Sxdg,
            GateKind::Sy,
            GateKind::Sydg,
            GateKind::Rx(0.3),
            GateKind::Ry(-1.2),
            GateKind::Rz(2.5),
            GateKind::Phase(0.7),
            GateKind::U3(0.1, 0.2, 0.3),
        ];
        for k in kinds {
            let m = k.base_matrix().expect("single-target kind");
            assert!(m.is_unitary(), "{k:?} is not unitary");
        }
    }

    #[test]
    fn swap_has_no_base_matrix_and_two_targets() {
        assert!(GateKind::Swap.base_matrix().is_none());
        assert_eq!(GateKind::Swap.target_count(), 2);
    }

    #[test]
    fn sqrt_gates_square_to_paulis() {
        let sx = GateKind::Sx.base_matrix().unwrap();
        assert!(sx.mul(&sx).approx_eq(&Matrix2::pauli_x()));
        let sy = GateKind::Sy.base_matrix().unwrap();
        assert!(sy.mul(&sy).approx_eq(&Matrix2::pauli_y()));
    }

    #[test]
    fn inverse_kind_gives_adjoint_matrix() {
        let kinds = [
            GateKind::H,
            GateKind::S,
            GateKind::T,
            GateKind::Sx,
            GateKind::Sy,
            GateKind::Rx(0.9),
            GateKind::Ry(0.9),
            GateKind::Rz(0.9),
            GateKind::Phase(1.1),
            GateKind::U3(0.4, 1.0, -0.6),
        ];
        for k in kinds {
            let m = k.base_matrix().unwrap();
            let mi = k.inverse().base_matrix().unwrap();
            assert!(
                m.mul(&mi).approx_eq(&Matrix2::identity()),
                "{k:?} inverse is wrong"
            );
        }
    }

    #[test]
    fn diagonal_classification() {
        assert!(GateKind::Z.is_diagonal());
        assert!(GateKind::T.is_diagonal());
        assert!(GateKind::Rz(0.4).is_diagonal());
        assert!(!GateKind::X.is_diagonal());
        assert!(!GateKind::H.is_diagonal());
        assert!(!GateKind::Rx(0.4).is_diagonal());
    }

    #[test]
    fn identity_detection() {
        assert!(GateKind::I.is_identity());
        assert!(GateKind::Phase(0.0).is_identity());
        assert!(GateKind::Phase(2.0 * PI).is_identity());
        assert!(!GateKind::Phase(0.1).is_identity());
        assert!(!GateKind::X.is_identity());
    }

    #[test]
    fn approx_eq_compares_params_with_tolerance() {
        assert!(GateKind::Rz(0.5).approx_eq(&GateKind::Rz(0.5 + 1e-14)));
        assert!(!GateKind::Rz(0.5).approx_eq(&GateKind::Rz(0.6)));
        assert!(!GateKind::Rz(0.5).approx_eq(&GateKind::Rx(0.5)));
    }

    #[test]
    fn gate_construction_and_accessors() {
        let g = Gate::controlled(GateKind::X, vec![2, 0], 1);
        assert_eq!(g.controls(), &[2, 0]);
        assert_eq!(g.targets(), &[1]);
        assert_eq!(g.target(), 1);
        assert_eq!(g.max_qubit(), 2);
        assert_eq!(g.width(), 3);
        let qs: Vec<usize> = g.qubits().collect();
        assert_eq!(qs, vec![2, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn overlapping_control_and_target_rejected() {
        let _ = Gate::controlled(GateKind::X, vec![1], 1);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn swap_on_same_qubit_rejected() {
        let _ = Gate::swap(3, 3);
    }

    #[test]
    fn gate_inverse_and_cancellation_detection() {
        let g = Gate::controlled(GateKind::Rz(0.8), vec![0], 1);
        let gi = g.inverse();
        assert!(g.is_inverse_of(&gi));
        assert!(gi.is_inverse_of(&g));
        let other = Gate::controlled(GateKind::Rz(-0.8), vec![0], 2);
        assert!(!g.is_inverse_of(&other), "different qubits must not cancel");
    }

    #[test]
    fn self_inverse_gates_cancel_with_themselves() {
        for k in [GateKind::X, GateKind::H, GateKind::Z] {
            let g = Gate::single(k, 0);
            assert!(g.is_inverse_of(&g));
        }
        let s = Gate::swap(0, 1);
        assert!(s.is_inverse_of(&s));
    }

    #[test]
    fn disjointness() {
        let a = Gate::controlled(GateKind::X, vec![0], 1);
        let b = Gate::single(GateKind::H, 2);
        let c = Gate::single(GateKind::H, 1);
        assert!(a.is_disjoint_from(&b));
        assert!(!a.is_disjoint_from(&c));
    }

    #[test]
    fn remap_relabels_qubits() {
        let g = Gate::controlled(GateKind::X, vec![0], 1);
        let r = g.remap(|q| q + 3);
        assert_eq!(r.controls(), &[3]);
        assert_eq!(r.targets(), &[4]);
    }

    #[test]
    fn clifford_classification() {
        use std::f64::consts::FRAC_PI_2;
        // Discrete Clifford gates, uncontrolled.
        for k in [
            GateKind::I,
            GateKind::X,
            GateKind::Y,
            GateKind::Z,
            GateKind::H,
            GateKind::S,
            GateKind::Sdg,
            GateKind::Sx,
            GateKind::Sxdg,
            GateKind::Sy,
            GateKind::Sydg,
        ] {
            assert!(Gate::single(k, 0).is_clifford(), "{k:?}");
        }
        // Non-Clifford single-qubit gates.
        for k in [
            GateKind::T,
            GateKind::Tdg,
            GateKind::U3(FRAC_PI_2, 0.0, 0.0),
            GateKind::Rz(0.3),
            GateKind::Phase(0.7),
        ] {
            assert!(!Gate::single(k, 0).is_clifford(), "{k:?}");
        }
        // Quarter-turn rotations fold onto Cliffords; 2π-periodic.
        for m in [-4i32, -1, 0, 1, 2, 3, 4, 9] {
            let theta = f64::from(m) * FRAC_PI_2;
            assert!(Gate::single(GateKind::Rz(theta), 0).is_clifford(), "{m}");
            assert!(Gate::single(GateKind::Rx(theta), 0).is_clifford(), "{m}");
            assert!(Gate::single(GateKind::Ry(theta), 0).is_clifford(), "{m}");
        }
        // Controlled gates: CX, CZ and CP(π) only.
        assert!(Gate::controlled(GateKind::X, vec![0], 1).is_clifford());
        assert!(Gate::controlled(GateKind::Z, vec![0], 1).is_clifford());
        assert!(Gate::controlled(GateKind::Phase(std::f64::consts::PI), vec![0], 1).is_clifford());
        assert!(Gate::controlled(GateKind::Phase(0.0), vec![0], 1).is_clifford());
        assert!(!Gate::controlled(GateKind::Phase(FRAC_PI_2), vec![0], 1).is_clifford());
        assert!(!Gate::controlled(GateKind::X, vec![0, 1], 2).is_clifford());
        assert!(!Gate::controlled(GateKind::H, vec![0], 1).is_clifford());
        // SWAP is Clifford; Fredkin is not.
        assert!(Gate::swap(0, 1).is_clifford());
        assert!(!Gate::controlled_swap(vec![2], 0, 1).is_clifford());
    }

    #[test]
    fn display_renders_qasm_like() {
        assert_eq!(Gate::single(GateKind::H, 0).to_string(), "h q[0]");
        assert_eq!(
            Gate::controlled(GateKind::X, vec![0], 1).to_string(),
            "cx q[0], q[1]"
        );
        assert_eq!(
            Gate::controlled(GateKind::X, vec![0, 1], 2).to_string(),
            "ccx q[0], q[1], q[2]"
        );
        assert_eq!(Gate::swap(1, 2).to_string(), "swap q[1], q[2]");
        let rz = Gate::single(GateKind::Rz(0.5), 3);
        assert_eq!(rz.to_string(), "rz(0.5) q[3]");
    }
}
