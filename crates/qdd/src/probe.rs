//! Decision-diagram stimulus probes: the DD analogue of `qsim`'s
//! statevector equivalence probe.
//!
//! One probe simulates a stimulus through both circuits as vector-edge
//! passes ([`Package::apply_to_vedge`]) in a *fresh* package and compares
//! the two output edges. A fresh package per run keeps the probe a pure
//! function of `(circuits, stimulus)`: reusing a package across runs would
//! make interned edge weights — and thus bitwise overlap values — depend on
//! which stimuli were probed before, scheduling-dependent numerics that a
//! deterministic worker pool cannot afford. Garbage collection still
//! happens *within* a run ([`Package::wants_gc`] fires inside
//! `apply_to_vedge` whenever live nodes cross the threshold), so long
//! circuits do not accumulate dead nodes; dropping the package at the end
//! of the run reclaims everything else.

use qcirc::Circuit;
use qnum::Complex;

use crate::package::{DdLimitError, Package};

/// The decision-diagram probe engine.
///
/// Stateless apart from its configuration — every probe builds its own
/// [`Package`], so one engine may be shared freely across worker threads.
///
/// # Examples
///
/// ```
/// use qdd::DdBackend;
///
/// let g = qcirc::generators::ghz(4);
/// let opt = qcirc::optimize::optimize(&g);
/// let run = DdBackend::new().probe(&g, &opt, None, 0).unwrap();
/// assert!((run.overlap.norm_sqr() - 1.0).abs() < 1e-12);
/// assert!(run.peak_nodes > 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DdBackend {
    node_limit: usize,
}

impl Default for DdBackend {
    fn default() -> Self {
        DdBackend::new()
    }
}

/// What one completed DD probe hands back: the overlap plus node-count
/// instrumentation sampled at the run's three boundaries (stimulus
/// prepared, `G` applied, `G'` applied).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdProbeRun {
    /// The overlap `⟨u|u′⟩` of the two output states.
    pub overlap: Complex,
    /// Peak live nodes (matrix + vector) observed across the boundary
    /// samples — the run's working-set size, directly comparable to the
    /// dense backend's fixed `2·2ⁿ` amplitudes.
    pub peak_nodes: usize,
    /// Distinct complex values interned by the end of the run.
    pub complex_values: usize,
}

impl DdBackend {
    /// Creates an engine with the default node limit
    /// ([`Package::DEFAULT_NODE_LIMIT`]).
    #[must_use]
    pub fn new() -> Self {
        DdBackend {
            node_limit: Package::DEFAULT_NODE_LIMIT,
        }
    }

    /// Creates an engine whose per-probe packages abort beyond
    /// `node_limit` live nodes.
    #[must_use]
    pub fn with_node_limit(node_limit: usize) -> Self {
        DdBackend { node_limit }
    }

    /// The configured per-probe node budget.
    #[must_use]
    pub fn node_limit(&self) -> usize {
        self.node_limit
    }

    /// Probes one stimulus: prepares `|basis⟩` (running the optional
    /// `prefix` preparation circuit on top), pushes the prepared edge
    /// through both circuits, and returns the overlap of the outputs.
    ///
    /// Equal canonical edges short-circuit to an exact overlap of `1`:
    /// hash-consing makes semantic equality a pointer comparison, so
    /// equivalent circuits never pay for an inner product.
    ///
    /// # Errors
    ///
    /// Returns [`DdLimitError`] if a pass exceeds the node limit.
    ///
    /// # Panics
    ///
    /// Panics if the circuits' qubit counts differ.
    pub fn probe(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        prefix: Option<&Circuit>,
        basis: u64,
    ) -> Result<DdProbeRun, DdLimitError> {
        Ok(self
            .probe_while(g, g_prime, prefix, basis, &|| true)?
            .expect("unconditional probe cannot be cancelled"))
    }

    /// Like [`DdBackend::probe`], but polls `keep_going` between the two
    /// halves of the probe (DD passes are not gate-granular cancellable —
    /// intermediate edges are only valid states at pass boundaries) and
    /// returns `None` if the run became moot in between.
    ///
    /// # Errors
    ///
    /// Returns [`DdLimitError`] if a pass exceeds the node limit.
    ///
    /// # Panics
    ///
    /// Panics if the circuits' qubit counts differ.
    pub fn probe_while(
        &self,
        g: &Circuit,
        g_prime: &Circuit,
        prefix: Option<&Circuit>,
        basis: u64,
        keep_going: &dyn Fn() -> bool,
    ) -> Result<Option<DdProbeRun>, DdLimitError> {
        let mut package = Package::with_node_limit(g.n_qubits(), self.node_limit);
        self.probe_while_in(&mut package, g, g_prime, prefix, basis, keep_going)
    }

    /// Like [`DdBackend::probe_while`], but runs inside a caller-pooled
    /// [`Package`] instead of constructing a fresh one, avoiding the
    /// per-probe arena and table allocations.
    ///
    /// The package is [`reset`](Package::reset) before the run, which makes
    /// it observationally identical to a fresh one — pooled probes return
    /// results bitwise equal to the fresh-package path, preserving the
    /// purity contract the deterministic scheduler relies on. Any edges
    /// previously obtained from the package are dangling afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`DdLimitError`] if a pass exceeds the *package's* node
    /// limit.
    ///
    /// # Panics
    ///
    /// Panics if the circuits' qubit counts differ from each other or from
    /// the package's.
    pub fn probe_while_in(
        &self,
        package: &mut Package,
        g: &Circuit,
        g_prime: &Circuit,
        prefix: Option<&Circuit>,
        basis: u64,
        keep_going: &dyn Fn() -> bool,
    ) -> Result<Option<DdProbeRun>, DdLimitError> {
        assert_eq!(
            g.n_qubits(),
            g_prime.n_qubits(),
            "circuits must have equal qubit counts"
        );
        assert_eq!(
            package.n_qubits(),
            g.n_qubits(),
            "package sized for a different register"
        );
        package.reset();
        let input = {
            let b = package.basis_vedge(basis)?;
            match prefix {
                None => b,
                Some(prefix) => package.apply_to_vedge(prefix, b)?,
            }
        };
        let mut peak_nodes = live_nodes(package);
        // `input` is needed again for the second pass and `a` must survive
        // it: both ride along as GC keep roots, or a mid-pass compaction
        // would leave them dangling in the old arena.
        let mut keep = [input];
        let a = package.apply_to_vedge_keeping(g, input, &mut keep)?;
        let input = keep[0];
        peak_nodes = peak_nodes.max(live_nodes(package));
        if !keep_going() {
            return Ok(None);
        }
        let mut keep = [a];
        let b = package.apply_to_vedge_keeping(g_prime, input, &mut keep)?;
        let a = keep[0];
        peak_nodes = peak_nodes.max(live_nodes(package));
        let overlap = if package.vedges_equal(a, b) {
            Complex::ONE
        } else {
            package.inner_product(a, b)
        };
        Ok(Some(DdProbeRun {
            overlap,
            peak_nodes,
            complex_values: package.stats().complex_values,
        }))
    }
}

fn live_nodes(package: &Package) -> usize {
    let stats = package.stats();
    stats.matrix_nodes + stats.vector_nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::generators;

    #[test]
    fn probe_matches_explicit_package_passes() {
        let g = generators::qft(4, true);
        let mut buggy = g.clone();
        buggy.t(2);
        let run = DdBackend::new().probe(&g, &buggy, None, 5).unwrap();
        let mut package = Package::new(4);
        let input = package.basis_vedge(5).unwrap();
        let a = package.apply_to_vedge(&g, input).unwrap();
        let b = package.apply_to_vedge(&buggy, input).unwrap();
        let expected = package.inner_product(a, b);
        assert_eq!(run.overlap, expected, "fresh-package probe is bitwise");
    }

    #[test]
    fn probe_is_a_pure_function_of_its_inputs() {
        let g = generators::grover(4, 3, 2);
        let mut buggy = g.clone();
        buggy.s(1);
        let engine = DdBackend::new();
        // Probing other stimuli in between must not change a run's bits —
        // the property the fresh-package design exists for.
        let first = engine.probe(&g, &buggy, None, 9).unwrap();
        for basis in [0u64, 3, 11, 7] {
            engine.probe(&g, &buggy, None, basis).unwrap();
        }
        let again = engine.probe(&g, &buggy, None, 9).unwrap();
        assert_eq!(first, again);
    }

    /// Satellite contract of the pooled workspace: probing through one
    /// reused, reset package yields results *byte-identical* to the
    /// fresh-package path — including interned-value counts, which would
    /// differ immediately if any table state leaked between runs.
    #[test]
    fn pooled_package_probes_are_bitwise_identical_to_fresh_ones() {
        let g = generators::grover(4, 3, 2);
        let mut buggy = g.clone();
        buggy.s(1);
        let engine = DdBackend::new();
        let mut pool = Package::new(4);
        let keep_going = || true;
        for basis in [9u64, 0, 3, 11, 7, 9] {
            let fresh = engine.probe(&g, &buggy, None, basis).unwrap();
            let pooled = engine
                .probe_while_in(&mut pool, &g, &buggy, None, basis, &keep_going)
                .unwrap()
                .unwrap();
            assert_eq!(fresh, pooled, "basis {basis}");
        }
    }

    #[test]
    fn reset_restores_the_freshly_constructed_stats() {
        let g = generators::qft(4, true);
        let mut p = Package::new(4);
        let fresh_stats = p.stats();
        let input = p.basis_vedge(3).unwrap();
        p.apply_to_vedge(&g, input).unwrap();
        assert!(p.stats().complex_values > fresh_stats.complex_values);
        p.reset();
        assert_eq!(p.stats(), fresh_stats, "reset must drop interned state");
    }

    #[test]
    fn equal_edges_short_circuit_to_exact_one() {
        let g = generators::ghz(5);
        let run = DdBackend::new().probe(&g, &g, None, 3).unwrap();
        assert_eq!(run.overlap, Complex::ONE);
    }

    #[test]
    fn prefix_prepares_the_input_for_both_sides() {
        // A prefix mapping |0⟩ to |+..+⟩; probing identity-vs-Z then shows
        // a fidelity deficit that basis |0⟩ alone would miss entirely.
        let n = 3;
        let mut prefix = Circuit::new(n);
        for q in 0..n {
            prefix.h(q);
        }
        let id = Circuit::new(n);
        let mut z = Circuit::new(n);
        z.z(0);
        let run = DdBackend::new().probe(&id, &z, Some(&prefix), 0).unwrap();
        assert!(run.overlap.norm_sqr() < 1.0 - 1e-6);
    }

    #[test]
    fn cancellation_between_halves_returns_none() {
        use std::cell::Cell;
        let g = generators::qft(4, true);
        let polls = Cell::new(0usize);
        let keep_going = || {
            polls.set(polls.get() + 1);
            false
        };
        let out = DdBackend::new()
            .probe_while(&g, &g, None, 0, &keep_going)
            .unwrap();
        assert_eq!(out, None);
        assert_eq!(polls.get(), 1, "polled exactly once, between the halves");
    }

    #[test]
    fn node_limit_is_enforced_per_probe() {
        let g = generators::supremacy_2d(3, 4, 12, 1);
        let e = DdBackend::with_node_limit(50)
            .probe(&g, &g, None, 0)
            .unwrap_err();
        assert_eq!(e.node_limit, 50);
    }

    /// Huge diagrams must surface [`DdLimitError`], never panic: the
    /// 32-qubit Clifford adder under a random-state stimulus prefix — the
    /// package-growth input recorded in the ROADMAP audit — outgrows any
    /// moderate node budget and must fail with the budget error.
    #[test]
    fn huge_diagrams_error_cleanly_instead_of_panicking() {
        let adder = generators::clifford_adder(15); // 2·15 + 2 = 32 qubits
        let prefix = generators::random_clifford_t(32, 400, 11);
        let limit = 40_000;
        match DdBackend::with_node_limit(limit).probe(&adder, &adder, Some(&prefix), 0) {
            Err(e) => assert_eq!(e.node_limit, limit),
            Ok(run) => assert!(run.peak_nodes <= limit, "survived within budget"),
        }
    }

    /// Regression for the carried `vnode` index-out-of-bounds panic: a
    /// probe whose first pass garbage-collects used to dangle the
    /// caller-held edges (`input` between the passes, `a` across the
    /// second) when `apply_to_vedge` compacted the arena — the stale
    /// `NodeId` then indexed out of bounds in `vnode`. A shrinking first
    /// pass (the prefix's own inverse) forces exactly that: the arena
    /// compacts below the ids of the held edges. With the keep-root
    /// threading the probe survives and — both sides being the same
    /// circuit — short-circuits to an exact overlap of 1.
    #[test]
    fn gc_during_a_pass_keeps_caller_edges_valid() {
        let prefix = generators::random_clifford_t(12, 300, 11);
        let g = prefix.inverse();
        let run = DdBackend::with_node_limit(8_000)
            .probe(&g, &g, Some(&prefix), 0)
            .expect("probe must survive mid-pass GC");
        assert_eq!(run.overlap, Complex::ONE);
    }

    /// The package-level contract behind the fix: edges passed as keep
    /// roots to [`Package::apply_to_vedge_keeping`] are remapped through
    /// every internal compaction and stay semantically intact.
    #[test]
    fn keep_roots_survive_compaction_semantically() {
        let n = 12;
        let prefix = generators::random_clifford_t(n, 300, 11);
        let mut p = Package::new(n);
        p.set_gc_threshold(1200);
        let b = p.basis_vedge(0).unwrap();
        let input = p.apply_to_vedge(&prefix, b).unwrap();
        let mut keep = [input];
        let back = p
            .apply_to_vedge_keeping(&prefix.inverse(), input, &mut keep)
            .unwrap();
        // The shrinking pass returns to |0⟩ …
        assert_eq!(p.amplitude(back, 0), Complex::ONE);
        // … and the kept `input` is still the prepared state, not a stale id.
        let expected = p.inner_product(keep[0], back);
        let direct = p.amplitude(keep[0], 0).conj();
        assert!(
            expected.approx_eq(direct),
            "kept edge must still denote P|0⟩: {expected:?} vs {direct:?}"
        );
    }

    #[test]
    fn instrumentation_reflects_structure() {
        // A GHZ output is a 2-path DD: peak nodes stay linear in n even
        // though the dense state has 2ⁿ amplitudes.
        let n = 12;
        let g = generators::ghz(n);
        let run = DdBackend::new().probe(&g, &g, None, 0).unwrap();
        assert!(run.peak_nodes > 0);
        assert!(
            run.peak_nodes < 1 << n,
            "structured probe must stay sub-dense: {} nodes",
            run.peak_nodes
        );
        assert!(run.complex_values >= 2);
    }
}
