//! Results of the equivalence checking flow.

use std::fmt;
use std::time::Duration;

use qnum::Complex;
use qstim::Stimulus;

/// How a simulation run witnessed non-equivalence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mismatch {
    /// The output states differ in magnitude of overlap: `|⟨uᵢ|uᵢ′⟩| ≠ 1`.
    Output,
    /// Each run's outputs agreed up to a phase, but the phases of two runs
    /// differ — no *single* global phase `e^{iφ}` relates `U` and `U'`
    /// (this catches diagonal errors that look like a global phase on every
    /// individual basis state).
    PhaseInconsistency {
        /// The overlap phase established by an earlier run.
        expected: f64,
        /// The conflicting phase of this run.
        found: f64,
    },
}

/// A witness of non-equivalence found by simulation: a stimulus (basis,
/// product or stabilizer input state) on which the two circuits produce
/// different outputs (or an inconsistent output phase).
///
/// The witness is engine-independent: whichever
/// [`SimBackend`](crate::backend::SimBackend) found it, replaying the
/// stimulus on *any* backend reproduces the disagreement (see
/// [`diagnose::explain_for`](crate::diagnose::explain_for)).
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// The input stimulus that exposed the difference. For the classical
    /// strategies this is [`Stimulus::Basis`]; the non-classical
    /// strategies carry the preparation recipe (angles or Clifford
    /// prefix), so the witness stays replayable.
    pub stimulus: Stimulus,
    /// The overlap `⟨uᵢ|uᵢ′⟩` of the two outputs.
    pub overlap: Complex,
    /// The fidelity `|⟨uᵢ|uᵢ′⟩|²`.
    pub fidelity: f64,
    /// Which simulation run (1-based) found it — the paper's `#sims`.
    pub run: usize,
    /// What kind of disagreement was observed.
    pub mismatch: Mismatch,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mismatch {
            Mismatch::Output => write!(
                f,
                "stimulus {} yields fidelity {:.6} (run {})",
                self.stimulus, self.fidelity, self.run
            ),
            Mismatch::PhaseInconsistency { expected, found } => write!(
                f,
                "stimulus {} yields phase {:.4} where earlier runs gave {:.4} (run {})",
                self.stimulus, found, expected, self.run
            ),
        }
    }
}

/// Why the complete check did not finish.
#[derive(Debug, Clone, PartialEq)]
pub enum AbortReason {
    /// The wall-clock deadline elapsed.
    Timeout,
    /// The decision-diagram node limit was exceeded.
    NodeLimit,
    /// The configuration requested no complete check
    /// ([`Fallback::None`](crate::Fallback::None)).
    FallbackDisabled,
    /// The tensor-network engine truncated bond dimensions along the way
    /// (`χ` exceeded [`Config::chi_max`](crate::Config::chi_max)), so "no
    /// difference found" is evidence, not proof — the flow never claims
    /// plain equivalence from a truncated run.
    Truncation {
        /// The accumulated truncation error (sum of discarded
        /// squared-singular-value weight fractions).
        error: f64,
    },
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::Timeout => write!(f, "timeout"),
            AbortReason::NodeLimit => write!(f, "node limit"),
            AbortReason::FallbackDisabled => write!(f, "no fallback configured"),
            AbortReason::Truncation { error } => {
                write!(f, "bond truncation (accumulated error {error:.3e})")
            }
        }
    }
}

/// The verdict of the flow — the three outcomes of the paper's Fig. 3, with
/// the global-phase flavour reported separately.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Proven equivalent (complete check finished, matrices identical).
    Equivalent,
    /// Proven equivalent up to a single global phase factor.
    EquivalentUpToGlobalPhase {
        /// The phase `φ` with `U' = e^{iφ}·U`.
        phase: f64,
    },
    /// Proven non-equivalent — almost always with a simulation
    /// counterexample (`None` only when the complete check found the
    /// difference after all simulations agreed).
    NotEquivalent {
        /// The witnessing basis state, if simulation found one.
        counterexample: Option<Counterexample>,
    },
    /// All simulations agreed but the complete check did not finish: a
    /// highly probable (yet unproven) equivalence — the paper's improved
    /// "timeout" outcome.
    ProbablyEquivalent {
        /// How many agreeing simulations back the estimate.
        passed_simulations: usize,
        /// Why the complete check stopped.
        abort: AbortReason,
    },
}

impl Outcome {
    /// Returns `true` for proven equivalence (either flavour).
    #[must_use]
    pub fn is_equivalent(&self) -> bool {
        matches!(
            self,
            Outcome::Equivalent | Outcome::EquivalentUpToGlobalPhase { .. }
        )
    }

    /// Returns `true` for proven non-equivalence.
    #[must_use]
    pub fn is_not_equivalent(&self) -> bool {
        matches!(self, Outcome::NotEquivalent { .. })
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Equivalent => write!(f, "equivalent"),
            Outcome::EquivalentUpToGlobalPhase { phase } => {
                write!(f, "equivalent up to global phase {phase:.6}")
            }
            Outcome::NotEquivalent {
                counterexample: Some(ce),
            } => write!(f, "not equivalent: {ce}"),
            Outcome::NotEquivalent {
                counterexample: None,
            } => write!(f, "not equivalent (found by the complete check)"),
            Outcome::ProbablyEquivalent {
                passed_simulations,
                abort,
            } => write!(
                f,
                "probably equivalent ({passed_simulations} agreeing simulations; complete check aborted: {abort})"
            ),
        }
    }
}

/// Timing and effort statistics of one flow invocation — the quantities of
/// the paper's Table I (`#sims`, `t_sim`, `t_ec`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowStats {
    /// Simulation runs actually performed.
    pub simulations_run: usize,
    /// Wall-clock time spent simulating (`t_sim`).
    pub simulation_time: Duration,
    /// Wall-clock time spent in the complete check (`t_ec`).
    pub functional_time: Duration,
}

/// The complete result: verdict plus statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowResult {
    /// The verdict.
    pub outcome: Outcome,
    /// Effort breakdown.
    pub stats: FlowStats,
}

impl fmt::Display for FlowResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} sims, t_sim {:?}, t_ec {:?}]",
            self.outcome,
            self.stats.simulations_run,
            self.stats.simulation_time,
            self.stats.functional_time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_predicates() {
        assert!(Outcome::Equivalent.is_equivalent());
        assert!(Outcome::EquivalentUpToGlobalPhase { phase: 0.5 }.is_equivalent());
        assert!(!Outcome::Equivalent.is_not_equivalent());
        let ne = Outcome::NotEquivalent {
            counterexample: None,
        };
        assert!(ne.is_not_equivalent());
        assert!(!ne.is_equivalent());
        let pe = Outcome::ProbablyEquivalent {
            passed_simulations: 10,
            abort: AbortReason::Timeout,
        };
        assert!(!pe.is_equivalent());
        assert!(!pe.is_not_equivalent());
    }

    #[test]
    fn display_is_informative() {
        let ce = Counterexample {
            stimulus: Stimulus::Basis(5),
            overlap: Complex::ZERO,
            fidelity: 0.0,
            run: 1,
            mismatch: Mismatch::Output,
        };
        let o = Outcome::NotEquivalent {
            counterexample: Some(ce),
        };
        let s = o.to_string();
        assert!(s.contains("not equivalent"));
        assert!(s.contains("|5⟩"));
        let p = Outcome::ProbablyEquivalent {
            passed_simulations: 10,
            abort: AbortReason::NodeLimit,
        }
        .to_string();
        assert!(p.contains("probably equivalent"));
        assert!(p.contains("node limit"));
    }
}
