//! Property-based tests for the numeric kernel.

use proptest::prelude::*;
use qnum::{angle, Complex, Matrix2, Matrix4, MatrixN};

/// Strategy producing complex numbers with moderate magnitude (so products
/// stay in a numerically friendly range).
fn complex() -> impl Strategy<Value = Complex> {
    (-10.0f64..10.0, -10.0f64..10.0).prop_map(|(re, im)| Complex::new(re, im))
}

fn unit_complex() -> impl Strategy<Value = Complex> {
    (-std::f64::consts::PI..std::f64::consts::PI).prop_map(Complex::cis)
}

fn angle_value() -> impl Strategy<Value = f64> {
    -20.0f64..20.0
}

/// Strategy producing an arbitrary single-qubit unitary via U3 angles.
fn unitary2() -> impl Strategy<Value = Matrix2> {
    (angle_value(), angle_value(), angle_value()).prop_map(|(t, p, l)| Matrix2::u3(t, p, l))
}

proptest! {
    #[test]
    fn complex_addition_commutes(a in complex(), b in complex()) {
        prop_assert!((a + b).approx_eq(b + a));
    }

    #[test]
    fn complex_multiplication_commutes(a in complex(), b in complex()) {
        prop_assert!((a * b).approx_eq(b * a));
    }

    #[test]
    fn complex_multiplication_associates(a in complex(), b in complex(), c in complex()) {
        prop_assert!(((a * b) * c).approx_eq_with(a * (b * c), 1e-8));
    }

    #[test]
    fn complex_distributes(a in complex(), b in complex(), c in complex()) {
        prop_assert!((a * (b + c)).approx_eq_with(a * b + a * c, 1e-8));
    }

    #[test]
    fn conjugation_is_an_involution(a in complex()) {
        prop_assert!(a.conj().conj().approx_eq(a));
    }

    #[test]
    fn conjugation_distributes_over_product(a in complex(), b in complex()) {
        prop_assert!((a * b).conj().approx_eq(a.conj() * b.conj()));
    }

    #[test]
    fn norm_is_multiplicative(a in complex(), b in complex()) {
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-8);
    }

    #[test]
    fn unit_phases_stay_on_the_circle(a in unit_complex(), b in unit_complex()) {
        prop_assert!(((a * b).abs() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn recip_is_inverse(a in complex()) {
        prop_assume!(a.norm_sqr() > 1e-6);
        prop_assert!((a * a.recip()).approx_eq_with(Complex::ONE, 1e-8));
    }

    #[test]
    fn polar_roundtrip(r in 0.01f64..10.0, theta in -3.0f64..3.0) {
        let c = Complex::from_polar(r, theta);
        prop_assert!((c.abs() - r).abs() < 1e-9);
        prop_assert!(angle::approx_eq_mod_2pi(c.arg(), theta));
    }

    #[test]
    fn u3_matrices_are_unitary(m in unitary2()) {
        prop_assert!(m.is_unitary());
    }

    #[test]
    fn adjoint_of_product_reverses(a in unitary2(), b in unitary2()) {
        let lhs = a.mul(&b).adjoint();
        let rhs = b.adjoint().mul(&a.adjoint());
        prop_assert!(lhs.approx_eq(&rhs));
    }

    #[test]
    fn unitary_adjoint_is_inverse(m in unitary2()) {
        prop_assert!(m.mul(&m.adjoint()).approx_eq(&Matrix2::identity()));
        prop_assert!(m.adjoint().mul(&m).approx_eq(&Matrix2::identity()));
    }

    #[test]
    fn global_phase_equivalence_is_detected(m in unitary2(), theta in -3.0f64..3.0) {
        let phased = m.scale(Complex::cis(theta));
        prop_assert!(phased.approx_eq_up_to_phase(&m));
    }

    #[test]
    fn kron_is_bilinear_in_scalars(a in unitary2(), b in unitary2(), s in unit_complex()) {
        let lhs = Matrix4::kron(&a.scale(s), &b);
        let rhs = Matrix4::kron(&a, &b.scale(s));
        prop_assert!(lhs.approx_eq(&rhs));
    }

    #[test]
    fn kron_of_unitaries_is_unitary(a in unitary2(), b in unitary2()) {
        prop_assert!(Matrix4::kron(&a, &b).is_unitary());
    }

    #[test]
    fn mixed_product_property(a in unitary2(), b in unitary2(), c in unitary2(), d in unitary2()) {
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let lhs = Matrix4::kron(&a, &b).mul(&Matrix4::kron(&c, &d));
        let rhs = Matrix4::kron(&a.mul(&c), &b.mul(&d));
        prop_assert!(lhs.approx_eq(&rhs));
    }

    #[test]
    fn matrixn_kron_of_unitaries_is_unitary(a in unitary2(), b in unitary2(), c in unitary2()) {
        let m = MatrixN::from_matrix2(&a)
            .kron(&MatrixN::from_matrix2(&b))
            .kron(&MatrixN::from_matrix2(&c));
        prop_assert!(m.is_unitary());
    }

    #[test]
    fn angle_normalize_stays_congruent(t in -100.0f64..100.0) {
        prop_assert!(angle::approx_eq_mod_2pi(angle::normalize(t), t));
        let n = angle::normalize(t);
        prop_assert!(n > -std::f64::consts::PI - 1e-9 && n <= std::f64::consts::PI + 1e-9);
    }
}
