//! Regenerates Table Ia: non-equivalent benchmarks.
//!
//! For every benchmark pair, a random design-flow error (altered 1q gate,
//! misplaced/removed CX, …) is injected into the alternative realization.
//! The table reports, per row:
//!
//! * `t_ec` — runtime of the *sole* state-of-the-art DD equivalence check
//!   (`> D` when the deadline/node budget is exhausted, like the paper's
//!   `> 3600` entries),
//! * `#sims` — simulations until the proposed flow finds a counterexample,
//! * `t_sim` — runtime of the simulation stage.
//!
//! Environment: `QCEC_BENCH_SCALE` (0 smoke / 1 full, default 1),
//! `QCEC_BENCH_DEADLINE` (seconds for `t_ec`, default 30).

use std::time::Instant;

use bench::{deadline_from_env, fmt_secs, scale_from_env, suite};
use qcec::{Config, Fallback, Outcome, SimBackend};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let deadline = deadline_from_env(30);
    let scale = scale_from_env();
    let dd_limit = 2_000_000;

    println!("Table Ia — non-equivalent benchmarks (deadline {deadline:?})");
    println!(
        "{:<18} {:>3} {:>8} {:>8} {:>12} {:>6} {:>10}  injected error",
        "Benchmark", "n", "|G|", "|G'|", "t_ec [s]", "#sims", "t_sim [s]"
    );

    for (row, pair) in suite(scale).into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(0xDAC2020 + 31 * row as u64);
        let (buggy, record) = match qcirc::errors::inject_random(&pair.alternative, &mut rng) {
            Ok(done) => done,
            Err(e) => {
                eprintln!("{}: skipped ({e})", pair.name);
                continue;
            }
        };

        // Sole state-of-the-art EC routine (t_ec).
        let ec_start = Instant::now();
        let mut package = qdd::Package::with_node_limit(pair.n_qubits(), dd_limit);
        let ec = qdd::check_equivalence_alternating(
            &mut package,
            &pair.original,
            &buggy,
            Some(deadline),
        );
        let t_ec = match ec {
            Ok(verdict) => {
                debug_assert!(!verdict.is_equivalent());
                fmt_secs(ec_start.elapsed())
            }
            Err(_) => format!("> {}", deadline.as_secs()),
        };

        // Proposed flow, simulation stage only.
        let backend = if pair.statevector_ok {
            SimBackend::Statevector
        } else {
            SimBackend::DecisionDiagram
        };
        let config = Config::new()
            .with_fallback(Fallback::None)
            .with_backend(backend)
            .with_dd_node_limit(dd_limit)
            .with_simulations(10)
            .with_seed(7);
        let result = match qcec::check_equivalence(&pair.original, &buggy, &config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: simulation failed ({e})", pair.name);
                continue;
            }
        };
        let (sims, t_sim) = match &result.outcome {
            Outcome::NotEquivalent {
                counterexample: Some(ce),
            } => (ce.run.to_string(), fmt_secs(result.stats.simulation_time)),
            _ => (
                "-".to_string(),
                format!("{} (undetected!)", fmt_secs(result.stats.simulation_time)),
            ),
        };

        println!(
            "{:<18} {:>3} {:>8} {:>8} {:>12} {:>6} {:>10}  {}",
            pair.name,
            pair.n_qubits(),
            pair.original.len(),
            buggy.len(),
            t_ec,
            sims,
            t_sim,
            record
        );
    }
}
