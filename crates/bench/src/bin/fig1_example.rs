//! Reproduces the worked example of the paper's Figures 1 and 2:
//!
//! * Fig. 1a — the CX and SWAP matrices,
//! * Fig. 1b — the 3-qubit H/CX example circuit `G`,
//! * Fig. 1c — its 8×8 system matrix `U`,
//! * Fig. 2  — a mapped realization `G'` with inserted SWAPs (same `U`),
//! * Fig. 1d — the matrix `Ũ'` after the Example-6 bug (a SWAP applied to
//!   the wrong qubit pair), differing from `U` in **every** column — which
//!   is why a single random simulation exposes the bug.

use qcirc::generators::figure1b;
use qnum::{Complex, Matrix4, MatrixN};

fn main() {
    println!("== Fig. 1a: two-qubit gate matrices ==\n");
    println!("CX (control = high qubit):");
    print_matrix4(&Matrix4::cx());
    println!("\nSWAP:");
    print_matrix4(&Matrix4::swap());

    let g = figure1b();
    println!(
        "\n== Fig. 1b: example circuit G ({} gates, 3 qubits) ==\n",
        g.len()
    );
    print!("{g}");

    let u = qsim::unitary(&g);
    println!("\n== Fig. 1c: system matrix U = U7···U0 ==\n");
    print_matrixn(&u);

    // Fig. 2: map G to a linear-coupling device, inserting SWAPs.
    let device = qcirc::mapping::CouplingMap::linear(3);
    let routed = qcirc::mapping::route_or_panic(&g, &device);
    println!(
        "\n== Fig. 2: mapped circuit G' ({} gates, {} SWAPs inserted) ==\n",
        routed.circuit.len(),
        routed.swap_count
    );
    print!("{}", routed.circuit);
    let u_prime = qsim::unitary(&routed.circuit);
    println!(
        "\nU' equals U: {} (G and G' are equivalent, as in the paper)",
        u.approx_eq(&u_prime)
    );

    // Example 6: the last SWAP is applied to the wrong qubits.
    let mut buggy = routed.circuit.clone();
    let last_swap = buggy
        .gates()
        .iter()
        .rposition(|gate| gate.kind().mnemonic() == "swap")
        .map(|idx| (idx, buggy.gates()[idx].clone()));
    match last_swap {
        Some((idx, old)) => {
            let (a, b) = (old.targets()[0], old.targets()[1]);
            let wrong = 3 - a - b; // the third qubit
            buggy.replace(idx, qcirc::Gate::swap(a.min(wrong), a.max(wrong)));
            println!(
                "\n== Example 6: bug injected — '{old}' replaced by '{}' ==",
                buggy.gates()[idx]
            );
        }
        None => {
            buggy.swap(0, 1);
            println!("\n== Example 6 variant: stray SWAP appended ==");
        }
    }

    let u_bug = qsim::unitary(&buggy);
    println!("\n== Fig. 1d: buggy system matrix Ũ' ==\n");
    print_matrixn(&u_bug);
    let differing = u.differing_columns(&u_bug);
    println!(
        "\nU and Ũ' differ in {differing} of 8 columns → a random simulation detects the bug with probability {}/8.",
        differing
    );

    let result = qcec::check_equivalence_default(&g.widened(buggy.n_qubits()), &buggy)
        .expect("equal registers");
    println!("\nProposed flow verdict: {result}");
    let ok =
        qcec::check_equivalence_default(&g.widened(routed.circuit.n_qubits()), &routed.circuit)
            .expect("equal registers");
    println!("Flow on the correct mapping: {ok}");
}

fn print_matrix4(m: &Matrix4) {
    for r in 0..4 {
        let row: Vec<String> = (0..4).map(|c| fmt_entry(m.entry(r, c))).collect();
        println!("  [{}]", row.join(" "));
    }
}

fn print_matrixn(m: &MatrixN) {
    for r in 0..m.dim() {
        let row: Vec<String> = (0..m.dim()).map(|c| fmt_entry(m.entry(r, c))).collect();
        println!("  [{}]", row.join(" "));
    }
}

/// Compact rendering: `·` for zero, `1`, `-1`, otherwise two decimals.
fn fmt_entry(c: Complex) -> String {
    if c.approx_zero() {
        return "    ·".into();
    }
    if c.im.abs() < 1e-9 {
        return format!("{:5.2}", c.re).replace("-0.00", " 0.00");
    }
    format!("{:.1}{:+.1}i", c.re, c.im)
}
