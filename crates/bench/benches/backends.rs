//! Ablation: statevector vs decision-diagram simulation backends
//! (design-choice 1 of DESIGN.md).
//!
//! Statevector simulation is `O(2ⁿ)` regardless of structure; DD simulation
//! is exponentially compact on structured states (GHZ, QFT-of-basis) but
//! can degrade on unstructured ones (supremacy-style).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcirc::generators;
use qsim::Simulator;

fn bench_structured_circuits(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend_structured");
    for n in [12usize, 16] {
        let ghz = generators::ghz(n);
        group.bench_with_input(BenchmarkId::new("statevector_ghz", n), &ghz, |b, circ| {
            let sim = Simulator::new();
            b.iter(|| sim.run_basis(circ, 0));
        });
        group.bench_with_input(BenchmarkId::new("dd_ghz", n), &ghz, |b, circ| {
            b.iter_batched(
                || qdd::Package::new(circ.n_qubits()),
                |mut p| p.apply_to_basis(circ, 0).unwrap(),
                criterion::BatchSize::SmallInput,
            );
        });
        let qft = generators::qft(n, false);
        group.bench_with_input(BenchmarkId::new("statevector_qft", n), &qft, |b, circ| {
            let sim = Simulator::new();
            b.iter(|| sim.run_basis(circ, 1));
        });
        group.bench_with_input(BenchmarkId::new("dd_qft", n), &qft, |b, circ| {
            b.iter_batched(
                || qdd::Package::new(circ.n_qubits()),
                |mut p| p.apply_to_basis(circ, 1).unwrap(),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_unstructured_circuits(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend_unstructured");
    group.sample_size(10);
    let sup = generators::supremacy_2d(3, 4, 8, 7);
    group.bench_function("statevector_supremacy_3x4", |b| {
        let sim = Simulator::new();
        b.iter(|| sim.run_basis(&sup, 0));
    });
    group.bench_function("dd_supremacy_3x4", |b| {
        b.iter_batched(
            || qdd::Package::new(sup.n_qubits()),
            |mut p| p.apply_to_basis(&sup, 0).unwrap(),
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_threaded_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend_threads");
    group.sample_size(10);
    let circ = generators::qft(20, false);
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("qft20", threads),
            &threads,
            |b, &threads| {
                let sim = Simulator::with_threads(threads);
                b.iter(|| sim.run_basis(&circ, 3));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_structured_circuits, bench_unstructured_circuits, bench_threaded_statevector
}
criterion_main!(benches);
