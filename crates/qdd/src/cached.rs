//! A reusable decision-diagram handle: build a circuit's system matrix DD
//! once, check many candidate circuits against it.
//!
//! Fault-injection campaigns check hundreds of mutants of the *same*
//! golden circuit `G'`. The plain checkers ([`check_equivalence_construct`],
//! [`check_equivalence_alternating`]) rebuild `G'`'s DD from scratch on
//! every call, which dominates the guard cost of a campaign. A
//! [`CachedDd`] amortizes that: the golden DD is constructed exactly once
//! and kept live across [`CachedDd::check`] calls, so each check only pays
//! for the candidate's DD (plus a pointer comparison of the roots).
//!
//! The handle owns its [`Package`], so it is `Send` but not `Sync`;
//! [`SharedDd`] wraps it in `Arc<Mutex<…>>` for use from a worker pool
//! (clone the handle, lock per check).
//!
//! [`check_equivalence_construct`]: crate::check_equivalence_construct
//! [`check_equivalence_alternating`]: crate::check_equivalence_alternating
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), qdd::DdCheckAbort> {
//! use qdd::{CachedDd, DdEquivalence};
//!
//! let golden = qcirc::generators::ghz(4);
//! let mut cache = CachedDd::build(&golden, qdd::Package::DEFAULT_NODE_LIMIT, None)?;
//! // Same circuit: equivalent, without rebuilding the golden DD.
//! assert!(cache.check(&golden, None)?.is_equivalent());
//! let mut buggy = golden.clone();
//! buggy.x(2);
//! assert_eq!(cache.check(&buggy, None)?, DdEquivalence::NotEquivalent);
//! # Ok(())
//! # }
//! ```

use std::sync::{Arc, Mutex};
use std::time::Duration;

use qcirc::Circuit;

use crate::check::{circuit_medge_with_deadline, compare_roots, DdCheckAbort, DdEquivalence};
use crate::edge::MEdge;
use crate::package::Package;

/// A memoized system-matrix DD of one golden circuit, reusable across
/// many equivalence checks against candidate circuits.
#[derive(Debug)]
pub struct CachedDd {
    package: Package,
    root: MEdge,
    n_qubits: usize,
    checks: usize,
}

impl CachedDd {
    /// Builds the golden circuit's DD once, under the given node limit and
    /// optional wall-clock deadline.
    ///
    /// # Errors
    ///
    /// Returns [`DdCheckAbort`] if the build times out or exhausts the
    /// node limit — the golden circuit itself is too large to cache.
    pub fn build(
        golden: &Circuit,
        node_limit: usize,
        deadline: Option<Duration>,
    ) -> Result<Self, DdCheckAbort> {
        let mut package = Package::with_node_limit(golden.n_qubits(), node_limit);
        let budget = crate::check::Deadline::new(deadline);
        let root = circuit_medge_with_deadline(&mut package, golden, &budget, None)?;
        // Compact down to the live golden DD, then size the GC threshold to
        // it: a handle that serves many checks must collect every few
        // candidates, or the arena and hash tables balloon across checks
        // and each operation slows down — the package default (tuned for
        // one-shot checks) is far too lax for this access pattern.
        let (roots, _) = package.compact(&[root], &[]);
        let root = roots[0];
        let live = package.stats().matrix_nodes;
        package.set_gc_threshold(live * 16 + 4_096);
        Ok(CachedDd {
            package,
            root,
            n_qubits: golden.n_qubits(),
            checks: 0,
        })
    }

    /// The register size of the cached circuit.
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// How many candidate checks this handle has served.
    #[must_use]
    pub fn checks_served(&self) -> usize {
        self.checks
    }

    /// Checks `candidate` against the cached golden DD: builds the
    /// candidate's DD in the shared package (the golden root is protected
    /// from garbage collection) and compares the two roots.
    ///
    /// The verdict is identical to
    /// [`check_equivalence_construct`](crate::check_equivalence_construct)
    /// on `(golden, candidate)` — canonicity makes the comparison
    /// order-independent.
    ///
    /// # Errors
    ///
    /// Returns [`DdCheckAbort`] on timeout or node-limit exhaustion; the
    /// cached golden DD stays valid and later checks may still succeed.
    ///
    /// # Panics
    ///
    /// Panics if `candidate` acts on a different register size than the
    /// cached circuit.
    pub fn check(
        &mut self,
        candidate: &Circuit,
        deadline: Option<Duration>,
    ) -> Result<DdEquivalence, DdCheckAbort> {
        assert_eq!(
            candidate.n_qubits(),
            self.n_qubits,
            "candidate and cached circuit act on different registers"
        );
        let budget = crate::check::Deadline::new(deadline);
        // `keep` remaps `self.root` in place across any internal GC, so the
        // golden root stays valid even when the candidate build aborts.
        let built = circuit_medge_with_deadline(
            &mut self.package,
            candidate,
            &budget,
            Some(&mut self.root),
        );
        let verdict = match built {
            Ok(candidate_root) => Ok(compare_roots(&mut self.package, self.root, candidate_root)),
            Err(abort) => Err(abort),
        };
        self.checks += 1;
        // Candidate nodes (and, after an abort, half-built garbage) pile up
        // in the arena across checks; compact down to the golden root
        // before they threaten the node budget.
        if self.package.wants_gc() {
            let (roots, _) = self.package.compact(&[self.root], &[]);
            self.root = roots[0];
        }
        verdict
    }
}

/// An `Arc`-shareable [`CachedDd`]: clone the handle into each worker,
/// every [`SharedDd::check`] locks for the duration of one check.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), qdd::DdCheckAbort> {
/// use qdd::SharedDd;
///
/// let golden = qcirc::generators::ghz(3);
/// let shared = SharedDd::build(&golden, qdd::Package::DEFAULT_NODE_LIMIT, None)?;
/// let worker = shared.clone();
/// assert!(worker.check(&golden, None)?.is_equivalent());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SharedDd {
    inner: Arc<Mutex<CachedDd>>,
}

impl SharedDd {
    /// Builds the golden DD once and wraps it for sharing.
    ///
    /// # Errors
    ///
    /// Returns [`DdCheckAbort`] if the build times out or exhausts the
    /// node limit.
    pub fn build(
        golden: &Circuit,
        node_limit: usize,
        deadline: Option<Duration>,
    ) -> Result<Self, DdCheckAbort> {
        Ok(SharedDd {
            inner: Arc::new(Mutex::new(CachedDd::build(golden, node_limit, deadline)?)),
        })
    }

    /// Locks the cache and checks one candidate (see [`CachedDd::check`]).
    ///
    /// # Errors
    ///
    /// Returns [`DdCheckAbort`] on timeout or node-limit exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if `candidate` acts on a different register size, or if a
    /// previous holder of the lock panicked.
    pub fn check(
        &self,
        candidate: &Circuit,
        deadline: Option<Duration>,
    ) -> Result<DdEquivalence, DdCheckAbort> {
        self.inner
            .lock()
            .expect("a previous check panicked")
            .check(candidate, deadline)
    }

    /// How many candidate checks the shared cache has served so far.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the lock panicked.
    #[must_use]
    pub fn checks_served(&self) -> usize {
        self.inner
            .lock()
            .expect("a previous check panicked")
            .checks_served()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::generators;

    #[test]
    fn cached_verdicts_match_fresh_construct_checks() {
        let golden = generators::qft(4, true);
        let mut cache = CachedDd::build(&golden, Package::DEFAULT_NODE_LIMIT, None).unwrap();
        let candidates = [
            golden.clone(),
            qcirc::optimize::optimize(&golden),
            {
                let mut b = golden.clone();
                b.x(1);
                b
            },
            {
                let mut b = golden.clone();
                b.rz(2.0 * std::f64::consts::PI, 0);
                b
            },
        ];
        for candidate in &candidates {
            let cached = cache.check(candidate, None).unwrap();
            let mut p = Package::new(4);
            let fresh =
                crate::check_equivalence_construct(&mut p, &golden, candidate, None).unwrap();
            assert_eq!(cached, fresh);
        }
        assert_eq!(cache.checks_served(), candidates.len());
    }

    #[test]
    fn golden_root_survives_gc_across_many_checks() {
        let golden = generators::qft(5, true);
        let mut cache = CachedDd::build(&golden, Package::DEFAULT_NODE_LIMIT, None).unwrap();
        // Force frequent compaction so the keep-root path is exercised.
        cache.package.set_gc_threshold(1024);
        let mut buggy = golden.clone();
        buggy.x(0);
        for i in 0..50 {
            let candidate = if i % 2 == 0 { &golden } else { &buggy };
            let v = cache.check(candidate, None).unwrap();
            assert_eq!(v.is_equivalent(), i % 2 == 0, "check {i}");
        }
        // Compaction kept the arena bounded: dead candidate DDs were
        // collected rather than accumulating across all 50 checks.
        let stats = cache.package.stats();
        assert!(
            stats.matrix_nodes < 10_000,
            "arena grew unbounded: {stats:?}"
        );
    }

    #[test]
    fn aborted_check_leaves_the_cache_usable() {
        let golden = generators::qft(5, true);
        let mut cache = CachedDd::build(&golden, Package::DEFAULT_NODE_LIMIT, None).unwrap();
        let e = cache
            .check(&generators::supremacy_2d(5, 1, 20, 1), Some(Duration::ZERO))
            .unwrap_err();
        assert!(matches!(e, DdCheckAbort::Timeout { .. }));
        assert!(cache.check(&golden, None).unwrap().is_equivalent());
    }

    #[test]
    fn abort_after_internal_gc_leaves_the_golden_root_valid() {
        // Regression: an internal GC remaps the kept golden root; a later
        // abort in the same build must not lose that remap, or every
        // subsequent check reads a stale root id into a rebuilt arena.
        let golden = generators::qft(6, true);
        let mut cache = CachedDd::build(&golden, 3_000, None).unwrap();
        cache.package.set_gc_threshold(1024);
        let e = cache
            .check(&generators::supremacy_2d(6, 1, 120, 1), None)
            .unwrap_err();
        assert!(matches!(e, DdCheckAbort::NodeLimit { .. }), "{e:?}");
        assert!(cache.check(&golden, None).unwrap().is_equivalent());
        let mut buggy = golden.clone();
        buggy.x(0);
        assert_eq!(
            cache.check(&buggy, None).unwrap(),
            DdEquivalence::NotEquivalent
        );
    }

    #[test]
    fn shared_handle_works_from_scoped_threads() {
        let golden = generators::qft(4, true);
        let shared = SharedDd::build(&golden, Package::DEFAULT_NODE_LIMIT, None).unwrap();
        let mut buggy = golden.clone();
        buggy.t(2);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let shared = shared.clone();
                let golden = &golden;
                let buggy = &buggy;
                scope.spawn(move || {
                    assert!(shared.check(golden, None).unwrap().is_equivalent());
                    assert_eq!(
                        shared.check(buggy, None).unwrap(),
                        DdEquivalence::NotEquivalent
                    );
                });
            }
        });
        assert_eq!(shared.checks_served(), 8);
    }

    #[test]
    fn register_mismatch_panics() {
        let golden = generators::ghz(3);
        let mut cache = CachedDd::build(&golden, Package::DEFAULT_NODE_LIMIT, None).unwrap();
        let wide = generators::ghz(4);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = cache.check(&wide, None);
        }));
        assert!(r.is_err());
    }
}
