//! The sharded, bounded, thread-safe verdict cache.
//!
//! Maps [`JobKey`] → [`CachedVerdict`]: the verdict class, the
//! counterexample witness, and the timings-free report fragment rendered
//! exactly once at miss time — so a cache hit can replay a byte-identical
//! report line without re-rendering anything.
//!
//! The cache is sharded (key-hash-selected `Mutex<HashMap>` shards) so
//! batch workers rarely contend, bounded by a total capacity with
//! per-shard eviction under a pluggable [`EvictionPolicy`], and
//! instrumented with atomic hit/miss/insertion/eviction counters
//! ([`CacheStats`]).
//!
//! The default policy is plain LRU. [`EvictionPolicy::CostWeighted`]
//! additionally weighs each entry by its recomputation cost (the
//! wall-clock time of the run that produced it, supplied via
//! [`VerdictCache::insert_with_cost`]): a verdict that took minutes of
//! simulation to reach outlives one that took microseconds, even when the
//! cheap one was touched more recently. Cost is eviction metadata only —
//! it never enters [`CachedVerdict`], so hits stay byte-identical to the
//! misses that populated them.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::outcome::{FlowResult, Outcome};
use crate::report::json::Obj;

use super::fingerprint::JobKey;

/// A verdict as stored in (and served from) the cache.
///
/// Carries no wall-clock data at all: two runs of the same job at
/// different speeds must cache identically, and a hit must be
/// byte-identical to the miss that populated it.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedVerdict {
    /// The typed verdict (including any counterexample).
    pub outcome: Outcome,
    /// How many simulations the original run performed.
    pub simulations_run: usize,
    /// The timings-free verdict fragment, rendered once at miss time:
    /// `{"verdict":…,"sims":…,"counterexample":…}`.
    pub json: String,
}

impl CachedVerdict {
    /// Distils a flow result into its cacheable form (verdict + witness +
    /// pre-rendered fragment; timings dropped).
    #[must_use]
    pub fn from_result(result: &FlowResult) -> Self {
        let (verdict, witness) = crate::report::verdict_and_witness(&result.outcome);
        let mut o = Obj::new();
        o.str("verdict", verdict)
            .int("sims", result.stats.simulations_run as u64);
        if witness.is_empty() {
            o.raw("counterexample", "null");
        } else {
            o.str("counterexample", &witness);
        }
        CachedVerdict {
            outcome: result.outcome.clone(),
            simulations_run: result.stats.simulations_run,
            json: o.render(),
        }
    }
}

/// Monotonic counters describing cache behaviour since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries written.
    pub insertions: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Renders the counters as a stable JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = Obj::new();
        o.int("hits", self.hits)
            .int("misses", self.misses)
            .int("insertions", self.insertions)
            .int("evictions", self.evictions)
            .int("entries", self.entries as u64);
        o.render()
    }
}

/// How a full shard chooses its victim.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Evict the least recently used entry (the default).
    #[default]
    Lru,
    /// Evict the entry cheapest to recompute, breaking ties by recency.
    ///
    /// The cost is the wall-clock time of the run that produced the
    /// verdict, recorded by [`VerdictCache::insert_with_cost`]. Entries
    /// inserted without a cost count as free and are evicted first.
    CostWeighted,
}

impl EvictionPolicy {
    /// Stable lowercase identifier (`lru` / `cost`).
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::CostWeighted => "cost",
        }
    }

    /// Parses the identifiers accepted by `slug`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "lru" => Some(EvictionPolicy::Lru),
            "cost" | "cost-weighted" => Some(EvictionPolicy::CostWeighted),
            _ => None,
        }
    }
}

#[derive(Debug)]
struct Entry {
    verdict: CachedVerdict,
    last_used: u64,
    /// Recomputation cost in microseconds; eviction metadata only.
    cost_us: u64,
}

/// A sharded, bounded, thread-safe `JobKey → CachedVerdict` map.
///
/// # Examples
///
/// ```
/// use qcec::{CachedVerdict, Config, JobKey, VerdictCache};
///
/// let g = qcirc::generators::ghz(3);
/// let key = JobKey::new(&g, &g, &Config::default());
/// let cache = VerdictCache::new(64);
/// assert!(cache.get(&key).is_none());
/// let result = qcec::check_equivalence_default(&g, &g).unwrap();
/// cache.insert(key, CachedVerdict::from_result(&result));
/// assert!(cache.get(&key).is_some());
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct VerdictCache {
    shards: Vec<Mutex<HashMap<JobKey, Entry>>>,
    shard_capacity: usize,
    policy: EvictionPolicy,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl VerdictCache {
    /// Default shard count: enough that a small worker pool rarely
    /// contends, few enough that tiny caches still hold entries.
    const DEFAULT_SHARDS: usize = 8;

    /// Creates a cache bounded to roughly `capacity` entries total
    /// (rounded up to a multiple of the shard count), evicting LRU.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, Self::DEFAULT_SHARDS)
    }

    /// Creates a cache of the default shard count with an explicit
    /// eviction policy.
    #[must_use]
    pub fn with_policy(capacity: usize, policy: EvictionPolicy) -> Self {
        Self::with_shards_and_policy(capacity, Self::DEFAULT_SHARDS, policy)
    }

    /// Creates a cache with an explicit shard count (power of two not
    /// required). Each shard holds up to `⌈capacity / shards⌉` entries,
    /// with a minimum of one.
    #[must_use]
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        Self::with_shards_and_policy(capacity, shards, EvictionPolicy::Lru)
    }

    /// Creates a cache with explicit shard count and eviction policy.
    #[must_use]
    pub fn with_shards_and_policy(capacity: usize, shards: usize, policy: EvictionPolicy) -> Self {
        let shards = shards.max(1);
        VerdictCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            shard_capacity: capacity.div_ceil(shards).max(1),
            policy,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &JobKey) -> &Mutex<HashMap<JobKey, Entry>> {
        let idx = (key.shard_hash() % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Looks a key up, bumping its recency and the hit/miss counters.
    #[must_use]
    pub fn get(&self, key: &JobKey) -> Option<CachedVerdict> {
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        match shard.get_mut(key) {
            Some(entry) => {
                entry.last_used = now;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.verdict.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) a verdict with zero recomputation cost,
    /// evicting one entry of the target shard (per the cache's policy)
    /// when it is full.
    pub fn insert(&self, key: JobKey, verdict: CachedVerdict) {
        self.insert_with_cost(key, verdict, Duration::ZERO);
    }

    /// Inserts (or refreshes) a verdict, recording the wall-clock time the
    /// producing run took. Under [`EvictionPolicy::Lru`] the cost is
    /// ignored; under [`EvictionPolicy::CostWeighted`] a full shard evicts
    /// its cheapest entry (ties broken least-recently-used first), so
    /// expensive verdicts outlive churn from cheap ones.
    pub fn insert_with_cost(&self, key: JobKey, verdict: CachedVerdict, cost: Duration) {
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        let cost_us = u64::try_from(cost.as_micros()).unwrap_or(u64::MAX);
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        if !shard.contains_key(&key) && shard.len() >= self.shard_capacity {
            let victim = match self.policy {
                EvictionPolicy::Lru => shard.iter().min_by_key(|(_, e)| e.last_used),
                EvictionPolicy::CostWeighted => {
                    shard.iter().min_by_key(|(_, e)| (e.cost_us, e.last_used))
                }
            }
            .map(|(k, _)| *k);
            if let Some(victim) = victim {
                shard.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        shard.insert(
            key,
            Entry {
                verdict,
                last_used: now,
                cost_us,
            },
        );
    }

    /// The number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::FlowStats;
    use crate::Config;

    fn verdict(sims: usize) -> CachedVerdict {
        CachedVerdict::from_result(&FlowResult {
            outcome: Outcome::Equivalent,
            stats: FlowStats {
                simulations_run: sims,
                ..FlowStats::default()
            },
        })
    }

    fn key_for(tag: u64) -> JobKey {
        let mut g = qcirc::Circuit::new(3);
        g.h(0);
        let mut g2 = g.clone();
        g2.x((tag % 3) as usize);
        JobKey::new(&g, &g2, &Config::default().with_seed(tag))
    }

    #[test]
    fn hit_returns_what_was_inserted() {
        let cache = VerdictCache::new(16);
        let key = key_for(0);
        assert!(cache.get(&key).is_none());
        cache.insert(key, verdict(5));
        let got = cache.get(&key).unwrap();
        assert_eq!(got.simulations_run, 5);
        assert_eq!(
            got.json,
            r#"{"verdict":"equivalent","sims":5,"counterexample":null}"#
        );
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.entries), (1, 1, 1, 1));
    }

    #[test]
    fn capacity_bounds_and_lru_evicts() {
        // One shard makes the LRU order fully observable.
        let cache = VerdictCache::with_shards(3, 1);
        let keys: Vec<JobKey> = (0..4).map(key_for).collect();
        for (i, k) in keys.iter().take(3).enumerate() {
            cache.insert(*k, verdict(i));
        }
        assert_eq!(cache.len(), 3);
        // Touch key 0 so key 1 becomes the LRU victim.
        assert!(cache.get(&keys[0]).is_some());
        cache.insert(keys[3], verdict(3));
        assert_eq!(cache.len(), 3);
        assert!(cache.get(&keys[1]).is_none(), "LRU entry evicted");
        assert!(cache.get(&keys[0]).is_some());
        assert!(cache.get(&keys[3]).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn cost_weighted_keeps_expensive_entries() {
        let cache = VerdictCache::with_shards_and_policy(3, 1, EvictionPolicy::CostWeighted);
        let keys: Vec<JobKey> = (0..5).map(key_for).collect();
        cache.insert_with_cost(keys[0], verdict(0), Duration::from_secs(60));
        cache.insert_with_cost(keys[1], verdict(1), Duration::from_millis(1));
        cache.insert_with_cost(keys[2], verdict(2), Duration::from_millis(1));
        // Touch the cheap entries so pure LRU would evict the expensive
        // one; the cost-weighted policy evicts the older cheap entry.
        assert!(cache.get(&keys[1]).is_some());
        assert!(cache.get(&keys[2]).is_some());
        cache.insert_with_cost(keys[3], verdict(3), Duration::from_millis(1));
        assert!(cache.get(&keys[0]).is_some(), "expensive entry survives");
        assert!(cache.get(&keys[1]).is_none(), "older cheap entry evicted");
        // A plain `insert` counts as free and is the next victim.
        cache.insert(keys[1], verdict(1));
        cache.insert_with_cost(keys[4], verdict(4), Duration::from_millis(1));
        assert!(cache.get(&keys[1]).is_none(), "free entry evicted first");
        assert!(cache.get(&keys[0]).is_some());
    }

    #[test]
    fn lru_policy_ignores_costs() {
        // The default policy must behave identically whether or not costs
        // were recorded: recency alone picks the victim.
        let cache = VerdictCache::with_shards(2, 1);
        let keys: Vec<JobKey> = (0..3).map(key_for).collect();
        cache.insert_with_cost(keys[0], verdict(0), Duration::from_secs(60));
        cache.insert_with_cost(keys[1], verdict(1), Duration::from_millis(1));
        cache.insert_with_cost(keys[2], verdict(2), Duration::from_millis(1));
        assert!(cache.get(&keys[0]).is_none(), "LRU evicts oldest");
        assert!(cache.get(&keys[1]).is_some());
    }

    #[test]
    fn policy_slugs_round_trip() {
        for policy in [EvictionPolicy::Lru, EvictionPolicy::CostWeighted] {
            assert_eq!(EvictionPolicy::parse(policy.slug()), Some(policy));
        }
        assert_eq!(
            EvictionPolicy::parse("cost-weighted"),
            Some(EvictionPolicy::CostWeighted)
        );
        assert_eq!(EvictionPolicy::parse("mru"), None);
        assert_eq!(EvictionPolicy::default(), EvictionPolicy::Lru);
    }

    #[test]
    fn stats_json_is_stable() {
        let cache = VerdictCache::new(8);
        let _ = cache.get(&key_for(9));
        assert_eq!(
            cache.stats().to_json(),
            r#"{"hits":0,"misses":1,"insertions":0,"evictions":0,"entries":0}"#
        );
    }
}
