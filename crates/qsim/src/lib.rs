//! A dense statevector simulator for quantum circuits.
//!
//! This crate is the workspace's implementation of the simulation engine the
//! paper plugs into its flow (reference \[25\]): simulating a circuit on a
//! computational basis state `|i⟩` produces the `i`-th *column* of the
//! circuit unitary with `O(m·2ⁿ)` work — exponentially cheaper than the
//! `O(m·4ⁿ)` matrix-matrix construction that full equivalence checking
//! performs.
//!
//! * [`StateVector`] — dense `2ⁿ` amplitudes, inner products and fidelity,
//! * [`Simulator`] — gate application with diagonal fast paths, optional
//!   multithreading ([`Simulator::with_threads`]) and cache-hot batched
//!   probes ([`Simulator::probe_stimuli_batch_while`] / [`BatchWorkspace`]),
//! * [`measure`] — probabilities, sampling, collapse,
//! * [`unitary`] — full unitaries built column-by-column (ground truth for
//!   tests and the Fig. 1 reproduction),
//! * [`kernels`] / [`parallel`] — the raw amplitude-slice kernels.
//!
//! # Examples
//!
//! Detect a mapping bug with a single simulation, as in the paper's
//! Example 6:
//!
//! ```
//! use qsim::Simulator;
//!
//! let g = qcirc::generators::ghz(3);
//! let mut buggy = g.clone();
//! buggy.x(1); // a stray X — the circuits are no longer equivalent
//!
//! let sim = Simulator::new();
//! let overlap = sim.probe_basis(&g, &buggy, 0);
//! assert!(!overlap.approx_one()); // one run suffices to expose the bug
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod expectation;
pub mod kernels;
pub mod measure;
pub mod parallel;
mod simulator;
mod state;
mod unitary;

pub use simulator::{BatchWorkspace, ProbeWorkspace, Simulator};
pub use state::{StateError, StateVector};
pub use unitary::unitary;
